"""Algebraic and GAS framings of push vs pull (Sections 7.1 and 7.4).

Shows the same dichotomy in two other clothes:

1. **Linear algebra**: CSR SpMV is pulling, CSC SpMV is pushing.  For a
   *dense* vector (PageRank) the layouts do identical work; for a
   *sparse* vector (a BFS frontier) only CSC can skip the zero columns
   -- the operation counts below make Section 7.1's argument concrete.
2. **Gather-Apply-Scatter**: the same SSSP vertex program executed in
   gather (pull) mode vs scatter (push) mode, with the engine counting
   gathers vs remote accumulator writes.

    python examples/algebraic_formulations.py
"""

import numpy as np

from repro.gas import gas_sssp
from repro.generators import load_dataset
from repro.la import (
    OR_AND, adjacency_matrices, bfs_la, pagerank_la, spmspv_csc, spmspv_csr,
)


def main() -> None:
    g = load_dataset("am", scale=11, seed=1)
    print(f"graph: {g}\n")

    # --- dense SpMV: PageRank -------------------------------------------------
    print("PageRank as plus-times SpMV (dense vector):")
    for layout, direction in (("csr", "pull"), ("csc", "push")):
        ranks, ops = pagerank_la(g, iterations=10, layout=layout)
        print(f"  {layout.upper()} ({direction:4s}): "
              f"{ops.multiplies:>9,} multiplies, "
              f"{ops.combines:>9,} scatter-combines, "
              f"top vertex {int(np.argmax(ranks))}")
    print("  -> identical multiply counts; only CSC needs combining\n")

    # --- sparse SpMSpV: one BFS frontier step ---------------------------------------
    csr, csc = adjacency_matrices(g)
    frontier = np.array([0, 1, 2], dtype=np.int64)
    ones = np.ones(len(frontier))
    _, _, ops_csr = spmspv_csr(csr, frontier, ones, OR_AND)
    _, _, ops_csc = spmspv_csc(csc, frontier, ones, OR_AND)
    print(f"one SpMSpV step with a {len(frontier)}-vertex frontier:")
    print(f"  CSR (pull): swept {ops_csr.rows_touched:,} rows "
          f"for {ops_csr.multiplies} useful multiplies")
    print(f"  CSC (push): touched {ops_csc.rows_touched} columns "
          f"for {ops_csc.multiplies} multiplies")
    print("  -> pushing exploits the frontier's sparsity; pulling cannot\n")

    # --- full BFS in both layouts -----------------------------------------------------
    print("whole algebraic BFS from vertex 0:")
    for layout in ("csc", "csr"):
        level, ops = bfs_la(g, 0, layout=layout)
        print(f"  {layout.upper()}: depth {level.max()}, "
              f"{ops.rows_touched:>8,} rows/cols touched")
    print()

    # --- GAS modes --------------------------------------------------------------------
    gw = load_dataset("am", scale=11, seed=1, weighted=True)
    src = int(np.argmax(np.diff(gw.offsets)))
    print(f"GAS SSSP from vertex {src} (Section 7.4):")
    for mode in ("pull", "push"):
        st = gas_sssp(gw, src, mode=mode)
        finite = sum(1 for v in st.values.values() if np.isfinite(v))
        print(f"  {mode:4s}: {st.iterations} supersteps, "
              f"{st.gathers:>8,} gathers, "
              f"{st.remote_writes:>8,} remote accumulator writes, "
              f"reached {finite}/{gw.n}")
    print("  -> gather-heavy vs scatter-heavy: the same dichotomy again")


if __name__ == "__main__":
    main()
