"""Distributed PageRank: choosing a communication backend (Section 6.3).

Runs the three DM PageRank variants -- Message Passing (Alltoallv),
RMA push (float MPI_Accumulate) and RMA pull (MPI_Get of rank+degree)
-- on the simulated Cray and prints the strong-scaling series plus the
traffic breakdown that explains the >10x MP-over-RMA gap the paper
measures, and the memory tradeoff that RMA wins.

    python examples/distributed_pagerank.py
"""

import numpy as np

from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.reference import pagerank_reference
from repro.generators import load_dataset
from repro.machine import XC40
from repro.machine.counters import format_count
from repro.runtime.dm import DMRuntime


def main() -> None:
    g = load_dataset("rmat", scale=12)
    machine = XC40.scaled(64)
    ref = pagerank_reference(g, 8)
    print(f"graph: {g}\n")

    print(f"{'variant':<10} " + " ".join(f"P={p:<9}" for p in (4, 8, 16, 32)))
    traffic = {}
    for variant in ("mp", "rma-pull", "rma-push"):
        times = []
        for P in (4, 8, 16, 32):
            rt = DMRuntime(g.n, P=P, machine=machine)
            r = dm_pagerank(g, rt, variant=variant, iterations=8)
            assert np.allclose(r.ranks, ref, atol=1e-12)
            times.append(r.time)
            if P == 16:
                traffic[variant] = r
        print(f"{variant:<10} " + " ".join(f"{t:<11,.0f}"[:11] for t in times))

    print("\ntraffic at P=16 (8 iterations):")
    print(f"{'variant':<10} {'collectives':>12} {'acc(float)':>12} "
          f"{'gets':>10} {'bytes moved':>12} {'peak buffer':>12}")
    for variant, r in traffic.items():
        c = r.counters
        moved = c.msg_bytes + c.collective_bytes + c.remote_bytes
        print(f"{variant:<10} {c.collectives:>12} {c.remote_acc_float:>12} "
              f"{c.remote_gets:>10} {format_count(moved):>12} "
              f"{r.peak_buffer_cells:>10} c")

    print(
        "\nwhy MP wins here (Section 6.3.1): one Alltoallv per iteration\n"
        "moves pre-combined updates, while RMA pays a per-edge-entry\n"
        "one-sided op -- and the float accumulate takes the slow locking\n"
        "protocol.  RMA's consolation prize is O(1) buffer memory where\n"
        "MP buffers O(n·d̂/P) cells per process.")


if __name__ == "__main__":
    main()
