"""Road-network routing: SSSP and MST on a high-diameter sparse graph.

Operations-research flavored demo (Section 3.4 cites SSSP's use there):
route distances from a depot with Δ-Stepping -- in the *push* direction,
which the paper finds decisively faster on road networks because pull
rescans every unsettled vertex per epoch -- then plan a minimum-cost
cable layout with Borůvka MST (where *pull* wins instead: Figure 4).

    python examples/road_network_routing.py
"""

import numpy as np

from repro.algorithms import boruvka_mst, sssp_delta
from repro.generators import road_network
from repro.graph import graph_stats
from repro.machine import XC30
from repro.runtime.sm import SMRuntime


def main() -> None:
    g = road_network(64, 64, seed=17, weighted=True)
    print(f"road network: {g};  {graph_stats(g).as_row()}")
    machine = XC30.scaled(64)

    depot = int(np.argmax(np.diff(g.offsets)))

    # --- Δ-Stepping, both directions, to show the gap --------------------------
    for direction in ("push", "pull"):
        rt = SMRuntime(g, P=16, machine=machine)
        r = sssp_delta(g, rt, depot, direction=direction)
        reach = np.isfinite(r.dist)
        print(f"SSSP-Δ {direction:4s}: {r.epochs} epochs, "
              f"time {r.time:12,.0f} mtu, reads {r.counters.reads:>10,}, "
              f"reached {int(reach.sum())}/{g.n}")
        if direction == "push":
            dist_push = r.dist

    far = int(np.nanargmax(np.where(np.isfinite(dist_push), dist_push, -1)))
    print(f"farthest reachable intersection from depot {depot}: "
          f"{far} at road distance {dist_push[far]:.1f}")

    # --- Δ sensitivity (Figure 2c) ------------------------------------------------
    print("\nΔ sweep (push):")
    base = float(g.weights.mean())
    for mult in (0.25, 1.0, 4.0):
        rt = SMRuntime(g, P=16, machine=machine)
        r = sssp_delta(g, rt, depot, delta=base * mult, direction="push")
        print(f"  Δ = {mult:4.2f}x mean weight: {r.epochs:4d} epochs, "
              f"{r.inner_iterations} inner iterations, "
              f"time {r.time:12,.0f} mtu")

    # --- MST: pull is the right direction here (Figure 4) ----------------------------
    rt = SMRuntime(g, P=16, machine=machine)
    mst = boruvka_mst(g, rt, direction="pull")
    print(f"\nminimum-cost layout: {len(mst.edges)} road segments, "
          f"total cost {mst.total_weight:,.1f} "
          f"({mst.iterations} Borůvka rounds)")
    fm = sum(mst.phase_times['FM'])
    print(f"phase split: find-min {fm:,.0f}, "
          f"merge-tree {sum(mst.phase_times['BMT']):,.0f}, "
          f"merge {sum(mst.phase_times['M']):,.0f} mtu")


if __name__ == "__main__":
    main()
