"""Quickstart: push vs pull PageRank on a social-network stand-in.

Runs the paper's headline comparison end to end: generate a graph, run
both directions of PageRank on the simulated 16-thread machine, and
inspect what the instrumentation says about *why* one direction wins.

    python examples/quickstart.py
"""

from repro.algorithms import pagerank
from repro.generators import load_dataset
from repro.graph import graph_stats
from repro.machine import XC30
from repro.machine.counters import format_count
from repro.runtime.sm import SMRuntime


def main() -> None:
    # an Orkut-like community graph (dense, low diameter); see Table 2
    g = load_dataset("orc", scale=12)
    print(f"graph: {g}")
    print(f"stats: {graph_stats(g).as_row()}")

    # a simulated Cray XC30 node with 16 threads; caches are shrunk by
    # 64x to keep the scaled-down graph out of cache, like the paper's
    # full-size graphs were (DESIGN.md section 2)
    machine = XC30.scaled(64)

    results = {}
    for direction in ("push", "pull"):
        rt = SMRuntime(g, P=16, machine=machine)
        results[direction] = pagerank(g, rt, direction=direction,
                                      iterations=10)

    push, pull = results["push"], results["pull"]
    assert abs(push.ranks - pull.ranks).max() < 1e-12, \
        "both directions compute identical ranks"

    print(f"\ntop-5 vertices by rank: "
          f"{sorted(range(g.n), key=lambda v: -pull.ranks[v])[:5]}")

    print("\n             {:>12} {:>12}".format("push", "pull"))
    print("time [mtu]   {:>12} {:>12}".format(
        format_count(push.time), format_count(pull.time)))
    for event in ("reads", "writes", "atomics", "locks", "l3_misses"):
        print("{:<12} {:>12} {:>12}".format(
            event,
            format_count(getattr(push.counters, event)),
            format_count(getattr(pull.counters, event))))

    winner = "pull" if pull.time < push.time else "push"
    print(f"\n=> {winner} wins: pushing pays one atomic per edge update "
          f"({format_count(push.counters.atomics)} CAS total), pulling "
          f"reads rank+degree of every neighbor instead -- the paper's "
          f"Section 4.1 tradeoff, measured.")


if __name__ == "__main__":
    main()
