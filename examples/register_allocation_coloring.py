"""Graph coloring for scheduling: the Section-5 strategy ladder.

GC "has multiple applications in scheduling and pattern matching"
(Section 3.6).  This demo treats vertices as tasks and edges as
conflicts (shared resources) and walks the full strategy ladder the
paper builds for Boman coloring:

    plain push / pull  ->  +Frontier-Exploit  ->  +Generic-Switch
                       ->  +Greedy-Switch     ->  Conflict-Removal

printing, for each, the iteration count, color count (= resource slots
used), and simulated time.

    python examples/register_allocation_coloring.py
"""

from repro.algorithms import boman_coloring
from repro.algorithms.reference import is_proper_coloring
from repro.generators import load_dataset
from repro.machine import XC30
from repro.runtime.sm import SMRuntime
from repro.strategies import (
    conflict_removal_coloring, frontier_exploit_coloring,
)


def main() -> None:
    g = load_dataset("ljn", scale=12)
    machine = XC30.scaled(64)
    print(f"conflict graph: {g}\n")

    def fresh_rt() -> SMRuntime:
        return SMRuntime(g, P=16, machine=machine)

    runs = []
    for d in ("push", "pull"):
        runs.append(boman_coloring(g, fresh_rt(), direction=d,
                                   max_colors=256))
    runs.append(frontier_exploit_coloring(g, fresh_rt()))
    runs.append(frontier_exploit_coloring(g, fresh_rt(),
                                          generic_switch=True))
    runs.append(frontier_exploit_coloring(g, fresh_rt(),
                                          greedy_switch=True))
    runs.append(conflict_removal_coloring(g, fresh_rt()))

    print(f"{'variant':<14} {'iters':>6} {'colors':>7} {'locks':>9} "
          f"{'time [mtu]':>14}")
    for r in runs:
        assert is_proper_coloring(g, r.colors)
        print(f"{r.direction:<14} {r.iterations:>6} {r.n_colors:>7} "
              f"{r.counters.locks:>9,} {r.time:>14,.0f}")

    print("\nreading the ladder (cf. Figures 1 and 6b):")
    print(" * push runs cheaper iterations than pull but needs more of them;")
    print(" * FE touches only a frontier per wave, but on dense graphs the")
    print("   conflicts between concurrent claims inflate the wave count;")
    print(" * GS switches to the conflict-free pull mode when waves start")
    print("   thrashing; GrS hands the tail to a sequential greedy pass;")
    print(" * CR pre-colors the border so the parallel phase cannot")
    print("   conflict at all -- one pass, fewest colors.")


if __name__ == "__main__":
    main()
