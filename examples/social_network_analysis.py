"""Social-network analysis: centrality, communities-of-influence, triangles.

The paper's motivating workload class (Section 1: "social network
analysis").  On an Orkut-like graph this script:

1. finds influencer vertices with PageRank (pull -- no atomics),
2. measures brokerage with sampled Betweenness Centrality (pull -- the
   direction the paper finds faster for both BC phases),
3. computes clustering via Triangle Counting (pull again),
4. explores the hub's neighborhood with a direction-optimizing BFS
   (the push/pull switch of Beamer et al. that Section 8 discusses).

    python examples/social_network_analysis.py
"""

import numpy as np

from repro.algorithms import betweenness_centrality, pagerank, triangle_count
from repro.generators import load_dataset
from repro.machine import XC30
from repro.runtime.sm import SMRuntime
from repro.strategies import direction_optimizing_bfs


def main() -> None:
    g = load_dataset("orc", scale=11)
    machine = XC30.scaled(64)
    rt = SMRuntime(g, P=16, machine=machine)
    deg = np.diff(g.offsets)

    # --- 1. influence ----------------------------------------------------------
    pr = pagerank(g, rt, direction="pull", iterations=20, tol=1e-10)
    top = np.argsort(-pr.ranks)[:5]
    print("top influencers (PageRank):")
    for v in top:
        print(f"  vertex {v:5d}  rank={pr.ranks[v]:.5f}  degree={deg[v]}")

    # --- 2. brokerage -----------------------------------------------------------
    bc = betweenness_centrality(g, rt, direction="pull", sources=32, seed=1)
    brokers = np.argsort(-bc.bc)[:5]
    print("\ntop brokers (sampled betweenness):")
    for v in brokers:
        print(f"  vertex {v:5d}  bc={bc.bc[v]:10.1f}  degree={deg[v]}")

    # --- 3. cohesion ---------------------------------------------------------------
    tc = triangle_count(g, rt, direction="pull")
    closed = tc.per_vertex.astype(np.float64)
    wedges = deg.astype(np.float64) * (deg - 1) / 2
    cc = np.divide(closed, wedges, out=np.zeros_like(closed),
                   where=wedges > 0)
    print(f"\ntriangles: {tc.total} total; "
          f"mean local clustering {cc.mean():.3f}")

    # --- 4. reach of the top influencer --------------------------------------------
    hub = int(top[0])
    bfs = direction_optimizing_bfs(g, rt, hub)
    reach = np.bincount(bfs.level[bfs.level >= 0])
    print(f"\nreach of vertex {hub} (direction-optimizing BFS, "
          f"level schedule {bfs.directions}):")
    for lvl, cnt in enumerate(reach):
        print(f"  {lvl} hops: {cnt} vertices")

    print(f"\nsimulated machine time for the whole pipeline: "
          f"{rt.time:,.0f} mtu; atomics issued: "
          f"{rt.total_counters().atomics} (the pull-heavy plan avoids them)")


if __name__ == "__main__":
    main()
