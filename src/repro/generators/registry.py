"""The benchmark dataset registry (the paper's Table 2, scaled down).

Each named dataset reproduces the *sparsity class* of its Table-2
namesake at a size where the trace-instrumented pure-Python runtime
finishes in seconds:

=====  ==================================  =========  ======  ======
ID     paper graph                         class      d̄       D
=====  ==================================  =========  ======  ======
orc    Orkut social network                dense      39      9
pok    Pokec social network                dense      18.75   11
ljn    LiveJournal ground-truth community  medium     8.67    17
am     Amazon purchase network             sparse     3.43    32
rca    California road network             sparse     1.4     849
rmat   R-MAT / Kronecker synthetic         skewed     2-16    19-33
er     Erdős–Rényi synthetic               uniform    param   ~log n
=====  ==================================  =========  ======  ======

Loaded graphs are memoized per (name, scale, seed, weighted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.generators.erdos_renyi import erdos_renyi
from repro.generators.kronecker import rmat
from repro.generators.realworld import community_graph, purchase_graph
from repro.generators.road import road_network
from repro.graph.csr import CSRGraph
from repro.graph.properties import graph_stats


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: generator plus its Table-2 reference row."""

    name: str
    description: str
    paper_n: str
    paper_m: str
    paper_d_bar: str
    paper_diameter: str
    make: Callable[[int, int, bool], CSRGraph]  # (scale, seed, weighted) -> graph


def _orc(scale: int, seed: int, weighted: bool) -> CSRGraph:
    n = 1 << scale
    return community_graph(n, d_bar=39.0, seed=seed, weighted=weighted,
                           intra_fraction=0.65)


def _pok(scale: int, seed: int, weighted: bool) -> CSRGraph:
    n = 1 << scale
    return community_graph(n, d_bar=18.75, seed=seed + 1, weighted=weighted,
                           intra_fraction=0.6)


def _ljn(scale: int, seed: int, weighted: bool) -> CSRGraph:
    n = 1 << scale
    return community_graph(n, d_bar=8.67, seed=seed + 2, weighted=weighted,
                           intra_fraction=0.55, exponent=2.3)


def _am(scale: int, seed: int, weighted: bool) -> CSRGraph:
    n = 1 << scale
    return purchase_graph(n, edges_per_vertex=3, seed=seed + 3, weighted=weighted)


def _rca(scale: int, seed: int, weighted: bool) -> CSRGraph:
    side = int((1 << scale) ** 0.5)
    return road_network(side, side, keep=0.70, seed=seed + 4, weighted=weighted)


def _rmat(scale: int, seed: int, weighted: bool) -> CSRGraph:
    return rmat(scale, d_bar=16.0, seed=seed + 5, weighted=weighted)


def _er(scale: int, seed: int, weighted: bool) -> CSRGraph:
    return erdos_renyi(1 << scale, d_bar=8.0, seed=seed + 6, weighted=weighted)


DATASETS: dict[str, DatasetSpec] = {
    "orc": DatasetSpec("orc", "Orkut-like social network (dense, low D)",
                       "3.07M", "117M", "39", "9", _orc),
    "pok": DatasetSpec("pok", "Pokec-like social network (dense, low D)",
                       "1.63M", "22.3M", "18.75", "11", _pok),
    "ljn": DatasetSpec("ljn", "LiveJournal-like community graph (medium)",
                       "3.99M", "34.6M", "8.67", "17", _ljn),
    "am": DatasetSpec("am", "Amazon-like purchase network (sparse, moderate D)",
                      "262k", "900k", "3.43", "32", _am),
    "rca": DatasetSpec("rca", "California-road-like network (sparse, huge D)",
                       "1.96M", "2.76M", "1.4", "849", _rca),
    "rmat": DatasetSpec("rmat", "R-MAT / Kronecker power-law synthetic",
                        "33M-268M", "66M-4.28B", "2-16", "19-33", _rmat),
    "er": DatasetSpec("er", "Erdős–Rényi uniform synthetic",
                      "2^20-2^28", "n·d̄", "2-1024", "~log n", _er),
}

_CACHE: dict[tuple, CSRGraph] = {}


def load_dataset(name: str, scale: int = 12, seed: int = 42,
                 weighted: bool = False) -> CSRGraph:
    """Materialize a registry dataset at ``2**scale`` vertices (memoized)."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(DATASETS)}")
    key = (name, scale, seed, weighted)
    if key not in _CACHE:
        _CACHE[key] = DATASETS[name].make(scale, seed, weighted)
    return _CACHE[key]


def dataset_table(scale: int = 12, seed: int = 42,
                  names: tuple[str, ...] = ("orc", "pok", "ljn", "am", "rca")
                  ) -> list[dict]:
    """Rows for the Table-2 reproduction: paper stats vs generated stats."""
    rows = []
    for name in names:
        spec = DATASETS[name]
        g = load_dataset(name, scale=scale, seed=seed)
        s = graph_stats(g)
        rows.append({
            "ID": name,
            "paper n": spec.paper_n, "paper m": spec.paper_m,
            "paper d̄": spec.paper_d_bar, "paper D": spec.paper_diameter,
            "n": s.n, "m": s.m, "d̄": round(s.d_bar, 2), "D": s.diameter,
        })
    return rows
