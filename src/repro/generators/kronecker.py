"""Kronecker / R-MAT power-law graph generator.

The paper's synthetic workloads are "power-law Kronecker graphs"
(citing Leskovec et al.) -- in practice generated with the R-MAT
recursive quadrant sampler, which is also what Graph500 uses.  Each
edge picks a quadrant of the adjacency matrix per bit of the vertex id
with probabilities (a, b, c, d); the default (0.57, 0.19, 0.19, 0.05)
are the Graph500 parameters producing a skewed (power-law-like) degree
distribution and a low effective diameter.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def rmat(scale: int, d_bar: float = 16.0, a: float = 0.57, b: float = 0.19,
         c: float = 0.19, seed: int = 0, weighted: bool = False,
         max_weight: float = 100.0) -> CSRGraph:
    """Sample an undirected R-MAT graph with ``2**scale`` vertices.

    Parameters mirror Graph500: ``scale`` is log2(n) and ``d_bar`` the
    target edges-per-vertex (the paper's d̄, i.e. m/n).
    """
    if not (0 < a and 0 <= b and 0 <= c and a + b + c < 1.0):
        raise ValueError("quadrant probabilities must be positive and sum < 1")
    n = 1 << scale
    m = int(n * d_bar)
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # vectorized over edges, one pass per bit
    for _ in range(scale):
        r = rng.random(m)
        go_right = (r >= a) & (r < a + b)        # src stays, dst gets 1-bit
        go_down = (r >= a + b) & (r < a + b + c)  # src gets 1-bit
        go_diag = r >= a + b + c                  # both
        src = (src << 1) | (go_down | go_diag)
        dst = (dst << 1) | (go_right | go_diag)
    edges = np.stack([src, dst], axis=1)
    # permute ids so degree does not correlate with vertex index (Graph500
    # does the same); keeps 1D block partitions honest.
    perm = rng.permutation(n).astype(np.int64)
    edges = perm[edges]
    weights = rng.uniform(1.0, max_weight, size=m) if weighted else None
    return from_edges(n, edges, weights, directed=False)


def kronecker(scale: int, d_bar: float = 16.0, seed: int = 0,
              weighted: bool = False) -> CSRGraph:
    """Alias for :func:`rmat` with Graph500 default quadrant weights."""
    return rmat(scale, d_bar=d_bar, seed=seed, weighted=weighted)
