"""Road-network-like graphs: low average degree, very large diameter.

The paper's `rca` (roadNet-CA: n=1.96M, m=2.76M, d̄=1.4, D=849) is the
canonical high-diameter/sparse workload on which pull variants pay for
their full-graph rescans.  We model it as a 2D lattice with random edge
deletions and a sprinkle of shortcut "highway" diagonals, which yields
d̄ ~ 1.3-1.9 and diameter Θ(sqrt(n)) -- the same regime.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def grid_graph(rows: int, cols: int, weighted: bool = False,
               seed: int = 0, max_weight: float = 10.0) -> CSRGraph:
    """A full rows x cols 4-neighbor lattice."""
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = np.concatenate([right, down], axis=0)
    weights = None
    if weighted:
        rng = np.random.default_rng(seed)
        weights = rng.uniform(1.0, max_weight, size=len(edges))
    return from_edges(rows * cols, edges, weights, directed=False)


def road_network(rows: int, cols: int, keep: float = 0.70,
                 shortcut_fraction: float = 0.01, seed: int = 0,
                 weighted: bool = True, max_weight: float = 10.0) -> CSRGraph:
    """A sparsified lattice resembling a road network.

    ``keep`` is the survival probability of each lattice edge; deleted
    edges leave dead ends and detours (large D).  A small fraction of
    local diagonal shortcuts keeps the graph mostly connected the way
    highway links do.  Weights model road lengths.
    """
    if not 0 < keep <= 1:
        raise ValueError("keep must be in (0, 1]")
    rng = np.random.default_rng(seed)
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    edges = np.concatenate([right, down], axis=0)
    edges = edges[rng.random(len(edges)) < keep]
    n_short = int(shortcut_fraction * rows * cols)
    if n_short:
        r = rng.integers(0, rows - 1, size=n_short)
        c = rng.integers(0, cols - 1, size=n_short)
        diag = np.stack([idx[r, c], idx[r + 1, c + 1]], axis=1)
        edges = np.concatenate([edges, diag], axis=0)
    weights = rng.uniform(1.0, max_weight, size=len(edges)) if weighted else None
    return from_edges(rows * cols, edges, weights, directed=False)
