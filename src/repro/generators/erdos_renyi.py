"""Erdős–Rényi G(n, m) graphs (Section 6: "Erdős-Rényi graphs with
n in {2^20..2^28} and d-bar in {2^1..2^10}" -- here at reduced scale)."""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def erdos_renyi(n: int, d_bar: float, seed: int = 0, weighted: bool = False,
                max_weight: float = 100.0) -> CSRGraph:
    """Sample an undirected G(n, m) graph with ``m ~= n * d_bar`` edges.

    Edges are sampled uniformly with replacement and deduplicated, so
    the realized m is slightly below the target for dense settings --
    the same convention most generators (and the Graph500 maker) use.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    target_m = int(n * d_bar)
    src = rng.integers(0, n, size=target_m, dtype=np.int64)
    dst = rng.integers(0, n, size=target_m, dtype=np.int64)
    edges = np.stack([src, dst], axis=1)
    weights = rng.uniform(1.0, max_weight, size=target_m) if weighted else None
    return from_edges(n, edges, weights, directed=False)
