"""Synthetic graph generators and the benchmark dataset registry.

The paper benchmarks on power-law Kronecker (R-MAT) and Erdős–Rényi
synthetic graphs plus SNAP real-world graphs of three sparsity classes
(Table 2).  We generate scaled-down stand-ins with matching (d̄, D,
skew) regimes; see DESIGN.md §2 for the substitution rationale.
"""

from repro.generators.erdos_renyi import erdos_renyi
from repro.generators.kronecker import rmat, kronecker
from repro.generators.road import road_network, grid_graph
from repro.generators.realworld import community_graph, purchase_graph
from repro.generators.registry import DATASETS, DatasetSpec, load_dataset, dataset_table
from repro.generators.synthetic_extra import (
    watts_strogatz, barabasi_albert, bipartite_random,
)

__all__ = [
    "erdos_renyi",
    "rmat",
    "kronecker",
    "road_network",
    "grid_graph",
    "community_graph",
    "purchase_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_table",
    "watts_strogatz",
    "barabasi_albert",
    "bipartite_random",
]
