"""Additional synthetic families used by ablations and tests.

Not part of the paper's benchmark suite, but useful probes for the
push/pull machinery:

* :func:`watts_strogatz` -- small-world graphs: high clustering with a
  tunable rewiring rate that sweeps the diameter from Θ(n) (ring) down
  to Θ(log n), sitting between the road and community regimes.
* :func:`barabasi_albert` -- pure preferential attachment (the
  purchase-graph generator adds closure on top of this).
* :func:`bipartite_random` -- random bipartite graphs; with the two
  sides owned by different threads this is exactly the 2m-atomics worst
  case of Section 5's Partition-Awareness bound.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def watts_strogatz(n: int, k: int = 4, rewire: float = 0.1,
                   seed: int = 0, weighted: bool = False,
                   max_weight: float = 10.0) -> CSRGraph:
    """A Watts–Strogatz ring lattice with random rewiring.

    Every vertex starts connected to its ``k`` nearest ring neighbors
    (``k`` must be even); each edge endpoint is rewired to a uniform
    random vertex with probability ``rewire``.
    """
    if k % 2 or k <= 0:
        raise ValueError("k must be positive and even")
    if not 0.0 <= rewire <= 1.0:
        raise ValueError("rewire must be a probability")
    if n <= k:
        raise ValueError("need n > k")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(n, dtype=np.int64), k // 2)
    hops = np.tile(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    dst = (src + hops) % n
    flip = rng.random(len(dst)) < rewire
    dst = dst.copy()
    dst[flip] = rng.integers(0, n, size=int(flip.sum()))
    edges = np.stack([src, dst], axis=1)
    weights = rng.uniform(1.0, max_weight, size=len(edges)) if weighted else None
    return from_edges(n, edges, weights, directed=False)


def barabasi_albert(n: int, attach: int = 2, seed: int = 0,
                    weighted: bool = False,
                    max_weight: float = 10.0) -> CSRGraph:
    """Preferential attachment: each new vertex links to ``attach``
    earlier vertices sampled proportionally to degree (endpoint-pool
    sampling)."""
    if attach < 1 or n <= attach:
        raise ValueError("need n > attach >= 1")
    rng = np.random.default_rng(seed)
    pool = list(range(attach))
    edges = []
    for v in range(attach, n):
        chosen = set()
        while len(chosen) < attach:
            chosen.add(pool[int(rng.integers(0, len(pool)))])
        for u in chosen:
            edges.append((v, u))
            pool.append(u)
            pool.append(v)
    edges = np.asarray(edges, dtype=np.int64)
    weights = rng.uniform(1.0, max_weight, size=len(edges)) if weighted else None
    return from_edges(n, edges, weights, directed=False)


def bipartite_random(n_left: int, n_right: int, d_bar: float = 4.0,
                     seed: int = 0, weighted: bool = False,
                     max_weight: float = 10.0) -> CSRGraph:
    """A random bipartite graph: left side = ids [0, n_left), right side
    = ids [n_left, n_left + n_right); every edge crosses."""
    if n_left < 1 or n_right < 1:
        raise ValueError("both sides must be nonempty")
    rng = np.random.default_rng(seed)
    n = n_left + n_right
    m = int(n * d_bar / 2)
    src = rng.integers(0, n_left, size=m)
    dst = rng.integers(n_left, n, size=m)
    edges = np.stack([src, dst], axis=1)
    weights = rng.uniform(1.0, max_weight, size=m) if weighted else None
    return from_edges(n, edges, weights, directed=False)
