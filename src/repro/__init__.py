"""repro: a reproduction of Besta et al., "To Push or To Pull: On
Reducing Communication and Synchronization in Graph Computations"
(HPDC'17), on a simulated parallel machine.

Quickstart::

    from repro.generators import load_dataset
    from repro.runtime.sm import SMRuntime
    from repro.algorithms import pagerank

    g = load_dataset("orc", scale=12)
    rt = SMRuntime(g, P=16)
    result = pagerank(g, rt, direction="pull", iterations=20)
    print(result.ranks[:5], result.time, result.counters.atomics)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

from repro.graph import CSRGraph, from_edges, Partition1D, PartitionAwareCSR
from repro.machine import PerfCounters, MachineSpec, XC30, XC40, TRIVIUM
from repro.runtime.sm import SMRuntime
from repro.runtime.dm import DMRuntime

__all__ = [
    "__version__",
    "CSRGraph",
    "from_edges",
    "Partition1D",
    "PartitionAwareCSR",
    "PerfCounters",
    "MachineSpec",
    "XC30",
    "XC40",
    "TRIVIUM",
    "SMRuntime",
    "DMRuntime",
]
