"""Machine cost models: event counts -> simulated time.

The paper measures wall-clock on Cray XC30/XC40/XC50 nodes and a
commodity Haswell box ("Trivium").  We replace wall-clock with *model
time units* (mtu): a linear combination of the event counts gathered by
the instrumented memory layer.  The weight vectors are different per
machine, which is exactly what Table 4 of the paper probes (the
dense-graph push/pull winner flips between Trivium and Daint while the
sparse-graph winner is stable).

Weight provenance
-----------------
Relative costs follow Schweizer, Besta & Hoefler, "Evaluating the cost
of atomic operations on modern architectures" (PACT'15), cited by the
paper as [50]:

* a *contended* atomic (many threads targeting the same shared arrays,
  which is exactly what push variants do) costs low hundreds of cycles;
* a lock (acquire + release + fence) costs about 1.5 atomics;
* miss penalties are ordered L1 < L2 < L3 < DRAM with roughly
  4 / 12 / 40 / 200-cycle latencies (modeled as incremental costs).

Distributed-memory weights follow the alpha-beta (latency + bandwidth)
model; ``remote_acc_float`` is priced far above ``remote_acc_int``
because Section 6.3.1 of the paper attributes the 10x MP-over-RMA gap
for PageRank to ``MPI_Accumulate``'s locking protocol on floats, while
the integer fetch-and-op of Triangle Counting takes a hardware fast
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.machine.cache import CacheHierarchySpec, CacheLevelSpec, TLBSpec
from repro.machine.counters import PerfCounters


@dataclass(frozen=True)
class MachineSpec:
    """A named machine: cache geometry plus per-event time weights.

    All weights are in cycles (of an arbitrary but fixed clock), so the
    produced "time" is deterministic model time, not milliseconds.
    """

    name: str
    cores: int
    smt: int = 2                       #: hardware threads per core (HT)
    #: combined throughput of two SMT threads sharing a core, relative to
    #: one thread running alone (~1.4x on the paper's Xeons): with P >
    #: cores, co-scheduled threads partially serialize but hide each
    #: other's memory stalls
    smt_yield: float = 1.4
    hierarchy: CacheHierarchySpec = field(default_factory=CacheHierarchySpec)

    # --- shared-memory weights (cycles per event) --------------------------
    # Atomics/locks are priced at *contended* cost (Schweizer et al. [50]
    # measure far-cache-line CAS/FAA in the low hundreds of cycles): the
    # push variants point many threads at the same shared arrays.
    w_read: float = 1.0
    w_write: float = 1.0
    w_atomic: float = 150.0            #: contended CAS (retry loop)
    w_faa: float = 60.0                #: contended FAA: single op, no retries
    w_lock: float = 220.0              #: lock acquire + release + fence
    #: fraction of w_atomic that a *batched* atomic still costs: a stream of
    #: independent same-array atomics (PA's segregated remote phase) pipelines
    #: in the memory system instead of serializing behind interleaved local
    #: work, roughly halving its effective latency
    atomic_batch_factor: float = 0.5
    w_branch_cond: float = 0.8
    w_branch_uncond: float = 0.3
    w_l1_miss: float = 8.0             #: incremental penalty beyond an L1 hit
    w_l2_miss: float = 28.0
    w_l3_miss: float = 160.0
    w_tlb_miss: float = 30.0
    w_flop: float = 0.5
    w_barrier: float = 2000.0          #: per barrier episode per thread

    # --- distributed-memory weights ------------------------------------------
    # Small one-sided ops pipeline deeply on Aries, so their per-op cost is
    # an *issue rate*, far below the full round-trip latency that a
    # point-to-point message (net_alpha) pays.
    net_alpha: float = 20000.0         #: per point-to-point message latency
    net_beta: float = 4.0              #: per byte
    w_remote_get: float = 600.0        #: pipelined small-get issue cost
    w_remote_put: float = 600.0
    w_remote_acc_int: float = 300.0       #: HW fast-path fetch-and-op (foMPI sub-microsecond)
    w_remote_acc_float: float = 9000.0    #: lock-based accumulate protocol
    w_collective: float = 60000.0      #: per collective step, before bytes
    w_flush: float = 8000.0

    def time(self, c: PerfCounters) -> float:
        """Simulated time (mtu) of one thread/process's event counts."""
        return (
            c.reads * self.w_read
            + c.writes * self.w_write
            + c.cas * self.w_atomic
            + c.faa * self.w_faa
            + (c.atomics - c.cas - c.faa) * self.w_atomic
            - c.atomics_batched * self.w_atomic * (1.0 - self.atomic_batch_factor)
            + c.locks * self.w_lock
            + c.branches_cond * self.w_branch_cond
            + c.branches_uncond * self.w_branch_uncond
            + c.l1_misses * self.w_l1_miss
            + c.l2_misses * self.w_l2_miss
            + c.l3_misses * self.w_l3_miss
            + (c.tlb_d_misses + c.tlb_i_misses) * self.w_tlb_miss
            + c.flops * self.w_flop
            + c.barriers * self.w_barrier
            + c.messages * self.net_alpha
            + c.msg_bytes * self.net_beta
            + c.collectives * self.w_collective
            + c.collective_bytes * self.net_beta
            + c.remote_gets * self.w_remote_get
            + c.remote_puts * self.w_remote_put
            + c.remote_acc_int * self.w_remote_acc_int
            + c.remote_acc_float * self.w_remote_acc_float
            + c.remote_bytes * self.net_beta
            + c.flushes * self.w_flush
        )

    def time_parts(self, c: PerfCounters) -> dict[str, float]:
        """Per-counter decomposition of :meth:`time` (nonzero terms only).

        The same weights as :meth:`time`, itemized: summing the values
        reproduces ``time(c)`` up to float association.  The batched-
        atomic rebate appears as a negative ``atomics_batched`` entry;
        ``atomics`` is the *plain* (non-CAS, non-FAA) share.  This is
        the attribution surface the comparative observability layer
        uses to say *why* one configuration beats another -- which
        counters the time difference actually lives in.
        """
        parts = {
            "reads": c.reads * self.w_read,
            "writes": c.writes * self.w_write,
            "cas": c.cas * self.w_atomic,
            "faa": c.faa * self.w_faa,
            "atomics": (c.atomics - c.cas - c.faa) * self.w_atomic,
            "atomics_batched": -c.atomics_batched * self.w_atomic
            * (1.0 - self.atomic_batch_factor),
            "locks": c.locks * self.w_lock,
            "branches_cond": c.branches_cond * self.w_branch_cond,
            "branches_uncond": c.branches_uncond * self.w_branch_uncond,
            "l1_misses": c.l1_misses * self.w_l1_miss,
            "l2_misses": c.l2_misses * self.w_l2_miss,
            "l3_misses": c.l3_misses * self.w_l3_miss,
            "tlb_d_misses": c.tlb_d_misses * self.w_tlb_miss,
            "tlb_i_misses": c.tlb_i_misses * self.w_tlb_miss,
            "flops": c.flops * self.w_flop,
            "barriers": c.barriers * self.w_barrier,
            "messages": c.messages * self.net_alpha,
            "msg_bytes": c.msg_bytes * self.net_beta,
            "collectives": c.collectives * self.w_collective,
            "collective_bytes": c.collective_bytes * self.net_beta,
            "remote_gets": c.remote_gets * self.w_remote_get,
            "remote_puts": c.remote_puts * self.w_remote_put,
            "remote_acc_int": c.remote_acc_int * self.w_remote_acc_int,
            "remote_acc_float": c.remote_acc_float * self.w_remote_acc_float,
            "remote_bytes": c.remote_bytes * self.net_beta,
            "flushes": c.flushes * self.w_flush,
        }
        return {k: v for k, v in parts.items() if v}

    def with_(self, **kwargs) -> "MachineSpec":
        """A copy with some weights replaced (for ablation sweeps)."""
        return replace(self, **kwargs)

    def scaled(self, factor: int = 64) -> "MachineSpec":
        """A copy whose cache/TLB geometry is divided by ``factor``.

        The repo's stand-in graphs are orders of magnitude smaller than
        the paper's (DESIGN.md section 2); shrinking the simulated
        caches by the same order restores the out-of-cache regime the
        paper's machines were actually in.  All experiments use
        ``scaled(64)`` machines by default.
        """
        h = self.hierarchy

        def shrink(level: CacheLevelSpec) -> CacheLevelSpec:
            size = max(level.line_bytes * level.ways, level.size_bytes // factor)
            return CacheLevelSpec(size, level.ways, level.line_bytes)

        new_h = CacheHierarchySpec(
            l1=shrink(h.l1), l2=shrink(h.l2), l3=shrink(h.l3),
            tlb=TLBSpec(max(8, h.tlb.entries // max(factor // 8, 1)),
                        h.tlb.page_bytes),
        )
        return replace(self, name=f"{self.name}/s{factor}", hierarchy=new_h)

    @property
    def max_threads(self) -> int:
        return self.cores * self.smt


def _hier(l1_kib: int, l2_kib: int, l3_mib_slice: float, tlb_entries: int = 64
          ) -> CacheHierarchySpec:
    return CacheHierarchySpec(
        l1=CacheLevelSpec(l1_kib * 1024, 8),
        l2=CacheLevelSpec(l2_kib * 1024, 8),
        l3=CacheLevelSpec(int(l3_mib_slice * 1024 * 1024), 16),
        tlb=TLBSpec(tlb_entries, 4096),
    )


#: Cray XC30 node: 8-core Sandy Bridge E5-2670 (the paper's default SM box).
XC30 = MachineSpec(
    name="XC30", cores=8, smt=2,
    hierarchy=_hier(32, 256, 2.5),
)

#: Cray XC40 node: 18-core Haswell E5-2695.  More threads raise atomic
#: contention a little; the uncore keeps miss costs close to XC30.
XC40 = MachineSpec(
    name="XC40", cores=18, smt=2,
    hierarchy=_hier(32, 256, 2.5),
    w_atomic=160.0, w_faa=64.0, w_lock=235.0, w_l3_miss=180.0,
)

#: Piz Dora XC40* node: 12-core Haswell E5-2690.
XC40_STAR = MachineSpec(
    name="XC40*", cores=12, smt=2,
    hierarchy=_hier(32, 256, 2.5),
    w_atomic=155.0, w_faa=62.0, w_lock=230.0, w_l3_miss=180.0,
)

#: Cray XC50 node: 12-core Broadwell E5-2690.
XC50 = MachineSpec(
    name="XC50", cores=12, smt=2,
    hierarchy=_hier(32, 256, 2.5),
    w_atomic=150.0, w_faa=60.0, w_lock=225.0, w_l3_miss=170.0,
)

#: "Trivium": commodity 4-core Haswell i7-4770.  Only 8 hardware threads
#: contend, so atomics are much cheaper than on the 36-thread Xeons,
#: while the small shared L3 and client DRAM path make random-read
#: misses costlier -- together these flip PR's dense-graph winner to
#: push, the Table-4 observation the paper highlights.
TRIVIUM = MachineSpec(
    name="Trivium", cores=4, smt=2,
    hierarchy=_hier(32, 256, 2.0, tlb_entries=64),
    w_atomic=60.0, w_faa=24.0, w_lock=95.0,
    w_l1_miss=10.0, w_l2_miss=34.0, w_l3_miss=280.0, w_tlb_miss=50.0,
)

MACHINES: dict[str, MachineSpec] = {
    m.name: m for m in (XC30, XC40, XC40_STAR, XC50, TRIVIUM)
}
