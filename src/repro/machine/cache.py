"""Trace-driven cache and TLB simulation.

The paper explains most push/pull performance differences through
cache behaviour (Section 6.1): pull variants issue *random* reads of
neighbor state while push variants stream through contiguous adjacency
arrays; Partition-Awareness trades atomics for a second pass over the
data.  To reproduce Table 1 we simulate an inclusive three-level
set-associative data-cache hierarchy plus a data TLB, fed with the
actual addresses that the instrumented algorithms touch.

The simulator is deliberately simple (LRU, inclusive, write-allocate,
one array of tags per level) but exact with respect to the configured
geometry.  It accepts *batches* of addresses as NumPy arrays so the
instrumentation layer can report one vectorized access per adjacency
list instead of one Python call per element.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    @property
    def n_sets(self) -> int:
        n = self.size_bytes // (self.ways * self.line_bytes)
        if n <= 0:
            raise ValueError("cache too small for its associativity/line size")
        return n


@dataclass(frozen=True)
class TLBSpec:
    """Geometry of a (fully-associative, LRU-approximated) TLB."""

    entries: int = 64
    page_bytes: int = 4096


@dataclass(frozen=True)
class CacheHierarchySpec:
    """Three data-cache levels plus a data TLB.

    The defaults model a Sandy-Bridge-class core (the paper's XC30):
    32 KiB 8-way L1, 256 KiB 8-way L2 and a shared L3 of which each of
    the node's threads effectively sees a slice.
    """

    l1: CacheLevelSpec = CacheLevelSpec(32 * 1024, 8)
    l2: CacheLevelSpec = CacheLevelSpec(256 * 1024, 8)
    l3: CacheLevelSpec = CacheLevelSpec(2 * 1024 * 1024, 16)
    tlb: TLBSpec = TLBSpec(64, 4096)


class _SetAssocLevel:
    """One set-associative LRU cache level over line addresses."""

    __slots__ = ("n_sets", "ways", "tags", "stamp", "clock", "misses")

    def __init__(self, spec: CacheLevelSpec) -> None:
        self.n_sets = spec.n_sets
        self.ways = spec.ways
        # tags[set][way]; -1 means empty.  stamp holds the LRU clock.
        self.tags = np.full((self.n_sets, self.ways), -1, dtype=np.int64)
        self.stamp = np.zeros((self.n_sets, self.ways), dtype=np.int64)
        self.clock = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Access one line address; return True on hit."""
        s = line % self.n_sets
        tags = self.tags[s]
        self.clock += 1
        for w in range(self.ways):
            if tags[w] == line:
                self.stamp[s, w] = self.clock
                return True
        # miss: evict LRU way
        self.misses += 1
        w = int(np.argmin(self.stamp[s]))
        tags[w] = line
        self.stamp[s, w] = self.clock
        return False


class _TLB:
    """Fully-associative LRU TLB over page numbers, dict-based."""

    __slots__ = ("entries", "_order", "misses")

    def __init__(self, spec: TLBSpec) -> None:
        self.entries = spec.entries
        self._order: dict[int, None] = {}
        self.misses = 0

    def access(self, page: int) -> bool:
        order = self._order
        if page in order:
            # move to MRU position
            del order[page]
            order[page] = None
            return True
        self.misses += 1
        if len(order) >= self.entries:
            # evict LRU (first inserted)
            order.pop(next(iter(order)))
        order[page] = None
        return False


class CacheSim:
    """An inclusive L1/L2/L3 + D-TLB simulator fed with byte addresses.

    Addresses are grouped into cache lines before simulation, so a
    sequential scan over an array costs one simulated access per line,
    matching how a hardware prefetch-friendly stream behaves.
    """

    def __init__(self, spec: CacheHierarchySpec | None = None) -> None:
        self.spec = spec or CacheHierarchySpec()
        self.line_bytes = self.spec.l1.line_bytes
        self.l1 = _SetAssocLevel(self.spec.l1)
        self.l2 = _SetAssocLevel(self.spec.l2)
        self.l3 = _SetAssocLevel(self.spec.l3)
        self.tlb = _TLB(self.spec.tlb)
        self.accesses = 0

    # -- single access ------------------------------------------------------
    def access_line(self, line: int, page: int) -> None:
        self.accesses += 1
        self.tlb.access(page)
        if self.l1.access(line):
            return
        if self.l2.access(line):
            return
        self.l3.access(line)

    # -- batched access ------------------------------------------------------
    def access(self, addrs: np.ndarray | int) -> None:
        """Simulate accesses for a batch of byte addresses (in order).

        Consecutive duplicate lines are collapsed (they would hit in L1
        anyway and collapsing keeps the Python loop short for streaming
        scans).
        """
        if np.isscalar(addrs):
            a = int(addrs)
            self.access_line(a // self.line_bytes, a // self.spec.tlb.page_bytes)
            return
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return
        lines = addrs // self.line_bytes
        # collapse runs of identical lines (streaming accesses)
        keep = np.empty(lines.shape, dtype=bool)
        keep[0] = True
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        lines = lines[keep]
        pages = (addrs[keep]) // self.spec.tlb.page_bytes
        for line, page in zip(lines.tolist(), pages.tolist()):
            self.access_line(line, page)

    # -- results --------------------------------------------------------------
    @property
    def l1_misses(self) -> int:
        return self.l1.misses

    @property
    def l2_misses(self) -> int:
        return self.l2.misses

    @property
    def l3_misses(self) -> int:
        return self.l3.misses

    @property
    def tlb_misses(self) -> int:
        return self.tlb.misses

    def snapshot(self) -> dict:
        return {
            "accesses": self.accesses,
            "l1_misses": self.l1.misses,
            "l2_misses": self.l2.misses,
            "l3_misses": self.l3.misses,
            "tlb_misses": self.tlb.misses,
        }
