"""Instrumented-memory layer.

Every algorithm in :mod:`repro.algorithms` manipulates plain NumPy
arrays for its actual state, and *reports* each access to a
:class:`MemoryModel`.  Two implementations exist:

* :class:`CountingMemory` -- increments event counters and estimates
  cache/TLB misses with a cheap analytic locality model.  Used for
  parameter sweeps and scaling studies where trace simulation would be
  too slow.
* :class:`CacheSimMemory` -- additionally drives the trace-driven
  :class:`repro.machine.cache.CacheSim` with real (synthetic-address-
  space) addresses.  Used to regenerate the Table-1 hardware-counter
  study.

Accesses carry an access-pattern annotation: ``seq`` for streaming
scans of contiguous data (adjacency arrays, owned vertex ranges) and
``rand`` for data-dependent indexed access (neighbor state lookups).
The distinction is what separates push from pull in the paper's cache
data, so the analytic model keys off it.

Counter ownership: the shared-memory runtime gives each simulated
thread its own :class:`~repro.machine.counters.PerfCounters` and points
the memory model at the counters of whichever thread is currently
executing (:meth:`MemoryModel.set_counters`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.cache import CacheHierarchySpec, CacheSim
from repro.machine.counters import PerfCounters

_PAGE = 4096


@dataclass
class ArrayHandle:
    """A registered array living in the synthetic address space."""

    name: str
    base: int           #: synthetic base byte-address (page aligned)
    itemsize: int
    size: int           #: number of items

    @property
    def nbytes(self) -> int:
        return self.itemsize * self.size

    def addr(self, idx) -> np.ndarray:
        """Byte addresses for item indices (scalar or array)."""
        return self.base + np.asarray(idx, dtype=np.int64) * self.itemsize


def _count(idx, count) -> int:
    """Number of items referenced by an (idx, count) access descriptor."""
    if count is not None:
        return int(count)
    if idx is None:
        return 1
    if np.isscalar(idx):
        return 1
    return int(np.asarray(idx).size)


class MemoryModel:
    """Base instrumented memory: registration, counters, branch/flop events.

    Subclasses implement :meth:`_touch` to account for the cache
    behaviour of an access.
    """

    def __init__(self) -> None:
        self._next_base = _PAGE  # leave page 0 unmapped
        self.arrays: dict[str, ArrayHandle] = {}
        self.counters = PerfCounters()

    # -- array registration ---------------------------------------------------
    def register(self, name: str, array_or_size, itemsize: int | None = None) -> ArrayHandle:
        """Register an array (or a (size, itemsize) description).

        Returns a handle whose synthetic base address is page aligned;
        handles are stable for the lifetime of the model, so re-running
        an algorithm on the same model reuses addresses (important for
        warm-cache measurements).
        """
        if name in self.arrays:
            return self.arrays[name]
        if isinstance(array_or_size, np.ndarray):
            size = int(array_or_size.size)
            itemsize = int(array_or_size.itemsize)
        else:
            size = int(array_or_size)
            itemsize = int(itemsize if itemsize is not None else 8)
        handle = ArrayHandle(name, self._next_base, itemsize, max(size, 1))
        nbytes = handle.nbytes
        self._next_base += ((nbytes + _PAGE - 1) // _PAGE + 1) * _PAGE
        self.arrays[name] = handle
        return handle

    def set_counters(self, counters: PerfCounters) -> None:
        """Redirect event accounting (e.g. to the current thread)."""
        self.counters = counters

    # -- runtime hooks (no-ops here) ----------------------------------------------
    # The SM runtime narrates its execution structure to the memory
    # model: which simulated thread is issuing accesses, when a parallel
    # region starts/ends, and when a barrier retires.  The counting
    # models ignore all of it (CacheSimMemory overrides set_thread for
    # its private caches); repro.analysis.RaceDetectingMemory uses the
    # full protocol to delimit conflict epochs.

    def set_thread(self, tid: int) -> None:
        """The simulated thread now issuing accesses."""

    def region_begin(self) -> None:
        """A parallel region (fork) starts; accesses are now concurrent."""

    def region_end(self) -> None:
        """The parallel region's threads joined (but no barrier yet)."""

    def on_barrier(self) -> None:
        """A full barrier retired: concurrent-epoch boundary."""

    # -- data accesses ----------------------------------------------------------
    # Access descriptors: pass ``idx`` (scalar or array of item indices),
    # or ``start``+``count`` for a streaming range, or just ``count`` when
    # the position is immaterial (analytic mode).

    def read(self, handle: ArrayHandle, idx=None, count: int | None = None,
             mode: str = "seq", start: int | None = None) -> None:
        n = _count(idx, count)
        self.counters.reads += n
        if mode == "cached":
            # a re-read of data known to be resident (e.g. binary-search
            # probes into a just-scanned neighbor list): issues the load
            # instruction but never misses
            return
        self._touch(handle, idx, n, mode, start)

    def write(self, handle: ArrayHandle, idx=None, count: int | None = None,
              mode: str = "seq", start: int | None = None) -> None:
        n = _count(idx, count)
        self.counters.writes += n
        self._touch(handle, idx, n, mode, start)

    def faa(self, handle: ArrayHandle, idx=None, count: int | None = None,
            mode: str = "rand", start: int | None = None,
            batched: bool = False, covers: Sequence | None = None) -> None:
        """Fetch-and-add: one atomic instruction per item (plus its R+W).

        ``batched`` marks a segregated same-array atomic stream (PA's
        remote phase), which the cost model discounts.  ``covers`` (see
        :meth:`lock`) declares sibling addresses the atomic protects;
        it costs nothing here and is read by the race detector.
        """
        n = _count(idx, count)
        c = self.counters
        c.atomics += n
        c.faa += n
        if batched:
            c.atomics_batched += n
        c.reads += n
        c.writes += n
        c.branches_uncond += n  # the locked-instruction dispatch, as counted in [50]
        self._touch(handle, idx, n, mode, start)

    def cas(self, handle: ArrayHandle, idx=None, count: int | None = None,
            successes: int | None = None, mode: str = "rand",
            start: int | None = None, batched: bool = False,
            covers: Sequence | None = None) -> None:
        """Compare-and-swap: one atomic per attempt; failures still cost.

        ``covers`` (see :meth:`lock`) declares sibling addresses whose
        plain writes ride on the successful CAS (e.g. a claimed slot's
        payload fields); cost-neutral, consumed by the race detector.
        """
        n = _count(idx, count)
        c = self.counters
        c.atomics += n
        c.cas += n
        if batched:
            c.atomics_batched += n
        c.reads += n
        if successes is None:
            successes = n
        c.writes += int(successes)
        c.branches_uncond += n
        self._touch(handle, idx, n, mode, start)

    def lock(self, handle: ArrayHandle, idx=None, count: int | None = None,
             mode: str = "rand", start: int | None = None,
             covers: Sequence | None = None) -> None:
        """Lock acquisition + release around a critical section.

        ``covers`` declares the critical section's *contents*: an
        iterable of ``(handle, idx)`` pairs naming sibling addresses the
        same lock protects (e.g. Δ-Stepping's (dist, bucket) pair lives
        in two arrays guarded by one lock).  It adds no events -- the
        race detector uses it to tell protected plain writes from
        undeclared remote stores.
        """
        n = _count(idx, count)
        c = self.counters
        c.locks += n
        c.reads += n   # lock word load
        c.writes += n  # lock word store
        c.branches_uncond += n
        self._touch(handle, idx, n, mode, start)

    # -- non-memory events -------------------------------------------------------
    def branch_cond(self, n: int = 1) -> None:
        self.counters.branches_cond += int(n)

    def branch_uncond(self, n: int = 1) -> None:
        self.counters.branches_uncond += int(n)

    def flop(self, n: int = 1) -> None:
        self.counters.flops += int(n)

    # -- cache accounting (subclass hook) ------------------------------------------
    def _touch(self, handle: ArrayHandle, idx, n: int, mode: str,
               start: int | None = None) -> None:
        raise NotImplementedError


class CountingMemory(MemoryModel):
    """Counter-only memory with an analytic cache-miss estimate.

    The locality model: a streaming (``seq``) scan of ``k`` items
    misses once per cache line at every level too small to hold the
    array; a ``rand`` access misses with probability
    ``max(0, 1 - level_size / array_bytes)`` at each level (the chance
    that a uniformly random line of the array is not cached), and
    analogously for the TLB over pages.

    Miss fractions are quantized onto a fixed-point ``2**-20`` grid and
    accumulated as *integers*: integer addition is associative, so the
    totals are independent of how accesses are grouped into calls.
    This is what lets the batched stream engine (:mod:`repro.streams`)
    compute per-segment contributions vectorized and land on counters
    byte-identical to the per-call interpreter.
    """

    #: fixed-point quantum (as a float multiplier) for miss accumulation
    _QUANTUM = float(1 << 20)

    def __init__(self, hierarchy: CacheHierarchySpec | None = None) -> None:
        super().__init__()
        self.hier = hierarchy or CacheHierarchySpec()
        self._line = self.hier.l1.line_bytes
        # integer fixed-point accumulators, flushed into counters lazily
        self._acc: dict[int, list] = {}

    def _acc_for(self, counters: PerfCounters) -> list:
        key = id(counters)
        acc = self._acc.get(key)
        if acc is None:
            acc = [0, 0, 0, 0, counters]  # l1, l2, l3, tlb (in quanta)
            self._acc[key] = acc
        return acc

    def _touch(self, handle: ArrayHandle, idx, n: int, mode: str,
               start: int | None = None) -> None:
        nbytes = handle.nbytes
        # Span refinement: when the random-access indices are known, the
        # effective working set is the index *span*, not the whole array --
        # road-network neighbors cluster near their vertex, so their state
        # stays cache-resident even though the full array would not.
        if mode == "rand" and idx is not None and not np.isscalar(idx):
            arr = np.asarray(idx)
            if arr.size > 1:
                span = int(arr.max() - arr.min() + 1) * handle.itemsize
                nbytes = min(nbytes, max(span, handle.itemsize))
        acc = self._acc_for(self.counters)
        q = self._QUANTUM
        if mode == "seq":
            lines = n * handle.itemsize / self._line
            ql = int(np.rint(lines * q))
            if nbytes > self.hier.l1.size_bytes:
                acc[0] += ql
            if nbytes > self.hier.l2.size_bytes:
                acc[1] += ql
            if nbytes > self.hier.l3.size_bytes:
                acc[2] += ql
            pages = n * handle.itemsize / _PAGE
            if nbytes > self.hier.tlb.entries * self.hier.tlb.page_bytes:
                acc[3] += int(np.rint(pages * q))
        else:
            acc[0] += int(np.rint(
                n * max(0.0, 1.0 - self.hier.l1.size_bytes / nbytes) * q))
            acc[1] += int(np.rint(
                n * max(0.0, 1.0 - self.hier.l2.size_bytes / nbytes) * q))
            acc[2] += int(np.rint(
                n * max(0.0, 1.0 - self.hier.l3.size_bytes / nbytes) * q))
            tlb_reach = self.hier.tlb.entries * self.hier.tlb.page_bytes
            acc[3] += int(np.rint(
                n * max(0.0, 1.0 - tlb_reach / nbytes) * q))  # span-refined
        self._flush(acc)

    def touch_batch(self, handle: ArrayHandle, *, mode: str, counts,
                    idx=None, seg=None) -> None:
        """Vectorized analytic accounting for one batched stream op.

        Accounts exactly what per-segment :meth:`_touch` calls would:
        segment ``k`` contributes with ``n = counts[k]`` and, in ``rand``
        mode, with its own index span (segments of size <= 1 use the
        whole array, like scalar-idx calls).  Contributions are
        quantized per segment before summation, so the totals equal the
        per-call path bit for bit.
        """
        if mode == "cached":
            return
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size == 0:
            return
        acc = self._acc_for(self.counters)
        q = self._QUANTUM
        if mode == "seq":
            nbytes = handle.nbytes
            lines = (counts * handle.itemsize) / self._line
            ql = int(np.rint(lines * q).astype(np.int64).sum())
            if nbytes > self.hier.l1.size_bytes:
                acc[0] += ql
            if nbytes > self.hier.l2.size_bytes:
                acc[1] += ql
            if nbytes > self.hier.l3.size_bytes:
                acc[2] += ql
            pages = (counts * handle.itemsize) / _PAGE
            if nbytes > self.hier.tlb.entries * self.hier.tlb.page_bytes:
                acc[3] += int(np.rint(pages * q).astype(np.int64).sum())
        else:
            nb = np.full(counts.size, handle.nbytes, dtype=np.int64)
            if idx is not None:
                arr = np.asarray(idx, dtype=np.int64)
                if arr.size:
                    if seg is None:
                        seg = np.array([0, arr.size], dtype=np.int64)
                    seg = np.asarray(seg, dtype=np.int64)
                    sizes = np.diff(seg)
                    nz = sizes > 0
                    if nz.any():
                        starts_nz = seg[:-1][nz]
                        span = ((np.maximum.reduceat(arr, starts_nz)
                                 - np.minimum.reduceat(arr, starts_nz) + 1)
                                * handle.itemsize)
                        eff = np.minimum(handle.nbytes,
                                         np.maximum(span, handle.itemsize))
                        multi = sizes[nz] > 1
                        nb[np.flatnonzero(nz)[multi]] = eff[multi]
            nbf = nb.astype(np.float64)
            tlb_reach = self.hier.tlb.entries * self.hier.tlb.page_bytes
            for slot, cap in ((0, self.hier.l1.size_bytes),
                              (1, self.hier.l2.size_bytes),
                              (2, self.hier.l3.size_bytes),
                              (3, tlb_reach)):
                frac = np.maximum(0.0, 1.0 - cap / nbf)
                acc[slot] += int(np.rint((counts * frac) * q)
                                 .astype(np.int64).sum())
        self._flush(acc)

    @staticmethod
    def _flush(acc: list) -> None:
        counters: PerfCounters = acc[4]
        grid = int(CountingMemory._QUANTUM)
        for slot, attr in ((0, "l1_misses"), (1, "l2_misses"), (2, "l3_misses"),
                           (3, "tlb_d_misses")):
            whole = acc[slot] // grid
            if whole:
                setattr(counters, attr, getattr(counters, attr) + int(whole))
                acc[slot] -= whole * grid


class CacheSimMemory(MemoryModel):
    """Memory model backed by the trace-driven cache simulator.

    Every thread gets its own private L1/L2 and TLB; L3 is shared
    across threads by default (as on the paper's Xeons).  Pass
    ``shared_l3=False`` when the "threads" model distributed-memory
    *processes* on separate nodes, each with its own socket-private L3.
    The runtime must call :meth:`set_thread` alongside
    :meth:`set_counters` so misses are simulated in the right private
    caches and *attributed* to the right thread's counters.
    """

    def __init__(self, hierarchy: CacheHierarchySpec | None = None,
                 n_threads: int = 1, shared_l3: bool = True) -> None:
        super().__init__()
        self.hier = hierarchy or CacheHierarchySpec()
        self.n_threads = n_threads
        self.shared_l3 = shared_l3
        self._sims = [CacheSim(self.hier) for _ in range(n_threads)]
        if shared_l3:
            # all per-thread sims share one L3 level object
            l3 = self._sims[0].l3
            for sim in self._sims[1:]:
                sim.l3 = l3
        self._thread = 0
        self._before = [s.snapshot() for s in self._sims]
        self._l3_before = 0

    def set_thread(self, tid: int) -> None:
        self._thread = tid

    def access_batch(self, addrs: np.ndarray) -> None:
        """Feed one merged, ordered byte-address batch to the current
        thread's simulator, attributing miss deltas to the current
        counters.

        The simulator only collapses *consecutive duplicate lines*, so
        concatenating the per-call address sequences of an access
        pattern and replaying them in one call yields the same miss
        counts as the per-call path (the boundary collapse can only
        drop an access that would have re-touched an already-MRU line).
        """
        if len(addrs) == 0:
            return
        sim = self._sims[self._thread]
        c = self.counters
        b1, b2, b3, bt = sim.l1.misses, sim.l2.misses, sim.l3.misses, sim.tlb.misses
        sim.access(addrs)
        c.l1_misses += sim.l1.misses - b1
        c.l2_misses += sim.l2.misses - b2
        c.l3_misses += sim.l3.misses - b3
        c.tlb_d_misses += sim.tlb.misses - bt

    def _touch(self, handle: ArrayHandle, idx, n: int, mode: str,
               start: int | None = None) -> None:
        sim = self._sims[self._thread]
        c = self.counters
        before_l1, before_l2, before_tlb = sim.l1.misses, sim.l2.misses, sim.tlb.misses
        before_l3 = sim.l3.misses
        if idx is None:
            # A streaming range: (start, count) when the caller knows the
            # position, else synthesized from the array base (the line/page
            # counts of a sequential sweep do not depend on the position).
            first = 0 if start is None else int(start)
            sim.access(handle.base
                       + (first + np.arange(n, dtype=np.int64)) * handle.itemsize)
        elif np.isscalar(idx):
            sim.access(handle.base + int(idx) * handle.itemsize)
        else:
            sim.access(handle.addr(idx))
        c.l1_misses += sim.l1.misses - before_l1
        c.l2_misses += sim.l2.misses - before_l2
        c.l3_misses += sim.l3.misses - before_l3
        c.tlb_d_misses += sim.tlb.misses - before_tlb
