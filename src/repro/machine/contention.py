"""Contention analysis for push-mode write sharing.

The cost models price atomics at *contended* rates (DESIGN.md,
`cost_model.py`).  This module justifies that choice quantitatively:
for a given graph and 1D partition it computes each vertex's **writer
count** -- how many distinct threads push updates into it (the number
of owner blocks among its neighbors).  In push PageRank/TC/BFS this is
exactly the set of threads whose atomics can collide on the vertex's
cache line.

On community graphs with random block partitions, hubs approach writer
count P (fully contended); on row-ordered road networks most vertices
have writer count 1 (their atomics are effectively private).  The
``contention_profile`` summary feeds the ablation experiment and the
per-machine ``w_atomic`` discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D


@dataclass(frozen=True)
class ContentionProfile:
    """Summary of push-write sharing under a partition."""

    P: int
    writer_counts: np.ndarray      #: per-vertex distinct pushing threads
    mean_writers: float
    max_writers: int
    #: fraction of *pushed updates* that target a vertex some other
    #: thread also pushes to in the same iteration (collision exposure)
    contended_update_fraction: float
    #: fraction of vertices written by a single thread only
    private_fraction: float

    def as_row(self) -> dict:
        return {
            "P": self.P,
            "mean writers": round(self.mean_writers, 2),
            "max writers": self.max_writers,
            "contended updates": f"{self.contended_update_fraction:.0%}",
            "private vertices": f"{self.private_fraction:.0%}",
        }


def writer_counts(g: CSRGraph, part: Partition1D) -> np.ndarray:
    """Distinct owner threads among each vertex's neighbors.

    A vertex with writer count k receives push updates from k different
    threads; k >= 2 means its accumulator line is genuinely shared.
    """
    owners = np.asarray(part.owner(np.arange(g.n, dtype=np.int64)))
    counts = np.zeros(g.n, dtype=np.int64)
    for v in range(g.n):
        nbrs = g.neighbors(v)
        if len(nbrs):
            counts[v] = len(np.unique(owners[nbrs]))
    return counts


def contention_profile(g: CSRGraph, part: Partition1D) -> ContentionProfile:
    """Aggregate writer-count statistics for ``g`` under ``part``."""
    counts = writer_counts(g, part)
    touched = counts > 0
    deg = np.diff(g.offsets)
    shared = counts >= 2
    pushed_updates = int(deg[touched].sum())
    contended_updates = int(deg[shared].sum())
    return ContentionProfile(
        P=part.P,
        writer_counts=counts,
        mean_writers=float(counts[touched].mean()) if touched.any() else 0.0,
        max_writers=int(counts.max(initial=0)),
        contended_update_fraction=(contended_updates / pushed_updates
                                   if pushed_updates else 0.0),
        private_fraction=(float((counts[touched] == 1).mean())
                          if touched.any() else 1.0),
    )


def effective_atomic_cost(profile: ContentionProfile, w_uncontended: float,
                          w_contended: float) -> float:
    """Expected per-atomic cost under the measured collision exposure.

    A two-point mixture: updates whose target line is shared pay the
    contended rate, private ones the uncontended rate.  Used by the
    ablation to show where the flat ``w_atomic`` sits relative to the
    graph-dependent truth.
    """
    f = profile.contended_update_fraction
    return f * w_contended + (1.0 - f) * w_uncontended
