"""Performance-event counters.

The paper instruments its implementations with PAPI hardware counters
plus manual atomic/lock counts (Section 6, "Counted Events").  This
module defines the same taxonomy as a plain dataclass.  Counters are
kept *per simulated thread or process*; the shared-memory and
distributed-memory runtimes aggregate them per parallel region to
compute simulated time (max over threads) and per run to produce
Table-1-style event tables (sum over threads).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Event counts gathered during an instrumented execution.

    The first block mirrors the events of Table 1 of the paper; the
    second block covers the distributed-memory events of Section 6.3;
    the third counts synchronization constructs that contribute to the
    simulated time but are not in the paper's tables.
    """

    # --- shared-memory events (Table 1) ----------------------------------
    reads: int = 0              #: memory loads issued
    writes: int = 0             #: memory stores issued
    atomics: int = 0            #: atomic instructions (FAA + CAS)
    locks: int = 0              #: lock acquisitions
    branches_cond: int = 0      #: conditional branches
    branches_uncond: int = 0    #: unconditional branches
    l1_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    tlb_d_misses: int = 0       #: data TLB misses
    tlb_i_misses: int = 0       #: instruction TLB misses
    faa: int = 0                #: fetch-and-add subset of ``atomics``
    cas: int = 0                #: compare-and-swap subset of ``atomics``
    atomics_batched: int = 0    #: subset of ``atomics`` issued as a segregated
                                #: stream (Partition-Awareness phase 2), which
                                #: pipelines and earns a cost discount

    # --- distributed-memory events (Section 6.3) -------------------------
    messages: int = 0           #: point-to-point messages sent
    msg_bytes: int = 0          #: bytes carried by those messages
    collectives: int = 0        #: collective operations (other than barriers)
    collective_bytes: int = 0   #: bytes this process contributes to collectives
    remote_gets: int = 0        #: RMA get operations
    remote_puts: int = 0        #: RMA put operations
    remote_acc_float: int = 0   #: RMA accumulate on floating-point operands
    remote_acc_int: int = 0     #: RMA fetch-and-op / accumulate on integers
    remote_bytes: int = 0       #: bytes moved by RMA operations
    flushes: int = 0            #: RMA flush / synchronization calls

    # --- synchronization constructs ---------------------------------------
    barriers: int = 0           #: barrier episodes this thread participated in

    # --- local compute -----------------------------------------------------
    flops: int = 0              #: floating point operations (for PR-style math)

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def __iadd__(self, other: "PerfCounters") -> "PerfCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{f.name: getattr(self, f.name) - getattr(other, f.name) for f in fields(self)}
        )

    def copy(self) -> "PerfCounters":
        return PerfCounters(**self.to_dict())

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    @staticmethod
    def total(parts: list["PerfCounters"]) -> "PerfCounters":
        """Element-wise sum over a list of counter sets."""
        acc = PerfCounters()
        for p in parts:
            acc += p
        return acc

    def scaled(self, factor: float) -> "PerfCounters":
        """Return a copy with every event count multiplied by ``factor``.

        Used by experiments that run a sampled subset of the work (e.g.
        BC with sampled sources) and extrapolate the event counts.
        """
        return PerfCounters(
            **{f.name: int(round(getattr(self, f.name) * factor)) for f in fields(self)}
        )

    # Human-readable rendering in the style of Table 1 ("234M", "3,169T").
    def formatted(self) -> dict:
        return {k: format_count(v) for k, v in self.to_dict().items()}


_SUFFIXES = [(10**12, "T"), (10**9, "B"), (10**6, "M"), (10**3, "k")]


def format_count(value: float) -> str:
    """Format an event count the way the paper's Table 1 does.

    >>> format_count(234_000_000)
    '234M'
    >>> format_count(3_169_000_000_000)
    '3.17T'
    """
    value = float(value)
    negative = value < 0
    v = abs(value)
    for scale, suffix in _SUFFIXES:
        if v >= scale:
            scaled = v / scale
            if scaled >= 100:
                text = f"{scaled:.0f}{suffix}"
            else:
                text = f"{scaled:.3g}{suffix}"
            return "-" + text if negative else text
    if v == int(v):
        text = str(int(v))
    else:
        text = f"{v:.3g}"
    return "-" + text if negative else text
