"""Machine-simulation substrate.

This package replaces the paper's physical machines and PAPI hardware
counters with a deterministic software model:

* :mod:`repro.machine.counters` -- the event taxonomy of Table 1 of the
  paper (reads, writes, atomics, locks, branches, cache/TLB misses, and
  the distributed-memory traffic events of Section 6.3).
* :mod:`repro.machine.cache` -- a trace-driven set-associative cache and
  TLB simulator (L1/L2/L3 + data TLB) fed with the actual addresses the
  instrumented algorithms touch.
* :mod:`repro.machine.memory` -- the instrumented-memory layer through
  which every algorithm reports its accesses; it exists in a cheap
  counting flavour and a cache-simulating flavour.
* :mod:`repro.machine.cost_model` -- per-machine cost weights
  (``XC30``, ``XC40``, ``TRIVIUM``...) converting event counts into
  simulated time (model time units).
"""

from repro.machine.counters import PerfCounters
from repro.machine.cache import CacheSim, CacheLevelSpec, TLBSpec, CacheHierarchySpec
from repro.machine.memory import (
    ArrayHandle,
    MemoryModel,
    CountingMemory,
    CacheSimMemory,
)
from repro.machine.cost_model import MachineSpec, XC30, XC40, XC40_STAR, XC50, TRIVIUM, MACHINES

__all__ = [
    "PerfCounters",
    "CacheSim",
    "CacheLevelSpec",
    "TLBSpec",
    "CacheHierarchySpec",
    "ArrayHandle",
    "MemoryModel",
    "CountingMemory",
    "CacheSimMemory",
    "MachineSpec",
    "XC30",
    "XC40",
    "XC40_STAR",
    "XC50",
    "TRIVIUM",
    "MACHINES",
]
