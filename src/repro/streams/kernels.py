"""Stream-emitting (batched) SM kernels over the semiring substrate.

Each kernel here is the batched twin of an interpreted kernel in
:mod:`repro.algorithms`: identical phase structure, identical event
taxonomy, identical results -- but each phase evaluates whole vertex
blocks as CSR/CSC semiring products (:mod:`repro.la`) and reports its
memory traffic as :class:`~repro.streams.ops.StreamOp` batches through
:class:`~repro.streams.memory.StreamMemory` instead of one
``MemoryModel`` call per vertex.  Section 7.1's observation is what
makes this a *substrate* rather than a reformulation: iterating a CSR
row block *is* pulling and iterating a CSC column block *is* pushing,
so the pull kernels below are blocked CSR SpMV/SpMSpV evaluations and
the push kernels blocked CSC ones, with the claim/combining scatter
(`first_claim`, ``sr.add_at``) standing in for the atomics.

The differential suite (tests/test_streams_differential.py) certifies
byte-identical counter totals, per-phase trace deltas, and final
states against the interpreted kernels; keep both sides in lockstep
when editing either.

The DM kernels already emit their communication as per-superstep verb
batches (``alltoallv``, staged RMA), so the batched engine treats DM
cells as an (exact) passthrough -- see docs/streams.md.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import BFSResult, BFSState
from repro.algorithms.common import (
    PULL, PUSH, GraphArrays, block_bounds, check_direction,
    gather_edge_positions,
)
from repro.algorithms.connected_components import CCResult
from repro.algorithms.pagerank import PageRankResult
from repro.algorithms.sssp_delta import _NO_BUCKET, SSSPResult
from repro.graph.csr import CSRGraph
from repro.la.matrix import pull_matrix, push_matrix
from repro.la.semiring import MIN_PLUS, PLUS_TIMES
from repro.la.spmv import first_claim, masked_first_hit, segment_reduce
from repro.runtime.frontier import ThreadLocalFrontiers
from repro.runtime.sm import SMRuntime
from repro.streams.memory import StreamMemory
from repro.streams.ops import concat_ranges, rand_op, seq_op


# -- PageRank ------------------------------------------------------------------

def pagerank_batched(g: CSRGraph, rt: SMRuntime, direction: str = PULL,
                     iterations: int = 20, damping: float = 0.85,
                     tol: float | None = None) -> PageRankResult:
    """Batched PageRank: pull = blocked CSR SpMV over PLUS_TIMES, push =
    blocked CSC SpMV with ``add.at`` combining (the CAS stream)."""
    check_direction(direction, (PUSH, PULL))
    mem = rt.mem
    st = StreamMemory(mem)
    ga = GraphArrays(mem, g)
    gin = g.transposed()
    gin_arrays = GraphArrays(mem, gin, prefix="gin") if g.directed else ga
    A_pull = pull_matrix(g, gin)
    A_push = push_matrix(g)
    sr = PLUS_TIMES
    n = g.n
    deg = np.diff(g.offsets).astype(np.float64)
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    rank = np.full(n, 1.0 / max(n, 1))
    acc = np.zeros(n)
    base = (1.0 - damping) / max(n, 1)

    # registration order mirrors the interpreted kernel so both engines
    # assign identical synthetic addresses (cache-sim equivalence)
    rank_h = mem.register("pr.rank", rank)
    acc_h = mem.register("pr.acc", acc)
    deg_h = mem.register("pr.deg", deg)
    for t in range(rt.P):
        mem.register(f"pr.acc.block{t}", max(rt.part.size(t), 1), 8)

    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []
    converged = False
    it = 0

    def pull_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        lo, hi = block_bounds(rt, vs, gin)
        _, nbrs, _vals = A_pull.block(int(vs[0]), int(vs[-1]) + 1)
        st.replay([
            seq_op("read", gin_arrays.off, counts=[len(vs) + 1],
                   starts=[int(vs[0])]),
            seq_op("read", gin_arrays.adj, counts=[hi - lo], starts=[lo]),
            rand_op("read", rank_h, idx=nbrs),
            rand_op("read", deg_h, idx=nbrs),
        ])
        vals = sr.mul(rank[nbrs], inv_deg[nbrs])
        sums = segment_reduce(sr, vals, gin.offsets[vs] - lo,
                              gin.offsets[vs + 1] - lo)
        rt.owned_write_check(vs)
        acc[vs] = sums
        st.replay([seq_op("write", acc_h, counts=[len(vs)],
                          starts=[int(vs[0])])])
        mem.flop(2 * (hi - lo))
        mem.branch_cond((hi - lo) + len(vs))

    def zero_body(t: int, vs: np.ndarray) -> None:
        acc[vs] = 0.0
        mem.write(acc_h, start=vs[0] if len(vs) else 0, count=len(vs))

    def push_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        lo, hi = block_bounds(rt, vs, g)
        _, nbrs, _vals = A_push.block(int(vs[0]), int(vs[-1]) + 1)
        st.replay([
            seq_op("read", ga.off, counts=[len(vs) + 1], starts=[int(vs[0])]),
            seq_op("read", ga.adj, counts=[hi - lo], starts=[lo]),
            seq_op("read", rank_h, counts=[len(vs)], starts=[int(vs[0])]),
            seq_op("read", deg_h, counts=[len(vs)], starts=[int(vs[0])]),
        ])
        contrib = sr.mul(rank[vs], inv_deg[vs]).repeat(
            np.diff(g.offsets[np.r_[vs, vs[-1] + 1]]))
        sr.add_at(acc, nbrs, contrib)
        # float accumulate == CAS loop per update (no float atomics on CPUs)
        st.replay([rand_op("cas", acc_h, idx=nbrs)])
        mem.flop((hi - lo) + len(vs))
        mem.branch_cond((hi - lo) + len(vs))

    deltas = np.zeros(rt.P)

    def finalize_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            deltas[t] = 0.0
            return
        mem.read(acc_h, start=vs[0], count=len(vs))
        new = base + damping * acc[vs]
        if tol is not None:
            deltas[t] = float(np.abs(new - rank[vs]).sum())
            mem.read(rank_h, start=vs[0], count=len(vs))
            mem.flop(2 * len(vs))
        rank[vs] = new
        mem.write(rank_h, start=vs[0], count=len(vs))
        mem.flop(2 * len(vs))

    for it in range(1, iterations + 1):
        t0 = rt.time
        if direction == PULL:
            rt.annotate("pr.pull")
            rt.for_each_thread(pull_body)
        else:
            rt.annotate("pr.zero")
            rt.for_each_thread(zero_body)
            rt.annotate("pr.push")
            rt.for_each_thread(push_body)
        rt.annotate("pr.finalize")
        rt.for_each_thread(finalize_body)
        iteration_times.append(rt.time - t0)
        if tol is not None and deltas.sum() < tol:
            converged = True
            break

    return PageRankResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=it,
        iteration_times=iteration_times,
        ranks=rank,
        converged=converged,
    )


# -- BFS -----------------------------------------------------------------------

class BatchedBFSState(BFSState):
    """BFSState whose level explorations emit op streams.

    Push levels are blocked CSC SpMSpV evaluations over the boolean
    semiring (with :func:`first_claim` as the write-once combining
    rule); pull levels are blocked CSR products with
    :func:`masked_first_hit` modelling the early-exit scan.
    """

    def __init__(self, g: CSRGraph, rt: SMRuntime, root: int) -> None:
        super().__init__(g, rt, root)
        self.streams = StreamMemory(rt.mem)

    def _step_push(self) -> np.ndarray:
        g, rt, mem = self.g, self.rt, self.mem
        st = self.streams
        my_f = ThreadLocalFrontiers(rt.P)
        parent, level = self.parent, self.level
        nxt_level = self.cur_level + 1

        def body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                return
            deg = (g.offsets[vs + 1] - g.offsets[vs]).astype(np.int64)
            pos = gather_edge_positions(g.offsets, vs)
            nbrs = g.adj[pos]
            seg = np.r_[0, np.cumsum(deg)]
            # the first edge-order occurrence of each unvisited target is
            # the CAS that wins when the block's vertices run in turn
            fresh_pos = first_claim(nbrs, parent[nbrs] < 0)
            fresh_w = nbrs[fresh_pos].astype(np.int64)
            fresh_src = np.repeat(vs, deg)[fresh_pos]
            owner = np.searchsorted(seg, fresh_pos, side="right") - 1
            per_v = np.bincount(owner, minlength=len(vs)).astype(np.int64)
            seg_f = np.r_[0, np.cumsum(per_v)]
            st.replay([
                rand_op("read", self.ga.off, idx=vs,
                        seg=np.arange(len(vs) + 1, dtype=np.int64),
                        counts=np.full(len(vs), 2, dtype=np.int64)),
                seq_op("read", self.ga.adj, counts=deg,
                       starts=g.offsets[vs].astype(np.int64)),
                rand_op("read", self.parent_h, idx=nbrs, seg=seg),
                rand_op("cas", self.parent_h, idx=fresh_w, seg=seg_f,
                        batched=True, covers=[(self.level_h, fresh_w)]),
                rand_op("write", self.level_h, idx=fresh_w, seg=seg_f),
            ], interleave=True)
            mem.branch_cond(int(deg.sum()))
            parent[fresh_w] = fresh_src
            level[fresh_w] = nxt_level
            my_f.extend(t, fresh_w)

        rt.parallel_for(self.frontier, body, by_owner=True, barrier=False)
        nxt = np.empty(0, dtype=np.int64)

        def kfilter() -> None:
            nonlocal nxt
            nxt = my_f.merge(mem, handle=self.front_h)
            if len(nxt):
                mem.write(self.front_h, idx=nxt, mode="rand")

        rt.annotate("bfs.kfilter")
        rt.sequential(kfilter, barrier=False)
        rt.barrier()
        return nxt

    def _step_pull(self) -> np.ndarray:
        g, rt, mem = self.gin, self.rt, self.mem
        st = self.streams
        my_f = ThreadLocalFrontiers(rt.P)
        parent, level, in_front = self.parent, self.level, self.in_front
        nxt_level = self.cur_level + 1

        def body(t: int, vs: np.ndarray) -> None:
            unvisited = vs[parent[vs] < 0]
            mem.read(self.parent_h, start=int(vs[0]) if len(vs) else 0,
                     count=len(vs))
            mem.branch_cond(len(vs))
            if len(unvisited) == 0:
                return
            deg = (g.offsets[unvisited + 1]
                   - g.offsets[unvisited]).astype(np.int64)
            pos = gather_edge_positions(g.offsets, unvisited)
            nbrs = g.adj[pos]
            seg = np.r_[0, np.cumsum(deg)]
            hit_rel = masked_first_hit(in_front[nbrs], seg)
            # early exit: only the prefix up to the first hit is scanned
            scanned = np.where(hit_rel >= 0, hit_rel + 1, deg)
            pre = concat_ranges(seg[:-1], scanned)
            hits = hit_rel >= 0
            hit_vs = unvisited[hits]
            hit_w = nbrs[seg[:-1][hits] + hit_rel[hits]].astype(np.int64)
            seg_h = np.r_[0, np.cumsum(hits.astype(np.int64))]
            st.replay([
                rand_op("read", self.ga_in.off, idx=unvisited,
                        seg=np.arange(len(unvisited) + 1, dtype=np.int64),
                        counts=np.full(len(unvisited), 2, dtype=np.int64)),
                seq_op("read", self.ga_in.adj, counts=scanned,
                       starts=g.offsets[unvisited].astype(np.int64)),
                rand_op("read", self.front_h, idx=nbrs[pre],
                        seg=np.r_[0, np.cumsum(scanned)]),
                rand_op("write", self.parent_h, idx=hit_vs, seg=seg_h),
                rand_op("write", self.level_h, idx=hit_vs, seg=seg_h),
            ], interleave=True)
            mem.branch_cond(int(scanned.sum()))
            rt.owned_write_check(hit_vs)
            parent[hit_vs] = hit_w
            level[hit_vs] = nxt_level
            my_f.extend(t, hit_vs)

        rt.for_each_thread(body)
        return my_f.merge(dedup=False)


def bfs_batched(g: CSRGraph, rt: SMRuntime, root: int,
                direction: str = PUSH) -> BFSResult:
    """Single-direction batched BFS from ``root``."""
    check_direction(direction)
    state = BatchedBFSState(g, rt, root)
    while state.frontier_nonempty():
        state.step(direction)
    return state.result(direction)


# -- Δ-Stepping SSSP -----------------------------------------------------------

def sssp_delta_batched(g: CSRGraph, rt: SMRuntime, source: int,
                       delta: float | None = None, direction: str = PUSH,
                       max_epochs: int | None = None) -> SSSPResult:
    """Batched Δ-Stepping over the tropical (MIN_PLUS) semiring."""
    check_direction(direction)
    if not (0 <= source < g.n):
        raise ValueError("source out of range")
    mem = rt.mem
    st = StreamMemory(mem)
    ga = GraphArrays(mem, g)
    n = g.n
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    if delta is None:
        delta = float(weights.mean()) if len(weights) else 1.0
    if delta <= 0:
        raise ValueError("delta must be positive")

    dist = np.full(n, np.inf)
    bidx = np.full(n, _NO_BUCKET, dtype=np.int64)
    dist[source] = 0.0
    bidx[source] = 0

    dist_h = mem.register("sssp.dist", dist)
    bidx_h = mem.register("sssp.bidx", bidx)
    wgt_h = ga.wgt or mem.register("sssp.unit_weights", weights)

    start_time = rt.time
    start_counters = rt.total_counters()
    epoch_times: list[float] = []
    inner_total = 0

    src_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.offsets))

    def _edges_of(vs: np.ndarray):
        pos = gather_edge_positions(g.offsets, vs)
        return src_of[pos], g.adj[pos], weights[pos]

    b = 0
    epochs = 0
    limit = max_epochs if max_epochs is not None else 4 * n + 16
    while epochs < limit:
        pending = bidx[bidx < _NO_BUCKET]
        pending = pending[pending >= b]
        if len(pending) == 0:
            break
        b = int(pending.min())
        epochs += 1
        t0 = rt.time
        if direction == PUSH:
            inner_total += _epoch_push_batched(
                g, rt, mem, st, ga, wgt_h, dist, bidx, dist_h, bidx_h, b,
                delta, _edges_of)
        else:
            inner_total += _epoch_pull_batched(
                g, rt, mem, st, ga, wgt_h, dist, bidx, dist_h, bidx_h, b,
                delta)
        epoch_times.append(rt.time - t0)
        b += 1

    return SSSPResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=inner_total,
        dist=dist,
        epochs=epochs,
        epoch_times=epoch_times,
        inner_iterations=inner_total,
    )


def _epoch_push_batched(g, rt, mem, st, ga, wgt_h, dist, bidx, dist_h,
                        bidx_h, b, delta, edges_of) -> int:
    sr = MIN_PLUS
    active = np.flatnonzero(bidx == b)
    itr = 0
    while len(active):
        itr += 1
        next_active: list[np.ndarray] = []

        def body(t: int, vs: np.ndarray) -> None:
            src, nbrs, w = edges_of(vs)
            ops = []
            if len(vs):
                ops.append(rand_op("read", ga.off, idx=vs,
                                   counts=[len(vs) + 1]))
                ops.append(rand_op("read", dist_h, idx=vs))
            if len(nbrs) == 0:
                st.replay(ops)
                return
            ops.append(seq_op("read", ga.adj, counts=[len(nbrs)]))
            ops.append(seq_op("read", wgt_h, counts=[len(nbrs)]))
            st.replay(ops)
            cand = sr.mul(dist[src], w)     # tropical multiply = +
            mem.flop(len(nbrs))
            st.replay([rand_op("read", dist_h, idx=nbrs)])
            mem.branch_cond(len(nbrs))
            improving = cand < dist[nbrs]
            tgt, val = nbrs[improving], cand[improving]
            if len(tgt) == 0:
                return
            st.replay([
                rand_op("lock", dist_h, idx=tgt, covers=[(bidx_h, tgt)]),
                rand_op("write", dist_h, idx=tgt),
                rand_op("write", bidx_h, idx=tgt),
            ])
            sr.add_at(dist, tgt, val)       # CRCW-CB combining write
            changed = np.unique(tgt)
            new_b = np.floor(dist[changed] / delta).astype(np.int64)
            bidx[changed] = new_b
            back = changed[new_b == b]
            if len(back):
                next_active.append(back)

        rt.parallel_for(active, body, by_owner=True)
        active = (np.unique(np.concatenate(next_active))
                  if next_active else np.empty(0, dtype=np.int64))
    return itr


def _epoch_pull_batched(g, rt, mem, st, ga, wgt_h, dist, bidx, dist_h,
                        bidx_h, b, delta) -> int:
    sr = MIN_PLUS
    prev_active = np.zeros(g.n, dtype=bool)
    prev_active[bidx == b] = True
    active_h = mem.register("sssp.active", g.n, 1)
    itr = 0
    threshold = b * delta
    while True:
        itr += 1
        newly_active: list[np.ndarray] = []
        first = itr == 1

        def body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                return
            mem.read(dist_h, start=int(vs[0]), count=len(vs))
            mem.branch_cond(len(vs))
            unsettled = vs[dist[vs] > threshold]
            if len(unsettled) == 0:
                return
            pos = gather_edge_positions(g.offsets, unsettled)
            if len(pos) == 0:
                return
            nbrs = g.adj[pos]
            w = (g.weights if g.weights is not None
                 else np.ones(len(g.adj)))[pos]
            owners = np.repeat(unsettled,
                               g.offsets[unsettled + 1] - g.offsets[unsettled])
            st.replay([
                rand_op("read", ga.off, idx=unsettled,
                        counts=[len(unsettled) + 1]),
                seq_op("read", ga.adj, counts=[len(nbrs)]),
                rand_op("read", bidx_h, idx=nbrs),
            ])
            mem.branch_cond(len(nbrs))
            in_bucket = bidx[nbrs] == b
            if not first:
                st.replay([rand_op("read", active_h, idx=nbrs[in_bucket])])
                in_bucket &= prev_active[nbrs]
            if not in_bucket.any():
                return
            cpos = np.flatnonzero(in_bucket)
            st.replay([
                rand_op("lock", dist_h, idx=nbrs[cpos]),
                seq_op("read", wgt_h, counts=[len(cpos)]),
            ])
            cand = sr.mul(dist[nbrs[cpos]], w[cpos])
            mem.flop(len(cpos))
            own = owners[cpos]
            order = np.argsort(own, kind="stable")
            own_s, cand_s = own[order], cand[order]
            cut = np.flatnonzero(np.diff(own_s)) + 1
            uniq = own_s[np.r_[0, cut]] if len(own_s) else own_s
            mem.branch_cond(len(cpos))
            # per-owned-vertex tropical reduction (local combining)
            best = (sr.add.reduceat(cand_s, np.r_[0, cut])
                    if len(cand_s) else cand_s)
            improved = best < dist[uniq]
            imp = uniq[improved].astype(np.int64)
            if len(imp) == 0:
                return
            rt.owned_write_check(imp)
            bestv = best[improved]
            dist[imp] = bestv
            new_b = (bestv // delta).astype(np.int64)
            bidx[imp] = new_b
            ones = np.arange(len(imp) + 1, dtype=np.int64)
            st.replay([
                rand_op("write", dist_h, idx=imp, seg=ones),
                rand_op("write", bidx_h, idx=imp, seg=ones),
            ], interleave=True)
            back = imp[new_b == b]
            if len(back):
                newly_active.append(back)

        rt.for_each_thread(body)
        if not newly_active:
            break
        prev_active[:] = False
        fresh = np.unique(np.concatenate(newly_active))
        prev_active[fresh] = True
    return itr


# -- Connected components ------------------------------------------------------

def cc_batched(g: CSRGraph, rt: SMRuntime, direction: str = PUSH,
               pointer_jumping: bool = False,
               max_rounds: int | None = None) -> CCResult:
    """Batched label propagation: min-label semiring products per round."""
    check_direction(direction)
    if g.directed:
        raise ValueError("connected components is defined on undirected graphs")
    sr = MIN_PLUS   # only (add=min, add_at=minimum.at) is used on labels
    mem = rt.mem
    st = StreamMemory(mem)
    ga = GraphArrays(mem, g)
    n = g.n
    labels = np.arange(n, dtype=np.int64)
    label_h = mem.register("cc.labels", labels)
    active_h = mem.register("cc.active", n, 1)

    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []

    active = np.arange(n, dtype=np.int64)
    active_mask = np.ones(n, dtype=bool)
    rounds = 0
    limit = max_rounds if max_rounds is not None else 2 * n + 16

    while len(active) and rounds < limit:
        rounds += 1
        t0 = rt.time
        changed_frags: list[np.ndarray] = []

        if direction == PUSH:
            rt.annotate("cc.push")

            def body(t: int, vs: np.ndarray) -> None:
                pos = gather_edge_positions(g.offsets, vs)
                ops = []
                if len(vs):
                    ops.append(rand_op("read", ga.off, idx=vs,
                                       counts=[len(vs) + 1]))
                    ops.append(rand_op("read", label_h, idx=vs))
                if len(pos) == 0:
                    st.replay(ops)
                    return
                nbrs = g.adj[pos]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                ops.append(seq_op("read", ga.adj, counts=[len(nbrs)]))
                ops.append(rand_op("read", label_h, idx=nbrs))
                st.replay(ops)
                mem.branch_cond(len(nbrs))
                vals = labels[srcs]
                improving = vals < labels[nbrs]
                tgt = nbrs[improving].astype(np.int64)
                if len(tgt) == 0:
                    return
                st.replay([rand_op("cas", label_h, idx=tgt, batched=True)])
                before = labels[tgt].copy()
                sr.add_at(labels, tgt, vals[improving])  # CAS-min combining
                moved = np.unique(tgt[labels[tgt] < before])
                if len(moved):
                    changed_frags.append(moved)

            rt.parallel_for(active, body, by_owner=True)
        else:
            rt.annotate("cc.pull")

            def body(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(active_h, start=int(vs[0]), count=len(vs))
                mem.branch_cond(len(vs))
                pos = gather_edge_positions(g.offsets, vs)
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                st.replay([
                    seq_op("read", ga.off, counts=[len(vs) + 1],
                           starts=[int(vs[0])]),
                    seq_op("read", ga.adj, counts=[len(nbrs)]),
                    rand_op("read", label_h, idx=nbrs),
                ])
                mem.branch_cond(len(nbrs))
                lo = int(g.offsets[vs[0]])
                starts = (g.offsets[vs] - lo).astype(np.int64)
                ends = (g.offsets[vs + 1] - lo).astype(np.int64)
                nbr_labels = labels[nbrs]
                out = labels[vs].copy()
                nonempty = ends > starts
                if nonempty.any():
                    mins_arr = sr.add.reduceat(nbr_labels, starts[nonempty])
                    out[nonempty] = sr.add(out[nonempty], mins_arr)
                rt.owned_write_check(vs)
                moved = vs[out < labels[vs]]
                labels[vs] = out
                st.replay([seq_op("write", label_h, counts=[len(vs)],
                                  starts=[int(vs[0])])])
                if len(moved):
                    changed_frags.append(moved)

            rt.for_each_thread(body)

        if pointer_jumping:
            rt.annotate("cc.jump")

            def jump(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(label_h, start=int(vs[0]), count=len(vs))
                mem.read(label_h, idx=labels[vs], mode="rand")
                shorter = labels[labels[vs]]
                moved = vs[shorter < labels[vs]]
                rt.owned_write_check(vs)
                labels[vs] = shorter
                mem.write(label_h, start=int(vs[0]), count=len(vs))
                if len(moved):
                    changed_frags.append(moved)

            rt.for_each_thread(jump)

        active = (np.unique(np.concatenate(changed_frags))
                  if changed_frags else np.empty(0, dtype=np.int64))
        active_mask[:] = False
        active_mask[active] = True

        def frontier_write() -> None:
            mem.write(active_h, idx=active, mode="rand")

        rt.annotate("cc.frontier")
        rt.sequential(frontier_write)
        iteration_times.append(rt.time - t0)

    return CCResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=rounds,
        iteration_times=iteration_times,
        labels=labels,
        n_components=len(np.unique(labels)),
        rounds=rounds,
    )
