"""Batched stream ops: the address/op vocabulary of the batched engine.

A :class:`StreamOp` describes what an interpreted kernel would have
reported through *many* :class:`~repro.machine.memory.MemoryModel`
calls as one record: a verb (``read``/``write``/``faa``/``cas``/
``lock``), a target array handle, an access mode, and a *segmented*
payload.  Segment ``k`` of an op corresponds to the ``k``-th
per-element call of the interpreted loop (one frontier vertex, one
claimed block, ...), so a replayer can reconstruct the exact per-call
event sequence -- or, knowing that the accounting is
grouping-invariant, consume the whole op vectorized.

Layout of one op:

* ``idx``   -- concatenated item indices of all segments (``rand`` ops);
* ``seg``   -- int64 segment offsets (``len == nseg + 1``) tiling ``idx``;
* ``starts``-- per-segment range starts (``seq`` ops; ``None`` means the
  position-free form, each segment counted from 0);
* ``counts``-- per-segment item counts.  Defaults to the segment sizes;
  an override expresses the interpreter's ``count=`` parameter (e.g.
  BFS's 2-item offset read at one scalar index);
* ``successes`` -- per-segment CAS success counts (``None`` = all);
* ``covers``    -- ``(handle, idx_array)`` pairs aligned with ``idx``
  (same segmentation) declaring lock/CAS-protected sibling addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.memory import ArrayHandle

VERBS = ("read", "write", "faa", "cas", "lock")


def concat_ranges(starts, counts) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``
    without the Python loop (the multi-range generalization of
    :func:`repro.algorithms.common.gather_edge_positions`)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    heads = np.repeat(starts - np.r_[0, np.cumsum(counts)[:-1]], counts)
    return heads + np.arange(total, dtype=np.int64)


@dataclass
class StreamOp:
    """One batched memory operation (see module docstring)."""

    verb: str
    handle: ArrayHandle
    mode: str = "rand"
    idx: np.ndarray | None = None
    seg: np.ndarray | None = None
    starts: np.ndarray | None = None
    counts: np.ndarray | None = None
    batched: bool = False
    successes: np.ndarray | None = None
    covers: list | None = None

    def __post_init__(self) -> None:
        if self.verb not in VERBS:
            raise ValueError(f"unknown stream verb {self.verb!r}")
        if self.idx is not None:
            self.idx = np.asarray(self.idx, dtype=np.int64)
            if self.seg is None:
                self.seg = np.array([0, self.idx.size], dtype=np.int64)
            else:
                self.seg = np.asarray(self.seg, dtype=np.int64)
            if self.counts is None:
                self.counts = np.diff(self.seg)
        elif self.counts is None:
            raise ValueError("a stream op needs idx (rand) or counts (seq)")
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.starts is not None:
            self.starts = np.asarray(self.starts, dtype=np.int64)
        if self.successes is not None:
            self.successes = np.asarray(self.successes, dtype=np.int64)

    @property
    def nseg(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def addresses(self) -> np.ndarray:
        """Byte addresses in replay order (empty for ``cached`` mode)."""
        if self.mode == "cached":
            return np.empty(0, dtype=np.int64)
        if self.idx is not None:
            return self.handle.addr(self.idx)
        starts = (self.starts if self.starts is not None
                  else np.zeros(self.nseg, dtype=np.int64))
        items = concat_ranges(starts, self.counts)
        return self.handle.base + items * self.handle.itemsize

    def address_seg_ids(self) -> np.ndarray:
        """Segment id of each address (for cross-op interleaving)."""
        sizes = (np.diff(self.seg) if self.idx is not None else self.counts)
        return np.repeat(np.arange(self.nseg, dtype=np.int64), sizes)


def rand_op(verb: str, handle: ArrayHandle, idx, seg=None, counts=None,
            batched: bool = False, successes=None, covers=None,
            mode: str = "rand") -> StreamOp:
    """An indexed-access op (one index list per segment)."""
    return StreamOp(verb, handle, mode=mode, idx=idx, seg=seg, counts=counts,
                    batched=batched, successes=successes, covers=covers)


def seq_op(verb: str, handle: ArrayHandle, counts, starts=None,
           mode: str = "seq") -> StreamOp:
    """A streaming-range op (one contiguous range per segment)."""
    return StreamOp(verb, handle, mode=mode, counts=counts, starts=starts)
