"""Batched-stream execution mode (the "streams" engine).

Instead of one :class:`~repro.machine.memory.MemoryModel` call per
element, kernels emit numpy address/op batches (:mod:`repro.streams.ops`)
that :class:`~repro.streams.memory.StreamMemory` replays vectorized into
the counters, the analytic miss model, or the trace-driven cache
simulator -- same event taxonomy, byte-identical totals.  The batched
kernels themselves live in :mod:`repro.streams.kernels`; docs/streams.md
explains the taxonomy and the CSR=pull / CSC=push substrate mapping.
"""

from repro.streams.memory import StreamMemory
from repro.streams.ops import StreamOp, concat_ranges, rand_op, seq_op

__all__ = [
    "StreamMemory",
    "StreamOp",
    "concat_ranges",
    "rand_op",
    "seq_op",
]
