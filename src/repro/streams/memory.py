"""StreamMemory: replays batched op streams into a memory model.

The batched kernels build :class:`~repro.streams.ops.StreamOp` lists
and hand them to :meth:`StreamMemory.replay` instead of making one
:class:`~repro.machine.memory.MemoryModel` call per element.  Three
consumption paths, chosen by the *exact* type of the wrapped model:

* :class:`~repro.machine.memory.CountingMemory` -- event counters are
  tallied from per-op totals and the analytic miss model runs through
  the vectorized :meth:`~repro.machine.memory.CountingMemory.touch_batch`.
  Exact because the fixed-point accumulators are grouping-invariant.
* :class:`~repro.machine.memory.CacheSimMemory` -- per-op address
  arrays are merged into one ordered batch (interleaved across ops per
  segment when the interpreted loop interleaved them) and fed to the
  simulator in a single call.  Exact because the simulator only
  collapses consecutive duplicate lines, so merging call boundaries
  cannot change which lines miss.
* anything else (race-detector proxies, test oracles) -- the stream is
  lowered back to element-at-a-time verb calls in replay order, so
  dynamic analyses see the same call sequence the interpreter makes.

``StreamMemory`` is *not* installed on the runtime: kernels construct
it over ``rt.mem`` and keep issuing scalar verbs (``branch_cond``,
``flop``, single pre-batched calls) directly, so runtime thread
routing, tracer deltas, and wrapped-verb instrumentation keep working
unchanged.  Models that wrap verbs (e.g. the footprint recorder) can
observe fast-path replays by exposing an ``on_stream_replay(ops)``
attribute on the wrapped model.
"""

from __future__ import annotations

import numpy as np

from repro.machine.memory import CacheSimMemory, CountingMemory, MemoryModel
from repro.streams.ops import StreamOp


class StreamMemory:
    """Batch replayer over a wrapped :class:`MemoryModel` (see module doc)."""

    def __init__(self, base: MemoryModel) -> None:
        self.base = base

    def __getattr__(self, name):
        return getattr(self.base, name)

    # -- replay -----------------------------------------------------------------
    def replay(self, ops: list[StreamOp], interleave: bool = False) -> None:
        """Consume a stream of ops issued by one kernel phase.

        ``interleave=True`` declares that the interpreted formulation
        walks the ops' segments in lockstep (segment 0 of every op,
        then segment 1, ...), as a per-vertex loop touching several
        arrays does; the cache-simulator path preserves that address
        order and the oracle path replays it call for call.
        """
        ops = [op for op in ops if op is not None]
        if not ops:
            return
        base = self.base
        hook = getattr(base, "on_stream_replay", None)
        if hook is not None:
            hook(ops)
        bt = type(base)
        if bt is CountingMemory:
            for op in ops:
                self._tally(op)
                if op.mode != "cached":
                    base.touch_batch(op.handle, mode=op.mode, counts=op.counts,
                                     idx=op.idx, seg=op.seg)
        elif bt is CacheSimMemory:
            for op in ops:
                self._tally(op)
            base.access_batch(self._merged_addresses(ops, interleave))
        else:
            self._replay_elementwise(ops, interleave)

    # -- fast-path pieces ---------------------------------------------------------
    def _tally(self, op: StreamOp) -> None:
        """Event-counter contribution of one op (the verb rules of
        :class:`MemoryModel`, summed over segments)."""
        c = self.base.counters
        n = op.total
        verb = op.verb
        if verb == "read":
            c.reads += n
        elif verb == "write":
            c.writes += n
        elif verb == "faa":
            c.atomics += n
            c.faa += n
            if op.batched:
                c.atomics_batched += n
            c.reads += n
            c.writes += n
            c.branches_uncond += n
        elif verb == "cas":
            c.atomics += n
            c.cas += n
            if op.batched:
                c.atomics_batched += n
            c.reads += n
            succ = n if op.successes is None else int(op.successes.sum())
            c.writes += succ
            c.branches_uncond += n
        else:  # lock
            c.locks += n
            c.reads += n
            c.writes += n
            c.branches_uncond += n

    @staticmethod
    def _merged_addresses(ops: list[StreamOp], interleave: bool) -> np.ndarray:
        parts = []
        for op in ops:
            a = op.addresses()
            if a.size:
                parts.append((a, op))
        if not parts:
            return np.empty(0, dtype=np.int64)
        if not interleave or len(parts) == 1:
            return np.concatenate([a for a, _ in parts])
        addr = np.concatenate([a for a, _ in parts])
        seg_ids = np.concatenate([op.address_seg_ids() for _, op in parts])
        op_rank = np.concatenate([
            np.full(a.size, r, dtype=np.int64)
            for r, (a, _) in enumerate(parts)
        ])
        # stable: primary key segment, secondary op issue order; within a
        # (segment, op) group the original element order survives
        order = np.lexsort((op_rank, seg_ids))
        return addr[order]

    # -- oracle path ---------------------------------------------------------------
    def _replay_elementwise(self, ops: list[StreamOp], interleave: bool) -> None:
        """Lower the stream back to per-segment MemoryModel calls."""
        if interleave:
            nseg = max(op.nseg for op in ops)
            for k in range(nseg):
                for op in ops:
                    if k < op.nseg:
                        self._issue(op, k)
        else:
            for op in ops:
                for k in range(op.nseg):
                    self._issue(op, k)

    def _issue(self, op: StreamOp, k: int) -> None:
        fn = getattr(self.base, op.verb)
        n = int(op.counts[k])
        if op.idx is None:
            if n == 0:
                return
            start = None if op.starts is None else int(op.starts[k])
            fn(op.handle, count=n, start=start, mode=op.mode)
            return
        lo, hi = int(op.seg[k]), int(op.seg[k + 1])
        if hi == lo and n == 0:
            return
        kwargs = {"mode": op.mode}
        if n != hi - lo:
            kwargs["count"] = n
        if op.verb in ("faa", "cas") and op.batched:
            kwargs["batched"] = True
        if op.verb == "cas" and op.successes is not None:
            kwargs["successes"] = int(op.successes[k])
        if op.verb in ("faa", "cas", "lock") and op.covers:
            kwargs["covers"] = [(h, np.asarray(ci)[lo:hi])
                                for h, ci in op.covers]
        fn(op.handle, idx=op.idx[lo:hi], **kwargs)
