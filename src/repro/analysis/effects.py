"""Static effect inference over the push/pull kernels (ANL1xx).

An abstract-interpretation pass over every kernel in
:mod:`repro.algorithms` (SM and DM) plus the Section-5 strategy
kernels.  Per traced phase (SM parallel region / sequential phase) or
superstep body, the pass infers an **effect signature**:

* the registered arrays the phase reads and writes (resolved through
  ``mem.register`` sites, :class:`~repro.algorithms.common.GraphArrays`
  fields, and f-string register names, which become glob patterns);
* the *index provenance* of each access -- own vertex (``v`` routed by
  ``by_owner``/``for_each_thread``/``rt.owned``), neighbor (derived
  from ``adj`` slices / ``g.neighbors``), frontier-derived work items,
  message payloads, or unknown;
* the inferred direction: a phase that *writes* neighbor-indexed state
  pushes; one that only *reads* neighbor state and writes own state
  pulls (the CSR=pull / CSC=push taxonomy of Section 7 made checkable);
* every atomic with a necessity verdict -- ``needed``,
  ``relaxable-to-store`` (all writers provably distinct: own-indexed or
  covered by a ``disjoint-writers`` hint, the GrS/CR candidate set of
  Section 5), or ``batched`` (already declared ``batched=True``);
* DM verb footprints: message tags, windows targeted by data-carrying
  RMA, and the ownership selections feeding each destination rank.

From the signatures five certified facts are derived:

``ANL101`` (direction-mismatch, error)
    A pull-classified phase writes neighbor-indexed state (store,
    CAS, or FAA whose index provenance is ``neighbor``) without an
    ownership guard.  Pull means *read* remote, write own.
``ANL102`` (non-owned plain store, error)
    A plain ``mem.write`` with neighbor index provenance, unprotected
    by any lock/atomic ``covers=`` in the same body, outside a
    sequential phase, and not under an ownership guard -- the static
    form of the dynamic owner-write check.
``ANL103`` (unnecessary atomic, advice)
    An atomic/lock whose writers are provably distinct (own-indexed,
    or ``disjoint-writers``-hinted) could relax to a plain store --
    the Greedy-Switch / Conflict-Removal candidate set.
``ANL104`` (barrier-elidable, advice)
    Two statically adjacent SM phases separated by a barrier whose
    read/write sets are disjoint (alias-hint aware): the barrier can
    be elided.  Emitted as an allowlist the future async scheduler
    consumes (ROADMAP: bounded-staleness mode).
``ANL105`` (DM verb/ownership mismatch, error)
    A data-carrying RMA verb targets a window never registered with
    ``rt.register_window``, or a verb's destination rank differs from
    the owner selection that built its payload/indices.

Inference hints: kernels may annotate facts the pass cannot prove with
``# effects:`` comments -- ``# effects: alias <glob> -> <name>``
declares physical aliasing (PageRank-PA's per-thread accumulator
slices), ``# effects: disjoint-writers <name>...`` declares that all
concurrent writers of an array hit distinct indices (Prim's
per-adjacency-row relaxation).
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.lint import (
    ATOMIC_DECLS, REGION_METHODS, RUNTIME_NAMES, STORE_DECLS,
    _direction_compared, _name_direction,
)

SEVERITY = {
    "ANL101": "error", "ANL102": "error", "ANL103": "advice",
    "ANL104": "advice", "ANL105": "error",
}

#: write-effect memory verbs (lock taken as a write-side critical section)
WRITE_VERBS = {"write", "cas", "faa", "lock"}
#: GraphArrays field -> registered-name suffix
GRAPH_ARRAY_FIELDS = {"off": "offsets", "adj": "adj", "wgt": "weights"}
#: data-carrying DM verbs that require a registered window
DATA_RMA_VERBS = {"put", "accumulate"}

#: the 17-kernel effect matrix: name -> (module relpath under src/repro,
#: entry function).  11 SM kernels, 4 DM kernels, 2 strategy kernels.
KERNELS: tuple[tuple[str, str, str], ...] = (
    ("pagerank", "algorithms/pagerank.py", "pagerank"),
    ("bfs", "algorithms/bfs.py", "bfs"),
    ("sssp_delta", "algorithms/sssp_delta.py", "sssp_delta"),
    ("betweenness_centrality", "algorithms/bc.py", "betweenness_centrality"),
    ("bc_weighted", "algorithms/bc_weighted.py",
     "betweenness_centrality_weighted"),
    ("bc_approx", "algorithms/bc_approx.py", "approx_bc_vertex"),
    ("boman_coloring", "algorithms/coloring.py", "boman_coloring"),
    ("triangle_count", "algorithms/triangle.py", "triangle_count"),
    ("connected_components", "algorithms/connected_components.py",
     "connected_components"),
    ("boruvka_mst", "algorithms/mst_boruvka.py", "boruvka_mst"),
    ("prim_mst", "algorithms/mst_prim.py", "prim_mst"),
    ("dm_pagerank", "algorithms/dm_pagerank.py", "dm_pagerank"),
    ("dm_bfs", "algorithms/dm_bfs.py", "dm_bfs"),
    ("dm_sssp_delta", "algorithms/dm_sssp.py", "dm_sssp_delta"),
    ("dm_triangle_count", "algorithms/dm_triangle.py", "dm_triangle_count"),
    ("frontier_exploit_coloring", "strategies/frontier_exploit.py",
     "frontier_exploit_coloring"),
    ("conflict_removal_coloring", "strategies/conflict_removal.py",
     "conflict_removal_coloring"),
)

_HINT_RE = re.compile(
    r"#\s*effects:\s*(alias|disjoint-writers)\s+(.+?)\s*$")


@dataclass(frozen=True)
class EffectFinding:
    """One certified ANL1xx fact."""

    rule: str
    severity: str
    path: str
    line: int
    kernel: str
    phase: str
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}: {self.rule} ({self.severity}) "
                f"[{self.kernel}/{self.phase}] {self.message}")

    def to_json(self) -> dict:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "kernel": self.kernel,
                "phase": self.phase, "message": self.message}


@dataclass
class PhaseSignature:
    """Inferred effects of one parallel region / sequential phase /
    superstep body."""

    label: str
    kind: str                     # "parallel" | "sequential" | "superstep"
    path: str
    line: int
    body: str                     # body function qualname
    declared: str | None          # direction by name/branch convention
    inferred: str                 # "push" | "pull" | "local"
    reads: list[str] = field(default_factory=list)
    writes: list[str] = field(default_factory=list)
    atomics: list[dict] = field(default_factory=list)
    comm: dict | None = None      # DM verb footprint

    def to_json(self) -> dict:
        out = {
            "label": self.label, "kind": self.kind, "line": self.line,
            "body": self.body, "declared": self.declared,
            "inferred": self.inferred, "reads": self.reads,
            "writes": self.writes, "atomics": self.atomics,
        }
        if self.comm is not None:
            out["comm"] = self.comm
        return out


@dataclass
class KernelEffects:
    """Whole-kernel effect signature: ordered phases + flat write set."""

    name: str
    path: str
    entry: str
    phases: list[PhaseSignature] = field(default_factory=list)
    write_set: list[str] = field(default_factory=list)
    windows: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"path": self.path, "entry": self.entry,
                "phases": [p.to_json() for p in self.phases],
                "write_set": self.write_set, "windows": self.windows}


@dataclass
class EffectReport:
    """The full inference result over the kernel matrix."""

    kernels: dict[str, KernelEffects]
    findings: list[EffectFinding]
    allowlist: list[dict]         # ANL104 entries for the async scheduler

    def errors(self) -> list[EffectFinding]:
        return [f for f in self.findings if f.severity == "error"]

    def advice(self) -> list[EffectFinding]:
        return [f for f in self.findings if f.severity == "advice"]

    @property
    def ok(self) -> bool:
        return not self.errors()


def _pattern_overlap(a: str, b: str) -> bool:
    """Do two (possibly glob) array names denote overlapping storage?"""
    return fnmatch.fnmatchcase(a, b) or fnmatch.fnmatchcase(b, a)


def _covers_name(name: str, patterns: Iterable[str]) -> bool:
    return any(_pattern_overlap(name, p) for p in patterns)


def _register_name(expr: ast.AST) -> str | None:
    """Registered-array name of a ``mem.register`` first argument.

    Constants resolve exactly; f-strings become glob patterns
    (``f"pr.acc.block{t}"`` -> ``pr.acc.block*``).
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.JoinedStr):
        parts = []
        for v in expr.values:
            if isinstance(v, ast.Constant):
                parts.append(str(v.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _trailing(expr: ast.AST) -> str | None:
    """Last identifier of a Name / dotted-attribute expression."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class _Hints:
    """Parsed ``# effects:`` hint comments of one module."""

    def __init__(self, source: str) -> None:
        self.aliases: list[tuple[str, str]] = []   # (glob, canonical)
        self.disjoint: list[str] = []              # array name patterns
        for line in source.splitlines():
            m = _HINT_RE.search(line)
            if not m:
                continue
            kind, payload = m.group(1), m.group(2)
            if kind == "alias" and "->" in payload:
                glob, _, canon = payload.partition("->")
                self.aliases.append((glob.strip(), canon.strip()))
            elif kind == "disjoint-writers":
                self.disjoint.extend(payload.replace(",", " ").split())

    def expand(self, names: Iterable[str]) -> set[str]:
        """Close a name set under the alias hints (both directions)."""
        out = set(names)
        for glob, canon in self.aliases:
            if any(_pattern_overlap(n, glob) for n in out):
                out.add(canon)
            if any(_pattern_overlap(n, canon) for n in out):
                out.add(glob)
        return out

    def is_disjoint(self, names: Iterable[str]) -> bool:
        return any(_covers_name(n, self.disjoint) for n in names)


@dataclass
class _Launch:
    """One region/superstep launch site."""

    call: ast.Call
    method: str                  # parallel_for | for_each_thread | ...
    body_expr: ast.AST
    enclosing: ast.AST | None
    chain: tuple
    scopes: list[dict]
    ctx: str | None              # direction branch at the call site
    by_owner: bool
    barrier: bool                # launch closes with a barrier
    line: int


class _ModuleInfo(ast.NodeVisitor):
    """Single-pass module index: functions, launches, handle names,
    windows, annotate labels, call edges, imports."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.hints = _Hints(source)
        self.scopes: list[dict] = [{}]
        self.stack: list[tuple] = []
        self.ctx_stack: list[str | None] = [None]
        self.defs_ctx: dict[int, str | None] = {}
        self.defs_chain: dict[int, tuple] = {}
        self.funcs: list[ast.AST] = []
        self.classes: dict[str, ast.ClassDef] = {}
        self.methods: dict[str, list[ast.AST]] = {}
        self.top_funcs: dict[str, ast.AST] = {}
        self.launches: list[_Launch] = []
        self.barrier_lines: dict[int, list[int]] = {}   # id(fn) -> linenos
        self.annotates: list[tuple] = []                # (id(fn), line, label)
        self.registers: dict[str, str] = {}             # trailing -> pattern
        self.ga_vars: dict[str, set] = {}               # trailing -> prefixes
        self.windows: set[str] = set()
        self.calls_from: dict[int, list] = {}           # id(fn) -> callee exprs
        self.imports: dict[str, str] = {}               # name -> module
        self.ext_registers: dict[str, str] = {}         # from imported modules
        self.tree = ast.parse(source, filename=path)
        self.visit(self.tree)

    # -- scope / context bookkeeping ------------------------------------------
    def _enclosing(self):
        for name, node in reversed(self.stack):
            if node is not None:
                return node
        return None

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.imports[alias.asname or alias.name] = node.module or ""

    def resolve_handle(self, trailing: str) -> str:
        """Registered-array pattern a handle variable's trailing name
        denotes, falling back to imported modules' register sites."""
        return (self.registers.get(trailing)
                or self.ext_registers.get(trailing)
                or trailing)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scopes[-1][node.name] = node
        self.funcs.append(node)
        self.defs_ctx[id(node)] = self.ctx_stack[-1]
        chain = (node.name,) + tuple(n for n, _ in reversed(self.stack))
        self.defs_chain[id(node)] = chain
        if not self.stack:
            self.top_funcs[node.name] = node
        elif self.stack and self.stack[-1][1] is None:   # class body
            self.methods.setdefault(node.name, []).append(node)
        self.stack.append((node.name, node))
        self.scopes.append({})
        self.ctx_stack.append(None)
        for stmt in node.body:
            self.visit(stmt)
        self.ctx_stack.pop()
        self.scopes.pop()
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.classes[node.name] = node
        self.stack.append((node.name, None))
        self.scopes.append({})
        for stmt in node.body:
            self.visit(stmt)
        self.scopes.pop()
        self.stack.pop()

    def visit_If(self, node: ast.If, in_chain: bool = False) -> None:
        d = _direction_compared(node.test)
        saved = self.ctx_stack[-1]
        self.visit(node.test)
        self.ctx_stack[-1] = d or saved
        for stmt in node.body:
            self.visit(stmt)
        self.ctx_stack[-1] = _else_ctx(node, d, saved, in_chain)
        if _is_direction_elif(node, d):
            self.visit_If(node.orelse[0], in_chain=True)
        else:
            for stmt in node.orelse:
                self.visit(stmt)
        self.ctx_stack[-1] = saved

    # -- handle / window registration -----------------------------------------
    def _note_register(self, target: ast.AST, value: ast.AST) -> None:
        name = _trailing(target)
        if name is None:
            return
        for candidate in _ifexp_arms(value):
            if isinstance(candidate, ast.ListComp):
                candidate = candidate.elt
            if (isinstance(candidate, ast.Call)
                    and isinstance(candidate.func, ast.Attribute)
                    and candidate.func.attr == "register"
                    and candidate.args):
                pattern = _register_name(candidate.args[0])
                if pattern is not None:
                    self.registers[name] = pattern
            elif (isinstance(candidate, ast.Call)
                    and isinstance(candidate.func, ast.Name)
                    and candidate.func.id == "GraphArrays"):
                prefix = "g"
                for kw in candidate.keywords:
                    if kw.arg == "prefix" and isinstance(kw.value, ast.Constant):
                        prefix = str(kw.value.value)
                self.ga_vars.setdefault(name, set()).add(prefix)
            elif _trailing(candidate) in self.ga_vars:
                self.ga_vars.setdefault(name, set()).update(
                    self.ga_vars[_trailing(candidate)])

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            self._note_register(tgt, node.value)
        self.generic_visit(node)

    # -- launches, barriers, annotate, windows, call edges --------------------
    def visit_Call(self, node: ast.Call) -> None:
        enc = self._enclosing()
        f = node.func
        if enc is not None:
            if isinstance(f, ast.Name):
                self.calls_from.setdefault(id(enc), []).append(f.id)
            elif isinstance(f, ast.Attribute):
                self.calls_from.setdefault(id(enc), []).append(f.attr)
            # functools.partial(helper, ...) references the helper too
            if (_trailing(f) == "partial" and node.args
                    and isinstance(node.args[0], ast.Name)):
                self.calls_from.setdefault(id(enc), []).append(
                    node.args[0].id)
        if isinstance(f, ast.Attribute):
            if f.attr in REGION_METHODS or f.attr == "superstep":
                self._note_launch(node, f.attr, enc)
            elif f.attr == "barrier":
                self.barrier_lines.setdefault(id(enc), []).append(node.lineno)
            elif f.attr == "annotate" and node.args:
                label = _register_name(node.args[0])
                if label is not None:
                    self.annotates.append((id(enc), node.lineno, label))
            elif f.attr == "register_window" and node.args:
                pattern = _register_name(node.args[0])
                if pattern is None:
                    t = _trailing(node.args[0])
                    pattern = self.registers.get(t, t) if t else None
                if pattern is not None:
                    self.windows.add(pattern)
        self.generic_visit(node)

    def _note_launch(self, node: ast.Call, method: str, enc) -> None:
        pos = 0 if method == "superstep" else REGION_METHODS[method]
        body = None
        for kw in node.keywords:
            if kw.arg == "body":
                body = kw.value
        if body is None and len(node.args) > pos:
            body = node.args[pos]
        if body is None:
            return
        by_owner = barrier = None
        for kw in node.keywords:
            if kw.arg == "by_owner" and isinstance(kw.value, ast.Constant):
                by_owner = bool(kw.value.value)
            if kw.arg == "barrier" and isinstance(kw.value, ast.Constant):
                barrier = bool(kw.value.value)
        chain = tuple(n for n, _ in reversed(self.stack))
        # snapshot the bindings as of this statement: a later def reusing
        # the same body name (push/pull variants) must not shadow it
        self.launches.append(_Launch(
            call=node, method=method, body_expr=body, enclosing=enc,
            chain=chain, scopes=[dict(s) for s in self.scopes],
            ctx=self.ctx_stack[-1],
            by_owner=bool(by_owner),
            barrier=(barrier if barrier is not None else True),
            line=node.lineno))


def _opp(direction: str | None) -> str | None:
    if direction is None:
        return None
    return "pull" if direction == "push" else "push"


def _is_direction_elif(node: ast.If, d: str | None) -> bool:
    """Is this If the head of a multi-way direction dispatch chain?"""
    return (d is not None and len(node.orelse) == 1
            and isinstance(node.orelse[0], ast.If)
            and _direction_compared(node.orelse[0].test) is not None)


def _else_ctx(node: ast.If, d: str | None, saved, in_chain: bool):
    """Direction context of an If's else branch.  A plain two-way
    ``if direction == PUSH: ... else: ...`` classifies the else as the
    opposite direction; the trailing else of a multi-way elif chain
    (``if PULL ... elif PUSH ... else: <PA>``) is *neither*."""
    if d is None:
        return saved
    if _is_direction_elif(node, d) or in_chain:
        return None
    return _opp(d)


def _ifexp_arms(expr: ast.AST) -> list[ast.AST]:
    if isinstance(expr, ast.IfExp):
        return _ifexp_arms(expr.body) + _ifexp_arms(expr.orelse)
    return [expr]


def _resolve_fn(expr: ast.AST, scopes: list[dict]):
    """FunctionDef (or Lambda) a body argument refers to, following
    ``lambda: helper(...)`` trampolines and ``partial(helper, ...)``."""
    if isinstance(expr, ast.Name):
        for scope in reversed(scopes):
            if expr.id in scope:
                return scope[expr.id]
        return None
    if isinstance(expr, ast.Lambda):
        if (isinstance(expr.body, ast.Call)
                and isinstance(expr.body.func, ast.Name)):
            return _resolve_fn(expr.body.func, scopes)
        return expr
    if (isinstance(expr, ast.Call) and _trailing(expr.func) == "partial"
            and expr.args):
        return _resolve_fn(expr.args[0], scopes)
    return None


# ---------------------------------------------------------------------------
# per-phase abstract interpretation
# ---------------------------------------------------------------------------

#: provenance lattice values the rules key on
OWN, NEIGHBOR, FRONTIER, MESSAGE, UNKNOWN = (
    "own", "neighbor", "frontier", "message", "unknown")

_PROPAGATING_NP = {"unique", "concatenate", "repeat", "asarray", "sort",
                   "array", "setdiff1d", "intersect1d"}


class _PhaseScan(ast.NodeVisitor):
    """Abstract interpretation of one phase body: declared accesses with
    index provenance, direction branches, ownership guards, DM verbs."""

    def __init__(self, mod: _ModuleInfo, items_prov: str,
                 superstep: bool) -> None:
        self.mod = mod
        self.superstep = superstep
        self.env: dict[str, str] = {}
        self.ops: list[dict] = []
        self.comm: dict[str, list] = {}
        self.covered: set[str] = set()
        self.ownership_checked = False
        self.selections: dict[str, str] = {}
        self.called: set[str] = set()
        self._ctx: str | None = None
        self._guard = 0
        self._items_prov = items_prov

    def seed_from(self, enclosing: ast.AST, before_line: int) -> None:
        """Pre-bind closure variables: provenance of enclosing-function
        assignments textually before the launch (no ops are recorded --
        ``prov`` is pure)."""
        def walk(stmts: list) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if getattr(stmt, "lineno", before_line) >= before_line:
                    continue
                if isinstance(stmt, ast.Assign):
                    tag = self.prov(stmt.value)
                    for tgt in stmt.targets:
                        if (isinstance(tgt, ast.Tuple)
                                and isinstance(stmt.value, ast.Tuple)
                                and len(tgt.elts) == len(stmt.value.elts)):
                            for t, v in zip(tgt.elts, stmt.value.elts):
                                self._bind(t, self.prov(v))
                        else:
                            self._bind(tgt, tag)
                elif isinstance(stmt, ast.For):
                    self._bind(stmt.target, self.prov(stmt.iter))
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field_name, None)
                    if isinstance(inner, list):
                        walk(inner)
        body = getattr(enclosing, "body", None)
        if isinstance(body, list):
            walk(body)

    def scan(self, fn: ast.AST) -> "_PhaseScan":
        args = getattr(getattr(fn, "args", None), "args", [])
        if self.superstep:
            if args:
                self.env[args[0].arg] = "rank"
        else:
            if len(args) >= 1:
                self.env[args[0].arg] = "thread"
            if len(args) >= 2:
                self.env[args[1].arg] = self._items_prov
        body = getattr(fn, "body", None)
        for stmt in (body if isinstance(body, list) else [ast.Expr(body)]):
            self.visit(stmt)
        return self

    # -- provenance -----------------------------------------------------------
    def prov(self, e: ast.AST) -> str:
        if isinstance(e, ast.Name):
            return self.env.get(e.id, UNKNOWN)
        if isinstance(e, ast.Constant):
            return "const"
        if isinstance(e, ast.Attribute):
            if e.attr == "adj":
                return NEIGHBOR
            if "front" in e.attr.lower():
                return FRONTIER
            return UNKNOWN
        if isinstance(e, ast.Subscript):
            return self._elem_prov(e.value)
        if isinstance(e, ast.Call):
            return self._call_prov(e)
        if isinstance(e, ast.IfExp):
            a, b = self.prov(e.body), self.prov(e.orelse)
            return a if a == b else UNKNOWN
        if isinstance(e, (ast.List, ast.Tuple)):
            tags = {self.prov(x) for x in e.elts}
            return tags.pop() if len(tags) == 1 else UNKNOWN
        if isinstance(e, ast.Compare):
            if self._owner_compare(e) is not None:
                return "ownermask"
            return UNKNOWN
        return UNKNOWN

    def _elem_prov(self, base: ast.AST) -> str:
        """Element provenance of an indexed/sliced array expression."""
        if isinstance(base, ast.Attribute) and base.attr == "adj":
            return NEIGHBOR
        if isinstance(base, ast.Name):
            if "owner" in base.id.lower():
                return "owner"
            return self.env.get(base.id, UNKNOWN)
        if isinstance(base, ast.Subscript):
            return self._elem_prov(base.value)
        if isinstance(base, ast.Attribute):
            return UNKNOWN
        return UNKNOWN

    def _call_prov(self, e: ast.Call) -> str:
        f = e.func
        if isinstance(f, ast.Attribute):
            recv = f.value
            if f.attr.endswith("neighbors"):
                return NEIGHBOR
            if (f.attr == "owned" and isinstance(recv, ast.Name)
                    and recv.id in RUNTIME_NAMES):
                return OWN
            if f.attr == "inbox":
                return MESSAGE
            if f.attr in {"astype", "copy", "ravel", "flatten"}:
                return self.prov(recv)
            if f.attr in _PROPAGATING_NP and e.args:
                return self.prov(e.args[0])
            if f.attr == "owner" and e.args:
                return "owner"
            if f.attr == "flatnonzero" and e.args:
                text = ast.dump(e.args[0]).lower()
                if "front" in text or "active" in text:
                    return FRONTIER
                return UNKNOWN
        if isinstance(f, ast.Name) and f.id in {"int", "abs", "sorted",
                                                "list"} and e.args:
            return self.prov(e.args[0])
        return UNKNOWN

    def _owner_compare(self, e: ast.AST) -> str | None:
        """Rank name an ``owner[...] == q`` style compare selects for."""
        if not (isinstance(e, ast.Compare) and len(e.ops) == 1
                and isinstance(e.ops[0], ast.Eq)):
            return None
        sides = [e.left, e.comparators[0]]
        tags = [self.prov(s) for s in sides]
        for tag, other in ((tags[0], sides[1]), (tags[1], sides[0])):
            if tag == "owner" and isinstance(other, ast.Name):
                return other.id
        return None

    def _owner_selected(self, node: ast.AST) -> set[str]:
        """Rank names whose ownership selections feed ``node``."""
        out: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.selections:
                out.add(self.selections[sub.id])
            elif isinstance(sub, ast.Compare):
                q = self._owner_compare(sub)
                if q is not None:
                    out.add(q)
        return out

    # -- statements -----------------------------------------------------------
    def visit_If(self, node: ast.If, in_chain: bool = False) -> None:
        d = _direction_compared(node.test)
        guard = self._is_ownership_guard(node.test)
        saved = self._ctx
        self.visit(node.test)
        self._ctx = d or saved
        if guard:
            self._guard += 1
        for stmt in node.body:
            self.visit(stmt)
        if guard:
            self._guard -= 1
        self._ctx = _else_ctx(node, d, saved, in_chain)
        if _is_direction_elif(node, d):
            self.visit_If(node.orelse[0], in_chain=True)
        else:
            for stmt in node.orelse:
                self.visit(stmt)
        self._ctx = saved

    def _is_ownership_guard(self, test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "is_local"):
                return True
            if isinstance(sub, ast.Compare) and len(sub.ops) == 1 and \
                    isinstance(sub.ops[0], ast.Eq):
                tags = {self.prov(sub.left), self.prov(sub.comparators[0])}
                if "owner" in tags and tags & {"rank", "thread"}:
                    return True
        return False

    def _bind(self, target: ast.AST, tag: str) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = tag
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._bind(e, tag)

    def visit_Assign(self, node: ast.Assign) -> None:
        tag = self.prov(node.value)
        for tgt in node.targets:
            if isinstance(tgt, ast.Tuple) and isinstance(node.value, ast.Tuple) \
                    and len(tgt.elts) == len(node.value.elts):
                for t, v in zip(tgt.elts, node.value.elts):
                    self._bind(t, self.prov(v))
            else:
                self._bind(tgt, tag)
        # remember ownership selections: sel = owner[...] == q, or
        # ask = nbrs[owner[nbrs] == q]
        ranks = set()
        for sub in ast.walk(node.value):
            q = self._owner_compare(sub) if isinstance(sub, ast.Compare) \
                else None
            if q is not None:
                ranks.add(q)
        if len(ranks) == 1 and isinstance(node.targets[0], ast.Name):
            self.selections[node.targets[0].id] = ranks.pop()
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        it = node.iter
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            tag = "rank" if self.superstep else "const"
        elif (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "enumerate" and it.args):
            self._bind(node.target, self.prov(it.args[0]))
            if isinstance(node.target, ast.Tuple) and node.target.elts:
                self._bind(node.target.elts[0], "const")
            for stmt in node.body + node.orelse:
                self.visit(stmt)
            return
        else:
            tag = self.prov(it)
        self._bind(node.target, tag)
        self.visit(it)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass                     # nested defs are their own phases

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- declared accesses and DM verbs ---------------------------------------
    def _handle_names(self, expr: ast.AST) -> tuple[str, ...]:
        names: set[str] = set()
        for arm in _ifexp_arms(expr):
            if isinstance(arm, ast.Subscript):        # slice_hs[t] lists
                arm = arm.value
            t = _trailing(arm)
            if isinstance(arm, ast.Constant) and isinstance(arm.value, str):
                names.add(arm.value)
            elif isinstance(arm, ast.Attribute) and \
                    arm.attr in GRAPH_ARRAY_FIELDS:
                base = _trailing(arm.value)
                prefixes = self.mod.ga_vars.get(base or "", set())
                if prefixes:
                    names.update(f"{p}.{GRAPH_ARRAY_FIELDS[arm.attr]}"
                                 for p in prefixes)
                elif t:
                    names.add(t)
            elif t is not None:
                names.add(self.mod.resolve_handle(t))
        return tuple(sorted(names)) or ("?",)

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Attribute):
            recv = f.value
            recv_name = _trailing(recv)
            if f.attr in STORE_DECLS | {"read"} and node.args and (
                    recv_name in ("mem", "memory")
                    or (isinstance(recv, ast.Attribute)
                        and recv.attr == "mem")):
                self._note_mem(node, f.attr)
            elif f.attr == "owned_write_check":
                self.ownership_checked = True
            elif (isinstance(recv, ast.Name) and recv.id in RUNTIME_NAMES):
                self._note_rt(node, f.attr)
        elif isinstance(f, ast.Name):
            self.called.add(f.id)
        self.generic_visit(node)

    def _note_mem(self, node: ast.Call, verb: str) -> None:
        arrays = self._handle_names(node.args[0])
        kw = {k.arg: k.value for k in node.keywords}
        idx = kw.get("idx")
        prov = self.prov(idx) if idx is not None else "block"
        covers: list[str] = []
        cov = kw.get("covers")
        if isinstance(cov, (ast.List, ast.Tuple)):
            for entry in cov.elts:
                if isinstance(entry, (ast.Tuple, ast.List)) and entry.elts:
                    covers.extend(self._handle_names(entry.elts[0]))
        batched = isinstance(kw.get("batched"), ast.Constant) and \
            bool(kw["batched"].value)
        self.ops.append({
            "verb": verb, "arrays": arrays, "index": prov,
            "line": node.lineno, "ctx": self._ctx,
            "guard": self._guard > 0, "batched": batched,
            "covers": tuple(covers),
        })
        if verb in ATOMIC_DECLS:
            self.covered.update(arrays)
            self.covered.update(covers)

    def _note_rt(self, node: ast.Call, verb: str) -> None:
        kw = {k.arg: k.value for k in node.keywords}
        dest = node.args[0] if node.args else None
        dest_name = dest.id if isinstance(dest, ast.Name) else None
        if verb == "send":
            tag = kw.get("tag")
            self.comm.setdefault("sends", []).append({
                "tag": (tag.value if isinstance(tag, ast.Constant) else None),
                "dest": dest_name, "line": node.lineno,
                "selected": sorted(self._owner_selected(node)),
            })
        elif verb in DATA_RMA_VERBS | {"rma_put", "rma_accumulate",
                                       "rma_get"}:
            win = kw.get("window")
            windows = self._handle_names(win) if win is not None else ("?",)
            idx = kw.get("idx")
            entry = {
                "verb": verb, "windows": windows,
                "index": self.prov(idx) if idx is not None else "block",
                "dest": dest_name, "line": node.lineno,
                "selected": sorted(self._owner_selected(node)),
            }
            key = "gets" if verb == "rma_get" else "rma"
            self.comm.setdefault(key, []).append(entry)
        elif verb == "inbox":
            tag = node.args[0] if node.args else kw.get("tag")
            self.comm.setdefault("inbox", []).append(
                tag.value if isinstance(tag, ast.Constant) else None)

    # -- derived sets ---------------------------------------------------------
    def reads(self) -> set[str]:
        out = {n for op in self.ops if op["verb"] == "read"
               for n in op["arrays"]}
        for g in self.comm.get("gets", ()):
            out.update(g["windows"])
        return out

    def writes(self) -> set[str]:
        out = set()
        for op in self.ops:
            if op["verb"] in WRITE_VERBS:
                out.update(op["arrays"])
                out.update(op["covers"])
        for r in self.comm.get("rma", ()):
            if r["verb"] != "rma_get":
                out.update(r["windows"])
        return out


# ---------------------------------------------------------------------------
# kernel-level assembly
# ---------------------------------------------------------------------------

def _load_modules(paths: Iterable[Path]) -> list[_ModuleInfo]:
    mods = [_ModuleInfo(str(p), p.read_text(encoding="utf-8"))
            for p in sorted(set(paths))]
    _link_registers(mods)
    return mods


def _link_registers(mods: list[_ModuleInfo]) -> None:
    """Let ``state.colors_h``-style cross-module handle attributes resolve
    through the register sites of the module the class was imported from."""
    by_dotted = {}
    for mod in mods:
        p = Path(mod.path).as_posix()
        i = p.rfind("src/repro/")
        if i >= 0:
            by_dotted[p[i + 4:-3].replace("/", ".")] = mod
    for mod in mods:
        for module_name in set(mod.imports.values()):
            src = by_dotted.get(module_name)
            if src is None or src is mod:
                continue
            for k, v in src.registers.items():
                mod.ext_registers.setdefault(k, v)


def _function_table(mods: list[_ModuleInfo]) -> dict:
    """name -> list of (module, node) for top-level funcs and classes."""
    table: dict[str, list] = {}
    for mod in mods:
        for name, node in mod.top_funcs.items():
            table.setdefault(name, []).append((mod, node))
        for name, cls in mod.classes.items():
            table.setdefault(name, []).append((mod, cls))
        for name, nodes in mod.methods.items():
            for n in nodes:
                table.setdefault(name, []).append((mod, n))
    return table


def _reach(entry_mod: _ModuleInfo, entry_fn: ast.AST,
           mods: list[_ModuleInfo]) -> set[int]:
    """ids of functions/classes reachable from ``entry_fn`` by name."""
    table = _function_table(mods)
    by_mod = {id(m): m for m in mods}
    seen: set[int] = set()
    work: list[tuple] = [(entry_mod, entry_fn)]
    while work:
        mod, node = work.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    work.append((mod, stmt))
            continue
        # nested defs belong to their enclosing function's kernel
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not node and id(stmt) not in seen:
                seen.add(id(stmt))
        for callee in mod.calls_from_all(node):
            for cmod, cnode in table.get(callee, ()):
                # same-module targets always qualify; cross-module ones
                # only when the entry module imports the name
                if cmod is mod or callee in mod.imports:
                    work.append((by_mod[id(cmod)], cnode))
    return seen


def _calls_from_all(self: _ModuleInfo, fn: ast.AST) -> set[str]:
    """Called names from ``fn`` including its nested defs."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.update(self.calls_from.get(id(node), ()))
    out.update(self.calls_from.get(id(fn), ()))
    return out


_ModuleInfo.calls_from_all = _calls_from_all


def _flat_write_set(mod: _ModuleInfo, fn: ast.AST) -> tuple[set, set]:
    """(mem write set, DM window write set) of a whole function."""
    scan = _PhaseScan(mod, UNKNOWN, superstep=True)
    args = getattr(getattr(fn, "args", None), "args", [])
    for a in args:
        scan.env.setdefault(a.arg, UNKNOWN)
    body = getattr(fn, "body", None)
    if isinstance(body, list):
        # walk everything including nested defs: a flat over-approximation
        class _All(ast.NodeVisitor):
            def visit_Call(inner, node):     # noqa: N805
                scan.visit_Call(node)
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    f = node.func
                    if isinstance(f, ast.Attribute):
                        recv_name = _trailing(f.value)
                        if f.attr in STORE_DECLS and node.args and (
                                recv_name in ("mem", "memory")
                                or (isinstance(f.value, ast.Attribute)
                                    and f.value.attr == "mem")):
                            scan._note_mem(node, f.attr)
                        elif (isinstance(f.value, ast.Name)
                                and f.value.id in RUNTIME_NAMES
                                and f.attr in DATA_RMA_VERBS):
                            scan._note_rt(node, f.attr)
    mem_writes = scan.writes()
    win_writes = {n for r in scan.comm.get("rma", ())
                  for n in r["windows"]}
    return mem_writes, win_writes


def _expand_helpers(mod: _ModuleInfo, launch: _Launch, scan: _PhaseScan,
                    body_fn, superstep: bool) -> None:
    """One-level helper expansion (the ANL005 convention): memory ops,
    verbs, and covers of plain functions the body calls join its
    signature.  Helper parameters carry unknown provenance, so the
    expansion completes the read/write/comm footprint (ANL104 soundness)
    but can never manufacture an ANL101/ANL102 by itself."""
    for name in sorted(scan.called):
        fn = _resolve_fn(ast.Name(id=name), launch.scopes)
        if fn is None:
            fn = mod.top_funcs.get(name)
        if (fn is None or fn is body_fn or fn is launch.enclosing
                or not isinstance(fn, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))):
            continue
        sub = _PhaseScan(mod, UNKNOWN, superstep)
        for a in getattr(fn.args, "args", []):
            sub.env[a.arg] = UNKNOWN
        for stmt in fn.body:
            sub.visit(stmt)
        scan.ops.extend(sub.ops)
        scan.covered |= sub.covered
        for key, vals in sub.comm.items():
            scan.comm.setdefault(key, []).extend(vals)


def _phase_label(mod: _ModuleInfo, launch: _Launch, body_fn) -> str:
    best = None
    for fn_id, line, label in mod.annotates:
        if fn_id == id(launch.enclosing) and line < launch.line:
            if best is None or line > best[0]:
                best = (line, label)
    if best is not None:
        return best[1]
    name = getattr(body_fn, "name", None)
    if name:
        return name
    return f"L{launch.line}"


def _phase_direction(mod: _ModuleInfo, launch: _Launch, body_fn,
                     scan: _PhaseScan) -> tuple[str | None, str]:
    if isinstance(body_fn, ast.Lambda):
        chain = launch.chain
        def_ctx = launch.ctx
    else:
        chain = mod.defs_chain.get(id(body_fn), (body_fn.name,))
        def_ctx = mod.defs_ctx.get(id(body_fn)) or launch.ctx
    declared = def_ctx or _name_direction(chain)
    neighbor_writes = any(
        op["verb"] in {"write", "cas", "faa"} and op["index"] == NEIGHBOR
        for op in scan.ops)
    neighbor_reads = any(
        op["verb"] == "read" and op["index"] == NEIGHBOR
        for op in scan.ops)
    if neighbor_writes:
        inferred = "push"
    elif neighbor_reads:
        inferred = "pull"
    else:
        inferred = "local"
    return declared, inferred


def _atomic_verdict(op: dict, hints: _Hints) -> str:
    if op["index"] == OWN or hints.is_disjoint(op["arrays"]):
        return "relaxable-to-store"
    if op["batched"]:
        return "batched"
    return "needed"


def _rel(path: str) -> str:
    """Stable repo-relative path for reports (…/src/repro/… onward)."""
    p = Path(path).as_posix()
    marker = "src/repro/"
    i = p.rfind(marker)
    return p[i:] if i >= 0 else p


def _scan_launch(mod: _ModuleInfo, launch: _Launch, kernel: str,
                 findings: list[EffectFinding]) -> PhaseSignature | None:
    body_fn = _resolve_fn(launch.body_expr, launch.scopes)
    if body_fn is None:
        return None
    superstep = launch.method == "superstep"
    own_items = launch.by_owner or launch.method == "for_each_thread"
    items_prov = OWN if own_items else FRONTIER
    scan = _PhaseScan(mod, items_prov, superstep)
    if launch.enclosing is not None:
        scan.seed_from(launch.enclosing, launch.line)
    scan.scan(body_fn)
    _expand_helpers(mod, launch, scan, body_fn, superstep)
    declared, inferred = _phase_direction(mod, launch, body_fn, scan)
    label = _phase_label(mod, launch, body_fn)
    if isinstance(body_fn, ast.Lambda):
        qual = ".".join(reversed(launch.chain) or ("<module>",)) + ".<lambda>"
    else:
        qual = ".".join(reversed(mod.defs_chain.get(
            id(body_fn), (body_fn.name,))))
    kind = ("superstep" if superstep
            else "sequential" if launch.method == "sequential"
            else "parallel")
    path = _rel(mod.path)

    atomics = []
    for op in scan.ops:
        if op["verb"] not in ATOMIC_DECLS:
            continue
        verdict = _atomic_verdict(op, mod.hints)
        atomics.append({"verb": op["verb"],
                        "arrays": list(op["arrays"]),
                        "index": op["index"], "verdict": verdict,
                        "line": op["line"]})
        if verdict == "relaxable-to-store":
            findings.append(EffectFinding(
                "ANL103", SEVERITY["ANL103"], path, op["line"], kernel,
                label,
                f"atomic {op['verb']} on {list(op['arrays'])} has provably "
                f"distinct writers ({'own-indexed' if op['index'] == OWN else 'disjoint-writers hint'}): "
                f"relaxable to a plain store (GrS/CR candidate, Section 5)"))

    # ANL101/ANL102 are SM-concurrency rules: DM superstep memory is
    # rank-private (cross-rank effects only flow through verbs, ANL105's
    # domain), so a neighbor-indexed local store there is just staging
    for op in (() if superstep else scan.ops):
        eff_dir = op["ctx"] or declared
        if (op["verb"] in {"write", "cas", "faa"}
                and op["index"] == NEIGHBOR
                and eff_dir == "pull"
                and not op["guard"] and not scan.ownership_checked):
            findings.append(EffectFinding(
                "ANL101", SEVERITY["ANL101"], path, op["line"], kernel,
                label,
                f"pull-classified phase writes neighbor-indexed "
                f"array(s) {list(op['arrays'])} via {op['verb']}: pull "
                f"reads remote state and writes own state only "
                f"(direction mismatch)"))
        if (op["verb"] == "write" and op["index"] == NEIGHBOR
                and kind != "sequential"
                and not op["guard"] and not scan.ownership_checked
                and not mod.hints.is_disjoint(op["arrays"])
                and not any(_covers_name(n, scan.covered)
                            for n in op["arrays"])):
            findings.append(EffectFinding(
                "ANL102", SEVERITY["ANL102"], path, op["line"], kernel,
                label,
                f"plain store to neighbor-indexed array(s) "
                f"{list(op['arrays'])} without lock/atomic cover or "
                f"ownership guard: a non-owned write outside the "
                f"Section-3.8 contract"))

    if superstep:
        _check_dm(mod, scan, kernel, label, path, findings)

    comm = None
    if scan.comm:
        comm = {}
        if "sends" in scan.comm:
            comm["sends"] = [
                {"tag": s["tag"], "dest": s["dest"]}
                for s in scan.comm["sends"]]
        if "rma" in scan.comm:
            comm["rma"] = [
                {"verb": r["verb"], "windows": list(r["windows"]),
                 "index": r["index"], "dest": r["dest"]}
                for r in scan.comm["rma"]]
        if "gets" in scan.comm:
            comm["gets"] = [
                {"windows": list(g["windows"]), "dest": g["dest"]}
                for g in scan.comm["gets"]]
        if "inbox" in scan.comm:
            comm["inbox"] = scan.comm["inbox"]

    return PhaseSignature(
        label=label, kind=kind, path=path, line=launch.line, body=qual,
        declared=declared, inferred=inferred,
        reads=sorted(scan.reads()), writes=sorted(scan.writes()),
        atomics=atomics, comm=comm)


def _check_dm(mod: _ModuleInfo, scan: _PhaseScan, kernel: str, label: str,
              path: str, findings: list[EffectFinding]) -> None:
    for r in scan.comm.get("rma", ()):
        if r["verb"] in DATA_RMA_VERBS:
            registered = any(
                _pattern_overlap(w, reg)
                for w in r["windows"] for reg in mod.windows)
            if not registered:
                findings.append(EffectFinding(
                    "ANL105", SEVERITY["ANL105"], path, r["line"], kernel,
                    label,
                    f"data-carrying rt.{r['verb']} targets window(s) "
                    f"{list(r['windows'])} never registered with "
                    f"rt.register_window: the update has no storage to "
                    f"land in and is invisible to crash rollback"))
        dest = r["dest"]
        for q in r["selected"]:
            if dest is not None and q != dest:
                findings.append(EffectFinding(
                    "ANL105", SEVERITY["ANL105"], path, r["line"], kernel,
                    label,
                    f"rt.{r['verb']} destination rank '{dest}' differs "
                    f"from the ownership selection 'owner == {q}' that "
                    f"built its operands: the update lands on the wrong "
                    f"rank"))
    for s in scan.comm.get("sends", ()):
        dest = s["dest"]
        for q in s["selected"]:
            if dest is not None and q != dest:
                findings.append(EffectFinding(
                    "ANL105", SEVERITY["ANL105"], path, s["line"], kernel,
                    label,
                    f"rt.send destination rank '{dest}' differs from the "
                    f"ownership selection 'owner == {q}' that built its "
                    f"payload: the message is routed to a non-owner"))


def _anl104(mod: _ModuleInfo, kernel: str,
            phases: list[tuple[_Launch, PhaseSignature]],
            findings: list[EffectFinding], allowlist: list[dict]) -> None:
    """Adjacent barrier-separated SM phases with disjoint effect sets."""
    per_fn: dict[int, list] = {}
    for launch, sig in phases:
        if sig is None or launch.method == "superstep":
            continue
        per_fn.setdefault(id(launch.enclosing), []).append((launch, sig))
    for entries in per_fn.values():
        entries.sort(key=lambda e: e[0].line)
        for (la, sa), (lb, sb) in zip(entries, entries[1:]):
            barriers = mod.barrier_lines.get(id(la.enclosing), [])
            explicit = any(la.line < ln < lb.line for ln in barriers)
            if not la.barrier and not explicit:
                continue             # already fused, ANL004's domain
            wa = mod.hints.expand(sa.writes)
            wb = mod.hints.expand(sb.writes)
            ra, rb = mod.hints.expand(sa.reads), mod.hints.expand(sb.reads)
            conflict = (
                any(_pattern_overlap(x, y) for x in wa for y in (wb | rb))
                or any(_pattern_overlap(x, y) for x in wb for y in ra))
            if conflict:
                continue
            findings.append(EffectFinding(
                "ANL104", SEVERITY["ANL104"], sa.path, lb.line, kernel,
                sa.label,
                f"barrier between phases '{sa.label}' (line {la.line}) and "
                f"'{sb.label}' (line {lb.line}) separates disjoint effect "
                f"sets: elidable (GS candidate; async-scheduler allowlist)"))
            allowlist.append({
                "kernel": kernel, "path": sa.path,
                "after": sa.label, "before": sb.label,
                "line": lb.line})


def analyze_modules(mods: list[_ModuleInfo],
                    entries: Iterable[tuple[str, _ModuleInfo, str]]
                    ) -> EffectReport:
    """Infer effects for ``entries`` = (kernel name, module, entry fn)."""
    kernels: dict[str, KernelEffects] = {}
    findings: list[EffectFinding] = []
    allowlist: list[dict] = []
    scanned: dict[int, tuple] = {}       # id(launch) -> (sig, finding slice)
    by_mod_launch = [(mod, launch) for mod in mods for launch in mod.launches]

    for kname, emod, efn_name in entries:
        efn = emod.top_funcs.get(efn_name)
        if efn is None:
            raise ValueError(
                f"kernel entry {efn_name!r} not found in {emod.path}")
        reach = _reach(emod, efn, mods)
        keff = KernelEffects(name=kname, path=_rel(emod.path),
                             entry=efn_name)
        kernel_phases: list[tuple[_Launch, PhaseSignature]] = []
        phase_mods: dict[int, _ModuleInfo] = {}
        for mod, launch in by_mod_launch:
            if launch.enclosing is None or id(launch.enclosing) not in reach:
                continue
            if id(launch.call) in scanned:
                sig, cached = scanned[id(launch.call)]
                findings.extend(
                    EffectFinding(f.rule, f.severity, f.path, f.line,
                                  kname, f.phase, f.message)
                    for f in cached)
            else:
                before = len(findings)
                sig = _scan_launch(mod, launch, kname, findings)
                scanned[id(launch.call)] = (sig, list(findings[before:]))
            if sig is not None:
                kernel_phases.append((launch, sig))
                phase_mods[id(launch)] = mod
        kernel_phases.sort(key=lambda e: (e[1].path, e[0].line))
        keff.phases = [sig for _, sig in kernel_phases]

        # whole-kernel flat write set (regions + epilogue bookkeeping)
        writes: set[str] = set()
        windows: set[str] = set()
        for mod in mods:
            for fn in mod.funcs:
                if id(fn) in reach:
                    w, win = _flat_write_set(mod, fn)
                    writes |= w
                    windows |= win
            windows |= {w for w in mod.windows
                        if any(id(f) in reach for f in mod.funcs
                               if f is not None)} if mod is emod else set()
        keff.write_set = sorted(writes - {"?"})
        keff.windows = sorted(windows - {"?"})
        kernels[kname] = keff

        # ANL104 needs the per-kernel phase ordering
        for mod in mods:
            mod_phases = [(la, sig) for la, sig in kernel_phases
                          if phase_mods[id(la)] is mod]
            if mod_phases:
                _anl104(mod, kname, mod_phases, findings, allowlist)

    # de-duplicate findings shared by several kernels (helper modules)
    seen: set[tuple] = set()
    unique: list[EffectFinding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule,
                                             f.kernel)):
        key = (f.rule, f.path, f.line, f.message)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    allow_seen: set[tuple] = set()
    allow_unique: list[dict] = []
    for a in sorted(allowlist, key=lambda a: (a["path"], a["line"],
                                              a["kernel"])):
        key = (a["path"], a["line"])
        if key in allow_seen:
            continue
        allow_seen.add(key)
        allow_unique.append(a)
    return EffectReport(kernels=kernels, findings=unique,
                        allowlist=allow_unique)


def analyze_effects(root: Path | None = None) -> EffectReport:
    """Run the inference over the shipped 17-kernel matrix."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    files = {root / rel for _, rel, _ in KERNELS}
    files |= set((root / "algorithms").glob("*.py"))
    files |= set((root / "strategies").glob("*.py"))
    mods = _load_modules(files)
    by_path = {Path(m.path).resolve(): m for m in mods}
    entries = [(name, by_path[(root / rel).resolve()], fn)
               for name, rel, fn in KERNELS]
    return analyze_modules(mods, entries)


def effects_source(source: str, path: str = "<string>") -> EffectReport:
    """Ad-hoc inference over one module: every top-level function that
    (transitively) launches a phase becomes a kernel entry."""
    mod = _ModuleInfo(path, source)
    entries = []
    for name, fn in mod.top_funcs.items():
        reach = _reach(mod, fn, [mod])
        if any(id(la.enclosing) in reach for la in mod.launches
               if la.enclosing is not None):
            entries.append((name, mod, name))
    return analyze_modules([mod], entries)
