"""Rendering and golden-file plumbing for the effect-inference pass.

The JSON document (schema ``repro-effects/1``) is deterministic --
kernels sorted by name, phases in (path, line) order, findings sorted by
location -- so the committed golden file ``EFFECTS.json`` diffs cleanly
in CI: a kernel edit that changes any inferred signature fails loudly
until the golden is regenerated with::

    PYTHONPATH=src python -m repro.analysis.effect_report -o EFFECTS.json
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.effects import EffectReport, analyze_effects

SCHEMA = "repro-effects/1"


def report_to_json(report: EffectReport) -> dict:
    return {
        "schema": SCHEMA,
        "kernels": {name: report.kernels[name].to_json()
                    for name in sorted(report.kernels)},
        "findings": [f.to_json() for f in report.findings],
        "allowlist": report.allowlist,
    }


def render_json(report: EffectReport) -> str:
    return json.dumps(report_to_json(report), indent=2, sort_keys=False) + "\n"


def render_text(report: EffectReport) -> str:
    lines: list[str] = []
    for name in sorted(report.kernels):
        k = report.kernels[name]
        lines.append(f"{name}  ({k.path}:{k.entry})")
        for p in k.phases:
            decl = p.declared or "-"
            lines.append(
                f"  [{p.kind:10}] {p.label:18} line {p.line:<4} "
                f"declared={decl:5} inferred={p.inferred}")
            if p.reads:
                lines.append(f"      reads:  {', '.join(p.reads)}")
            if p.writes:
                lines.append(f"      writes: {', '.join(p.writes)}")
            for a in p.atomics:
                lines.append(
                    f"      atomic {a['verb']} {','.join(a['arrays'])} "
                    f"[{a['index']}] -> {a['verdict']}")
            if p.comm:
                for s in p.comm.get("sends", ()):
                    lines.append(f"      send tag={s['tag']} -> {s['dest']}")
                for r in p.comm.get("rma", ()):
                    lines.append(
                        f"      {r['verb']} window={','.join(r['windows'])} "
                        f"-> {r['dest']}")
                for g in p.comm.get("gets", ()):
                    lines.append(
                        f"      rma_get window={','.join(g['windows'])} "
                        f"<- {g['dest']}")
        if k.write_set:
            lines.append(f"  write set: {', '.join(k.write_set)}")
        if k.windows:
            lines.append(f"  windows:   {', '.join(k.windows)}")
        lines.append("")
    if report.findings:
        lines.append("findings:")
        lines.extend(f"  {f}" for f in report.findings)
    else:
        lines.append("findings: none")
    if report.allowlist:
        lines.append("barrier-elision allowlist (ANL104):")
        lines.extend(
            f"  {a['kernel']}: {a['after']} || {a['before']} "
            f"({a['path']}:{a['line']})"
            for a in report.allowlist)
    return "\n".join(lines) + "\n"


def write_report(path: str | Path, report: EffectReport | None = None) -> Path:
    """Write the canonical JSON effect report (golden regeneration)."""
    if report is None:
        report = analyze_effects()
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_json(report), encoding="utf-8")
    return out


def load_golden(path: str | Path) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def main(argv: list[str] | None = None) -> int:
    import argparse

    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis.effect_report",
        description="Regenerate the canonical JSON effect report.")
    ap.add_argument("-o", "--output", default="EFFECTS.json",
                    help="output path (default: EFFECTS.json)")
    args = ap.parse_args(argv)
    out = write_report(args.output)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
