"""Epoch-based access checker for the distributed-memory runtime.

The SM detector (:mod:`repro.analysis.race`) polices the Section-3.8
ownership/atomicity contract at thread barriers.  The DM runtime has a
different discipline -- the epoch rules of MPI-3 one-sided communication
(foMPI on the paper's Crays) plus superstep-delimited message delivery
-- and this module polices that:

``unflushed-read``
    Window state (the target of remote puts/accumulates) read -- by its
    owner through the memory model, or by anyone through ``rma_get`` --
    while an overlapping put/accumulate is pending and **not yet
    flushed**.  One-sided operations are unordered and incomplete until
    ``rma_flush``; reading the target before the flush observes an
    arbitrary interleaving.  Flagged when the pending op either crossed
    a superstep boundary unflushed (the dropped-flush bug) or precedes
    the read in the *same* process's program order.
``write-vs-acc``
    A plain local write to a window region that remote processes target
    with puts/accumulates in the same epoch -- the DM analogue of the
    SM detector's plain-vs-atomic ``mixed`` race.  The owner must route
    its own updates through (local) accumulates, exactly as PageRank-PA
    routes local updates through its own phase on shared memory.
``early-inbox``
    ``inbox()`` called while messages that its tag selector would match
    are still in flight (posted this superstep, deliverable only at the
    next boundary).  Message tags (see :meth:`DMRuntime.send`)
    disambiguate generations: a reply superstep may read this epoch's
    *requests* while its own replies are in flight, as long as the two
    classes carry different tags.
``acc-dtype``
    Float and integer ``rma_accumulate`` aimed at the same window
    region in one epoch.  The paper's Section 6.5 point: float
    accumulates take a lock-based protocol while 64-bit integer
    fetch-and-ops take the hardware fast path -- mixing them on one
    region means the lock protocol no longer excludes the concurrent
    fast-path op, and MPI leaves the outcome undefined.

Attribution relies on the optional ``window=``/``idx=`` annotations of
the RMA verbs and on the registered array handles of local accesses.
Local reads/writes count as *window state* only at indices the
accessing process owns -- writes into not-owned index ranges are, by
construction of the 1D partition, private send/staging buffers (the MP
PageRank contribution vectors), not shared state.  Position-blind
accesses to a vertex-sized window are conservatively treated as the
whole owned block; RMA ops with no ``window=`` cannot be attributed and
are tallied in ``unattributed_ops``.

Processes execute *sequentially* inside a simulated superstep, so
wall-clock order within an epoch is an artifact.  Cross-process rules
(write-vs-acc, acc-dtype) are therefore evaluated at epoch close over
the epoch's whole access log, regardless of intra-epoch order; only the
program order *within* one process (op issued, then read, no flush
between) is taken literally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.race import (
    MAX_RACES, EpochStats, Race, RaceError, RaceReport, _as_index_array,
)
from repro.machine.memory import ArrayHandle


@dataclass
class _RmaOp:
    """One put/accumulate and its flush state."""

    kind: str                 #: 'put' | 'acc'
    rank: int                 #: issuing process
    owner: int                #: target process
    window: str | None        #: registered array name, if annotated
    idx: np.ndarray | None    #: global item indices, if annotated
    dtype: str | None         #: 'float' | 'int' for accumulates
    epoch: int
    seq: int
    flushed: bool = field(default=False, compare=False)


class DMRaceDetector:
    """Records every DM communication event and checks the epoch rules.

    One object plays two roles: it proxies ``rt.mem`` (so local reads
    and writes of window state are attributed to the active process)
    and it is installed as ``rt.observer`` (so sends, inbox reads, RMA
    verbs, and flushes are seen with their annotations).  All cost
    accounting is delegated to the wrapped memory model untouched;
    simulated times and counters are identical with the detector on.
    """

    def __init__(self, rt, raise_on_race: bool = False) -> None:
        self.rt = rt
        self.inner = rt.mem
        self.part = rt.part
        self.raise_on_race = raise_on_race
        self.races: list[Race] = []
        self.per_epoch: list[EpochStats] = []
        self.unattributed_ops = 0  #: RMA puts/accs/gets with no window=
        self.epoch = 0
        self._closed_epochs = 0
        self._active: int | None = None
        self._seq = 0
        self._pending: list[_RmaOp] = []      # unflushed or awaiting GC
        self._epoch_ops: list[_RmaOp] = []    # every put/acc this epoch
        # window -> rank -> list of owned index arrays plain-written
        self._epoch_writes: dict[str, dict[int, list]] = {}
        self._handles: dict[str, ArrayHandle] = {}
        self._emitted: set[tuple] = set()
        self._totals = RaceReport()
        self._stats = EpochStats(epoch=0)

    # -- delegated memory surface --------------------------------------------------
    @property
    def arrays(self) -> dict:
        return self.inner.arrays

    @property
    def counters(self):
        return self.inner.counters

    def register(self, name: str, array_or_size, itemsize: int | None = None
                 ) -> ArrayHandle:
        handle = self.inner.register(name, array_or_size, itemsize)
        self._handles[handle.name] = handle
        return handle

    def read(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        self._note_read(handle, idx, count, start)
        self.inner.read(handle, idx=idx, count=count, mode=mode, start=start)

    def write(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        self._note_write(handle, idx, count, start)
        self.inner.write(handle, idx=idx, count=count, mode=mode, start=start)

    def __getattr__(self, name):
        # branch_cond / flop / set_counters / faa / ... -- pure delegation
        return getattr(self.inner, name)

    # -- observer hooks (DMRuntime) ------------------------------------------------
    def on_activate(self, p: int) -> None:
        self._active = p

    def on_superstep_begin(self, index: int) -> None:
        self.epoch = index

    def on_superstep_end(self) -> None:
        self._active = None
        self._close_epoch()

    def on_send(self, rank: int, dest: int, tag) -> None:
        self._seq += 1

    def on_inbox(self, rank: int, tag) -> None:
        self._seq += 1
        in_flight = self.rt._in_flight[rank]
        matching = [m for m in in_flight if tag is None or m[2] == tag]
        if matching:
            self._emit("early-inbox", f"mailbox[{rank}]",
                       (int(matching[0][0]), rank),
                       np.asarray(sorted({int(m[0]) for m in matching}),
                                  dtype=np.int64))

    def on_rma(self, kind: str, rank: int, owner: int, window, idx,
               dtype) -> None:
        self._seq += 1
        name = self._window_name(window)
        gidx = _as_index_array(idx) if idx is not None else None
        if kind == "get":
            if name is None:
                self.unattributed_ops += 1
                return
            self._check_read(name, rank, owner, gidx)
            return
        op = _RmaOp(kind=kind, rank=rank, owner=owner, window=name, idx=gidx,
                    dtype=dtype, epoch=self.epoch, seq=self._seq)
        self._epoch_ops.append(op)
        if owner == rank:
            # a local put is a plain write by the owner; a local
            # accumulate is a processor atomic -- compatible with remote
            # accumulates, but still subject to the dtype rule
            if kind == "put" and name is not None:
                self._log_write(name, rank, self._op_indices(op))
            return
        if name is None:
            self.unattributed_ops += 1
        self._pending.append(op)

    def on_flush(self, rank: int, owner: int | None) -> None:
        self._seq += 1
        for op in self._pending:
            if op.rank == rank and (owner is None or op.owner == owner):
                op.flushed = True

    def on_rollback(self, rank: int) -> None:
        """Forget the current epoch's records of a crashed process.

        The fault layer rolled back every effect of ``rank``'s failed
        superstep attempt -- window state, staged ops, outgoing
        messages -- before rerunning it, so the epoch log must drop the
        attempt too: otherwise the failed attempt's unflushed ops would
        dangle as false ``unflushed-read`` pendings and its writes and
        accumulates would double-count in the epoch-close rules.
        Records from *earlier* epochs (genuinely unflushed ops) are
        kept; a crash does not undo history.
        """
        self._pending = [op for op in self._pending
                         if not (op.rank == rank and op.epoch == self.epoch)]
        self._epoch_ops = [op for op in self._epoch_ops if op.rank != rank]
        for per_rank in self._epoch_writes.values():
            per_rank.pop(rank, None)

    # -- local access attribution ---------------------------------------------------
    def _window_name(self, window) -> str | None:
        if window is None:
            return None
        name = getattr(window, "name", window)
        return name if isinstance(name, str) else None

    def _is_window(self, handle) -> bool:
        return getattr(handle, "size", -1) == self.part.n

    def _global_indices(self, rank: int, idx, count, start) -> np.ndarray:
        if idx is not None:
            return _as_index_array(idx)
        if start is not None and count:
            return np.arange(int(start), int(start) + int(count),
                             dtype=np.int64)
        # position-blind: conservatively the whole owned block
        return self.part.owned(rank)

    def _owned_only(self, rank: int, arr: np.ndarray) -> np.ndarray:
        if len(arr) == 0:
            return arr
        return arr[np.asarray(self.part.is_local(rank, arr))]

    def _note_read(self, handle, idx, count, start) -> None:
        if self._active is None or not self._is_window(handle):
            return
        rank = self._active
        arr = self._owned_only(rank, self._global_indices(rank, idx, count,
                                                          start))
        if len(arr):
            self._check_read(handle.name, rank, rank, arr)

    def _note_write(self, handle, idx, count, start) -> None:
        if self._active is None or not self._is_window(handle):
            return
        rank = self._active
        arr = self._owned_only(rank, self._global_indices(rank, idx, count,
                                                          start))
        if len(arr):
            self._log_write(handle.name, rank, arr)

    def _log_write(self, name: str, rank: int, arr: np.ndarray) -> None:
        self._epoch_writes.setdefault(name, {}).setdefault(rank, []).append(arr)

    def _op_indices(self, op: _RmaOp) -> np.ndarray:
        return op.idx if op.idx is not None else self.part.owned(op.owner)

    # -- rule (a): reads against pending unflushed ops ------------------------------
    def _check_read(self, window: str, reader: int, owner: int,
                    idx: np.ndarray | None) -> None:
        ridx = idx if idx is not None else self.part.owned(owner)
        for op in self._pending:
            if op.flushed or op.window != window or op.owner != owner:
                continue
            # cross-process order inside one epoch is a simulation
            # artifact; only epoch-crossing ops and the reader's own
            # program order are definite
            if not (op.epoch < self.epoch or op.rank == reader):
                continue
            overlap = np.intersect1d(ridx, self._op_indices(op))
            if len(overlap):
                self._stats.read_conflicts += len(overlap)
                self._emit("unflushed-read", window, (op.rank, reader),
                           overlap, dedupe=(op.seq, reader))

    # -- epoch close: rules (b) and (d) ----------------------------------------------
    def _close_epoch(self) -> None:
        races_before = len(self.races)
        self._analyze_epoch()
        self._stats.epoch = self._closed_epochs
        self.per_epoch.append(self._stats)
        self._totals.write_conflicts += self._stats.write_conflicts
        self._totals.read_conflicts += self._stats.read_conflicts
        self._totals.atomic_conflicts += self._stats.atomic_conflicts
        self._stats = EpochStats(epoch=self._closed_epochs + 1)
        self._epoch_ops = []
        self._epoch_writes = {}
        self._pending = [op for op in self._pending if not op.flushed]
        self._closed_epochs += 1
        if len(self.races) > races_before and self.raise_on_race:
            raise RaceError(self.report().summary())

    def _analyze_epoch(self) -> None:
        # (b) plain owner writes vs remote puts/accumulates, per window
        remote = [op for op in self._epoch_ops
                  if op.rank != op.owner and op.window is not None]
        for op in remote:
            writes = self._epoch_writes.get(op.window, {}).get(op.owner)
            if not writes:
                continue
            written = np.unique(np.concatenate(writes))
            overlap = np.intersect1d(written, self._op_indices(op))
            if len(overlap):
                self._stats.write_conflicts += len(overlap)
                self._emit("write-vs-acc", op.window, (op.owner, op.rank),
                           overlap, dedupe=(op.seq,))

        # (d) mixed float/int accumulates on one window region
        accs = [op for op in self._epoch_ops
                if op.kind == "acc" and op.window is not None]
        floats = [op for op in accs if op.dtype == "float"]
        ints = [op for op in accs if op.dtype != "float"]
        for fop in floats:
            for iop in ints:
                if fop.window != iop.window or fop.owner != iop.owner:
                    continue
                overlap = np.intersect1d(self._op_indices(fop),
                                         self._op_indices(iop))
                if len(overlap):
                    self._stats.atomic_conflicts += len(overlap)
                    self._emit("acc-dtype", fop.window, (fop.rank, iop.rank),
                               overlap, dedupe=(fop.seq, iop.seq))

    # -- emission -------------------------------------------------------------------
    def _emit(self, kind: str, handle: str, threads: tuple,
              addrs: np.ndarray, dedupe: tuple = ()) -> None:
        self._totals.total_racy_addresses += len(addrs)
        key = (kind, handle, threads, self._closed_epochs, *dedupe)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if len(self.races) < MAX_RACES:
            self.races.append(Race(
                kind=kind, handle=handle, epoch=self._closed_epochs,
                threads=threads, count=int(len(addrs)),
                sample=tuple(int(a) for a in addrs[:8])))
        # mid-epoch rules raise at once (there is no closing barrier to
        # defer to for a read that already happened)
        if self.raise_on_race and kind in ("unflushed-read", "early-inbox"):
            raise RaceError(self.report().summary())

    @property
    def pending_unflushed(self) -> int:
        """Remote ops currently pending without a completing flush."""
        return sum(1 for op in self._pending if not op.flushed)

    def report(self) -> RaceReport:
        r = self._totals
        return RaceReport(
            races=list(self.races), epochs=self._closed_epochs,
            total_racy_addresses=r.total_racy_addresses,
            write_conflicts=r.write_conflicts,
            read_conflicts=r.read_conflicts,
            atomic_conflicts=r.atomic_conflicts,
            per_epoch=list(self.per_epoch))


def attach_dm_race_detector(rt, raise_on_race: bool = False
                            ) -> DMRaceDetector:
    """Wrap ``rt.mem`` and install the epoch checker as ``rt.observer``.

    Must run *before* the algorithm registers its windows (kernels cache
    ``rt.mem`` at entry).  Returns the detector; the wrapped memory
    model stays reachable as ``detector.inner``.
    """
    detector = DMRaceDetector(rt, raise_on_race=raise_on_race)
    rt.mem = detector
    rt.observer = detector
    return detector
