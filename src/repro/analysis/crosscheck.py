"""Cross-check observed conflicts against the PRAM k-relaxation bounds.

The detector's per-epoch statistics (addresses plain-written / read /
atomically touched by >= 2 threads) are the measured counterparts of
the ``read_conflicts`` / ``write_conflicts`` terms the Section-4
analyses predict.  Those analyses are Θ-bounds, so the check is
directional, not exact:

* **pull** variants must show **zero** plain-write conflicts (and an
  empty race list) -- this is the hard half, the paper's ownership
  discipline made operational.
* **push** variants must keep their observed write-side conflicts
  (plain + atomic overlap) within ``slack ×`` the predicted
  ``write_conflicts`` bound, and likewise for reads.  Instance
  parameters the bounds need (iteration counts L, diameter D, Δ-epoch
  counts) are proxied by the run's own observed iteration counts, so
  the comparison is per-instance rather than worst-case.

A small additive allowance absorbs overlap the bounds do not model:
offset-array reads at partition block boundaries, frontier-array scans,
and similar O(P)-per-epoch shared-structure touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.race import RaceReport
from repro.machine.counters import PerfCounters
from repro.pram.costs import (
    AlgorithmCost, bc_cost, bfs_cost, boman_coloring_cost, boruvka_cost,
    pagerank_cost, sssp_delta_cost, triangle_count_cost,
)
from repro.pram.models import PRAM


@dataclass(frozen=True)
class CrossCheckResult:
    """Verdict of one (algorithm, direction) run against its bound."""

    algorithm: str
    direction: str
    ok: bool
    observed_write: int      #: plain-write + atomic overlapped addresses
    observed_read: int
    predicted_write: float   #: Θ-bound evaluated at the instance
    predicted_read: float
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        return (f"[{mark}] {self.algorithm}/{self.direction}: "
                f"W {self.observed_write} <= ~{self.predicted_write:.0f}, "
                f"R {self.observed_read} <= ~{self.predicted_read:.0f}"
                + (f" -- {self.detail}" if self.detail else ""))


def predicted_cost(algorithm: str, direction: str, *, n: int, m: int,
                   d_hat: int, P: int, iterations: int = 1,
                   inner_iterations: int = 1, sources: int | None = None,
                   model: PRAM = PRAM.CRCW_CB) -> AlgorithmCost:
    """Evaluate the Section-4 bound with observed instance parameters.

    ``iterations`` proxies the analysis's L / D / (L/Δ) round counts
    (the run's own superstep count); ``inner_iterations`` is Δ-
    Stepping's total inner-loop count, ``sources`` BC's source count.
    """
    it = max(1, iterations)
    if algorithm == "PR":
        return pagerank_cost(direction, model, n, m, d_hat, P, L=it)
    if algorithm == "TC":
        return triangle_count_cost(direction, model, n, m, d_hat, P)
    if algorithm == "BFS":
        return bfs_cost(direction, model, n, m, d_hat, P, D=it)
    if algorithm == "SSSP-Δ":
        l_delta = max(1.0, inner_iterations / it)
        return sssp_delta_cost(direction, model, n, m, d_hat, P,
                               L_over_delta=it, l_delta=l_delta)
    if algorithm == "BC":
        return bc_cost(direction, model, n, m, d_hat, P, D=it,
                       sources=sources)
    if algorithm == "BGC":
        return boman_coloring_cost(direction, model, n, m, d_hat, P, L=it)
    if algorithm == "MST":
        return boruvka_cost(direction, model, n, m, d_hat, P)
    raise ValueError(f"no PRAM bound registered for algorithm {algorithm!r}")


def crosscheck(algorithm: str, direction: str, report: RaceReport, *,
               n: int, m: int, d_hat: int, P: int, iterations: int = 1,
               inner_iterations: int = 1, sources: int | None = None,
               slack: float = 4.0) -> CrossCheckResult:
    """Compare one run's :class:`RaceReport` to its PRAM bound."""
    cost = predicted_cost(algorithm, direction, n=n, m=m, d_hat=d_hat, P=P,
                          iterations=iterations,
                          inner_iterations=inner_iterations, sources=sources)
    observed_w = report.write_conflicts + report.atomic_conflicts
    observed_r = report.read_conflicts
    # shared-structure touches the Θ-bounds ignore: offsets straddling
    # block boundaries, frontier scans -- O(P) addresses per epoch
    allowance = 8 * P * max(1, report.epochs)

    problems = []
    if not report.clean:
        problems.append(f"{len(report.races)} race(s) recorded")
    if direction == "pull":
        if report.write_conflicts:
            problems.append(
                f"pull variant shows {report.write_conflicts} plain-write "
                f"conflict(s); ownership discipline requires zero")
    else:
        bound_w = slack * cost.write_conflicts + allowance
        if observed_w > bound_w:
            problems.append(
                f"write-side conflicts {observed_w} exceed "
                f"{slack}x predicted {cost.write_conflicts:.0f} + {allowance}")
    # push relaxations pre-read the remote addresses they then update
    # atomically; Section 4 books those accesses under the write-
    # conflict term, so the read bound inherits it for push
    pred_r = cost.read_conflicts + (cost.write_conflicts
                                    if direction != "pull" else 0.0)
    bound_r = slack * pred_r + allowance
    if observed_r > bound_r:
        problems.append(
            f"read conflicts {observed_r} exceed "
            f"{slack}x predicted {cost.read_conflicts:.0f} + {allowance}")

    return CrossCheckResult(
        algorithm=algorithm, direction=direction, ok=not problems,
        observed_write=observed_w, observed_read=observed_r,
        predicted_write=cost.write_conflicts, predicted_read=cost.read_conflicts,
        detail="; ".join(problems))


@dataclass(frozen=True)
class DMCommCheckResult:
    """Verdict of one DM run's communication volume against its bound.

    The Section 6.3 kernels communicate only across partition cuts:
    every remote get/put/accumulate and every point-to-point message is
    chargeable to a directed cross-partition edge, examined at most
    once per *round* (an iteration, a BFS level, a Δ-stepping inner
    iteration), plus O(P²) per-superstep bookkeeping traffic (request
    skeletons, frontier bitmap fragments).  The check is directional
    with a ``slack`` factor, like :func:`crosscheck`.
    """

    algorithm: str
    variant: str
    ok: bool
    observed_remote: int      #: gets + puts + float/int accumulates
    observed_messages: int
    bound_remote: float
    bound_messages: float
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok" if self.ok else "FAIL"
        return (f"[{mark}] {self.algorithm}/{self.variant}: "
                f"rma {self.observed_remote} <= ~{self.bound_remote:.0f}, "
                f"msg {self.observed_messages} <= ~{self.bound_messages:.0f}"
                + (f" -- {self.detail}" if self.detail else ""))


def dm_crosscheck(algorithm: str, variant: str, counters: PerfCounters, *,
                  m_cross: int, P: int, supersteps: int, rounds: int = 1,
                  slack: float = 4.0) -> DMCommCheckResult:
    """Compare one DM run's counters to the cut-based communication bound.

    ``m_cross`` is the number of directed edges whose endpoints live on
    different processes; ``rounds`` is how many times each such edge may
    legitimately be re-examined (PR: iterations; BFS: levels; SSSP-Δ:
    total inner iterations; TC: ``1 + d_hat``, because each witness of a
    cross edge costs one accumulate).  Remote one-sided traffic per
    round is at most two operations per cut edge (the pull variants get
    both rank and degree); messaging is at most one batched message per
    cut edge per round plus the per-rank-pair skeletons.
    """
    observed_remote = int(counters.remote_gets + counters.remote_puts
                          + counters.remote_acc_float
                          + counters.remote_acc_int)
    observed_messages = int(counters.messages)
    base = max(1, int(m_cross)) * max(1, int(rounds))
    skeleton = P * P * max(1, int(supersteps))
    bound_remote = slack * 2 * base + skeleton
    bound_messages = slack * base + skeleton
    steps = max(1, math.ceil(math.log2(max(P, 2))))
    bound_collectives = slack * P * steps * max(1, int(supersteps))

    problems = []
    if observed_remote > bound_remote:
        problems.append(
            f"remote ops {observed_remote} exceed {slack}x 2x{base} cut "
            f"traffic + {skeleton}")
    if observed_messages > bound_messages:
        problems.append(
            f"messages {observed_messages} exceed {slack}x {base} cut "
            f"traffic + {skeleton}")
    if counters.collectives > bound_collectives:
        problems.append(
            f"collective steps {counters.collectives} exceed "
            f"{bound_collectives:.0f}")

    return DMCommCheckResult(
        algorithm=algorithm, variant=variant, ok=not problems,
        observed_remote=observed_remote, observed_messages=observed_messages,
        bound_remote=bound_remote, bound_messages=bound_messages,
        detail="; ".join(problems))
