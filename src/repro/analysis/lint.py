"""Static lint pass over push/pull kernels (the "analyze --lint" half).

The instrumented-algorithm convention is that every mutation of shared
state inside a parallel region is *declared* to the memory model, and
that remote writes in push kernels go through the atomic/lock
primitives (Section 3.8).  These properties are checkable from the AST
without running anything; four rules are enforced:

``ANL001`` (unaccounted-store)
    A parallel-region body stores into a shared array (subscript
    assignment or ``np.<ufunc>.at``) but declares **no** store at all to
    the memory model (no ``.write``/``.cas``/``.faa``/``.lock``): the
    mutation is invisible to every counter, cache and conflict model.
``ANL002`` (push-raw-store)
    A push-classified body stores into shared arrays without a single
    atomic/lock declaration on its push path -- the missing-atomics bug
    class the race detector catches dynamically.
``ANL003`` (push-ownership-check)
    A push-classified body calls ``owned_write_check``: the ownership
    assertion is the *pull* half of the contract; push code reaching it
    indicates a confused variant.
``ANL004`` (missing-barrier)
    A function launches a region with ``barrier=False`` but neither it
    nor its callers close the epoch: the function never calls
    ``.barrier()`` itself, and -- mirroring ANL005's one-level helper
    expansion -- no module-local caller of the function issues one
    either (the fused-phases idiom, where a helper runs several
    barrier-less regions and the caller barriers once, is clean).  With
    no barrier at either level the region's accesses bleed into the
    next epoch with no synchronization point.
``ANL006`` (unrecoverable-store)
    A function calls a store verb (``mem.write``/``cas``/``faa``/
    ``lock``) on the instrumented memory but is neither a traced
    region/superstep body nor a helper called from one (one-level
    expansion, as in ANL004/ANL005).  Such stores execute outside every
    region boundary, so the fault layer's region-granular
    checkpoint/rollback cannot undo them (unrecoverable by
    construction) and the tracer's counter reconciliation cannot see
    them -- the bug class PR 4 fixed in BFS's k-filter by moving it
    into a traced sequential region.
``ANL005`` (untyped-channel)
    A superstep body (the distributed-memory analogue of a parallel
    region) calls ``rt.send`` without ``tag=`` or a data-carrying RMA
    verb (``rt.put`` / ``rt.accumulate`` / ``rt.rma_put`` /
    ``rt.rma_accumulate``) without ``window=``.  Untagged messages
    cannot be matched by ``inbox(tag)`` (the epoch checker's early-inbox
    rule keys on tags), and window-less RMA is invisible to the
    write-vs-accumulate epoch discipline and to crash rollback.
    Superstep bodies are resolved through ``rt.superstep(body)`` call
    sites, including one level of local helper calls (buffered-flush
    idiom).

Direction classification is heuristic but matches the repo's idiom: a
body (or an enclosing function) named ``*push*``/``*pull*``, or a body
defined/storing under an ``if direction == PUSH:``-style branch.
Unclassifiable bodies only get the direction-agnostic rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

REGION_METHODS = {"parallel_for": 1, "for_each_thread": 0, "sequential": 0}
#: DM runtime receivers whose comm verbs ANL005 checks (keeps ufunc
#: methods like ``np.add.accumulate`` / ``itertools.accumulate`` out)
RUNTIME_NAMES = {"rt", "runtime"}
RMA_VERBS = {"put", "accumulate", "rma_put", "rma_accumulate"}
STORE_DECLS = {"write", "cas", "faa", "lock"}
#: receivers ANL006 treats as the instrumented memory model
MEMORY_NAMES = {"mem", "memory"}
ATOMIC_DECLS = {"cas", "faa", "lock"}
SCATTER_UFUNCS = {"add", "subtract", "minimum", "maximum", "multiply",
                  "bitwise_or", "bitwise_and", "logical_or", "logical_and"}
DIRECTION_CONSTS = {"PUSH": "push", "PUSH_PA": "push", "PULL": "pull",
                    "push": "push", "push-pa": "push", "pull": "pull"}


@dataclass(frozen=True)
class LintFinding:
    rule: str
    path: str
    line: int
    func: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} [{self.func}] {self.message}"


def _opposite(direction: str) -> str:
    return "pull" if direction == "push" else "push"


def _direction_compared(test: ast.expr) -> str | None:
    """'push'/'pull' if ``test`` is a ``direction == PUSH``-style compare."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)):
        return None
    for side in (test.left, test.comparators[0]):
        if isinstance(side, ast.Name) and side.id in DIRECTION_CONSTS:
            return DIRECTION_CONSTS[side.id]
        if isinstance(side, ast.Constant) and side.value in DIRECTION_CONSTS:
            return DIRECTION_CONSTS[side.value]
    return None


def _name_direction(chain: Iterable[str]) -> str | None:
    """Innermost-first scan of a qualname chain for push/pull markers."""
    for name in chain:
        low = name.lower()
        has_push, has_pull = "push" in low, "pull" in low
        if has_push and not has_pull:
            return "push"
        if has_pull and not has_push:
            return "pull"
    return None


def _store_target(node: ast.AST) -> str | None:
    """Base array name of a subscript store target, if recognizable."""
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
    return None


def _scatter_target(call: ast.Call) -> str | None:
    """Array name mutated by an ``np.<ufunc>.at(arr, ...)`` call."""
    f = call.func
    if (isinstance(f, ast.Attribute) and f.attr == "at"
            and isinstance(f.value, ast.Attribute)
            and f.value.attr in SCATTER_UFUNCS and call.args):
        return _store_target_or_name(call.args[0])
    return None


def _store_target_or_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _BodyScan(ast.NodeVisitor):
    """Collect stores/declarations/ownership-checks of one region body,
    each tagged with the direction branch it sits under (or None)."""

    def __init__(self) -> None:
        self.stores: list[tuple] = []        # (name, line, ctx)
        self.decls: list[tuple] = []         # (kind, line, ctx)
        self.ownership_checks: list[tuple] = []  # (line, ctx)
        self.local_names: set[str] = set()
        self.params: set[str] = set()
        self._ctx: str | None = None

    def scan(self, fn: ast.AST, params: Iterable[str]) -> "_BodyScan":
        self.params.update(params)
        self.local_names.update(params)
        body = fn.body if isinstance(body := getattr(fn, "body", None), list) \
            else [ast.Expr(value=body)]
        for stmt in body:
            self.visit(stmt)
        return self

    # direction-branch context ------------------------------------------------
    def visit_If(self, node: ast.If) -> None:
        d = _direction_compared(node.test)
        saved = self._ctx
        self.visit(node.test)
        self._ctx = d or saved
        for stmt in node.body:
            self.visit(stmt)
        self._ctx = _opposite(d) if d else saved
        for stmt in node.orelse:
            self.visit(stmt)
        self._ctx = saved

    # stores ------------------------------------------------------------------
    def _note_targets(self, targets: Iterable[ast.AST], line: int) -> None:
        for tgt in targets:
            if isinstance(tgt, ast.Tuple):
                self._note_targets(tgt.elts, line)
                continue
            name = _store_target(tgt)
            if name is not None:
                # arr[t] / arr[vs] with a bare region-body parameter as
                # the index is thread-private by the runtime's contract
                # (disjoint chunks, per-thread slots)
                sl = tgt.slice if isinstance(tgt, ast.Subscript) else None
                if isinstance(sl, ast.Name) and sl.id in self.params:
                    continue
                self.stores.append((name, line, self._ctx))
            elif isinstance(tgt, ast.Name):
                self.local_names.add(tgt.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_targets(node.targets, node.lineno)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_targets([node.target], node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_targets([node.target], node.lineno)
            self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.local_names.add(node.target.id)
        elif isinstance(node.target, ast.Tuple):
            for e in node.target.elts:
                if isinstance(e, ast.Name):
                    self.local_names.add(e.id)
        self.generic_visit(node)

    # calls -------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        scatter = _scatter_target(node)
        if scatter is not None:
            self.stores.append((scatter, node.lineno, self._ctx))
        f = node.func
        if isinstance(f, ast.Attribute):
            if f.attr in STORE_DECLS:
                self.decls.append((f.attr, node.lineno, self._ctx))
            elif f.attr == "owned_write_check":
                self.ownership_checks.append((node.lineno, self._ctx))
        elif isinstance(f, ast.Name) and f.id in ("rand_op", "seq_op"):
            # stream-op constructors (repro.streams.ops): the verb is
            # the first positional arg; a store verb declares the store
            # just like the equivalent mem.<verb> call would
            if (node.args and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in STORE_DECLS):
                self.decls.append((node.args[0].value, node.lineno,
                                   self._ctx))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested defs: their stores belong to their own region (if any)
        self.local_names.add(node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def shared_stores(self) -> list[tuple]:
        return [(n, ln, ctx) for n, ln, ctx in self.stores
                if n not in self.local_names]


def _mem_receiver(f: ast.Attribute) -> bool:
    """True for ``mem.<verb>`` / ``rt.mem.<verb>``-shaped receivers."""
    v = f.value
    if isinstance(v, ast.Name) and v.id in MEMORY_NAMES:
        return True
    return isinstance(v, ast.Attribute) and v.attr in MEMORY_NAMES


class _DirectStoreScan(ast.NodeVisitor):
    """Store-verb calls on the instrumented memory in one function's
    *direct* body -- nested defs and lambdas are their own (possibly
    region-covered) scopes and are skipped."""

    def __init__(self) -> None:
        self.stores: list[tuple] = []        # (verb, line)

    def scan(self, fn: ast.AST) -> "_DirectStoreScan":
        for stmt in getattr(fn, "body", []) or []:
            self.visit(stmt)
        return self

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if (isinstance(f, ast.Attribute) and f.attr in STORE_DECLS
                and _mem_receiver(f)):
            self.stores.append((f.attr, node.lineno))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _CommScan(ast.NodeVisitor):
    """Collect a superstep body's comm-verb calls and local helper calls
    (for ANL005's one-level helper expansion)."""

    def __init__(self) -> None:
        self.violations: list[tuple] = []    # (verb, line, missing kw)
        self.helper_calls: list[str] = []    # local functions invoked

    def scan(self, fn: ast.AST) -> "_CommScan":
        body = getattr(fn, "body", None)
        for stmt in (body if isinstance(body, list) else [ast.Expr(body)]):
            self.visit(stmt)
        return self

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Name):
            self.helper_calls.append(f.id)
        elif (isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name)
                and f.value.id in RUNTIME_NAMES):
            kwargs = {kw.arg for kw in node.keywords}
            if f.attr == "send" and "tag" not in kwargs:
                self.violations.append(("send", node.lineno, "tag"))
            elif f.attr in RMA_VERBS and "window" not in kwargs:
                self.violations.append((f.attr, node.lineno, "window"))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass                     # nested defs are their own bodies

    visit_AsyncFunctionDef = visit_FunctionDef


@dataclass
class _RegionBody:
    fn: ast.AST                  # FunctionDef or Lambda target
    qualname: str
    chain: tuple                 # enclosing names, innermost first
    def_ctx: str | None          # direction branch the def sits under
    line: int


class _ModuleIndex(ast.NodeVisitor):
    """First pass: function defs by scope, region launch sites, barriers."""

    def __init__(self) -> None:
        self.scopes: list[dict] = [{}]
        self.stack: list[tuple] = []          # (name, node)
        self.ctx_stack: list[str | None] = [None]
        self.defs_ctx: dict[int, str | None] = {}
        self.defs_chain: dict[int, tuple] = {}
        self.region_calls: list[tuple] = []   # (call, body_expr, enclosing, chain)
        self.barrier_calls: dict[int, bool] = {}   # id(enclosing fn) -> True
        self.barrier_false: list[tuple] = []  # (call node, enclosing fn, chain)
        self.superstep_calls: list[tuple] = []  # (call, body_expr, chain, scopes)
        self.all_funcs: list[ast.AST] = []    # every function def seen
        self.calls_in: dict[int, set] = {}    # id(fn) -> local names it calls

    def _enclosing(self):
        return self.stack[-1][1] if self.stack else None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scopes[-1][node.name] = node
        self.all_funcs.append(node)
        self.defs_ctx[id(node)] = self.ctx_stack[-1]
        chain = (node.name,) + tuple(n for n, _ in reversed(self.stack))
        self.defs_chain[id(node)] = chain
        self.stack.append((node.name, node))
        self.scopes.append({})
        self.ctx_stack.append(None)
        for stmt in node.body:
            self.visit(stmt)
        self.ctx_stack.pop()
        self.scopes.pop()
        self.stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append((node.name, None))
        self.scopes.append({})
        for stmt in node.body:
            self.visit(stmt)
        self.scopes.pop()
        self.stack.pop()

    def visit_If(self, node: ast.If) -> None:
        d = _direction_compared(node.test)
        saved = self.ctx_stack[-1]
        self.visit(node.test)
        self.ctx_stack[-1] = d or saved
        for stmt in node.body:
            self.visit(stmt)
        self.ctx_stack[-1] = _opposite(d) if d else saved
        for stmt in node.orelse:
            self.visit(stmt)
        self.ctx_stack[-1] = saved

    def visit_Call(self, node: ast.Call) -> None:
        f = node.func
        if isinstance(f, ast.Name):
            enc = self._enclosing()
            if enc is not None:
                self.calls_in.setdefault(id(enc), set()).add(f.id)
        # functools.partial(helper, ...) makes the enclosing function a
        # caller of ``helper`` even though ``helper`` is an argument, not
        # the callee -- without this, a non-barriering partial-wrapping
        # caller is invisible to ANL004's all-callers check
        if (_callee_name(f) == "partial" and node.args
                and isinstance(node.args[0], ast.Name)):
            enc = self._enclosing()
            if enc is not None:
                self.calls_in.setdefault(id(enc), set()).add(
                    node.args[0].id)
        if isinstance(f, ast.Attribute):
            if f.attr in REGION_METHODS:
                pos = REGION_METHODS[f.attr]
                body = None
                for kw in node.keywords:
                    if kw.arg == "body":
                        body = kw.value
                if body is None and len(node.args) > pos:
                    body = node.args[pos]
                chain = tuple(n for n, _ in reversed(self.stack))
                if body is not None:
                    self.region_calls.append(
                        (node, body, self._enclosing(), chain,
                         list(self.scopes), self.ctx_stack[-1]))
                for kw in node.keywords:
                    if (kw.arg == "barrier"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False):
                        self.barrier_false.append(
                            (node, self._enclosing(), chain))
            elif f.attr == "barrier":
                enc = self._enclosing()
                self.barrier_calls[id(enc)] = True
            elif f.attr == "superstep":
                body = node.args[0] if node.args else None
                for kw in node.keywords:
                    if kw.arg == "body":
                        body = kw.value
                if body is not None:
                    chain = tuple(n for n, _ in reversed(self.stack))
                    self.superstep_calls.append(
                        (node, body, chain, list(self.scopes)))
        self.generic_visit(node)


def _callee_name(f: ast.AST) -> str | None:
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return None


def _body_name(body_expr: ast.AST) -> str | None:
    """The local-function name a region body argument names, if any
    (plain reference, lambda trampoline, or functools.partial)."""
    if isinstance(body_expr, ast.Name):
        return body_expr.id
    if (isinstance(body_expr, ast.Lambda)
            and isinstance(body_expr.body, ast.Call)
            and isinstance(body_expr.body.func, ast.Name)):
        return body_expr.body.func.id
    if (isinstance(body_expr, ast.Call)
            and _callee_name(body_expr.func) == "partial"
            and body_expr.args):
        return _body_name(body_expr.args[0])
    return None


def _resolve_body(body_expr: ast.AST, scopes: list[dict]):
    """The FunctionDef a region's body argument refers to, if traceable."""
    if isinstance(body_expr, ast.Name):
        for scope in reversed(scopes):
            if body_expr.id in scope:
                return scope[body_expr.id]
        return None
    if isinstance(body_expr, ast.Lambda):
        # unwrap `lambda: helper(...)` trampolines
        if isinstance(body_expr.body, ast.Call) and \
                isinstance(body_expr.body.func, ast.Name):
            for scope in reversed(scopes):
                if body_expr.body.func.id in scope:
                    return scope[body_expr.body.func.id]
        return body_expr
    # unwrap `functools.partial(body_fn, ...)` region bodies
    if (isinstance(body_expr, ast.Call)
            and _callee_name(body_expr.func) == "partial"
            and body_expr.args):
        return _resolve_body(body_expr.args[0], scopes)
    return None


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source; returns findings (empty = clean)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding("ANL000", path, exc.lineno or 0, "<module>",
                            f"syntax error: {exc.msg}")]
    index = _ModuleIndex()
    index.visit(tree)
    findings: list[LintFinding] = []

    # ANL004: barrier=False with no barrier in the same function AND
    # none guaranteed by the callers (one-level caller expansion: a
    # helper running barrier-less regions is clean when every
    # module-local caller issues the closing .barrier() itself)
    for call, enclosing, chain in index.barrier_false:
        if index.barrier_calls.get(id(enclosing)):
            continue
        name = getattr(enclosing, "name", None)
        callers = [g for g in index.all_funcs
                   if g is not enclosing and name is not None
                   and name in index.calls_in.get(id(g), ())]
        if callers and all(index.barrier_calls.get(id(g)) for g in callers):
            continue
        func = ".".join(reversed(chain)) or "<module>"
        findings.append(LintFinding(
            "ANL004", path, call.lineno, func,
            "region launched with barrier=False but neither the "
            "function nor all of its callers call .barrier(): "
            "accesses leak into the next epoch unsynchronized"))

    seen_bodies: set[int] = set()
    for call, body_expr, _enc, chain, scopes, call_ctx in index.region_calls:
        fn = _resolve_body(body_expr, scopes)
        if fn is None or id(fn) in seen_bodies:
            continue
        seen_bodies.add(id(fn))
        if isinstance(fn, ast.Lambda):
            qual = ".".join(reversed(chain) or ("<module>",)) + ".<lambda>"
            name_chain = chain
            def_ctx = call_ctx
            params = [a.arg for a in fn.args.args]
        else:
            qual = ".".join(reversed(index.defs_chain.get(id(fn), (fn.name,))))
            name_chain = index.defs_chain.get(id(fn), (fn.name,))
            def_ctx = index.defs_ctx.get(id(fn)) or call_ctx
            params = [a.arg for a in fn.args.args]
        scan = _BodyScan().scan(fn, params)
        direction = def_ctx or _name_direction(name_chain)
        shared = scan.shared_stores()

        if shared and not scan.decls:
            lines = sorted({ln for _, ln, _ in shared})
            names = sorted({n for n, _, _ in shared})
            findings.append(LintFinding(
                "ANL001", path, lines[0], qual,
                f"stores to shared array(s) {names} bypass the "
                f"instrumented memory (no write/cas/faa/lock declared "
                f"in the region body; store lines {lines})"))

        push_stores = [(n, ln) for n, ln, ctx in shared
                       if (ctx or direction) == "push"]
        # an atomic/lock protects the push path unless it sits in an
        # explicit pull branch
        push_atomics = [d for d in scan.decls
                        if d[0] in ATOMIC_DECLS and d[2] != "pull"]
        if push_stores and not push_atomics:
            names = sorted({n for n, _ in push_stores})
            findings.append(LintFinding(
                "ANL002", path, push_stores[0][1], qual,
                f"push kernel stores to shared array(s) {names} "
                f"without any atomic/lock declaration: remote "
                f"writes must go through cas/faa/lock (Section 3.8)"))

        for ln, ctx in scan.ownership_checks:
            if (ctx or direction) == "push":
                findings.append(LintFinding(
                    "ANL003", path, ln, qual,
                    "push kernel calls owned_write_check: the ownership "
                    "assertion is the pull contract; push variants "
                    "declare remote writes with atomics/locks instead"))

    # ANL005: untyped channels inside superstep bodies
    seen_ss: set[int] = set()
    for call, body_expr, chain, scopes in index.superstep_calls:
        fn = _resolve_body(body_expr, scopes)
        if fn is None or id(fn) in seen_ss:
            continue
        seen_ss.add(id(fn))
        if isinstance(fn, ast.Lambda):
            qual = ".".join(reversed(chain) or ("<module>",)) + ".<lambda>"
        else:
            qual = ".".join(reversed(index.defs_chain.get(id(fn), (fn.name,))))
        scan = _CommScan().scan(fn)
        expanded: set[int] = {id(fn)}
        for helper in scan.helper_calls:
            for scope in reversed(scopes):
                if helper in scope:
                    h = scope[helper]
                    if id(h) not in expanded:
                        expanded.add(id(h))
                        scan.scan(h)
                    break
        for verb, ln, missing in scan.violations:
            what = ("messages cannot be matched by inbox(tag) and evade "
                    "the epoch checker's channel discipline"
                    if missing == "tag" else
                    "the operation is invisible to the write-vs-accumulate "
                    "epoch rules and to crash rollback")
            findings.append(LintFinding(
                "ANL005", path, ln, qual,
                f"superstep body calls rt.{verb}(...) without "
                f"{missing}=: {what}"))

    # ANL006: store verbs on the instrumented memory outside every
    # region/superstep boundary -- unreachable by region-granular
    # checkpoint/rollback (and invisible to counter reconciliation).
    # Covered = a resolved region/superstep body, or a module-local
    # function called from one (one-level helper expansion).
    covered: set[int] = set()
    body_names: set[str] = set()
    for _call, body_expr, _enc, _chain, scopes, _ctx in index.region_calls:
        fn = _resolve_body(body_expr, scopes)
        if fn is not None:
            covered.add(id(fn))
        name = _body_name(body_expr)
        if name is not None:
            body_names.add(name)
    for _call, body_expr, _chain, scopes in index.superstep_calls:
        fn = _resolve_body(body_expr, scopes)
        if fn is not None:
            covered.add(id(fn))
        name = _body_name(body_expr)
        if name is not None:
            body_names.add(name)
    by_name: dict[str, list[int]] = {}
    for fn in index.all_funcs:
        by_name.setdefault(fn.name, []).append(id(fn))
    # name-based coverage: the if/else two-branch idiom defines ``body``
    # once per direction branch in the *same* scope, so scope capture
    # only resolves the later def -- every same-named def is a region
    # body somewhere, which is exactly what this rule needs
    for name in body_names:
        covered.update(by_name.get(name, ()))
    helper_ids: set[int] = set()
    for fn in index.all_funcs:
        if id(fn) in covered:
            for callee in index.calls_in.get(id(fn), ()):
                helper_ids.update(by_name.get(callee, ()))
    covered |= helper_ids
    for fn in index.all_funcs:
        if id(fn) in covered:
            continue
        stores = _DirectStoreScan().scan(fn).stores
        if not stores:
            continue
        qual = ".".join(reversed(index.defs_chain.get(id(fn), (fn.name,))))
        verbs = sorted({v for v, _ in stores})
        findings.append(LintFinding(
            "ANL006", path, stores[0][1], qual,
            f"mem.{'/'.join(verbs)} outside any traced region or "
            f"superstep body: the store has no region boundary for the "
            f"fault layer to checkpoint, so a crash cannot roll it "
            f"back (and counter reconciliation cannot see it)"))

    return findings


def lint_file(path: str | Path) -> list[LintFinding]:
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def lint_paths(paths: Iterable[str | Path]) -> list[LintFinding]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    findings: list[LintFinding] = []
    for raw in paths:
        p = Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            findings.extend(lint_file(f))
    return findings
