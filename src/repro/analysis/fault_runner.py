"""Chaos suite: both kernel matrices under seeded fault plans.

The fault half of ``python -m repro analyze`` (``--faults [--sm|--dm|
--all]``): every (algorithm, backend) cell of
:data:`~repro.analysis.dm_runner.DM_MATRIX` -- and, for the SM side,
every (algorithm, direction) cell of :data:`SM_MATRIX` -- runs against
a grid of seeded fault plans with recovery enabled and the matching
dynamic checker attached, asserting the three robustness contracts:

* **convergence** -- results equal the sequential references (ranks to
  1e-9; retried float accumulates legally reassociate, nothing else
  moves);
* **checker discipline** -- the :mod:`~repro.analysis.dm_race` epoch
  checker (DM) / the :mod:`~repro.analysis.race` race detector (SM)
  stays clean *during* recovery (retries and replays are re-issued as
  real ops, crashes roll state back before the rerun);
* **accounted overhead** -- a faulted run's ``rt.time`` is never below
  the fault-free baseline on the same instance, strictly above it
  whenever recovery did costly work (retries, replays, waits, restarts,
  fences), and on the SM side the tracer's counter reconciliation
  (:meth:`~repro.observability.tracer.Tracer.reconcile`) holds exactly
  under faults -- recovery work is re-accounted inside traced regions,
  recovery *waits* are counter-free stall events.

The communication-bound cross-check of ``analyze --dm`` is *not*
applied here: retransmissions intentionally exceed the lossless cut
bounds -- the overhead table is the fault-mode replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.algorithms.dm_bfs import dm_bfs
from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.algorithms.reference import (
    bfs_reference, pagerank_reference, sssp_reference,
    triangle_per_vertex_reference,
)
from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp_delta import sssp_delta
from repro.algorithms.triangle import triangle_count
from repro.analysis.dm_race import attach_dm_race_detector
from repro.analysis.dm_runner import DM_MATRIX
from repro.analysis.race import attach_race_detector
from repro.analysis.runner import instance_graph
from repro.machine.cost_model import XC30, XC40, MachineSpec
from repro.machine.memory import CountingMemory
from repro.observability import attach_tracer
from repro.runtime.dm import DMRuntime
from repro.runtime.faults import (
    FaultInjector, FaultPlan, RecoveryConfig, attach_fault_injector,
)
from repro.runtime.sm import SMRuntime
from repro.runtime.sm_faults import SMFaultPlan, attach_sm_fault_injector

#: the SM chaos cells: the four reference-checked kernels x direction
#: (the BC/BGC/MST cells have no sequential reference wired here; the
#: race matrix of ``analyze`` already covers them fault-free)
SM_MATRIX = (
    ("PR", ("push", "pull")),
    ("TC", ("push", "pull")),
    ("BFS", ("push", "pull")),
    ("SSSP-Δ", ("push", "pull")),
)

#: PageRank iterations for every chaos run (small: the suite is a grid)
_PR_ITERS = 3

#: float tolerance against the references: recovery replays reorder
#: float accumulate application, which legally reassociates the sums
_FLOAT_ATOL = 1e-9


def default_fault_plans(seed: int) -> list[tuple[str, FaultPlan]]:
    """The named plan grid: one plan per fault class, plus everything."""
    return [
        ("drop", FaultPlan(seed=seed, drop=0.15)),
        ("duplicate", FaultPlan(seed=seed, duplicate=0.15,
                                rma_duplicate=0.15)),
        ("delay", FaultPlan(seed=seed, delay=0.15, reorder=0.10)),
        ("rma-lost", FaultPlan(seed=seed, rma_lost=0.20)),
        ("straggler", FaultPlan(seed=seed, straggler=0.10,
                                straggler_factor=4.0)),
        ("crash", FaultPlan(seed=seed, crash=0.04)),
        ("chaos", FaultPlan(seed=seed, drop=0.10, duplicate=0.08,
                            delay=0.08, reorder=0.05, rma_lost=0.10,
                            rma_duplicate=0.08, straggler=0.05,
                            crash=0.02)),
    ]


def default_sm_fault_plans(seed: int) -> list[tuple[str, SMFaultPlan]]:
    """The SM plan grid: one plan per fault class, plus everything."""
    return [
        ("straggler", SMFaultPlan(seed=seed, straggler=0.15,
                                  straggler_factor=4.0)),
        ("preempt", SMFaultPlan(seed=seed, lock_preempt=0.20)),
        ("cas-lost", SMFaultPlan(seed=seed, cas_lost=0.15)),
        ("cas-dup", SMFaultPlan(seed=seed, cas_duplicate=0.15)),
        ("store-delay", SMFaultPlan(seed=seed, store_delay=0.10)),
        ("crash", SMFaultPlan(seed=seed, crash=0.06)),
        ("chaos", SMFaultPlan(seed=seed, straggler=0.05, lock_preempt=0.10,
                              cas_lost=0.08, cas_duplicate=0.08,
                              store_delay=0.05, crash=0.02)),
    ]


@dataclass(frozen=True)
class FaultRun:
    """One (algorithm, backend, plan, seed) chaos execution."""

    algorithm: str
    variant: str
    plan_name: str
    seed: int
    converged: bool
    clean: bool                #: epoch checker / race detector clean
    pending_unflushed: int
    fired: int                 #: fault events injected
    costly: int                #: recovery actions that must cost time
    base_time: float           #: fault-free rt.time on the same instance
    time: float                #: faulted rt.time
    races: tuple = ()
    runtime: str = "dm"        #: which runtime's matrix the cell is from
    reconciled: bool = True    #: tracer counter reconciliation (SM cells)

    @property
    def overhead(self) -> float:
        return self.time - self.base_time

    @property
    def overhead_accounted(self) -> bool:
        """No faulted run may be faster; costly recovery must be slower."""
        if self.time < self.base_time - 1e-9:
            return False
        return self.costly == 0 or self.time > self.base_time

    @property
    def ok(self) -> bool:
        return (self.converged and self.clean
                and self.pending_unflushed == 0 and self.overhead_accounted
                and self.reconciled)

    def __str__(self) -> str:
        pct = (100.0 * self.overhead / self.base_time) if self.base_time else 0.0
        status = "ok" if self.ok else "FAIL"
        detail = "" if self.ok else (
            f"  converged={self.converged} clean={self.clean} "
            f"unflushed={self.pending_unflushed} "
            f"accounted={self.overhead_accounted} "
            f"reconciled={self.reconciled}")
        return (f"{self.runtime:3s} {self.algorithm:7s} {self.variant:9s} "
                f"{self.plan_name:12s} seed={self.seed:<3d} {status:4s} "
                f"fired={self.fired:4d} overhead={pct:7.1f}%{detail}")


def _reference(algorithm: str, g) -> np.ndarray:
    if algorithm == "PR":
        return pagerank_reference(g, iterations=_PR_ITERS)
    if algorithm == "TC":
        return triangle_per_vertex_reference(g)
    if algorithm == "BFS":
        return bfs_reference(g, 0)
    if algorithm == "SSSP-Δ":
        return sssp_reference(g, 0)
    raise ValueError(f"unknown DM algorithm {algorithm!r}")


def _run(algorithm: str, g, variant: str, P: int, machine: MachineSpec,
         plan: FaultPlan | None,
         recovery: RecoveryConfig | None) -> tuple:
    """One kernel execution; returns (result, rt, detector, injector)."""
    rt = DMRuntime(g.n, P, machine=machine.scaled(64))
    detector = attach_dm_race_detector(rt)
    injector: FaultInjector | None = None
    if plan is not None:
        injector = attach_fault_injector(rt, plan, recovery=recovery)
    if algorithm == "PR":
        result = dm_pagerank(g, rt, variant=variant, iterations=_PR_ITERS)
    elif algorithm == "TC":
        result = dm_triangle_count(g, rt, variant=variant)
    elif algorithm == "BFS":
        result = dm_bfs(g, rt, root=0, variant=variant)
    else:
        result = dm_sssp_delta(g, rt, source=0, variant=variant)
    return result, rt, detector, injector


def _converged(algorithm: str, result, ref: np.ndarray) -> bool:
    if algorithm == "PR":
        return bool(np.allclose(result.ranks, ref, atol=_FLOAT_ATOL))
    if algorithm == "TC":
        return bool(np.array_equal(result.per_vertex, ref))
    if algorithm == "BFS":
        return bool(np.array_equal(result.level, ref))
    return bool(np.allclose(result.dist, ref))


def analyze_faults(n: int = 64, P: int = 4, seed: int = 7,
                   d_bar: float = 4.0, dataset: str = "er",
                   fault_seeds: Iterable[int] = (0, 1),
                   plans: Iterable[tuple[str, FaultPlan]] | None = None,
                   machine: MachineSpec = XC40,
                   recovery: RecoveryConfig | None = None,
                   progress: Callable[[str], None] | None = None
                   ) -> list[FaultRun]:
    """Run the chaos grid; one :class:`FaultRun` per cell x plan x seed.

    ``fault_seeds`` re-seed the *plans* (the instance stays fixed), so
    every plan's fault schedule is sampled more than once.  ``plans``
    defaults to :func:`default_fault_plans`; ``recovery`` defaults to
    everything enabled.  ``dataset`` follows
    :func:`repro.analysis.runner.instance_graph` (``"er"``/``"rmat"``/
    ``"road"``/``"comm"``); ``"comm"`` puts most traffic on the cut,
    so dropped/duplicated messages hit the widest exchanges.
    """
    recovery = recovery if recovery is not None else RecoveryConfig()
    plain = instance_graph(dataset, n, d_bar, seed, weighted=False)
    weighted = instance_graph(dataset, n, d_bar, seed, weighted=True)
    runs: list[FaultRun] = []
    for algorithm, variants in DM_MATRIX:
        g = weighted if algorithm == "SSSP-Δ" else plain
        ref = _reference(algorithm, g)
        for variant in variants:
            base_result, base_rt, base_det, _ = _run(
                algorithm, g, variant, P, machine, None, None)
            if not (_converged(algorithm, base_result, ref)
                    and base_det.report().clean):
                raise AssertionError(
                    f"fault-free baseline broken: {algorithm}/{variant}")
            for fseed in fault_seeds:
                for plan_name, proto in (plans if plans is not None
                                         else default_fault_plans(fseed)):
                    plan = (proto if proto.seed == fseed
                            else replace(proto, seed=fseed))
                    result, rt, det, inj = _run(
                        algorithm, g, variant, P, machine, plan, recovery)
                    report = det.report()
                    run = FaultRun(
                        algorithm=algorithm, variant=variant,
                        plan_name=plan_name, seed=fseed,
                        converged=_converged(algorithm, result, ref),
                        clean=report.clean,
                        pending_unflushed=det.pending_unflushed,
                        fired=inj.stats.fired(), costly=inj.stats.costly(),
                        base_time=base_rt.time, time=rt.time,
                        races=tuple(str(r) for r in report.races[:4]))
                    runs.append(run)
                    if progress is not None:
                        progress(str(run))
    return runs


def _sm_run(algorithm: str, g, direction: str, P: int, machine: MachineSpec,
            plan: SMFaultPlan | None,
            recovery: RecoveryConfig | None) -> tuple:
    """One SM kernel execution; returns (result, rt, detector, injector,
    tracer)."""
    m = machine.scaled(64)
    rt = SMRuntime(g, P=P, machine=m, memory=CountingMemory(m.hierarchy))
    detector = attach_race_detector(rt)
    tracer = attach_tracer(rt)
    injector = None
    if plan is not None:
        # injector after the detector: the perturbing proxy wraps the
        # detecting one, so re-issued recovery ops are race-checked too
        injector = attach_sm_fault_injector(rt, plan, recovery=recovery)
    if algorithm == "PR":
        result = pagerank(g, rt, direction=direction, iterations=_PR_ITERS)
    elif algorithm == "TC":
        result = triangle_count(g, rt, direction=direction)
    elif algorithm == "BFS":
        result = bfs(g, rt, root=0, direction=direction)
    else:
        result = sssp_delta(g, rt, source=0, direction=direction)
    return result, rt, detector, injector, tracer


def _reconciled(tracer) -> bool:
    traced, actual = tracer.reconcile()
    return traced.to_dict() == actual.to_dict()


def analyze_sm_faults(n: int = 64, P: int = 4, seed: int = 7,
                      d_bar: float = 4.0, dataset: str = "er",
                      fault_seeds: Iterable[int] = (0, 1),
                      plans: Iterable[tuple[str, SMFaultPlan]] | None = None,
                      machine: MachineSpec = XC30,
                      recovery: RecoveryConfig | None = None,
                      progress: Callable[[str], None] | None = None
                      ) -> list[FaultRun]:
    """Run the SM chaos grid; mirrors :func:`analyze_faults`.

    Each cell runs with the race detector, the tracer, *and* the
    injector attached, so one execution gates all four contracts:
    convergence to the reference, race cleanliness under recovery,
    overhead accounting against the fault-free twin, and exact counter
    reconciliation (recovery stalls are counter-free by construction).
    """
    recovery = recovery if recovery is not None else RecoveryConfig()
    plain = instance_graph(dataset, n, d_bar, seed, weighted=False)
    weighted = instance_graph(dataset, n, d_bar, seed, weighted=True)
    runs: list[FaultRun] = []
    for algorithm, directions in SM_MATRIX:
        g = weighted if algorithm == "SSSP-Δ" else plain
        ref = _reference(algorithm, g)
        for direction in directions:
            base_result, base_rt, base_det, _, base_tr = _sm_run(
                algorithm, g, direction, P, machine, None, None)
            if not (_converged(algorithm, base_result, ref)
                    and base_det.report().clean and _reconciled(base_tr)):
                raise AssertionError(
                    f"fault-free baseline broken: sm {algorithm}/{direction}")
            for fseed in fault_seeds:
                for plan_name, proto in (plans if plans is not None
                                         else default_sm_fault_plans(fseed)):
                    plan = (proto if proto.seed == fseed
                            else replace(proto, seed=fseed))
                    result, rt, det, inj, tr = _sm_run(
                        algorithm, g, direction, P, machine, plan, recovery)
                    report = det.report()
                    run = FaultRun(
                        algorithm=algorithm, variant=direction,
                        plan_name=plan_name, seed=fseed,
                        converged=_converged(algorithm, result, ref),
                        clean=report.clean,
                        pending_unflushed=0,
                        fired=inj.stats.fired(), costly=inj.stats.costly(),
                        base_time=base_rt.time, time=rt.time,
                        races=tuple(str(r) for r in report.races[:4]),
                        runtime="sm", reconciled=_reconciled(tr))
                    runs.append(run)
                    if progress is not None:
                        progress(str(run))
    return runs


def overhead_table(runs: list[FaultRun]) -> list[dict]:
    """Mean relative overhead per (runtime, algorithm, backend, plan) --
    the Table-style fault-overhead curves of the chaos suite."""
    rows: dict[tuple, list[float]] = {}
    for r in runs:
        if r.base_time > 0:
            rows.setdefault((r.runtime, r.algorithm, r.variant, r.plan_name),
                            []).append(r.overhead / r.base_time)
    return [
        {"runtime": rtm, "algorithm": a, "variant": v, "plan": p,
         "overhead_pct": round(100.0 * sum(vals) / len(vals), 1)}
        for (rtm, a, v, p), vals in rows.items()
    ]


def _table_layout(runs: list[FaultRun]) -> list[tuple[str, list, list]]:
    """Per-runtime (runtime, row keys, plan columns), in run order --
    derived from the runs themselves so DM and SM grids (different plan
    vocabularies) each get their own correctly-labeled block."""
    blocks: dict[str, tuple[list, list]] = {}
    for r in runs:
        rows, plans = blocks.setdefault(r.runtime, ([], []))
        if (r.algorithm, r.variant) not in rows:
            rows.append((r.algorithm, r.variant))
        if r.plan_name not in plans:
            plans.append(r.plan_name)
    return [(rtm, rows, plans) for rtm, (rows, plans) in blocks.items()]


def format_overhead_table(runs: list[FaultRun]) -> str:
    table = {(row["runtime"], row["algorithm"], row["variant"], row["plan"]):
             row["overhead_pct"] for row in overhead_table(runs)}
    lines = []
    for rtm, rows, plans in _table_layout(runs):
        lines.append(f"{rtm} fault overhead (mean % of fault-free time):")
        lines.append(f"{'kernel':9s}{'backend':11s}"
                     + "".join(f"{name:>12s}" for name in plans))
        for algorithm, variant in rows:
            cells = "".join(
                f"{table.get((rtm, algorithm, variant, name), 0.0):>11.1f}%"
                for name in plans)
            lines.append(f"{algorithm:9s}{variant:11s}" + cells)
    return "\n".join(lines)


def markdown_overhead_table(runs: list[FaultRun]) -> str:
    """The same overhead curves as GitHub-flavored markdown (the CI
    step-summary rendering of the combined SM+DM chaos grid)."""
    table = {(row["runtime"], row["algorithm"], row["variant"], row["plan"]):
             row["overhead_pct"] for row in overhead_table(runs)}
    lines = []
    for rtm, rows, plans in _table_layout(runs):
        lines.append(f"### {rtm.upper()} fault overhead "
                     "(mean % of fault-free time)")
        lines.append("")
        lines.append("| kernel | backend | " + " | ".join(plans) + " |")
        lines.append("|---|---|" + "---|" * len(plans))
        for algorithm, variant in rows:
            cells = " | ".join(
                f"{table.get((rtm, algorithm, variant, name), 0.0):.1f}%"
                for name in plans)
            lines.append(f"| {algorithm} | {variant} | {cells} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
