"""repro-tsan: a dynamic race detector for the simulated SM machine.

The paper's Section-3.8 contract is asymmetric:

* **pull** variants may only *write* vertices the executing thread
  owns; concurrent remote *reads* are expected (they are the
  ``read_conflicts`` term of the Section-4 cost model) and benign.
* **push** variants write remote vertices, but every such write must be
  declared through an atomic (``faa``/``cas``) or a ``lock`` critical
  section.

The runtime enforces only the pull half (``owned_write_check``); push
kernels were on the honor system.  :class:`RaceDetectingMemory` closes
that gap: it wraps any :class:`~repro.machine.memory.MemoryModel`,
records the per-thread read/write/atomic *index sets* of every
barrier-delimited epoch, and at each barrier reports the addresses that
violate the contract.

Violation taxonomy (what :class:`Race` records carry in ``kind``):

``ww``
    The same address plain-written by two threads in one epoch with
    neither write covered by a lock declaration.  Illegal in both
    directions -- pull forbids it by ownership, push by atomicity.
``mixed``
    A plain unprotected write racing a *protected* (atomic or locked)
    write by another thread.  The protected side did its part; the
    plain side still corrupts (e.g. a store overlapping a CAS-min).
``rw``
    A plain write to an address the writer does **not** own, read by
    another thread in the same epoch.  Owner writes racing remote
    reads are the pull paradigm and are *not* violations; they are
    tallied into the epoch's read-conflict statistics instead, which
    the PRAM cross-check consumes.

Critical sections spanning several arrays (Δ-Stepping's (dist, bucket)
pair, BGC's avail-row + need-flag, Borůvka's CAS-min + record) declare
their contents with the ``covers=`` parameter of ``lock``/``cas``/
``faa``; covered plain writes are treated as protected.

Everything issued *outside* a parallel region (frontier merges, epilogue
bookkeeping) executes on the conceptual master thread between fork/join
points and cannot race; the runtime brackets regions with
``region_begin``/``region_end`` so those accesses are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.partition import Partition1D
from repro.machine.memory import ArrayHandle, MemoryModel

#: cap on stored Race records (detection keeps running; the flag count
#: in RaceReport.total_racy_addresses stays exact)
MAX_RACES = 256


class RaceError(AssertionError):
    """Raised at a barrier when ``raise_on_race`` is set and races exist."""


@dataclass(frozen=True)
class Race:
    """One violating (epoch, handle, thread-pair) with its address set."""

    kind: str                 #: 'ww' | 'rw' | 'mixed'
    handle: str               #: registered array name
    epoch: int                #: barrier-delimited epoch index (0-based)
    threads: tuple            #: (writer, other) simulated thread ids
    count: int                #: number of conflicting addresses
    sample: tuple             #: up to 8 of the conflicting item indices

    def __str__(self) -> str:
        kinds = {"ww": "write-write", "rw": "read-write",
                 "mixed": "plain-vs-atomic",
                 "dangling-cover": "dangling covers= declaration",
                 # DM epoch-rule kinds (repro.analysis.dm_race)
                 "unflushed-read": "read-before-flush",
                 "write-vs-acc": "plain-write-vs-remote-accumulate",
                 "early-inbox": "inbox-before-delivery",
                 "acc-dtype": "mixed float/int accumulate"}
        return (f"[epoch {self.epoch}] {kinds.get(self.kind, self.kind)} "
                f"race on {self.handle!r}: threads {self.threads[0]} and "
                f"{self.threads[1]}, {self.count} address(es), "
                f"e.g. {list(self.sample)}")


@dataclass
class EpochStats:
    """Per-epoch conflict tallies (the PRAM cross-check's observables)."""

    epoch: int
    write_conflicts: int = 0   #: addresses plain-written by >=2 threads
    read_conflicts: int = 0    #: addresses read by >=2 threads
    atomic_conflicts: int = 0  #: addresses touched atomically by >=2 threads


@dataclass
class RaceReport:
    """Aggregated detector output for one run."""

    races: list = field(default_factory=list)
    epochs: int = 0
    total_racy_addresses: int = 0
    write_conflicts: int = 0
    read_conflicts: int = 0
    atomic_conflicts: int = 0
    per_epoch: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.races

    def summary(self) -> str:
        head = (f"{len(self.races)} race(s) over {self.epochs} epoch(s); "
                f"conflicts: {self.write_conflicts} write / "
                f"{self.read_conflicts} read / "
                f"{self.atomic_conflicts} atomic")
        lines = [str(r) for r in self.races[:16]]
        if len(self.races) > 16:
            lines.append(f"... and {len(self.races) - 16} more")
        return "\n".join([head, *lines])


class _ThreadEpochLog:
    """Index sets one thread accumulated on one handle this epoch."""

    __slots__ = ("r_idx", "r_rng", "w_idx", "w_rng", "a_idx")

    def __init__(self) -> None:
        self.r_idx: list = []    #: arrays of read item indices
        self.r_rng: list = []    #: (start, count) streaming reads
        self.w_idx: list = []
        self.w_rng: list = []
        self.a_idx: list = []    #: atomically accessed item indices

    @staticmethod
    def _gather(idx_lists: list, rng_lists: list) -> np.ndarray:
        parts = [np.asarray(a).ravel() for a in idx_lists]
        parts += [np.arange(s, s + c, dtype=np.int64) for s, c in rng_lists]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts).astype(np.int64, copy=False))

    def reads(self) -> np.ndarray:
        return self._gather(self.r_idx, self.r_rng)

    def writes(self) -> np.ndarray:
        return self._gather(self.w_idx, self.w_rng)

    def atomics(self) -> np.ndarray:
        return self._gather(self.a_idx, [])


def _as_index_array(idx) -> np.ndarray:
    if np.isscalar(idx):
        return np.array([int(idx)], dtype=np.int64)
    return np.asarray(idx, dtype=np.int64).ravel()


class RaceDetectingMemory:
    """A recording proxy in front of any :class:`MemoryModel`.

    All event/cache accounting is delegated untouched to the wrapped
    model, so simulated times and counters are identical with or
    without the detector; the proxy only harvests *which* item indices
    each simulated thread touched between barriers.

    Parameters
    ----------
    inner:
        The real memory model (``CountingMemory`` / ``CacheSimMemory``).
    part:
        The runtime's 1D partition; enables the ownership exemption for
        read-write conflicts on vertex-indexed arrays (``handle.size ==
        part.n``).  Without it every cross-thread plain write is
        treated as remote.
    raise_on_race:
        Raise :class:`RaceError` at the barrier that detects the first
        violation (pinpoints the epoch) instead of only recording it.
    track_read_conflicts:
        Also tally read-read overlap statistics per epoch.  Costs one
        extra set union per handle per barrier; needed by the PRAM
        cross-check, off by default for fixtures.
    strict_covers:
        ``covers=`` declarations are normally honor-system: the
        detector trusts that the declared critical section really
        encloses the covered companion write.  In strict mode a
        declaration whose covered indices are *not* written (or
        atomically updated) by the declaring thread before its next
        barrier is itself reported as a ``dangling-cover`` race -- a
        shield with nothing behind it is either dead code or a
        mislabeled index set hiding a real race elsewhere.
    """

    def __init__(self, inner: MemoryModel, part: Partition1D | None = None,
                 raise_on_race: bool = False,
                 track_read_conflicts: bool = False,
                 strict_covers: bool = False) -> None:
        self.inner = inner
        self.part = part
        self.raise_on_race = raise_on_race
        self.track_read_conflicts = track_read_conflicts
        self.strict_covers = strict_covers
        self.races: list[Race] = []
        self.per_epoch: list[EpochStats] = []
        self.epoch = 0
        self.unattributed_writes = 0   #: in-region writes with unknown position
        self._thread = 0
        self._in_region = False
        self._handles: dict[str, ArrayHandle] = {}
        # (handle name, thread) -> _ThreadEpochLog
        self._log: dict[tuple, _ThreadEpochLog] = {}
        # thread -> handle name -> list of covered (protected) index arrays
        self._shield: dict[int, dict[str, list]] = {}
        # the subset declared through covers= (strict mode audits these;
        # a lock's self-cover of its own word is exempt -- the lock word
        # needs no companion write)
        self._explicit: dict[int, dict[str, list]] = {}
        self._totals = RaceReport()

    # -- delegated surface ---------------------------------------------------------
    @property
    def arrays(self) -> dict:
        return self.inner.arrays

    @property
    def counters(self):
        return self.inner.counters

    def register(self, name: str, array_or_size, itemsize: int | None = None
                 ) -> ArrayHandle:
        handle = self.inner.register(name, array_or_size, itemsize)
        self._handles[handle.name] = handle
        return handle

    def set_counters(self, counters) -> None:
        self.inner.set_counters(counters)

    def branch_cond(self, n: int = 1) -> None:
        self.inner.branch_cond(n)

    def branch_uncond(self, n: int = 1) -> None:
        self.inner.branch_uncond(n)

    def flop(self, n: int = 1) -> None:
        self.inner.flop(n)

    # -- runtime hooks -------------------------------------------------------------
    def set_thread(self, tid: int) -> None:
        self._thread = tid
        # CacheSimMemory needs its clamped private-cache id
        n_threads = getattr(self.inner, "n_threads", None)
        if n_threads is not None:
            self.inner.set_thread(min(tid, n_threads - 1))
        else:
            self.inner.set_thread(tid)

    def region_begin(self) -> None:
        self._in_region = True
        self.inner.region_begin()

    def region_end(self) -> None:
        self._in_region = False
        self.inner.region_end()

    def on_barrier(self) -> None:
        self.inner.on_barrier()
        self._close_epoch()

    # -- recorded accesses ---------------------------------------------------------
    def _entry(self, handle: ArrayHandle) -> _ThreadEpochLog:
        self._handles.setdefault(handle.name, handle)
        key = (handle.name, self._thread)
        log = self._log.get(key)
        if log is None:
            log = self._log[key] = _ThreadEpochLog()
        return log

    def _record(self, slot: str, handle: ArrayHandle, idx, count,
                start) -> None:
        if not self._in_region:
            return
        log = self._entry(handle)
        if idx is not None:
            getattr(log, slot + "_idx").append(_as_index_array(idx))
        elif start is not None and count:
            getattr(log, slot + "_rng").append((int(start), int(count)))
        elif slot == "w" and count:
            # a position-blind in-region write: cannot be attributed to
            # addresses, surfaced as a detector health statistic
            self.unattributed_writes += int(count)

    def _cover(self, pairs) -> None:
        """Record ``covers=`` declarations as protected indices."""
        if not pairs:
            return
        shield = self._shield.setdefault(self._thread, {})
        explicit = self._explicit.setdefault(self._thread, {})
        for handle, idx in pairs:
            if idx is None:
                continue
            arr = _as_index_array(idx)
            shield.setdefault(handle.name, []).append(arr)
            explicit.setdefault(handle.name, []).append(arr)
            self._handles.setdefault(handle.name, handle)

    def _self_cover(self, handle: ArrayHandle, idx) -> None:
        if idx is None:
            return
        shield = self._shield.setdefault(self._thread, {})
        shield.setdefault(handle.name, []).append(_as_index_array(idx))

    def read(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        self._record("r", handle, idx, count, start)
        self.inner.read(handle, idx=idx, count=count, mode=mode, start=start)

    def write(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        self._record("w", handle, idx, count, start)
        self.inner.write(handle, idx=idx, count=count, mode=mode, start=start)

    def faa(self, handle, idx=None, count=None, mode="rand", start=None,
            batched=False, covers=None) -> None:
        if self._in_region and idx is not None:
            self._entry(handle).a_idx.append(_as_index_array(idx))
            self._cover(covers)
        self.inner.faa(handle, idx=idx, count=count, mode=mode, start=start,
                       batched=batched)

    def cas(self, handle, idx=None, count=None, successes=None, mode="rand",
            start=None, batched=False, covers=None) -> None:
        if self._in_region and idx is not None:
            self._entry(handle).a_idx.append(_as_index_array(idx))
            self._cover(covers)
        self.inner.cas(handle, idx=idx, count=count, successes=successes,
                       mode=mode, start=start, batched=batched)

    def lock(self, handle, idx=None, count=None, mode="rand", start=None,
             covers=None) -> None:
        # the lock's R+W hit the lock word, not the data: record only
        # the protection it grants (its own indices plus covers)
        if self._in_region:
            self._self_cover(handle, idx)
            self._cover(covers)
        self.inner.lock(handle, idx=idx, count=count, mode=mode, start=start)

    # -- epoch analysis ------------------------------------------------------------
    def _close_epoch(self) -> None:
        new_races = self._analyze()
        self._log.clear()
        self._shield.clear()
        self._explicit.clear()
        self.epoch += 1
        if new_races and self.raise_on_race:
            raise RaceError(self.report().summary())

    def _shielded(self, t: int, name: str) -> np.ndarray:
        lists = self._shield.get(t, {}).get(name)
        if not lists:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(lists))

    def _owned_mask(self, name: str, idx: np.ndarray, t: int) -> np.ndarray:
        """True where thread ``t`` owns the vertex behind each index."""
        handle = self._handles.get(name)
        if (self.part is None or handle is None
                or handle.size != self.part.n or len(idx) == 0):
            return np.zeros(len(idx), dtype=bool)
        return np.asarray(self.part.is_local(t, idx))

    def _emit(self, kind: str, name: str, t1: int, t2: int,
              addrs: np.ndarray) -> bool:
        if len(addrs) == 0:
            return False
        self._totals.total_racy_addresses += len(addrs)
        if len(self.races) < MAX_RACES:
            self.races.append(Race(
                kind=kind, handle=name, epoch=self.epoch,
                threads=(t1, t2), count=int(len(addrs)),
                sample=tuple(int(a) for a in addrs[:8])))
        return True

    def _analyze(self) -> bool:
        by_handle: dict[str, dict[int, _ThreadEpochLog]] = {}
        for (name, t), log in self._log.items():
            by_handle.setdefault(name, {})[t] = log

        stats = EpochStats(epoch=self.epoch)
        found = False
        for name, per_thread in by_handle.items():
            threads = sorted(per_thread)
            writes = {t: per_thread[t].writes() for t in threads}
            atomics = {t: per_thread[t].atomics() for t in threads}
            if not any(len(w) for w in writes.values()) and \
               not any(len(a) for a in atomics.values()):
                if self.track_read_conflicts and len(threads) > 1:
                    stats.read_conflicts += self._overlap_count(
                        [per_thread[t].reads() for t in threads])
                continue
            shields = {t: self._shielded(t, name) for t in threads}
            # unprotected plain writes / protected writes per thread
            unprot = {}
            prot = {}
            for t in threads:
                w, s, a = writes[t], shields[t], atomics[t]
                unprot[t] = np.setdiff1d(w, s, assume_unique=False)
                prot[t] = np.union1d(np.intersect1d(w, s), a)
            reads = {t: per_thread[t].reads() for t in threads}

            for i, t1 in enumerate(threads):
                u1 = unprot[t1]
                if len(u1) == 0:
                    continue
                remote1 = u1[~self._owned_mask(name, u1, t1)]
                for t2 in threads:
                    if t2 == t1:
                        continue
                    if t2 > t1:
                        found |= self._emit("ww", name, t1, t2,
                                            np.intersect1d(u1, unprot[t2]))
                    found |= self._emit("mixed", name, t1, t2,
                                        np.intersect1d(u1, prot[t2]))
                    if len(remote1):
                        found |= self._emit("rw", name, t1, t2,
                                            np.intersect1d(remote1, reads[t2]))

            # conflict statistics (PRAM observables), over *all* writes
            if len(threads) > 1:
                stats.write_conflicts += self._overlap_count(
                    [writes[t] for t in threads])
                stats.atomic_conflicts += self._overlap_count(
                    [atomics[t] for t in threads])
                if self.track_read_conflicts:
                    stats.read_conflicts += self._overlap_count(
                        [reads[t] for t in threads])

        if self.strict_covers:
            found |= self._audit_covers()

        self.per_epoch.append(stats)
        self._totals.write_conflicts += stats.write_conflicts
        self._totals.read_conflicts += stats.read_conflicts
        self._totals.atomic_conflicts += stats.atomic_conflicts
        return found

    def _audit_covers(self) -> bool:
        """Strict mode: every covers= index needs a companion update."""
        found = False
        for t, per_handle in self._explicit.items():
            for name, lists in per_handle.items():
                covered = np.unique(np.concatenate(lists))
                log = self._log.get((name, t))
                touched = (np.union1d(log.writes(), log.atomics())
                           if log is not None else np.empty(0, dtype=np.int64))
                dangling = np.setdiff1d(covered, touched)
                found |= self._emit("dangling-cover", name, t, t, dangling)
        return found

    @staticmethod
    def _overlap_count(sets: list) -> int:
        """Number of addresses present in >= 2 of the (unique) sets."""
        nonempty = [s for s in sets if len(s)]
        if len(nonempty) < 2:
            return 0
        merged = np.concatenate(nonempty)
        _, counts = np.unique(merged, return_counts=True)
        return int(np.count_nonzero(counts > 1))

    # -- results -------------------------------------------------------------------
    def report(self) -> RaceReport:
        r = self._totals
        return RaceReport(
            races=list(self.races), epochs=self.epoch,
            total_racy_addresses=r.total_racy_addresses,
            write_conflicts=r.write_conflicts,
            read_conflicts=r.read_conflicts,
            atomic_conflicts=r.atomic_conflicts,
            per_epoch=list(self.per_epoch))


def attach_race_detector(rt, raise_on_race: bool = False,
                         track_read_conflicts: bool = False,
                         strict_covers: bool = False
                         ) -> RaceDetectingMemory:
    """Wrap ``rt.mem`` in a :class:`RaceDetectingMemory` in place.

    Must run *before* the algorithm registers its arrays (kernels cache
    ``rt.mem`` at state construction).  Returns the detector; the
    wrapped model stays reachable as ``detector.inner``.
    """
    detector = RaceDetectingMemory(
        rt.mem, part=rt.part, raise_on_race=raise_on_race,
        track_read_conflicts=track_read_conflicts,
        strict_covers=strict_covers)
    rt.mem = detector
    return detector
