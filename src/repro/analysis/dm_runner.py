"""Drive the four DM kernels under the epoch checker.

The distributed-memory half of ``python -m repro analyze``: every
``dm_*`` kernel runs in each of its backends on a small deterministic
instance with a :class:`~repro.analysis.dm_race.DMRaceDetector`
attached, and each run's communication counters are cross-checked
against the cut-based bound of
:func:`~repro.analysis.crosscheck.dm_crosscheck`.  The entry point
backs both the CLI gate and the test suite, mirroring
:mod:`repro.analysis.runner` for shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algorithms.dm_bfs import dm_bfs
from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.analysis.crosscheck import DMCommCheckResult, dm_crosscheck
from repro.analysis.dm_race import attach_dm_race_detector
from repro.analysis.race import RaceReport
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D
from repro.machine.cost_model import XC40, MachineSpec
from repro.runtime.dm import DMRuntime

#: (algorithm, tuple of backend variants) in Section 6.3 order
DM_MATRIX = (
    ("PR", ("mp", "rma-push", "rma-pull")),
    ("TC", ("rma-pull", "rma-push", "mp")),
    ("BFS", ("push", "pull", "switching")),
    ("SSSP-Δ", ("push", "pull")),
)


def cross_edges(g: CSRGraph, part: Partition1D) -> int:
    """Directed edges whose endpoints live on different processes."""
    srcs = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
    return int((part.owner(srcs) != part.owner(g.adj)).sum())


@dataclass(frozen=True)
class DMAnalysisRun:
    """One (algorithm, backend variant) execution under the checker."""

    algorithm: str
    variant: str
    report: RaceReport
    check: DMCommCheckResult
    pending_unflushed: int
    unattributed_ops: int

    @property
    def ok(self) -> bool:
        return (self.report.clean and self.check.ok
                and self.pending_unflushed == 0)

    def __str__(self) -> str:
        status = "clean" if self.report.clean else \
            f"{len(self.report.races)} RACE(S)"
        extra = ""
        if self.pending_unflushed:
            extra = f"  UNFLUSHED={self.pending_unflushed}"
        return (f"{self.algorithm:7s} {self.variant:9s}  {status:12s} "
                f"epochs={self.report.epochs:4d}  "
                f"rma={self.check.observed_remote:6d}  "
                f"msg={self.check.observed_messages:6d}  "
                f"bound={'ok' if self.check.ok else 'FAIL'}{extra}")


def _dispatch(algorithm: str, g: CSRGraph, rt: DMRuntime, variant: str):
    if algorithm == "PR":
        return dm_pagerank(g, rt, variant=variant, iterations=3)
    if algorithm == "TC":
        return dm_triangle_count(g, rt, variant=variant)
    if algorithm == "BFS":
        return dm_bfs(g, rt, root=0, variant=variant)
    if algorithm == "SSSP-Δ":
        return dm_sssp_delta(g, rt, source=0, variant=variant)
    raise ValueError(f"unknown DM algorithm {algorithm!r}")


def _rounds(algorithm: str, result, d_hat: int) -> int:
    """How often a cut edge may legitimately be re-examined."""
    if algorithm == "PR":
        return max(1, int(result.iterations))
    if algorithm == "TC":
        # one get per witness pair: a cut edge carries up to d_hat
        # neighbor fetches plus one accumulate each
        return 1 + int(d_hat)
    if algorithm == "BFS":
        return max(1, int(result.levels))
    if algorithm == "SSSP-Δ":
        return max(1, int(result.inner_iterations))
    return 1


def run_one_dm(algorithm: str, g: CSRGraph, variant: str, P: int = 4,
               machine: MachineSpec = XC40, slack: float = 4.0,
               raise_on_race: bool = False) -> DMAnalysisRun:
    """Run one (algorithm, variant) under a fresh epoch checker."""
    rt = DMRuntime(g.n, P, machine=machine.scaled(64))
    detector = attach_dm_race_detector(rt, raise_on_race=raise_on_race)
    result = _dispatch(algorithm, g, rt, variant)
    report = detector.report()
    check = dm_crosscheck(
        algorithm, variant, result.counters,
        m_cross=cross_edges(g, rt.part), P=P,
        supersteps=max(1, report.epochs),
        rounds=_rounds(algorithm, result, g.max_degree), slack=slack)
    return DMAnalysisRun(
        algorithm=algorithm, variant=variant, report=report, check=check,
        pending_unflushed=detector.pending_unflushed,
        unattributed_ops=detector.unattributed_ops)


def analyze_dm(n: int = 96, P: int = 4, seed: int = 7, d_bar: float = 4.0,
               slack: float = 4.0, dataset: str = "er",
               progress: Callable[[str], None] | None = None
               ) -> list[DMAnalysisRun]:
    """Run the DM matrix; returns one :class:`DMAnalysisRun` per cell.

    ``dataset`` follows :func:`repro.analysis.runner.instance_graph`:
    ``"er"`` (default), ``"rmat"``, ``"road"`` (the high-diameter
    regime -- many thin supersteps, so the epoch and cut bounds are
    exercised across far more barriers per run), or ``"comm"`` (the
    communication-heavy regime -- planted hubs push most edges across
    the partition cut, stressing the message/RMA epoch checks).
    """
    from repro.analysis.runner import instance_graph
    plain = instance_graph(dataset, n, d_bar, seed, weighted=False)
    weighted = instance_graph(dataset, n, d_bar, seed, weighted=True)
    runs: list[DMAnalysisRun] = []
    for algorithm, variants in DM_MATRIX:
        g = weighted if algorithm == "SSSP-Δ" else plain
        for variant in variants:
            run = run_one_dm(algorithm, g, variant, P=P, slack=slack)
            runs.append(run)
            if progress is not None:
                progress(str(run))
    return runs
