"""Drive the seven paper algorithms under the race detector.

This is the dynamic half of ``python -m repro analyze``: every
algorithm runs in both directions on a small deterministic instance
with a :class:`~repro.analysis.race.RaceDetectingMemory` attached, and
each run's conflict statistics are cross-checked against its Section-4
PRAM bound.  The same entry points back the opt-in pytest fixture, so
a kernel regression that introduces an undeclared remote write fails
both the CLI gate and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.algorithms.bc import betweenness_centrality
from repro.algorithms.bfs import bfs
from repro.algorithms.coloring import boman_coloring
from repro.algorithms.mst_boruvka import boruvka_mst
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp_delta import sssp_delta
from repro.algorithms.triangle import triangle_count
from repro.analysis.crosscheck import CrossCheckResult, crosscheck
from repro.analysis.race import RaceReport, attach_race_detector
from repro.generators import community_graph, erdos_renyi, rmat, road_network
from repro.graph.csr import CSRGraph
from repro.machine.cost_model import XC30, MachineSpec
from repro.machine.memory import CountingMemory
from repro.runtime.sm import SMRuntime

#: the seven instrumented algorithms of the paper, in Section-4 order
ALGORITHMS = ("PR", "TC", "BFS", "SSSP-Δ", "BC", "BGC", "MST")

#: algorithms that need edge weights on their input graph
WEIGHTED = frozenset({"SSSP-Δ", "MST"})


@dataclass(frozen=True)
class AnalysisRun:
    """One (algorithm, direction) execution under the detector."""

    algorithm: str
    direction: str
    report: RaceReport
    check: CrossCheckResult
    iterations: int

    @property
    def ok(self) -> bool:
        return self.report.clean and self.check.ok

    def __str__(self) -> str:
        status = "clean" if self.report.clean else \
            f"{len(self.report.races)} RACE(S)"
        return (f"{self.algorithm:7s} {self.direction:5s}  {status:12s} "
                f"epochs={self.report.epochs:4d}  "
                f"Wconf={self.report.write_conflicts + self.report.atomic_conflicts:7d}  "
                f"Rconf={self.report.read_conflicts:7d}  "
                f"bound={'ok' if self.check.ok else 'FAIL'}")


def _dispatch(algorithm: str, g: CSRGraph, rt: SMRuntime, direction: str):
    """Run one algorithm; returns its AlgoResult."""
    if algorithm == "PR":
        return pagerank(g, rt, direction=direction, iterations=5)
    if algorithm == "TC":
        return triangle_count(g, rt, direction=direction)
    if algorithm == "BFS":
        return bfs(g, rt, root=0, direction=direction)
    if algorithm == "SSSP-Δ":
        return sssp_delta(g, rt, source=0, direction=direction)
    if algorithm == "BC":
        return betweenness_centrality(g, rt, direction=direction,
                                      sources=4, seed=0)
    if algorithm == "BGC":
        return boman_coloring(g, rt, direction=direction)
    if algorithm == "MST":
        return boruvka_mst(g, rt, direction=direction)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def run_one(algorithm: str, g: CSRGraph, direction: str, P: int = 4,
            machine: MachineSpec = XC30,
            track_read_conflicts: bool = True):
    """Run one (algorithm, direction) under a fresh detector.

    Returns ``(report, result)``.
    """
    m = machine.scaled(64)
    rt = SMRuntime(g, P=P, machine=m, memory=CountingMemory(m.hierarchy))
    detector = attach_race_detector(
        rt, track_read_conflicts=track_read_conflicts)
    result = _dispatch(algorithm, g, rt, direction)
    return detector.report(), result


def _crosscheck_params(algorithm: str, result) -> dict:
    it = max(1, int(getattr(result, "iterations", 1) or 1))
    params = {"iterations": it}
    if algorithm == "SSSP-Δ":
        params["iterations"] = max(1, int(getattr(result, "epochs", it)))
        params["inner_iterations"] = max(
            1, int(getattr(result, "inner_iterations", it)))
    if algorithm == "BC":
        params["sources"] = max(1, int(getattr(result, "n_sources", it)))
    return params


def instance_graph(dataset: str, n: int, d_bar: float, seed: int,
                   weighted: bool) -> CSRGraph:
    """Build the analysis instance for ``dataset`` at roughly ``n`` vertices.

    ``"er"`` is Erdős–Rényi at exactly ``n``; ``"rmat"`` rounds up to the
    nearest power of two (skewed degrees); ``"road"`` is the sparsified
    lattice at ``ceil(sqrt(n))²`` vertices -- the high-diameter extreme
    of Table 2, where traversal kernels run many thin supersteps;
    ``"comm"`` is the Chung-Lu community graph with planted hubs -- the
    communication-heavy extreme, where cross-partition edges dominate
    and push variants hammer remote accumulators.
    """
    import math
    if dataset == "er":
        return erdos_renyi(n, d_bar=d_bar, seed=seed, weighted=weighted)
    if dataset == "rmat":
        scale = max(4, math.ceil(math.log2(max(n, 2))))
        return rmat(scale, d_bar=d_bar, seed=seed, weighted=weighted)
    if dataset == "road":
        side = max(3, math.ceil(math.sqrt(max(n, 1))))
        return road_network(side, side, seed=seed, weighted=weighted)
    if dataset == "comm":
        return community_graph(max(n, 16), d_bar=max(d_bar, 8.0), seed=seed,
                               weighted=weighted)
    raise ValueError(
        f"unknown dataset {dataset!r}; choose 'er', 'rmat', 'road', "
        "or 'comm'")


def analyze_algorithms(n: int = 120, P: int = 4, seed: int = 7,
                       d_bar: float = 4.0, slack: float = 4.0,
                       algorithms: Iterable[str] | None = None,
                       directions: Iterable[str] = ("push", "pull"),
                       machine: MachineSpec = XC30,
                       dataset: str = "er",
                       progress: Callable[[str], None] | None = None
                       ) -> list[AnalysisRun]:
    """Run the full matrix; returns one :class:`AnalysisRun` per cell.

    ``dataset`` selects the instance family: ``"er"`` (Erdős–Rényi, the
    default), ``"rmat"`` (the registry Kronecker/R-MAT generator at
    ``scale = ceil(log2 n)`` -- skewed degrees at a small scale),
    ``"road"`` (sparsified lattice -- the high-diameter regime), or
    ``"comm"`` (Chung-Lu community graph -- the communication-heavy
    regime of cross-partition hub edges).
    """
    algos = tuple(algorithms) if algorithms else ALGORITHMS
    unknown = set(algos) - set(ALGORITHMS)
    if unknown:
        raise ValueError(f"unknown algorithm(s) {sorted(unknown)}; "
                         f"choose from {ALGORITHMS}")
    plain = instance_graph(dataset, n, d_bar, seed, weighted=False)
    weighted = instance_graph(dataset, n, d_bar, seed, weighted=True)

    runs: list[AnalysisRun] = []
    for algorithm in algos:
        g = weighted if algorithm in WEIGHTED else plain
        for direction in directions:
            report, result = run_one(algorithm, g, direction, P=P,
                                     machine=machine)
            check = crosscheck(
                algorithm, direction, report,
                n=g.n, m=g.m, d_hat=g.max_degree, P=P, slack=slack,
                **_crosscheck_params(algorithm, result))
            run = AnalysisRun(
                algorithm=algorithm, direction=direction, report=report,
                check=check,
                iterations=int(getattr(result, "iterations", 1) or 1))
            runs.append(run)
            if progress is not None:
                progress(str(run))
    return runs
