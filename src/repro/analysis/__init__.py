"""Correctness tooling for the push/pull contract (Section 3.8).

Two layers:

* :mod:`repro.analysis.race` -- "repro-tsan", a dynamic race detector
  that wraps any memory model and reports unprotected conflicting
  writes per barrier-delimited epoch.
* :mod:`repro.analysis.lint` -- a static AST pass over the kernels
  flagging stores that bypass the instrumented memory, push stores
  without atomics, push-side ownership checks, and missing barriers.

* :mod:`repro.analysis.dm_race` -- the distributed-memory counterpart:
  an epoch checker for the MPI-3-style one-sided/message discipline of
  :class:`repro.runtime.dm.DMRuntime`.
* :mod:`repro.analysis.effects` -- static effect inference (ANL1xx):
  per-phase effect signatures (arrays read/written, index provenance,
  push/pull direction, atomic necessity verdicts, DM verb footprints)
  over the 17-kernel matrix, with certified direction/ownership/
  atomicity/barrier-elision facts; :mod:`repro.analysis.effect_report`
  renders them and maintains the committed golden ``EFFECTS.json``.

:mod:`repro.analysis.runner` drives the seven paper algorithms under
the detector, :mod:`repro.analysis.dm_runner` drives the four DM
kernels under the epoch checker, and :mod:`repro.analysis.crosscheck`
compares the observed conflict/communication counts against the
Section-4 PRAM bounds.  The CLI surface is ``python -m repro analyze``.
"""

from repro.analysis.crosscheck import (
    CrossCheckResult, DMCommCheckResult, crosscheck, dm_crosscheck,
    predicted_cost,
)
from repro.analysis.dm_race import DMRaceDetector, attach_dm_race_detector
from repro.analysis.dm_runner import (
    DMAnalysisRun, analyze_dm, cross_edges, run_one_dm,
)
from repro.analysis.effect_report import render_json, render_text, write_report
from repro.analysis.effects import (
    EffectFinding, EffectReport, KernelEffects, PhaseSignature,
    analyze_effects, effects_source,
)
from repro.analysis.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.analysis.race import (
    Race, RaceDetectingMemory, RaceError, RaceReport, attach_race_detector,
)
from repro.analysis.runner import ALGORITHMS, AnalysisRun, analyze_algorithms, run_one

__all__ = [
    "ALGORITHMS", "AnalysisRun", "CrossCheckResult", "DMAnalysisRun",
    "DMCommCheckResult", "DMRaceDetector", "EffectFinding", "EffectReport",
    "KernelEffects", "LintFinding", "PhaseSignature", "Race",
    "RaceDetectingMemory", "RaceError", "RaceReport", "analyze_algorithms",
    "analyze_dm", "analyze_effects", "attach_dm_race_detector",
    "attach_race_detector", "cross_edges", "crosscheck", "dm_crosscheck",
    "effects_source", "lint_file", "lint_paths", "lint_source",
    "predicted_cost", "render_json", "render_text", "run_one", "run_one_dm",
    "write_report",
]
