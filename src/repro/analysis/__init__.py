"""Correctness tooling for the push/pull contract (Section 3.8).

Two layers:

* :mod:`repro.analysis.race` -- "repro-tsan", a dynamic race detector
  that wraps any memory model and reports unprotected conflicting
  writes per barrier-delimited epoch.
* :mod:`repro.analysis.lint` -- a static AST pass over the kernels
  flagging stores that bypass the instrumented memory, push stores
  without atomics, push-side ownership checks, and missing barriers.

:mod:`repro.analysis.runner` drives the seven paper algorithms under
the detector and :mod:`repro.analysis.crosscheck` compares the observed
conflict counts against the Section-4 PRAM bounds.  The CLI surface is
``python -m repro analyze``.
"""

from repro.analysis.crosscheck import CrossCheckResult, crosscheck, predicted_cost
from repro.analysis.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.analysis.race import (
    Race, RaceDetectingMemory, RaceError, RaceReport, attach_race_detector,
)
from repro.analysis.runner import ALGORITHMS, AnalysisRun, analyze_algorithms, run_one

__all__ = [
    "ALGORITHMS", "AnalysisRun", "CrossCheckResult", "LintFinding", "Race",
    "RaceDetectingMemory", "RaceError", "RaceReport", "analyze_algorithms",
    "attach_race_detector", "crosscheck", "lint_file", "lint_paths",
    "lint_source", "predicted_cost", "run_one",
]
