"""Run every experiment and print (or save) the full report.

Usage::

    python -m repro.harness.run_all [--quick] [--markdown out.md] [ids...]

Experiment ids are the module names in
:mod:`repro.harness.experiments` (``table1``..``table4``, ``fig1``..
``fig6``, ``pram``, ``ablations``); default is all of them.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.config import DEFAULT, QUICK
from repro.harness.experiments import ALL


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("ids", nargs="*", default=[],
                    help="experiments to run (default: all)")
    ap.add_argument("--quick", action="store_true",
                    help="use the small QUICK config")
    ap.add_argument("--markdown", metavar="FILE",
                    help="also write a markdown report")
    ap.add_argument("--json", metavar="FILE",
                    help="also write machine-readable results")
    args = ap.parse_args(argv)

    config = QUICK if args.quick else DEFAULT
    ids = args.ids or list(ALL)
    unknown = [i for i in ids if i not in ALL]
    if unknown:
        ap.error(f"unknown experiment ids {unknown}; have {sorted(ALL)}")

    results = []
    failed = []
    for exp_id in ids:
        t0 = time.time()
        print(f"--- running {exp_id} ...", flush=True)
        res = ALL[exp_id].run(config)
        results.append(res)
        print(res.render())
        print(f"    ({time.time() - t0:.1f}s wall)\n")
        if not res.shape_ok:
            failed.append(exp_id)

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("# Experiment report\n\n")
            fh.write(f"Config: {config}\n\n")
            for res in results:
                fh.write(res.render_markdown())
                fh.write("\n\n")
        print(f"markdown report written to {args.markdown}")

    if args.json:
        import json

        def _plain(v):
            try:
                json.dumps(v)
                return v
            except TypeError:
                return str(v)

        payload = [
            {
                "experiment": res.experiment_id,
                "title": res.title,
                "rows": [{k: _plain(v) for k, v in row.items()}
                         for row in res.rows],
                "series": {k: [_plain(p) for p in pts]
                           for k, pts in res.series.items()},
                "checks": [{"claim": c.claim, "holds": c.holds,
                            "detail": c.detail} for c in res.checks],
                "notes": list(res.notes),
            }
            for res in results
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"json results written to {args.json}")

    total = sum(len(r.checks) for r in results)
    bad = sum(1 for r in results for c in r.checks if not c.holds)
    print(f"=== {len(results)} experiments, {total} shape checks, "
          f"{bad} failures ===")
    if failed:
        print(f"experiments with failed checks: {failed}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
