"""Result containers and plain-text rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ShapeCheck:
    """One qualitative claim from the paper and whether we reproduce it."""

    claim: str
    holds: bool
    detail: str = ""

    def render(self) -> str:
        mark = "OK " if self.holds else "FAIL"
        suffix = f"  [{self.detail}]" if self.detail else ""
        return f"  [{mark}] {self.claim}{suffix}"


@dataclass
class ExperimentResult:
    """Rows plus paper-shape verdicts for one table/figure."""

    experiment_id: str            #: e.g. "Table 3", "Figure 1"
    title: str
    rows: list = field(default_factory=list)          #: list[dict]
    series: dict = field(default_factory=dict)        #: name -> list of points
    checks: list = field(default_factory=list)        #: list[ShapeCheck]
    notes: list = field(default_factory=list)

    def check(self, claim: str, holds: bool, detail: str = "") -> bool:
        self.checks.append(ShapeCheck(claim, bool(holds), detail))
        return bool(holds)

    @property
    def shape_ok(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        out = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            out.append(render_table(self.rows))
        for name, pts in self.series.items():
            out.append(render_series(name, pts))
        if self.checks:
            out.append("shape checks vs the paper:")
            out.extend(c.render() for c in self.checks)
        for n in self.notes:
            out.append(f"  note: {n}")
        return "\n".join(out)

    def render_markdown(self) -> str:
        out = [f"### {self.experiment_id}: {self.title}", ""]
        if self.rows:
            keys = list(self.rows[0].keys())
            out.append("| " + " | ".join(str(k) for k in keys) + " |")
            out.append("|" + "---|" * len(keys))
            for r in self.rows:
                out.append("| " + " | ".join(_fmt(r.get(k, "")) for k in keys) + " |")
            out.append("")
        for name, pts in self.series.items():
            out.append(f"- series `{name}`: " + ", ".join(_fmt(p) for p in pts))
        if self.series:
            out.append("")
        if self.checks:
            out.append("Shape checks vs the paper:")
            for c in self.checks:
                mark = "x" if c.holds else " "
                detail = f" — {c.detail}" if c.detail else ""
                out.append(f"- [{mark}] {c.claim}{detail}")
            out.append("")
        for n in self.notes:
            out.append(f"> {n}")
        return "\n".join(out)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def render_table(rows: list[dict]) -> str:
    """Align a list of dict rows into a text table."""
    if not rows:
        return "(empty)"
    keys = list(rows[0].keys())
    cells = [[str(k) for k in keys]] + [[_fmt(r.get(k, "")) for k in keys]
                                        for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(keys))]
    lines = []
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(name: str, points: list) -> str:
    """One-line rendering of a numeric series (a figure's data line),
    with a sparkline when the points are numeric."""
    text = f"{name}: " + " ".join(_fmt(p) for p in points)
    try:
        from repro.harness.charts import sparkline
        spark = sparkline([float(p) for p in points], width=24)
        if spark:
            text += f"   {spark}"
    except (TypeError, ValueError):
        pass
    return text
