"""Experiment harness: regenerates every table and figure of Section 6.

Each module in :mod:`repro.harness.experiments` exposes
``run(quick=...) -> ExperimentResult`` for one paper artifact; the
result carries the regenerated rows/series, the shape assertions that
must hold against the paper, and render helpers.  ``python -m
repro.harness.run_all`` executes everything and writes the markdown
used in EXPERIMENTS.md.
"""

from repro.harness.tables import ExperimentResult, render_table, render_series
from repro.harness.config import ExperimentConfig, DEFAULT, QUICK

__all__ = [
    "ExperimentResult",
    "render_table",
    "render_series",
    "ExperimentConfig",
    "DEFAULT",
    "QUICK",
]
