"""A Graph500-style BFS benchmark kernel.

Section 3.3 motivates BFS with "the HPC benchmark Graph500"; this
module reproduces that benchmark's structure on the simulated machine:

* **Kernel 1**: build the CSR representation from an R-MAT edge list
  (timed in simulated memory traffic);
* **Kernel 2**: BFS from a sample of random roots with nonzero degree,
  each run *validated* with the Graph500-style certification of
  :mod:`repro.graph.validate`;
* the score is **TEPS** -- traversed edges per (simulated) second:
  ``m_reached / time``, reported per root and as the harmonic mean,
  exactly how Graph500 aggregates.

Because simulated time is deterministic, the TEPS figures are exactly
reproducible -- handy for regression-testing the runtime's cost
accounting end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.bfs import bfs
from repro.generators.kronecker import rmat
from repro.graph.validate import validate_bfs_tree
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.machine.memory import CountingMemory
from repro.runtime.sm import SMRuntime


@dataclass
class Graph500Result:
    scale: int
    edgefactor: float
    direction: str
    n: int
    m: int
    construction_time: float          #: kernel-1 simulated time (mtu)
    roots: list = field(default_factory=list)
    teps: list = field(default_factory=list)    #: per-root TEPS (edges/mtu)
    validated: int = 0

    @property
    def harmonic_mean_teps(self) -> float:
        vals = [t for t in self.teps if t > 0]
        if not vals:
            return 0.0
        return len(vals) / sum(1.0 / t for t in vals)


def run_graph500(config: ExperimentConfig = DEFAULT, scale: int | None = None,
                 edgefactor: float = 16.0, n_roots: int = 8,
                 direction: str = "push", validate: bool = True
                 ) -> Graph500Result:
    """Run kernels 1 + 2 and return the TEPS report."""
    scale = scale if scale is not None else config.scale
    g = rmat(scale, d_bar=edgefactor, seed=config.seed)

    machine = config.scaled_machine()
    rt = SMRuntime(g, P=config.P, machine=machine,
                   memory=CountingMemory(machine.hierarchy))

    # ---- kernel 1: construction traffic (sort + CSR fill, modeled) -----------
    t0 = rt.time
    mem = rt.mem
    edge_h = mem.register("g500.edge_list", 2 * g.m, 8)
    csr_h = mem.register("g500.csr", g.n + len(g.adj), 8)

    def build_body(t: int, vs: np.ndarray) -> None:
        share = 2 * g.m // rt.P
        # each thread scans its edge share twice (count + fill) and
        # scatters into the CSR arrays
        mem.read(edge_h, count=share, mode="seq")
        mem.read(edge_h, count=share, mode="seq")
        mem.write(csr_h, count=share, mode="rand")

    rt.for_each_thread(build_body)
    construction_time = rt.time - t0

    # ---- kernel 2: BFS from sampled non-isolated roots -------------------------
    rng = np.random.default_rng(config.seed)
    deg = np.diff(g.offsets)
    candidates = np.flatnonzero(deg > 0)
    roots = rng.choice(candidates, size=min(n_roots, len(candidates)),
                       replace=False)

    result = Graph500Result(scale=scale, edgefactor=edgefactor,
                            direction=direction, n=g.n, m=g.m,
                            construction_time=construction_time,
                            roots=[int(r) for r in roots])
    for root in roots:
        t0 = rt.time
        r = bfs(g, rt, int(root), direction=direction)
        elapsed = rt.time - t0
        reached = r.level >= 0
        edges_traversed = int(deg[reached].sum()) // (1 if g.directed else 2)
        result.teps.append(edges_traversed / elapsed if elapsed > 0 else 0.0)
        if validate:
            validate_bfs_tree(g, int(root), r.parent, r.level)
            result.validated += 1
    return result


def report(result: Graph500Result) -> str:
    """Graph500-style text report."""
    lines = [
        f"graph500 scale={result.scale} edgefactor={result.edgefactor} "
        f"({result.direction} BFS): n={result.n:,} m={result.m:,}",
        f"kernel 1 (construction): {result.construction_time:,.0f} mtu",
        f"kernel 2: {len(result.roots)} roots, "
        f"{result.validated} validated",
    ]
    for root, teps in zip(result.roots, result.teps):
        lines.append(f"  root {root:>8}: {teps:.4f} TE/mtu")
    lines.append(f"harmonic mean: {result.harmonic_mean_teps:.4f} TE/mtu")
    return "\n".join(lines)
