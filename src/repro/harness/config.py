"""Shared experiment configuration.

Two presets: ``DEFAULT`` (the scales EXPERIMENTS.md was generated at)
and ``QUICK`` (small enough for the benchmark suite / CI).  Scales are
log2 of the vertex count handed to the generators; the cache hierarchy
is shrunk by ``cache_scale`` to keep the stand-in graphs in the same
out-of-cache regime as the paper's full-size graphs (DESIGN.md §2).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.machine.cost_model import MachineSpec, XC30
from repro.machine.memory import CacheSimMemory, CountingMemory
from repro.runtime.sm import SMRuntime


def clamped_scale(requested: int, cap: int, *, reason: str) -> int:
    """Clamp a requested problem scale to ``cap``, loudly.

    Several harness entry points cap the instance size they will build
    (quadratic kernels, DM epoch grids).  Those caps used to be silent
    ``min(scale, cap)`` expressions -- a user asking for ``--scale 20``
    got a scale-11 run with no indication anything was ignored.  All
    cap sites now route through here so the clamp is explicit: the
    requested value is honored when it fits, otherwise a
    ``RuntimeWarning`` names the cap and why it exists.
    """
    if requested <= cap:
        return requested
    warnings.warn(
        f"requested scale {requested} exceeds the cap {cap} ({reason}); "
        f"running at {cap}",
        RuntimeWarning, stacklevel=2)
    return cap


@dataclass(frozen=True)
class ExperimentConfig:
    scale: int = 13            #: log2 n for PR/BGC/BFS/SSSP experiments
    scale_tc: int = 11         #: log2 n for O(m·d̂) triangle counting
    scale_bc: int = 10         #: log2 n for O(n·m) betweenness
    P: int = 16                #: simulated threads (T=16 in the paper's SM runs)
    cache_scale: int = 64
    machine: MachineSpec = XC30
    seed: int = 42
    pr_iterations: int = 5
    bc_sources: int = 24
    max_colors: int = 256

    def scaled_machine(self, base: MachineSpec | None = None) -> MachineSpec:
        return (base or self.machine).scaled(self.cache_scale)

    def sm_runtime(self, g, base: MachineSpec | None = None,
                   P: int | None = None, trace: bool = False) -> SMRuntime:
        """An SMRuntime wired to this config's scaled machine.

        ``trace=True`` swaps in the trace-driven cache simulator (for
        the Table-1 hardware-counter reproduction).
        """
        m = self.scaled_machine(base)
        P = P or self.P
        if trace:
            memory = CacheSimMemory(m.hierarchy, n_threads=P)
        else:
            memory = CountingMemory(m.hierarchy)
        return SMRuntime(g, P=P, machine=m, memory=memory)

    def with_(self, **kw) -> "ExperimentConfig":
        return replace(self, **kw)


DEFAULT = ExperimentConfig()
# QUICK shrinks the graphs further and compensates by shrinking the
# simulated caches more (cache_scale 256), keeping the same
# out-of-cache regime as DEFAULT.
QUICK = ExperimentConfig(scale=11, scale_tc=9, scale_bc=8, P=8,
                         cache_scale=256, pr_iterations=3, bc_sources=8)
