"""Figure 1: Boman coloring per-iteration times -- push, pull, Greedy-Switch.

Paper shape: pushing beats pulling per iteration (~10% on orc, ~9% on
rca for iteration 1); the GrS strategy runs faster iterations (fewer
memory accesses via the traversal) and finishes in fewer of them.
"""

from __future__ import annotations

from repro.algorithms.coloring import boman_coloring
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult
from repro.strategies.frontier_exploit import frontier_exploit_coloring


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 1", "BGC per-iteration time (mtu): push vs pull vs Greedy-Switch")
    data = {}
    for name in ("orc", "rca"):
        g = load_dataset(name, scale=config.scale, seed=config.seed)
        for d in ("push", "pull"):
            rt = config.sm_runtime(g)
            r = boman_coloring(g, rt, direction=d,
                               max_colors=config.max_colors)
            data[(name, d)] = r
            res.series[f"{name}/{d} per-iter"] = [
                round(t, 1) for t in r.iteration_times[:8]]
        rt = config.sm_runtime(g)
        grs = frontier_exploit_coloring(g, rt, greedy_switch=True)
        data[(name, "grs")] = grs
        res.series[f"{name}/GrS per-iter"] = [
            round(t, 1) for t in grs.iteration_times[:8]]
        res.rows.append({
            "graph": name,
            "push iter1": data[(name, "push")].iteration_times[0],
            "pull iter1": data[(name, "pull")].iteration_times[0],
            "GrS iter1": grs.iteration_times[0],
            "push total": data[(name, "push")].time,
            "pull total": data[(name, "pull")].time,
            "GrS total": grs.time,
            "push iters": data[(name, "push")].iterations,
            "pull iters": data[(name, "pull")].iterations,
            "GrS iters": grs.iterations,
        })

    orc_push1 = data[("orc", "push")].iteration_times[0]
    orc_pull1 = data[("orc", "pull")].iteration_times[0]
    res.check("orc: pushing beats pulling in iteration 1 (paper: ~10%)",
              orc_push1 < orc_pull1,
              f"push/pull = {orc_push1 / orc_pull1:.3f}")
    res.check("GrS iterations are cheaper than plain push iterations (orc)",
              data[("orc", "grs")].iteration_times[0]
              < data[("orc", "push")].iteration_times[0])
    res.check("GrS finishes faster than plain pushing on the dense graph, "
              "where conflict iterations dominate",
              data[("orc", "grs")].time < data[("orc", "push")].time,
              f"orc push/GrS = "
              f"{data[('orc', 'push')].time / data[('orc', 'grs')].time:.2f}")
    res.check("overall, a pull scheme can still win (Section 6.5's BGC note)",
              data[("orc", "pull")].time < data[("orc", "push")].time)
    return res
