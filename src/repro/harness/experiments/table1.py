"""Table 1: the hardware-counter study, regenerated on the trace-driven
cache simulator.

For each (algorithm, graph, direction) cell the paper reports L1/L2/L3
misses, TLB misses, atomics, locks, reads, writes, and branches.  We
re-measure the same events with :class:`CacheSimMemory` (exact
set-associative simulation over the synthetic address space) at a
reduced scale.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.coloring import boman_coloring
from repro.algorithms.pagerank import pagerank
from repro.algorithms.sssp_delta import sssp_delta
from repro.algorithms.triangle import triangle_count
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult
from repro.machine.counters import format_count

_EVENTS = ("l1_misses", "l2_misses", "l3_misses", "tlb_d_misses",
           "atomics", "locks", "reads", "writes",
           "branches_uncond", "branches_cond")


def _row(label: str, counters) -> dict:
    d = counters.to_dict()
    return {"config": label, **{e: format_count(d[e]) for e in _EVENTS}}


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    # trace simulation is expensive: run three scales below default, and
    # shrink the simulated caches by the same factor so the graphs stay in
    # the paper's out-of-cache regime
    scale = max(9, config.scale - 3)
    scale_tc = max(8, config.scale_tc - 2)
    config = config.with_(cache_scale=config.cache_scale
                          * (1 << (config.scale - scale)))
    res = ExperimentResult(
        "Table 1",
        f"Hardware-counter events (trace-driven cache sim, scale={scale})")
    raw = {}

    # --- PageRank: orc / rca, push / push+PA / pull -------------------------
    for name in ("orc", "rca"):
        g = load_dataset(name, scale=scale, seed=config.seed)
        for d in ("push", "push-pa", "pull"):
            rt = config.sm_runtime(g, trace=True)
            r = pagerank(g, rt, direction=d, iterations=2)
            raw[("PR", name, d)] = r.counters
            res.rows.append(_row(f"PR {name} {d}", r.counters))

    # --- Triangle Counting: ljn / rca, push / pull --------------------------
    for name in ("ljn", "rca"):
        g = load_dataset(name, scale=scale_tc, seed=config.seed)
        for d in ("push", "pull"):
            rt = config.sm_runtime(g, trace=True)
            r = triangle_count(g, rt, direction=d)
            raw[("TC", name, d)] = r.counters
            res.rows.append(_row(f"TC {name} {d}", r.counters))

    # --- Boman coloring: orc / rca, push / pull ------------------------------
    # The paper's BGC rows are averages *per iteration*; after iteration 1
    # the two directions recolor different vertices and their trajectories
    # diverge, so the comparable unit is a single iteration.
    for name in ("orc", "rca"):
        g = load_dataset(name, scale=scale, seed=config.seed)
        for d in ("push", "pull"):
            rt = config.sm_runtime(g, trace=True)
            r = boman_coloring(g, rt, direction=d,
                               max_colors=config.max_colors,
                               max_iterations=1)
            raw[("BGC", name, d)] = r.counters
            res.rows.append(_row(f"BGC {name} {d} (iter 1)", r.counters))

    # --- SSSP-Δ: pok / rca, push / pull ---------------------------------------
    for name in ("pok", "rca"):
        g = load_dataset(name, scale=scale, seed=config.seed, weighted=True)
        src = int(np.argmax(np.diff(g.offsets)))
        for d in ("push", "pull"):
            rt = config.sm_runtime(g, trace=True)
            r = sssp_delta(g, rt, src, direction=d)
            raw[("SSSP", name, d)] = r.counters
            res.rows.append(_row(f"SSSP-Δ {name} {d}", r.counters))

    # --- the paper's headline counter asymmetries ------------------------------
    res.check("PR: pulling issues zero atomics; pushing ~2m per iteration",
              raw[("PR", "orc", "pull")].atomics == 0
              and raw[("PR", "orc", "push")].atomics > 0)
    res.check("PR: push+PA issues fewer atomics than plain push (paper: -7%)",
              0 < raw[("PR", "orc", "push-pa")].atomics
              < raw[("PR", "orc", "push")].atomics)
    res.check("TC: pushing uses FAA atomics, pulling none",
              raw[("TC", "ljn", "push")].faa > 0
              and raw[("TC", "ljn", "pull")].atomics == 0)
    res.check("BGC: both directions acquire the same number of locks",
              raw[("BGC", "orc", "push")].locks
              == raw[("BGC", "orc", "pull")].locks)
    res.check("BGC: pushing issues fewer reads than pulling",
              raw[("BGC", "orc", "push")].reads
              < raw[("BGC", "orc", "pull")].reads)
    res.check("SSSP-Δ: pulling reads orders of magnitude more than pushing "
              "on the road network (paper: 454M vs 42k)",
              raw[("SSSP", "rca", "pull")].reads
              > 20 * raw[("SSSP", "rca", "push")].reads)
    res.check("SSSP-Δ: pulling acquires far more locks than pushing",
              raw[("SSSP", "pok", "pull")].locks
              > 3 * raw[("SSSP", "pok", "push")].locks)
    res.check("PR: pulling has more L3 misses than pushing on orc "
              "(paper: 181M vs 64.75M)",
              raw[("PR", "orc", "pull")].l3_misses
              > raw[("PR", "orc", "push")].l3_misses)
    res.notes.append(
        "Counts are totals at the reduced scale; compare ratios, not "
        "magnitudes, against the paper's Table 1.")
    return res
