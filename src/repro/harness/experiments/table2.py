"""Table 2: the benchmark graph suite (paper stats vs generated stand-ins)."""

from __future__ import annotations

from repro.generators.registry import dataset_table
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    rows = dataset_table(scale=config.scale, seed=config.seed)
    res = ExperimentResult(
        "Table 2", "Graph suite: paper graphs vs scaled synthetic stand-ins",
        rows=rows,
    )
    by_id = {r["ID"]: r for r in rows}
    res.check("social stand-ins are dense and low-diameter (d̄ > 15, D < 8)",
              by_id["orc"]["d̄"] > 15 and by_id["orc"]["D"] < 8
              and by_id["pok"]["d̄"] > 10 and by_id["pok"]["D"] < 10)
    res.check("road stand-in is sparse with a huge diameter (d̄ < 2, D > 10×others)",
              by_id["rca"]["d̄"] < 2
              and by_id["rca"]["D"] > 10 * by_id["orc"]["D"])
    res.check("purchase stand-in sits between (d̄ ≈ 3, moderate D)",
              2 < by_id["am"]["d̄"] < 5
              and by_id["orc"]["D"] < by_id["am"]["D"] < by_id["rca"]["D"])
    res.check("d̄ ordering matches the paper (orc > pok > ljn > am > rca)",
              by_id["orc"]["d̄"] > by_id["pok"]["d̄"] > by_id["ljn"]["d̄"]
              > by_id["am"]["d̄"] > by_id["rca"]["d̄"])
    return res
