"""Figure 2: SSSP-Δ per-epoch times (a, b) and Δ sensitivity (c).

Paper shapes: push wins early epochs; on dense graphs pull can win a
late epoch once the frontier is large; increasing Δ shrinks the
push/pull difference.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.sssp_delta import sssp_delta
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 2", "SSSP-Δ per-epoch time (mtu) and Δ sensitivity")
    totals = {}
    for name in ("orc", "am"):
        g = load_dataset(name, scale=config.scale, seed=config.seed,
                         weighted=True)
        src = int(np.argmax(np.diff(g.offsets)))
        for d in ("push", "pull"):
            rt = config.sm_runtime(g)
            r = sssp_delta(g, rt, src, direction=d)
            totals[(name, d)] = r
            res.series[f"{name}/{d} per-epoch"] = [
                round(t, 1) for t in r.epoch_times[:10]]
        res.rows.append({
            "graph": name,
            "push total": totals[(name, "push")].time,
            "pull total": totals[(name, "pull")].time,
            "push epochs": totals[(name, "push")].epochs,
            "pull epochs": totals[(name, "pull")].epochs,
        })

    # --- (c) Δ sweep on am -----------------------------------------------------
    g = load_dataset("am", scale=config.scale, seed=config.seed, weighted=True)
    src = int(np.argmax(np.diff(g.offsets)))
    base_delta = float(g.weights.mean())
    sweep_rows = []
    gaps = []
    for mult in (0.25, 0.5, 1.0, 2.0, 4.0):
        delta = base_delta * mult
        times = {}
        for d in ("push", "pull"):
            rt = config.sm_runtime(g)
            times[d] = sssp_delta(g, rt, src, delta=delta, direction=d).time
        gap = times["pull"] / times["push"]
        gaps.append(gap)
        sweep_rows.append({"Δ multiplier": mult, "push": times["push"],
                           "pull": times["pull"], "pull/push": round(gap, 2)})
    res.rows.extend(sweep_rows)

    res.check("push completes SSSP-Δ faster than pull on both graphs",
              all(totals[(n, "push")].time < totals[(n, "pull")].time
                  for n in ("orc", "am")))
    res.check("both directions run the same number of epochs "
              "(they compute identical bucket schedules)",
              all(totals[(n, "push")].epochs == totals[(n, "pull")].epochs
                  for n in ("orc", "am")))
    res.check("the larger Δ is, the smaller the push/pull difference "
              "(Figure 2c)", gaps[-1] < gaps[0],
              f"pull/push gap: {gaps[0]:.2f} -> {gaps[-1]:.2f}")
    return res
