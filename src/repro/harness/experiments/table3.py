"""Table 3: PR time/iteration and TC total time, push vs pull, 5 graphs.

Paper shape: "In graphs with both high d̄ (orc, ljn, pok) and low d̄
(rca, am), pulling outperforms pushing by ≈3% and ≈19% respectively"
(PR); "pulling always outperforms pushing" (TC).
"""

from __future__ import annotations

from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangle import triangle_count
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult

GRAPHS = ("orc", "pok", "ljn", "am", "rca")


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Table 3",
        "PageRank time/iteration and Triangle Counting total time (mtu)",
    )
    pr = {}
    tc = {}
    for name in GRAPHS:
        g = load_dataset(name, scale=config.scale, seed=config.seed)
        for d in ("push", "pull"):
            rt = config.sm_runtime(g)
            r = pagerank(g, rt, direction=d, iterations=config.pr_iterations)
            pr[(name, d)] = r.time / r.iterations
        g_tc = load_dataset(name, scale=config.scale_tc, seed=config.seed)
        for d in ("push", "pull"):
            rt = config.sm_runtime(g_tc)
            tc[(name, d)] = triangle_count(g_tc, rt, direction=d).time
    for d in ("push", "pull"):
        res.rows.append(
            {"metric": f"PR {d} [mtu/iter]", **{n: pr[(n, d)] for n in GRAPHS}})
    for d in ("push", "pull"):
        res.rows.append(
            {"metric": f"TC {d} [mtu]", **{n: tc[(n, d)] for n in GRAPHS}})

    res.check("PR: pulling outperforms pushing on every graph",
              all(pr[(n, "pull")] < pr[(n, "push")] for n in GRAPHS))
    dense_margin = pr[("orc", "push")] / pr[("orc", "pull")]
    sparse_margin = pr[("rca", "push")] / pr[("rca", "pull")]
    res.check("PR: the pull margin is larger on sparse graphs than dense",
              sparse_margin > dense_margin,
              f"orc push/pull={dense_margin:.2f}, rca={sparse_margin:.2f} "
              f"(paper: 1.03 vs 1.19)")
    res.check("TC: pulling outperforms (or ties) pushing on every graph",
              all(tc[(n, "pull")] <= tc[(n, "push")] * 1.001 for n in GRAPHS))
    res.check("TC: the push/pull gap grows with triangle density "
              "(orc gap > rca gap)",
              tc[("orc", "push")] / tc[("orc", "pull")]
              >= tc[("rca", "push")] / tc[("rca", "pull")])
    res.notes.append(
        "Absolute numbers are model time units; the paper reports ms on a "
        "Cray XC30.  Our dense-graph pull margins are wider than the "
        "paper's 3-4% because the scaled-down stand-ins lack the extreme "
        "hubs whose read traffic dilutes atomic costs at full scale.")
    return res
