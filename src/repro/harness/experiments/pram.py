"""Section 4's analytic cost table: push vs pull PRAM costs per algorithm.

Regenerates the complexity discussion as numbers: for a representative
(n, m, d̂, P, D, ...) point, the time/work/conflict/atomic counts of
every algorithm in both directions under CRCW-CB and CREW, with the
paper's qualitative conclusions asserted (Section 4.9).
"""

from __future__ import annotations

import math

from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult
from repro.pram.costs import (
    bc_cost, bfs_cost, boman_coloring_cost, boruvka_cost, pagerank_cost,
    sssp_delta_cost, triangle_count_cost,
)
from repro.pram.models import PRAM, limit_processors, simulate_crcw_on_weaker


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    n = 1 << config.scale
    m = 16 * n
    d_hat = 4 * int(math.sqrt(n))
    P = 1 << 10
    D, L = 12, 20
    res = ExperimentResult(
        "Section 4", f"PRAM costs at n={n}, m={m}, d̂={d_hat}, P={P}, D={D}")

    cases = []
    for model in (PRAM.CRCW_CB, PRAM.CREW):
        for direction in ("push", "pull"):
            cases.extend([
                pagerank_cost(direction, model, n, m, d_hat, P, L),
                triangle_count_cost(direction, model, n, m, d_hat, P),
                bfs_cost(direction, model, n, m, d_hat, P, D),
                sssp_delta_cost(direction, model, n, m, d_hat, P, 8.0, 3.0),
                bc_cost(direction, model, n, m, d_hat, P, D, sources=64),
                boman_coloring_cost(direction, model, n, m, d_hat, P, L),
                boruvka_cost(direction, model, n, m, d_hat, P),
            ])
    res.rows = [c.as_row() for c in cases]
    by = {(c.algorithm, c.direction, c.model): c for c in cases}

    log_d = max(1.0, math.log2(d_hat))
    res.check("PR/TC: pulling beats pushing by a log(d̂) factor on CREW "
              "(Section 4.9 'Complexity')",
              abs(by[("PR", "push", PRAM.CREW)].time
                  / by[("PR", "pull", PRAM.CREW)].time - log_d) < 0.1
              and by[("TC", "push", PRAM.CREW)].work
              > by[("TC", "pull", PRAM.CREW)].work)
    res.check("BFS: pulling needs more time and work than pushing "
              "(O(Dm) vs O(m) work)",
              by[("BFS", "pull", PRAM.CRCW_CB)].work
              > by[("BFS", "push", PRAM.CRCW_CB)].work
              and by[("BFS", "pull", PRAM.CRCW_CB)].time
              > by[("BFS", "push", PRAM.CRCW_CB)].time)
    res.check("SSSP-Δ: pushing achieves a smaller cost "
              "(edges relaxed in only one of L/Δ epochs)",
              by[("SSSP-Δ", "push", PRAM.CRCW_CB)].work
              < by[("SSSP-Δ", "pull", PRAM.CRCW_CB)].work)
    res.check("pulling removes atomics/locks completely in "
              "TC, PR, BFS, SSSP-Δ, MST (Section 4.9)",
              all(by[(a, "pull", PRAM.CRCW_CB)].atomics == 0
                  and by[(a, "pull", PRAM.CRCW_CB)].locks == 0
                  for a in ("TC", "PR", "BFS", "SSSP-Δ", "MST")))
    res.check("pushing entails write conflicts in every algorithm; "
              "pulling entails read conflicts",
              all(by[(a, "push", PRAM.CRCW_CB)].write_conflicts > 0
                  and by[(a, "pull", PRAM.CRCW_CB)].read_conflicts > 0
                  for a in ("PR", "TC", "BFS", "SSSP-Δ", "BGC", "MST")))
    res.check("BC: push conflicts are on floats (locks), pull's on "
              "integers (atomics) -- the type changes, not the presence",
              by[("BC", "push", PRAM.CRCW_CB)].locks > 0
              and by[("BC", "pull", PRAM.CRCW_CB)].locks == 0
              and by[("BC", "pull", PRAM.CRCW_CB)].atomics > 0)

    # simulation lemmas (Section 2.1)
    t = by[("PR", "push", PRAM.CRCW_CB)].time
    res.check("CRCW -> CREW simulation costs a Θ(log P) slowdown",
              abs(simulate_crcw_on_weaker(t, P) / t - math.log2(P)) < 1e-9)
    res.check("LP lemma: halving processors at most doubles (ceil) time",
              limit_processors(t, P, P // 2) <= 2 * t + 1)
    return res
