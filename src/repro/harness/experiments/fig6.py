"""Figure 6: acceleration-strategy analysis.

(a) PR push vs push+PA time per iteration (paper: PA wins ~24% on the
dense graphs, but is the *slowest* variant on sparse rca/am);
(b) BGC iterations to finish for Push / +FE / +GS / +GrS (paper: FE
inflates iterations on the dense orc/ljn and shrinks them on am/rca;
the switching strategies bring the count back down).
"""

from __future__ import annotations

from repro.algorithms.coloring import boman_coloring
from repro.algorithms.pagerank import pagerank
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult
from repro.strategies.frontier_exploit import frontier_exploit_coloring

GRAPHS = ("orc", "pok", "ljn", "am", "rca")


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 6", "Strategies: PR push vs +PA (mtu/iter); BGC iteration counts")

    # --- (a) PR +PA --------------------------------------------------------------
    pr = {}
    for name in GRAPHS:
        g = load_dataset(name, scale=config.scale, seed=config.seed)
        for d in ("push", "push-pa", "pull"):
            rt = config.sm_runtime(g)
            r = pagerank(g, rt, direction=d, iterations=config.pr_iterations)
            pr[(name, d)] = r.time / r.iterations
    for d in ("push", "push-pa", "pull"):
        res.rows.append({"metric": f"PR {d} [mtu/iter]",
                         **{n: pr[(n, d)] for n in GRAPHS}})

    # --- (b) BGC iterations ---------------------------------------------------------
    it = {}
    for name in GRAPHS:
        g = load_dataset(name, scale=config.scale, seed=config.seed)
        rt = config.sm_runtime(g)
        it[(name, "push")] = boman_coloring(
            g, rt, direction="push", max_colors=config.max_colors).iterations
        for label, kw in (("+FE", {}),
                          ("+GS", {"generic_switch": True}),
                          ("+GrS", {"greedy_switch": True})):
            rt = config.sm_runtime(g)
            it[(name, label)] = frontier_exploit_coloring(g, rt, **kw).iterations
    for variant in ("push", "+FE", "+GS", "+GrS"):
        res.rows.append({"metric": f"BGC iters {variant}",
                         **{n: it[(n, variant)] for n in GRAPHS}})

    dense = ("orc", "pok", "ljn")
    sparse = ("am", "rca")
    res.check("PA beats plain push on the dense graphs (paper: ~24%)",
              all(pr[(n, "push-pa")] < pr[(n, "push")] for n in dense),
              f"orc push/PA = {pr[('orc', 'push')] / pr[('orc', 'push-pa')]:.2f}")
    res.check("PA beats even pulling on the dense graphs",
              all(pr[(n, "push-pa")] < pr[(n, "pull")] for n in dense))
    res.check("PA is slower than pulling on the road network "
              "(the two-phase overhead is no longer compensated)",
              pr[("rca", "push-pa")] > pr[("rca", "pull")],
              f"rca PA/pull = {pr[('rca', 'push-pa')] / pr[('rca', 'pull')]:.2f}")
    res.notes.append(
        "The paper also finds PA slower than pull on am; our am stand-in's "
        "preferential-attachment hubs give PA's segregated remote phase "
        "more credit than the real Amazon graph does, so the PA penalty "
        "only reproduces on the road network.")
    res.check("FE inflates the iteration count on the dense community graphs "
              "(paper: orc 49 -> 173)",
              it[("orc", "+FE")] > 1.5 * it[("orc", "push")],
              f"orc: push {it[('orc', 'push')]} vs FE {it[('orc', '+FE')]}")
    res.check("FE's iteration count on the sparse graphs is a small "
              "fraction of its dense-graph count (paper: 10/5 vs 173/334)",
              all(it[(n, "+FE")] < 0.25 * it[("orc", "+FE")] for n in sparse),
              f"FE iters: orc {it[('orc', '+FE')]}, am {it[('am', '+FE')]}, "
              f"rca {it[('rca', '+FE')]}")
    res.check("GrS needs no more iterations than plain FE everywhere",
              all(it[(n, "+GrS")] <= it[(n, "+FE")] for n in GRAPHS))
    return res
