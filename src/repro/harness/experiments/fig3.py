"""Figure 3: distributed-memory strong scaling of PR and TC.

Paper shapes (Section 6.3): for PR, Message Passing beats RMA by >10x
and RMA-push is the slowest; for TC, RMA beats MP and pull is at least
as fast as push.  All variants should strong-scale (time falls as P
grows).
"""

from __future__ import annotations

from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig, clamped_scale
from repro.harness.tables import ExperimentResult
from repro.runtime.dm import DMRuntime

P_SWEEP = (2, 4, 8, 16, 32)


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 3", "DM strong scaling (mtu): PR and TC, MP vs RMA push/pull")
    machine = config.scaled_machine()

    # --- PageRank on the rmat graph ----------------------------------------------
    g = load_dataset("rmat", scale=config.scale, seed=config.seed)
    pr = {}
    for variant in ("mp", "rma-push", "rma-pull"):
        times = []
        for P in P_SWEEP:
            rt = DMRuntime(g.n, P=P, machine=machine)
            r = dm_pagerank(g, rt, variant=variant,
                            iterations=config.pr_iterations)
            times.append(r.time)
        pr[variant] = times
        res.series[f"PR rmat {variant}"] = [round(t, 0) for t in times]
        res.rows.append({"algo": "PR", "variant": variant,
                         **{f"P={P}": t for P, t in zip(P_SWEEP, times)}})

    # --- Triangle Counting on the rmat graph (smaller scale: O(m·d̂)) -----------
    g_tc = load_dataset("rmat", scale=clamped_scale(
        config.scale_tc, 10, reason="triangle counting is O(m·d̂)"),
        seed=config.seed)
    tc = {}
    for variant in ("mp", "rma-push", "rma-pull"):
        times = []
        for P in P_SWEEP:
            rt = DMRuntime(g_tc.n, P=P, machine=machine)
            r = dm_triangle_count(g_tc, rt, variant=variant)
            times.append(r.time)
        tc[variant] = times
        res.series[f"TC rmat {variant}"] = [round(t, 0) for t in times]
        res.rows.append({"algo": "TC", "variant": variant,
                         **{f"P={P}": t for P, t in zip(P_SWEEP, times)}})

    res.check("PR: MP consistently outperforms both RMA variants (>10x)",
              all(pr["mp"][i] * 10 < min(pr["rma-push"][i], pr["rma-pull"][i])
                  for i in range(len(P_SWEEP))))
    res.check("PR: RMA pushing is the slowest variant",
              all(pr["rma-push"][i] >= max(pr["mp"][i], pr["rma-pull"][i])
                  for i in range(len(P_SWEEP))))
    res.check("TC: RMA variants always outperform MP",
              all(max(tc["rma-push"][i], tc["rma-pull"][i]) < tc["mp"][i]
                  for i in range(len(P_SWEEP))))
    res.check("TC: pulling is at least as fast as pushing",
              all(tc["rma-pull"][i] <= tc["rma-push"][i]
                  for i in range(len(P_SWEEP))))
    res.check("strong scaling: every variant is faster at P=32 than P=2",
              all(series[-1] < series[0]
                  for series in list(pr.values()) + list(tc.values())))
    return res
