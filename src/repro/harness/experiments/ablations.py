"""E13: ablations for the design choices DESIGN.md calls out.

(a) direction-optimizing BFS vs pure push / pure pull (the paper's [4]);
(b) Partition-Awareness atomics vs the Section-5 bounds [0, 2m];
(c) static vs dynamic loop scheduling (Section 6 benchmarks both);
(d) CSR vs CSC SpMSpV work as the frontier grows (Section 7.1);
(e) the batched-atomic discount of the PA model (cost-model knob).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig, clamped_scale
from repro.harness.tables import ExperimentResult
from repro.la.matrix import adjacency_matrices
from repro.la.semiring import OR_AND
from repro.la.spmv import spmspv_csc, spmspv_csr
from repro.machine.memory import CountingMemory
from repro.runtime.sm import SMRuntime
from repro.strategies.partition_awareness import pa_atomics_bounds
from repro.strategies.switching import direction_optimizing_bfs


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult("Ablations", "design-choice ablations (E13)")

    # --- (a) direction-optimizing BFS ------------------------------------------
    do_results = {}
    for name in ("ljn", "rca"):
        g = load_dataset(name, scale=config.scale, seed=config.seed)
        root = int(np.argmax(np.diff(g.offsets)))
        times = {}
        for d in ("push", "pull"):
            rt = config.sm_runtime(g)
            times[d] = bfs(g, rt, root, direction=d).time
        rt = config.sm_runtime(g)
        do = direction_optimizing_bfs(g, rt, root)
        times["direction-optimizing"] = do.time
        do_results[name] = (times, do)
        res.rows.append({"ablation": f"BFS {name}", **times,
                         "DO choices": "/".join(do.directions[:12])})
    ljn_t, ljn_do = do_results["ljn"]
    rca_t, rca_do = do_results["rca"]
    res.check("DO-BFS beats pure push by >2x on the community graph "
              "(Beamer et al. [4] report ~2.4x on such graphs)",
              ljn_t["direction-optimizing"] * 2 < ljn_t["push"],
              f"push/DO = {ljn_t['push'] / ljn_t['direction-optimizing']:.2f}")
    res.check("DO-BFS switches to pull at the fat middle levels of the "
              "community graph and never on the road network",
              "pull" in ljn_do.directions and ljn_do.directions[0] == "push"
              and "pull" not in rca_do.directions)
    res.check("DO-BFS is close to the best fixed direction on both graphs "
              "(robustness: within 1.5x)",
              all(t["direction-optimizing"]
                  < 1.5 * min(t["push"], t["pull"])
                  for t, _ in do_results.values()))

    # --- (b) PA atomics bounds -----------------------------------------------------
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    lo, actual, hi = pa_atomics_bounds(g, config.P)
    rt = config.sm_runtime(g)
    r = pagerank(g, rt, direction="push-pa", iterations=1)
    res.rows.append({"ablation": "PA atomics/iter (orc)", "lower": lo,
                     "measured": r.counters.atomics, "remote entries": actual,
                     "upper (2m)": hi})
    res.check("measured PA atomics per iteration equal the remote-entry "
              "count and sit inside the Section-5 bounds [0, 2m]",
              lo <= r.counters.atomics == actual <= hi)

    # --- (c) static vs dynamic scheduling --------------------------------------------
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    sched_times = {}
    for schedule in ("static", "dynamic"):
        m = config.scaled_machine()
        rt = SMRuntime(g, P=config.P, machine=m,
                       memory=CountingMemory(m.hierarchy), schedule=schedule)
        sched_times[schedule] = pagerank(g, rt, direction="pull",
                                         iterations=2).time
    res.rows.append({"ablation": "PR pull scheduling (orc)", **sched_times})
    res.check("static and dynamic schedules agree within 2x "
              "(the simulator balances blocks; skew is mild at this scale)",
              0.5 < sched_times["dynamic"] / sched_times["static"] < 2.0)

    # --- (d) SpMSpV frontier sparsity -------------------------------------------------
    g = load_dataset("am", scale=clamped_scale(
        config.scale, 11, reason="SpMSpV sweep runs dense CSR products"),
        seed=config.seed)
    csr, csc = adjacency_matrices(g)
    rng = np.random.default_rng(config.seed)
    rows = []
    csc_wins_small = None
    for frac in (0.01, 0.1, 0.5):
        k = max(1, int(frac * g.n))
        idx = np.sort(rng.choice(g.n, size=k, replace=False))
        ones = np.ones(k)
        _, _, ops_csr = spmspv_csr(csr, idx, ones, OR_AND)
        _, _, ops_csc = spmspv_csc(csc, idx, ones, OR_AND)
        rows.append({"ablation": f"SpMSpV frontier {frac:.0%}",
                     "CSR rows touched": ops_csr.rows_touched,
                     "CSC cols touched": ops_csc.rows_touched,
                     "CSR mults": ops_csr.multiplies,
                     "CSC mults": ops_csc.multiplies})
        if csc_wins_small is None:
            csc_wins_small = ops_csc.rows_touched < ops_csr.rows_touched / 10
    res.rows.extend(rows)
    res.check("CSC (push) SpMSpV touches only the frontier's columns; "
              "CSR (pull) must sweep all rows (Section 7.1)",
              bool(csc_wins_small))

    # --- (f) hyper-threading (Section 6.5) -----------------------------------------------
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    cores = config.machine.cores
    ht = {}
    for d in ("push", "pull"):
        for P in (cores, 2 * cores):
            m = config.scaled_machine()
            rt = SMRuntime(g, P=P, machine=m,
                           memory=CountingMemory(m.hierarchy))
            ht[(d, P)] = pagerank(g, rt, direction=d, iterations=2).time
        res.rows.append({"ablation": f"PR {d} HT", f"T={cores}": ht[(d, cores)],
                         f"T={2 * cores}": ht[(d, 2 * cores)],
                         "HT speedup": round(ht[(d, cores)]
                                             / ht[(d, 2 * cores)], 2)})
    res.check("HT accelerates each scheme, maintaining the relative "
              "differences (Section 6.5)",
              all(1.0 < ht[(d, cores)] / ht[(d, 2 * cores)] <= 2.0
                  for d in ("push", "pull"))
              and (ht[("pull", cores)] < ht[("push", cores)])
              == (ht[("pull", 2 * cores)] < ht[("push", 2 * cores)]))

    # --- (e) batched-atomic discount knob ----------------------------------------------
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    knob_rows = {}
    for factor in (1.0, 0.5):
        m = config.scaled_machine().with_(atomic_batch_factor=factor)
        rt = SMRuntime(g, P=config.P, machine=m,
                       memory=CountingMemory(m.hierarchy))
        pa_t = pagerank(g, rt, direction="push-pa", iterations=2)
        rt = SMRuntime(g, P=config.P, machine=m,
                       memory=CountingMemory(m.hierarchy))
        pull_t = pagerank(g, rt, direction="pull", iterations=2)
        knob_rows[factor] = (pa_t.time, pull_t.time)
        res.rows.append({"ablation": f"PA batch factor {factor}",
                         "PA": pa_t.time, "pull": pull_t.time})
    res.check("the PA-beats-pull result on dense graphs depends on the "
              "batched-atomic discount (an honest model sensitivity)",
              knob_rows[0.5][0] < knob_rows[0.5][1]
              and knob_rows[1.0][0] > knob_rows[0.5][0])
    return res
