"""Figure 4: MST phase times (Find-Minimum, Build-Merge-Tree, Merge).

Paper shapes: push is faster in BMT (it stored the partner flag during
FM), comparable in Merge, and slower in the dominant FM phase -- so
pull wins overall (~20% at T=4).
"""

from __future__ import annotations

from repro.algorithms.mst_boruvka import boruvka_mst
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult

T_SWEEP = (4, 8, 16)


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 4", "Borůvka MST phase times (mtu) on the orc stand-in")
    g = load_dataset("orc", scale=config.scale, seed=config.seed,
                     weighted=True)
    results = {}
    for T in T_SWEEP:
        for d in ("push", "pull"):
            rt = config.sm_runtime(g, P=T)
            r = boruvka_mst(g, rt, direction=d)
            results[(T, d)] = r
            res.rows.append({
                "T": T, "dir": d,
                "FM": sum(r.phase_times["FM"]),
                "BMT": sum(r.phase_times["BMT"]),
                "M": sum(r.phase_times["M"]),
                "total": r.time,
                "iters": r.iterations,
            })
    for d in ("push", "pull"):
        res.series[f"FM/{d} per-iter (T=16)"] = [
            round(t, 0) for t in results[(16, d)].phase_times["FM"]]

    def phase(T, d, name):
        return sum(results[(T, d)].phase_times[name])

    res.check("push is slower in the dominant Find-Minimum phase",
              all(phase(T, "push", "FM") > phase(T, "pull", "FM")
                  for T in T_SWEEP))
    res.check("push is faster (or equal) in Build-Merge-Tree",
              all(phase(T, "push", "BMT") <= phase(T, "pull", "BMT")
                  for T in T_SWEEP))
    res.check("Merge phase is comparable (within 10%)",
              all(abs(phase(T, "push", "M") - phase(T, "pull", "M"))
                  <= 0.1 * max(phase(T, "push", "M"), phase(T, "pull", "M"))
                  for T in T_SWEEP))
    res.check("pull wins overall (paper: ~20% at T=4)",
              all(results[(T, "pull")].time < results[(T, "push")].time
                  for T in T_SWEEP),
              f"T=4 push/pull = "
              f"{results[(4, 'push')].time / results[(4, 'pull')].time:.2f}")
    res.check("FM strong-scales with threads (pull, T=4 -> T=16)",
              phase(16, "pull", "FM") < phase(4, "pull", "FM"))
    return res
