"""One module per paper artifact; every module exposes ``run(config)``.

========  ==========================================================
module    paper artifact
========  ==========================================================
table2    Table 2 (graph suite)
table3    Table 3 (PR time/iteration, TC total time; push vs pull)
table1    Table 1 (hardware-counter study, trace-driven cache sim)
table4    Table 4 (PR across machines)
fig1      Figure 1 (BGC per-iteration times; Greedy-Switch)
fig2      Figure 2 (SSSP-Δ per-epoch times; Δ sensitivity)
fig3      Figure 3 (distributed-memory strong scaling, PR + TC)
fig4      Figure 4 (MST phase times)
fig5      Figure 5 (BC scalability)
fig6      Figure 6 (acceleration strategies: PA times, BGC iterations)
pram      Section 4 cost table (analytic push/pull PRAM costs)
ablations E13 design-choice ablations (DESIGN.md)
extensions  DESIGN.md §6 extensions: Prim, CC, weighted BC, DM SSSP,
          partition quality, contention profile
========  ==========================================================
"""

from repro.harness.experiments import (  # noqa: F401
    ablations,
    extensions,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    pram,
    table1,
    table2,
    table3,
    table4,
)

ALL = {
    "table2": table2,
    "table3": table3,
    "table1": table1,
    "table4": table4,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "pram": pram,
    "ablations": ablations,
    "extensions": extensions,
}
