"""Extension experiments (DESIGN.md §6): the paper's pointers, measured.

X2 Prim push/pull; X3 connected components (+pointer jumping); X4
weighted BC; X5 distributed Δ-Stepping message inversion; partition-
quality sensitivity of PA; and the contention profile that justifies
the contended atomic pricing.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bc_weighted import betweenness_centrality_weighted
from repro.algorithms.connected_components import connected_components
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.mst_boruvka import boruvka_mst
from repro.algorithms.mst_prim import prim_mst
from repro.generators.registry import load_dataset
from repro.graph.partition import Partition1D
from repro.graph.partition_strategies import (
    HashPartition, LocalityPartition, edge_cut,
)
from repro.harness.config import DEFAULT, ExperimentConfig, clamped_scale
from repro.harness.tables import ExperimentResult
from repro.machine.contention import contention_profile, effective_atomic_cost
from repro.runtime.dm import DMRuntime


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Extensions", "technical-report pointers and model-justification runs")
    scale = max(9, config.scale - 2)

    # --- X2: Prim vs Borůvka -------------------------------------------------------
    gw = load_dataset("rca", scale=scale, seed=config.seed, weighted=True)
    rt = config.sm_runtime(gw)
    prim_push = prim_mst(gw, rt, direction="push")
    rt = config.sm_runtime(gw)
    prim_pull = prim_mst(gw, rt, direction="pull")
    rt = config.sm_runtime(gw)
    boruvka = boruvka_mst(gw, rt, direction="pull")
    res.rows.append({"experiment": "MST rca", "prim push": prim_push.time,
                     "prim pull": prim_pull.time, "borůvka pull": boruvka.time,
                     "weight": round(prim_push.total_weight, 1)})
    res.check("Prim push/pull/Borůvka agree on the forest weight",
              abs(prim_push.total_weight - boruvka.total_weight) < 1e-6
              and abs(prim_pull.total_weight - boruvka.total_weight) < 1e-6)
    res.check("Prim pull pays more reads than Prim push "
              "(fringe self-probes every round)",
              prim_pull.counters.reads > prim_push.counters.reads)
    res.check("Borůvka (log n rounds) beats Prim (n rounds) end to end",
              boruvka.time < min(prim_push.time, prim_pull.time))

    # --- X3: connected components ---------------------------------------------------
    g = load_dataset("rca", scale=scale, seed=config.seed)
    cc = {}
    for pj in (False, True):
        rt = config.sm_runtime(g)
        cc[pj] = connected_components(g, rt, direction="push",
                                      pointer_jumping=pj)
    res.rows.append({"experiment": "CC rca push", "rounds": cc[False].rounds,
                     "rounds +jump": cc[True].rounds,
                     "components": cc[False].n_components})
    res.check("pointer jumping collapses the round count on the "
              "high-diameter graph", cc[True].rounds < cc[False].rounds / 2)
    res.check("both CC variants find the same components",
              np.array_equal(cc[False].labels, cc[True].labels))

    # --- X4: weighted BC ------------------------------------------------------------
    gw2 = load_dataset("ljn", scale=clamped_scale(
        scale, 9, reason="weighted BC is O(n·m log n)"),
        seed=config.seed, weighted=True)
    wbc = {}
    for d in ("push", "pull"):
        rt = config.sm_runtime(gw2)
        wbc[d] = betweenness_centrality_weighted(gw2, rt, direction=d,
                                                 sources=8, seed=config.seed)
    res.rows.append({"experiment": "weighted BC ljn",
                     "push": wbc["push"].time, "pull": wbc["pull"].time})
    res.check("weighted BC: both directions agree on the scores",
              np.allclose(wbc["push"].bc, wbc["pull"].bc, atol=1e-8))

    # --- X5: DM Δ-Stepping message inversion -------------------------------------------
    gw3 = load_dataset("am", scale=scale, seed=config.seed, weighted=True)
    src = int(np.argmax(np.diff(gw3.offsets)))
    dm = {}
    for variant in ("push", "pull"):
        rt = DMRuntime(gw3.n, P=8, machine=config.scaled_machine())
        dm[variant] = dm_sssp_delta(gw3, rt, src, variant=variant)
    res.rows.append({"experiment": "DM SSSP am", "push msgs": dm["push"].messages,
                     "pull msgs": dm["pull"].messages,
                     "push time": dm["push"].time, "pull time": dm["pull"].time})
    res.check("inverting the message direction (pull) costs more messages "
              "(request + reply per inner iteration)",
              dm["pull"].messages > dm["push"].messages)
    res.check("both DM SSSP variants agree on the distances",
              np.allclose(dm["push"].dist, dm["pull"].dist, equal_nan=True))

    # --- X7/DM: direction-switching distributed BFS ---------------------------------------
    from repro.algorithms.dm_bfs import dm_bfs
    # P=4: the bottom-up bitmap allgather scales with P, so the Beamer
    # switch pays off at small rank counts (at larger P the policy's
    # alpha/beta would need DM-specific retuning)
    gb = load_dataset("ljn", scale=max(scale, 10), seed=config.seed)
    root = int(np.argmax(np.diff(gb.offsets)))
    bfs_t = {}
    for variant in ("push", "pull", "switching"):
        rt = DMRuntime(gb.n, P=4, machine=config.scaled_machine())
        bfs_t[variant] = dm_bfs(gb, rt, root, variant=variant)
    res.rows.append({"experiment": "DM BFS ljn",
                     **{v: bfs_t[v].time for v in bfs_t},
                     "switch schedule": "/".join(bfs_t["switching"].directions)})
    res.check("push-pull switching offers the highest DM traversal "
              "performance (Section 7.2)",
              bfs_t["switching"].time
              <= min(bfs_t["push"].time, bfs_t["pull"].time))

    # --- partition-quality sensitivity of PA --------------------------------------------
    grid = load_dataset("rca", scale=scale, seed=config.seed)
    cuts = {
        "block": edge_cut(grid, Partition1D(grid.n, config.P)),
        "hash": edge_cut(grid, HashPartition(grid.n, config.P)),
        "locality": edge_cut(grid, LocalityPartition(grid, config.P)),
    }
    res.rows.append({"experiment": "edge cut rca (= PA atomics/iter)", **cuts})
    res.check("hash ownership maximizes the cut; structured partitions "
              "(blocks over row-major ids, BFS-locality blocks) keep it an "
              "order lower (PA's Section-5 bounds in action)",
              max(cuts["locality"], cuts["block"]) < cuts["hash"] / 3,
              f"block={cuts['block']}, locality={cuts['locality']}, "
              f"hash={cuts['hash']}")

    # --- contention profile (pricing justification) ---------------------------------------
    rows = {}
    for name in ("orc", "rca"):
        gg = load_dataset(name, scale=scale, seed=config.seed)
        prof = contention_profile(gg, Partition1D(gg.n, config.P))
        rows[name] = prof
        res.rows.append({"experiment": f"contention {name}",
                         **prof.as_row(),
                         "effective atomic":
                         round(effective_atomic_cost(prof, 25.0,
                                                     config.machine.w_atomic), 1)})
    res.check("community-graph push updates are almost fully contended; "
              "road-network updates mostly private (supports the "
              "contended w_atomic for dense workloads)",
              rows["orc"].contended_update_fraction > 0.9
              and rows["rca"].contended_update_fraction
              < rows["orc"].contended_update_fraction)
    return res
