"""Figure 5: BC scalability -- forward/backward sweep times and totals.

Paper shape: "pushing is slower than pulling because of the higher
amount of expensive write conflicts that entail more synchronization in
both BC parts"; both variants scale with threads.
"""

from __future__ import annotations

from repro.algorithms.bc import betweenness_centrality
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult

T_SWEEP = (4, 8, 16)


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Figure 5", "Betweenness Centrality scalability (mtu, sampled sources)")
    g = load_dataset("orc", scale=config.scale_bc, seed=config.seed)
    results = {}
    for T in T_SWEEP:
        for d in ("push", "pull"):
            rt = config.sm_runtime(g, P=T)
            r = betweenness_centrality(g, rt, direction=d,
                                       sources=config.bc_sources,
                                       seed=config.seed)
            results[(T, d)] = r
            res.rows.append({
                "T": T, "dir": d,
                "forward": r.forward_time,
                "backward": r.backward_time,
                "total": r.time,
                "locks": r.counters.locks,
                "atomics": r.counters.atomics,
            })

    res.check("pull beats push at every thread count (both BC parts)",
              all(results[(T, "pull")].time < results[(T, "push")].time
                  and results[(T, "pull")].forward_time
                  < results[(T, "push")].forward_time
                  and results[(T, "pull")].backward_time
                  < results[(T, "push")].backward_time
                  for T in T_SWEEP))
    res.check("push pays float locks in both sweeps; pull none",
              results[(16, "push")].counters.locks > 0
              and results[(16, "pull")].counters.locks == 0)
    res.check("both variants strong-scale from T=4 to T=16",
              all(results[(16, d)].time < results[(4, d)].time
                  for d in ("push", "pull")))
    return res
