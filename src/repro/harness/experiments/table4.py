"""Table 4: PR time per iteration across machines.

Paper shape: "Results vary most in denser graphs (orc, pok, ljn); for
example pushing outperforms pulling on Trivium while the opposite is
true on Dora.  Contrarily, the results are similar for rca and am" --
i.e. the dense-graph winner is machine-dependent, the sparse-graph
winner (pull) is stable.
"""

from __future__ import annotations

from repro.algorithms.pagerank import pagerank
from repro.generators.registry import load_dataset
from repro.harness.config import DEFAULT, ExperimentConfig
from repro.harness.tables import ExperimentResult
from repro.machine.cost_model import TRIVIUM, XC30, XC40

GRAPHS = ("orc", "pok", "ljn", "am", "rca")
MACHS = (TRIVIUM, XC30, XC40)


def run(config: ExperimentConfig = DEFAULT) -> ExperimentResult:
    res = ExperimentResult(
        "Table 4", "PR time per iteration (mtu) across machine models")
    t = {}
    for mach in MACHS:
        # Trivium runs T=8 (4 cores x HT), the Crays T=16+ (paper setup)
        P = min(config.P, mach.max_threads)
        for d in ("push", "pull", "push-pa"):
            row = {"machine": mach.name, "variant": d}
            for name in GRAPHS:
                g = load_dataset(name, scale=config.scale, seed=config.seed)
                rt = config.sm_runtime(g, base=mach, P=P)
                r = pagerank(g, rt, direction=d,
                             iterations=config.pr_iterations)
                t[(mach.name, name, d)] = r.time / r.iterations
                row[name] = t[(mach.name, name, d)]
            res.rows.append(row)

    res.check("Trivium: pushing outperforms pulling on the dense orc",
              t[("Trivium", "orc", "push")] < t[("Trivium", "orc", "pull")])
    res.check("XC30/XC40: pulling outperforms pushing on orc "
              "(the dense-graph winner flips with the machine)",
              t[("XC30", "orc", "pull")] < t[("XC30", "orc", "push")]
              and t[("XC40", "orc", "pull")] < t[("XC40", "orc", "push")])
    res.check("on the Cray machines the sparse-graph winner (pull) is stable",
              all(t[(m, n, "pull")] < t[(m, n, "push")]
                  for m in ("XC30", "XC40") for n in ("am", "rca")))
    res.check("pull beats push+PA on rca on every machine "
              "(the only Trivium sparse comparison Table 4 reports)",
              all(t[(m.name, "rca", "pull")] < t[(m.name, "rca", "push-pa")]
                  for m in MACHS))
    res.check("push+PA is the fastest dense-graph variant on the Crays "
              "(paper Table 4: 378 < 456 < 499 on XC40 orc)",
              all(t[(m, "orc", "push-pa")]
                  < min(t[(m, "orc", "push")], t[(m, "orc", "pull")])
                  for m in ("XC30", "XC40")))
    res.check("push+PA is not the winner on rca on any machine",
              all(t[(m.name, "rca", "push-pa")] > t[(m.name, "rca", "pull")]
                  for m in MACHS))
    return res
