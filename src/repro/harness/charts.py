"""Plain-text charts for the figure experiments.

The harness renders every figure's data as rows and series; these
helpers add terminal-friendly visualization -- unicode sparklines for
per-iteration series and horizontal bar charts for cross-variant
comparisons -- so ``run_all`` output reads like the paper's figures
without any plotting dependency.
"""

from __future__ import annotations

import math

_BLOCKS = "▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values, width: int | None = None) -> str:
    """A one-line unicode sparkline of a numeric series.

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if width is not None and len(vals) > width > 0:
        # resample by bucket means
        bucket = len(vals) / width
        vals = [
            sum(vals[int(i * bucket):max(int((i + 1) * bucket),
                                         int(i * bucket) + 1)])
            / max(1, len(vals[int(i * bucket):max(int((i + 1) * bucket),
                                                  int(i * bucket) + 1)]))
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if math.isclose(lo, hi):
        return _BLOCKS[0] * len(vals)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    int((v - lo) / span * (len(_BLOCKS) - 1) + 0.5))]
        for v in vals)


def bar_chart(items, width: int = 40, fmt=lambda v: f"{v:,.0f}") -> str:
    """A horizontal bar chart from (label, value) pairs.

    Bars are scaled to the maximum value; labels are left-aligned.
    """
    items = [(str(k), float(v)) for k, v in items]
    if not items:
        return "(empty)"
    label_w = max(len(k) for k, _ in items)
    peak = max(v for _, v in items)
    lines = []
    for k, v in items:
        n = 0 if peak <= 0 else max(1 if v > 0 else 0,
                                    int(round(v / peak * width)))
        lines.append(f"{k.ljust(label_w)}  {_BAR * n} {fmt(v)}")
    return "\n".join(lines)


def log_bar_chart(items, width: int = 40, fmt=lambda v: f"{v:,.0f}") -> str:
    """Bar chart on a log scale -- for the >10x spreads of Figure 3."""
    items = [(str(k), float(v)) for k, v in items]
    if not items:
        return "(empty)"
    positive = [v for _, v in items if v > 0]
    if not positive:
        return bar_chart(items, width, fmt)
    lo = min(positive)
    hi = max(positive)
    label_w = max(len(k) for k, _ in items)
    lines = []
    for k, v in items:
        if v <= 0:
            n = 0
        elif math.isclose(lo, hi):
            n = width
        else:
            n = max(1, int(round((math.log(v) - math.log(lo))
                                 / (math.log(hi) - math.log(lo)) * width)))
        lines.append(f"{k.ljust(label_w)}  {_BAR * n} {fmt(v)}")
    return "\n".join(lines)
