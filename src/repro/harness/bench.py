"""The committed perf baselines (schema ``repro-bench/2``).

A deterministic small-graph sweep -- PR / BFS / SSSP x push / pull x
SM / DM on one seeded ER instance -- each cell run under a tracer with
the trace-driven cache simulation equipped
(:func:`repro.observability.hwcounters.equip_cache_sim`), so the
baseline records, per Table-1/Table-3 cell:

* the end-to-end simulated ``time_mtu`` and nonzero counter totals,
  now **including the L1/L2/L3/TLB miss columns** of the paper's
  Table 1;
* the per-phase breakdown (``rt.annotate`` labels with their time and
  counter aggregates) -- the attribution surface ``repro bench diff``
  points at when a metric drifts;
* the partition edge-cut next to the communication verb counts (DM
  cells' traffic is chargeable against the cut,
  :func:`repro.analysis.crosscheck.dm_crosscheck`);
* the event-kind counts (trace shape).

Two documents are derived from one sweep: ``BENCH_trace.json`` (the
full baseline above) and ``BENCH_perf.json`` (the runtime-focused
rollup -- per-cell time plus headline counters, no phases -- the
numeric perf series future PRs diff against).  Everything is seeded
and timestamps are simulated, so two sweeps produce byte-identical
files; ``repro bench diff`` compares a fresh sweep against the
committed copies with per-metric tolerances instead of ``cmp``.
"""

from __future__ import annotations

import json
import os

#: versioned schema tag of the baseline files
BENCH_SCHEMA = "repro-bench/2"

#: the sweep grid: (algorithm, variant) x (sm, dm)
BENCH_ALGORITHMS = ("pagerank", "bfs", "sssp")
BENCH_VARIANTS = ("push", "pull")

#: one deterministic instance for every cell
BENCH_CONFIG = {"dataset": "er", "n": 96, "P": 4, "seed": 7,
                "iterations": 5, "cache_scale": 64}

#: headline counters of the BENCH_perf.json runtime rollup
PERF_COUNTERS = (
    "reads", "writes", "atomics", "locks",
    "l1_misses", "l2_misses", "l3_misses", "tlb_d_misses",
    "messages", "msg_bytes", "collectives", "remote_gets", "remote_puts",
    "remote_acc_int", "remote_acc_float", "remote_bytes", "flushes",
    "barriers",
)


def bench_sweep() -> dict:
    """Run the full grid; returns the ``BENCH_trace.json`` document."""
    from repro.observability.driver import run_traced
    from repro.observability.export import metrics_rollup

    cells = []
    for algorithm in BENCH_ALGORITHMS:
        for variant in BENCH_VARIANTS:
            for runtime in ("sm", "dm"):
                rt, tracer, resolved, _ = run_traced(
                    algorithm, variant=variant, dm=(runtime == "dm"),
                    dataset=BENCH_CONFIG["dataset"], n=BENCH_CONFIG["n"],
                    P=BENCH_CONFIG["P"], seed=BENCH_CONFIG["seed"],
                    iterations=BENCH_CONFIG["iterations"],
                    cache_scale=BENCH_CONFIG["cache_scale"])
                totals = tracer.traced_totals()
                kinds: dict[str, int] = {}
                for ev in tracer.events:
                    kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
                rollup = metrics_rollup(tracer)
                phases = [{
                    "label": p["label"],
                    "events": p["events"],
                    "time_mtu": p["time"],
                    "counters": p["counters"],
                } for p in rollup["phases"]]
                cells.append({
                    "algorithm": algorithm,
                    "variant": variant,
                    "resolved_variant": resolved,
                    "runtime": runtime,
                    "machine": getattr(rt.machine, "name", "?"),
                    "time_mtu": rt.time,
                    "counters": {k: v for k, v in totals.to_dict().items()
                                 if v},
                    "phases": phases,
                    "cut": tracer.cut,
                    "events": kinds,
                })
    return {"schema": BENCH_SCHEMA, "kind": "trace",
            "config": dict(BENCH_CONFIG), "cells": cells}


def perf_rollup(doc: dict) -> dict:
    """The runtime-focused ``BENCH_perf.json`` view of a sweep document."""
    cells = [{
        "algorithm": c["algorithm"],
        "variant": c["variant"],
        "runtime": c["runtime"],
        "time_mtu": c["time_mtu"],
        "counters": {k: c["counters"][k] for k in PERF_COUNTERS
                     if c["counters"].get(k)},
    } for c in doc["cells"]]
    return {"schema": doc["schema"], "kind": "perf",
            "config": dict(doc["config"]), "cells": cells}


def _write_json(doc: dict, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1, allow_nan=False)
        fh.write("\n")
    return path


def write_bench(out: str) -> dict:
    """Write both baselines; returns ``{"trace": path, "perf": path}``.

    ``out`` is the target ``.json`` file for the trace baseline (or a
    directory that receives ``BENCH_trace.json``); ``BENCH_perf.json``
    lands next to it.
    """
    path = out
    if not out.endswith(".json"):
        path = os.path.join(out, "BENCH_trace.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    doc = bench_sweep()
    perf_path = os.path.join(os.path.dirname(path) or ".", "BENCH_perf.json")
    return {"trace": _write_json(doc, path),
            "perf": _write_json(perf_rollup(doc), perf_path)}
