"""The ``BENCH_trace.json`` perf baseline (schema ``repro-bench/1``).

A deterministic small-graph sweep -- PR / BFS / SSSP x push / pull x
SM / DM on one seeded ER instance -- each cell run under a tracer so
the baseline records not just the end-to-end simulated time but the
event totals and trace shape (regions / supersteps / barriers) per
Table-1/Table-3 cell.  Everything is seeded and timestamps are
simulated, so two sweeps produce byte-identical files; subsequent PRs
diff against the committed baseline to see their perf trajectory.
"""

from __future__ import annotations

import json
import os

#: versioned schema tag of the baseline file
BENCH_SCHEMA = "repro-bench/1"

#: the sweep grid: (algorithm, variant) x (sm, dm)
BENCH_ALGORITHMS = ("pagerank", "bfs", "sssp")
BENCH_VARIANTS = ("push", "pull")

#: one deterministic instance for every cell
BENCH_CONFIG = {"dataset": "er", "n": 96, "P": 4, "seed": 7,
                "iterations": 5}


def bench_sweep() -> dict:
    """Run the full grid; returns the baseline document."""
    from repro.observability.driver import run_traced

    cells = []
    for algorithm in BENCH_ALGORITHMS:
        for variant in BENCH_VARIANTS:
            for runtime in ("sm", "dm"):
                rt, tracer, resolved, _ = run_traced(
                    algorithm, variant=variant, dm=(runtime == "dm"),
                    dataset=BENCH_CONFIG["dataset"], n=BENCH_CONFIG["n"],
                    P=BENCH_CONFIG["P"], seed=BENCH_CONFIG["seed"],
                    iterations=BENCH_CONFIG["iterations"])
                totals = tracer.traced_totals()
                kinds: dict[str, int] = {}
                for ev in tracer.events:
                    kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
                cells.append({
                    "algorithm": algorithm,
                    "variant": variant,
                    "resolved_variant": resolved,
                    "runtime": runtime,
                    "machine": getattr(rt.machine, "name", "?"),
                    "time_mtu": rt.time,
                    "counters": {k: v for k, v in totals.to_dict().items()
                                 if v},
                    "events": kinds,
                })
    return {"schema": BENCH_SCHEMA, "config": dict(BENCH_CONFIG),
            "cells": cells}


def write_bench(out: str) -> str:
    """Write the baseline to ``out`` (a ``.json`` file, or a directory
    that receives ``BENCH_trace.json``).  Returns the path written."""
    path = out
    if not out.endswith(".json"):
        os.makedirs(out, exist_ok=True)
        path = os.path.join(out, "BENCH_trace.json")
    doc = bench_sweep()
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1, allow_nan=False)
        fh.write("\n")
    return path
