"""The committed perf baselines (schema ``repro-bench/3``).

Two cell families derived from one sweep:

* **baseline** -- the original deterministic small-graph grid: PR /
  BFS / SSSP x push / pull x SM / DM on one seeded ER instance, each
  cell run under a tracer with the trace-driven cache simulation
  equipped (:func:`repro.observability.hwcounters.equip_cache_sim`),
  so the baseline records, per Table-1/Table-3 cell:

  - the end-to-end simulated ``time_mtu`` and nonzero counter totals,
    **including the L1/L2/L3/TLB miss columns** of the paper's Table 1;
  - the per-phase breakdown (``rt.annotate`` labels with their time and
    counter aggregates) -- the attribution surface ``repro bench diff``
    points at when a metric drifts;
  - the partition edge-cut next to the communication verb counts;
  - the critical-path decomposition (compute / comm / sync / off-path
    idle; the five on-path components sum to ``time_mtu``) and the
    traffic-matrix totals, both verified against the tracer before the
    cell is recorded -- the inputs ``repro bench speedup`` attributes
    winners with;
  - the event-kind counts (trace shape).

  The family runs under either engine (``--engine batched`` swaps in
  the stream kernels); the counters are certified byte-identical, so
  ``repro bench diff`` at zero tolerance against an
  interpreted-generated baseline is the batched engine's drift gate.

* **large** -- a 100x-scale grid (PR / BFS / SSSP / CC x push / pull,
  SM) that only the batched engine can sweep in reasonable time; it
  runs with the analytic miss model (``cache_scale=0``) and pins down
  the batched engine's behavior at a size where per-element Python
  dispatch would dominate.

Two documents are derived from one sweep: ``BENCH_trace.json`` (the
full baseline above) and ``BENCH_perf.json`` (the runtime-focused
rollup -- per-cell time plus headline counters, no phases -- the
numeric perf series future PRs diff against).  Everything is seeded
and timestamps are simulated, so two sweeps produce byte-identical
files; ``repro bench diff`` compares a fresh sweep against the
committed copies with per-metric tolerances instead of ``cmp``.
"""

from __future__ import annotations

import json
import os

#: versioned schema tag of the baseline files
BENCH_SCHEMA = "repro-bench/3"

#: the baseline-family grid: (algorithm, variant) x (sm, dm)
BENCH_ALGORITHMS = ("pagerank", "bfs", "sssp")
BENCH_VARIANTS = ("push", "pull")

#: one deterministic instance for every baseline cell
BENCH_CONFIG = {"dataset": "er", "n": 96, "P": 4, "seed": 7,
                "iterations": 5, "cache_scale": 64}

#: the large-family grid (SM only; always the batched engine)
LARGE_ALGORITHMS = ("pagerank", "bfs", "sssp", "cc")

#: 100x the baseline vertex count; analytic miss model (cache_scale=0)
LARGE_CONFIG = {"dataset": "er", "n": 9600, "P": 4, "seed": 7,
                "iterations": 5, "cache_scale": 0}

#: headline counters of the BENCH_perf.json runtime rollup
PERF_COUNTERS = (
    "reads", "writes", "atomics", "locks",
    "l1_misses", "l2_misses", "l3_misses", "tlb_d_misses",
    "messages", "msg_bytes", "collectives", "remote_gets", "remote_puts",
    "remote_acc_int", "remote_acc_float", "remote_bytes", "flushes",
    "barriers",
)


def _run_cell(algorithm: str, variant: str, runtime: str, config: dict,
              family: str, engine: str) -> dict:
    from repro.observability.driver import run_traced
    from repro.observability.export import (
        _dumps, critical_path, metrics_rollup, traffic_matrix,
    )
    from repro.observability.sinks import BufferSink, RollupSink

    # dual sinks: the buffer feeds the post-hoc exporters below, and
    # the online rollup is proven byte-equal against them per cell --
    # so the CI staleness gate re-certifies the incremental path on
    # every committed cell, every run
    rollup_sink = RollupSink()
    rt, tracer, resolved, _ = run_traced(
        algorithm, variant=variant, dm=(runtime == "dm"),
        dataset=config["dataset"], n=config["n"],
        P=config["P"], seed=config["seed"],
        iterations=config["iterations"],
        cache_scale=config["cache_scale"], engine=engine,
        sinks=[BufferSink(), rollup_sink])
    traced, actual = tracer.reconcile()
    if traced.to_dict() != actual.to_dict():
        raise RuntimeError(
            f"bench cell {algorithm}/{variant}/{runtime}/{family} "
            f"[{engine}]: tracer reconciliation failed")
    totals = tracer.traced_totals()
    critical = critical_path(tracer)["totals"]
    if not critical["reconciled"]:
        raise RuntimeError(
            f"bench cell {algorithm}/{variant}/{runtime}/{family} "
            f"[{engine}]: critical-path decomposition "
            f"({critical['decomposed_mtu']}) does not sum to the run "
            f"time ({critical['time_mtu']})")
    traffic = traffic_matrix(tracer)
    for field, count in traffic["totals"].items():
        if count != getattr(totals, field):
            raise RuntimeError(
                f"bench cell {algorithm}/{variant}/{runtime}/{family} "
                f"[{engine}]: traffic matrix {field}={count} does not "
                f"reconcile with the counter total "
                f"{getattr(totals, field)}")
    kinds: dict[str, int] = {}
    for ev in tracer.events:
        kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
    rollup = metrics_rollup(tracer)
    if _dumps(rollup_sink.rollup()) != _dumps(rollup):
        raise RuntimeError(
            f"bench cell {algorithm}/{variant}/{runtime}/{family} "
            f"[{engine}]: the incremental RollupSink rollup does not "
            f"serialize identically to the post-hoc metrics_rollup")
    phases = [{
        "label": p["label"],
        "events": p["events"],
        "time_mtu": p["time"],
        "counters": p["counters"],
    } for p in rollup["phases"]]
    return {
        "algorithm": algorithm,
        "variant": variant,
        "resolved_variant": resolved,
        "runtime": runtime,
        "family": family,
        "engine": engine,
        "machine": getattr(rt.machine, "name", "?"),
        "time_mtu": rt.time,
        "counters": {k: v for k, v in totals.to_dict().items() if v},
        "phases": phases,
        "cut": tracer.cut,
        "critical": {k: critical[k] for k in
                     ("compute", "comm", "injected_stall", "sync",
                      "recovery_stall", "off_path_idle")},
        "traffic": {k: v for k, v in traffic["totals"].items() if v},
        "events": kinds,
    }


def bench_sweep(engine: str = "interpreted") -> dict:
    """Run the full grid; returns the ``BENCH_trace.json`` document.

    ``engine`` selects the execution engine of the *baseline* family
    (DM cells are an exact passthrough either way); the large family
    always runs batched -- it exists to exercise the batched engine at
    a scale the interpreted kernels cannot sweep quickly.
    """
    cells = []
    for algorithm in BENCH_ALGORITHMS:
        for variant in BENCH_VARIANTS:
            for runtime in ("sm", "dm"):
                cells.append(_run_cell(algorithm, variant, runtime,
                                       BENCH_CONFIG, "baseline", engine))
    for algorithm in LARGE_ALGORITHMS:
        for variant in BENCH_VARIANTS:
            cells.append(_run_cell(algorithm, variant, "sm",
                                   LARGE_CONFIG, "large", "batched"))
    return {"schema": BENCH_SCHEMA, "kind": "trace",
            "config": {"baseline": dict(BENCH_CONFIG),
                       "large": dict(LARGE_CONFIG)},
            "cells": cells}


def perf_rollup(doc: dict) -> dict:
    """The runtime-focused ``BENCH_perf.json`` view of a sweep document."""
    cells = [{
        "algorithm": c["algorithm"],
        "variant": c["variant"],
        "resolved_variant": c["resolved_variant"],
        "runtime": c["runtime"],
        "family": c["family"],
        "machine": c["machine"],
        "time_mtu": c["time_mtu"],
        "counters": {k: c["counters"][k] for k in PERF_COUNTERS
                     if c["counters"].get(k)},
        "critical": dict(c["critical"]),
    } for c in doc["cells"]]
    return {"schema": doc["schema"], "kind": "perf",
            "config": dict(doc["config"]), "cells": cells}


def _write_json(doc: dict, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1, allow_nan=False)
        fh.write("\n")
    return path


def write_bench(out: str, engine: str = "interpreted") -> dict:
    """Write both baselines; returns ``{"trace": path, "perf": path}``.

    ``out`` is the target ``.json`` file for the trace baseline (or a
    directory that receives ``BENCH_trace.json``); ``BENCH_perf.json``
    lands next to it.
    """
    path = out
    if not out.endswith(".json"):
        path = os.path.join(out, "BENCH_trace.json")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    doc = bench_sweep(engine=engine)
    perf_path = os.path.join(os.path.dirname(path) or ".", "BENCH_perf.json")
    return {"trace": _write_json(doc, path),
            "perf": _write_json(perf_rollup(doc), perf_path)}
