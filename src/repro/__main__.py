"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    List the machine models and registered datasets.
``stats <dataset> [--scale N]``
    Generate a dataset and print its Table-2-style statistics.
``run <algorithm> <dataset> [--direction push|pull] [...]``
    Run one algorithm on the simulated machine and print the result
    summary plus the event counters.
``experiments [...]``
    Forwarded to :mod:`repro.harness.run_all`.
``analyze [...]``
    Race-detect, epoch-check, lint, and chaos-test the kernels.
``trace <algorithm> [--variant v] [--dm] [--faults] [--flame] --out DIR``
    Run one kernel under the observability tracer and export the
    Chrome trace, JSONL event log, metrics rollup, and (with
    ``--flame``) a folded-stack flamegraph
    (:mod:`repro.observability`); ``--bench`` writes the
    ``BENCH_trace.json`` + ``BENCH_perf.json`` perf-baseline sweep
    instead.
``bench diff <baseline> <candidate> [--tolerance-pct N] [--markdown]``
    Semantic perf-baseline comparison: metric-by-metric diff of two
    ``repro-bench/*`` documents with drift attributed to
    cell -> phase -> counter; exits nonzero only on out-of-tolerance
    drift (:mod:`repro.observability.regress`).
``bench speedup <doc> [--pairs push:pull,mp:rma,...] [--markdown]``
    Config-vs-config comparison: join one (or, with ``--against``,
    two) ``repro-bench/*`` documents' cells across a variant/runtime/
    engine/family axis and emit deterministic winner-by-factor tables
    with per-counter attribution -- the shape of the paper's
    Figures 5-9 (:mod:`repro.observability.speedup`).
``bench history <doc> [--history PATH] [--label L] [--markdown]``
    Append a ``repro-bench/*`` snapshot to the append-only
    ``BENCH_history.jsonl`` timeline and print per-cell trend tables
    with regression flagging (:mod:`repro.observability.history`).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.machine.counters import format_count

_ALGORITHMS = ("pagerank", "bfs", "sssp", "bc", "coloring", "mst", "prim",
               "triangles", "components")


def _build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list machines and datasets")

    stats = sub.add_parser("stats", help="dataset statistics")
    stats.add_argument("dataset")
    stats.add_argument("--scale", type=int, default=12)
    stats.add_argument("--seed", type=int, default=42)

    run = sub.add_parser("run", help="run one algorithm")
    run.add_argument("algorithm", choices=_ALGORITHMS)
    run.add_argument("dataset")
    run.add_argument("--direction", default="pull",
                     choices=("push", "pull", "push-pa"))
    run.add_argument("--scale", type=int, default=12)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--threads", "-P", type=int, default=16)
    run.add_argument("--machine", default="XC30")
    run.add_argument("--cache-scale", type=int, default=64)
    run.add_argument("--iterations", type=int, default=10,
                     help="PageRank / coloring iteration budget")
    run.add_argument("--source", type=int, default=None,
                     help="root vertex for traversals (default: max degree)")

    exp = sub.add_parser("experiments",
                         help="regenerate the paper's tables and figures")
    exp.add_argument("rest", nargs=argparse.REMAINDER)

    an = sub.add_parser(
        "analyze",
        help="race-detect and lint the push/pull kernels")
    an.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: the shipped "
                         "repro.algorithms package)")
    an.add_argument("--lint", action="store_true",
                    help="run only the static AST lint pass")
    an.add_argument("--race", action="store_true",
                    help="run only the dynamic race detector")
    an.add_argument("--dm", action="store_true",
                    help="run only the distributed-memory epoch checker")
    an.add_argument("--sm", action="store_true",
                    help="with --faults: restrict the chaos suite to the "
                         "shared-memory matrix; alone: run only the "
                         "dynamic race detector (alias of --race)")
    an.add_argument("--faults", action="store_true",
                    help="run the chaos suite: kernels under seeded fault "
                         "plans with recovery (off by default; scope with "
                         "--sm / --dm / --all, default --all)")
    an.add_argument("--all", action="store_true",
                    help="with --faults: run both runtimes' chaos "
                         "matrices (the default scope)")
    an.add_argument("--effects", action="store_true",
                    help="run the static effect-inference pass (ANL1xx) "
                         "over the 17-kernel matrix and reconcile the "
                         "inferred write sets against dynamic traces "
                         "(off by default)")
    an.add_argument("--no-reconcile", action="store_true",
                    help="with --effects: skip the 12-cell dynamic "
                         "write-set reconciliation")
    an.add_argument("--format", default="text", choices=("text", "json"),
                    help="output format; json emits one machine-readable "
                         "document over all selected passes "
                         "(exit codes: 0 clean, 1 findings, 2 usage error)")
    an.add_argument("--fault-seeds", type=int, default=2,
                    help="number of fault-plan seeds per chaos cell")
    an.add_argument("--dataset", default="er",
                    choices=("er", "rmat", "road", "comm"),
                    help="instance family for the dynamic pass")
    an.add_argument("--threads", "-P", type=int, default=4)
    an.add_argument("--scale", type=int, default=120,
                    help="vertex count of the check instance")
    an.add_argument("--seed", type=int, default=7)
    an.add_argument("--slack", type=float, default=4.0,
                    help="multiplier on the PRAM conflict bounds")
    an.add_argument("--algorithm", action="append", dest="algorithms",
                    metavar="NAME",
                    help="restrict the dynamic pass (repeatable); "
                         "names as in Section 4: PR TC BFS SSSP-Δ BC BGC MST")

    tr = sub.add_parser(
        "trace",
        help="run one kernel under the tracer and export "
             "Chrome-trace/JSONL/metrics views")
    tr.add_argument("algorithm", nargs="?", default=None,
                    choices=("pagerank", "bfs", "sssp", "cc"))
    tr.add_argument("--variant", default="push",
                    choices=("push", "pull", "push-pa", "switching", "mp"),
                    help="push/pull everywhere; push-pa (SM pagerank), "
                         "switching (bfs), mp (DM pagerank)")
    tr.add_argument("--engine", default="interpreted",
                    choices=("interpreted", "batched"),
                    help="batched = stream-emitting kernels "
                         "(repro.streams); byte-identical counters, "
                         "far less Python dispatch")
    tr.add_argument("--dm", action="store_true",
                    help="run on the distributed-memory runtime")
    tr.add_argument("--faults", action="store_true",
                    help="inject the default chaos fault plan "
                         "(requires --dm)")
    tr.add_argument("--out", required=True,
                    help="output directory (or the target file "
                         "with --bench)")
    tr.add_argument("--dataset", default="er",
                    choices=("er", "rmat", "road", "comm"))
    tr.add_argument("--scale", type=int, default=96,
                    help="vertex count of the traced instance")
    tr.add_argument("--seed", type=int, default=7)
    tr.add_argument("--threads", "-P", type=int, default=4, dest="procs")
    tr.add_argument("--iterations", type=int, default=5)
    tr.add_argument("--fault-seed", type=int, default=1)
    tr.add_argument("--bench", action="store_true",
                    help="write the BENCH_trace.json + BENCH_perf.json "
                         "perf baseline sweep instead of a single trace")
    tr.add_argument("--flame", action="store_true",
                    help="also export the folded-stack flamegraph "
                         "(flame.folded; feeds flamegraph.pl/speedscope)")
    tr.add_argument("--cache-scale", type=int, default=64,
                    help="cache-simulation scale factor for counter "
                         "attribution (0 disables the cache simulator)")
    tr.add_argument("--sink", default="buffer",
                    choices=("buffer", "stream", "rollup", "sampling"),
                    help="event retention strategy: buffer = keep every "
                         "event (default, full post-hoc exports); stream "
                         "= constant-memory incremental JSONL + online "
                         "rollup; rollup = metrics.json only, O(steps) "
                         "memory; sampling = seeded span sample for "
                         "Chrome/flame plus the exact rollup")
    tr.add_argument("--sample-events", type=int, default=4096,
                    help="with --sink sampling: span retention cap")
    tr.add_argument("--sample-seed", type=int, default=0,
                    help="with --sink sampling: reservoir seed "
                         "(same seed + config = identical sample)")
    tr.add_argument("--wallclock", action="store_true",
                    help="measure real seconds next to simulated mtu: "
                         "runs an untraced twin first, reports tracer "
                         "overhead and per-phase wall time, and adds a "
                         "'wallclock' block to metrics.json")
    tr.add_argument("--overhead-budget", type=float, default=None,
                    metavar="X",
                    help="fail (exit 1) if traced wall time exceeds X times "
                         "the untraced run (implies --wallclock)")

    bench = sub.add_parser(
        "bench",
        help="perf-baseline operations (semantic diff with tolerances)")
    bsub = bench.add_subparsers(dest="bench_command", required=True)
    bd = bsub.add_parser(
        "diff",
        help="compare two repro-bench documents metric-by-metric")
    bd.add_argument("baseline", help="committed baseline JSON")
    bd.add_argument("candidate", help="freshly generated JSON to compare")
    bd.add_argument("--tolerance-pct", type=float, default=0.0,
                    help="allowed drift per metric, in percent of the "
                         "baseline value (default 0: exact)")
    bd.add_argument("--markdown", action="store_true",
                    help="print a markdown report instead of the plain "
                         "summary")
    bd.add_argument("--report", default=None, metavar="PATH",
                    help="also write the machine-readable verdict "
                         "(repro-benchdiff/1) to PATH")
    bd.add_argument("--history", default=None, metavar="PATH",
                    help="also append the candidate to the bench-history "
                         "timeline at PATH and print its trend")
    bd.add_argument("--history-label", default=None, metavar="LABEL",
                    help="snapshot label for --history (default: the "
                         "candidate file name)")
    bs = bsub.add_parser(
        "speedup",
        help="config-vs-config winner-by-factor tables (the shape of "
             "the paper's Figures 5-9) with per-counter attribution")
    bs.add_argument("doc", help="repro-bench document to analyze")
    bs.add_argument("--against", default=None, metavar="PATH",
                    help="second repro-bench document; its cells join "
                         "the pool (e.g. an --engine batched sweep for "
                         "an interpreted:batched pair)")
    bs.add_argument("--pairs", default="push:pull",
                    help="comma-separated a:b axis pairs, e.g. "
                         "push:pull,sm:dm,mp:rma,interpreted:batched,"
                         "baseline:large (default: push:pull)")
    bs.add_argument("--markdown", action="store_true",
                    help="print paper-style markdown tables instead of "
                         "the plain summary")
    bs.add_argument("--report", default=None, metavar="PATH",
                    help="also write the machine-readable document "
                         "(repro-speedup/1) to PATH")
    bh = bsub.add_parser(
        "history",
        help="append-only bench timeline: record repro-bench snapshots "
             "and print per-cell trend tables with regression flags")
    bh.add_argument("doc", nargs="?", default=None,
                    help="repro-bench document to append as a new "
                         "snapshot (omit to only report on the existing "
                         "timeline)")
    bh.add_argument("--history", default="BENCH_history.jsonl",
                    metavar="PATH",
                    help="timeline file (repro-bench-history/1 lines; "
                         "created on first append)")
    bh.add_argument("--label", default=None,
                    help="snapshot label (default: the doc file name)")
    bh.add_argument("--stamp", action="store_true",
                    help="record the current UTC time on the snapshot "
                         "(off by default so committed timelines stay "
                         "deterministic)")
    bh.add_argument("--markdown", action="store_true",
                    help="print a markdown trend table instead of the "
                         "plain summary")
    bh.add_argument("--last", type=int, default=8, metavar="N",
                    help="show at most the last N snapshots per cell")
    bh.add_argument("--threshold-pct", type=float, default=0.0,
                    help="flag cells whose time_mtu grew more than this "
                         "percent over the previous snapshot (default 0: "
                         "any growth)")
    bh.add_argument("--gate", action="store_true",
                    help="exit 1 when any cell is flagged as a regression")
    return ap


def _cmd_info() -> int:
    from repro.generators.registry import DATASETS
    from repro.machine.cost_model import MACHINES

    print("machine models:")
    for name, m in MACHINES.items():
        print(f"  {name:<8} {m.cores} cores x {m.smt} SMT, "
              f"atomic={m.w_atomic:.0f}c lock={m.w_lock:.0f}c "
              f"L3 miss={m.w_l3_miss:.0f}c")
    print("\ndatasets (paper Table 2 stand-ins):")
    for name, spec in DATASETS.items():
        print(f"  {name:<5} {spec.description}")
        print(f"        paper: n={spec.paper_n} m={spec.paper_m} "
              f"d̄={spec.paper_d_bar} D={spec.paper_diameter}")
    return 0


def _cmd_stats(args) -> int:
    from repro.generators.registry import load_dataset
    from repro.graph.properties import graph_stats

    g = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    s = graph_stats(g)
    print(f"{args.dataset} @ scale {args.scale}: {g}")
    for k, v in s.as_row().items():
        print(f"  {k:<3} = {v}")
    return 0


def _cmd_run(args) -> int:
    from repro.generators.registry import load_dataset
    from repro.machine.cost_model import MACHINES
    from repro.machine.memory import CountingMemory
    from repro.runtime.sm import SMRuntime

    if args.machine not in MACHINES:
        print(f"unknown machine {args.machine!r}; have {sorted(MACHINES)}",
              file=sys.stderr)
        return 2
    weighted = args.algorithm in ("sssp", "mst", "prim")
    g = load_dataset(args.dataset, scale=args.scale, seed=args.seed,
                     weighted=weighted)
    machine = MACHINES[args.machine].scaled(args.cache_scale)
    rt = SMRuntime(g, P=args.threads, machine=machine,
                   memory=CountingMemory(machine.hierarchy))
    src = (args.source if args.source is not None
           else int(np.argmax(np.diff(g.offsets))))

    if args.algorithm == "pagerank":
        from repro.algorithms import pagerank
        r = pagerank(g, rt, direction=args.direction,
                     iterations=args.iterations)
        extra = f"top vertex {int(np.argmax(r.ranks))}"
    elif args.algorithm == "bfs":
        from repro.algorithms import bfs
        r = bfs(g, rt, src, direction=args.direction)
        extra = f"reached {int((r.level >= 0).sum())}/{g.n} from {src}"
    elif args.algorithm == "sssp":
        from repro.algorithms import sssp_delta
        r = sssp_delta(g, rt, src, direction=args.direction)
        extra = f"{r.epochs} epochs from {src}"
    elif args.algorithm == "bc":
        from repro.algorithms import betweenness_centrality
        r = betweenness_centrality(g, rt, direction=args.direction,
                                   sources=min(args.iterations, g.n))
        extra = f"top broker {int(np.argmax(r.bc))} ({r.n_sources} sources)"
    elif args.algorithm == "coloring":
        from repro.algorithms import boman_coloring
        r = boman_coloring(g, rt, direction=args.direction, max_colors=1024)
        extra = f"{r.n_colors} colors in {r.iterations} iterations"
    elif args.algorithm == "mst":
        from repro.algorithms import boruvka_mst
        r = boruvka_mst(g, rt, direction=args.direction)
        extra = f"{len(r.edges)} edges, weight {r.total_weight:.1f}"
    elif args.algorithm == "prim":
        from repro.algorithms import prim_mst
        r = prim_mst(g, rt, direction=args.direction)
        extra = f"{len(r.edges)} edges, weight {r.total_weight:.1f}"
    elif args.algorithm == "triangles":
        from repro.algorithms import triangle_count
        r = triangle_count(g, rt, direction=args.direction)
        extra = f"{r.total} triangles"
    else:
        from repro.algorithms.connected_components import connected_components
        r = connected_components(g, rt, direction=args.direction)
        extra = f"{r.n_components} components in {r.rounds} rounds"

    print(f"{args.algorithm} [{args.direction}] on {args.dataset} "
          f"(scale {args.scale}, T={args.threads}, {args.machine}): {extra}")
    print(f"simulated time: {r.time:,.0f} mtu")
    c = r.counters
    print("events: " + "  ".join(
        f"{k}={format_count(getattr(c, k))}"
        for k in ("reads", "writes", "atomics", "locks", "l3_misses",
                  "branches_cond")))
    return 0


def _run_summary(r) -> dict:
    return {
        "algorithm": r.algorithm,
        "direction": getattr(r, "direction", getattr(r, "variant", None)),
        "ok": r.ok,
        "races": [str(x) for x in r.report.races],
    }


def _cmd_analyze(args) -> int:
    """Exit policy, identical across passes and formats: 0 = every
    selected pass clean, 1 = any pass produced findings/failures,
    2 = usage or configuration error."""
    import json as _json
    from pathlib import Path

    from repro.analysis.lint import lint_paths
    from repro.analysis.runner import analyze_algorithms

    # each flag selects its pass; with none given, run everything except
    # the chaos suite and effect inference, which are opt-in (grids of
    # whole-kernel runs).  With --faults, --sm/--dm/--all scope the
    # chaos matrices instead of selecting their usual passes.
    opted = (args.lint, args.race, args.dm, args.sm, args.faults,
             args.effects)
    default_on = not any(opted)
    do_lint = args.lint or default_on
    do_race = args.race or (args.sm and not args.faults) or default_on
    do_dm = (args.dm and not args.faults) or default_on
    do_faults = args.faults
    scoped = args.sm or args.dm
    fault_scope_dm = args.dm or args.all or not scoped
    fault_scope_sm = args.sm or args.all or not scoped
    do_effects = args.effects
    as_json = args.format == "json"
    say = (lambda *a, **k: None) if as_json else print
    progress = None if as_json else print
    doc: dict = {"schema": "repro-analyze/1", "passes": {}}
    failed = False

    if do_lint:
        paths = args.paths or [str(Path(__file__).parent / "algorithms")]
        missing = [p for p in paths if not Path(p).exists()]
        if missing:
            print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
            return 2
        findings = lint_paths(paths)
        for f in findings:
            say(f)
        say(f"lint: {len(findings)} finding(s) over {len(paths)} path(s)")
        doc["passes"]["lint"] = {
            "findings": [{"rule": f.rule, "path": f.path, "line": f.line,
                          "message": f.message} for f in findings],
            "ok": not findings,
        }
        failed |= bool(findings)

    if do_race:
        say(f"race detector: 7 algorithms x push/pull, "
            f"P={args.threads}, {args.dataset} n={args.scale}")
        try:
            runs = analyze_algorithms(
                n=args.scale, P=args.threads, seed=args.seed,
                slack=args.slack, algorithms=args.algorithms,
                dataset=args.dataset, progress=progress)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        bad = [r for r in runs if not r.ok]
        for r in bad:
            say(r.check)
            for race in r.report.races[:8]:
                say("  " + str(race))
        say(f"race: {len(bad)} failing cell(s) of {len(runs)}")
        doc["passes"]["race"] = {"cells": [_run_summary(r) for r in runs],
                                 "ok": not bad}
        failed |= bool(bad)

    if do_dm:
        from repro.analysis.dm_runner import analyze_dm

        from repro.harness.config import clamped_scale
        n_dm = (clamped_scale(args.scale, 96,
                              reason="the default full-analysis DM pass "
                                     "caps its epoch grid; pass --dm to "
                                     "run the requested scale")
                if not args.dm else args.scale)
        say(f"epoch checker: 4 DM kernels x backends, "
            f"P={args.threads}, {args.dataset} n={n_dm}")
        runs = analyze_dm(n=n_dm, P=args.threads, seed=args.seed,
                          slack=args.slack, dataset=args.dataset,
                          progress=progress)
        bad = [r for r in runs if not r.ok]
        for r in bad:
            say(r.check)
            for race in r.report.races[:8]:
                say("  " + str(race))
        say(f"dm: {len(bad)} failing cell(s) of {len(runs)}")
        doc["passes"]["dm"] = {"cells": [_run_summary(r) for r in runs],
                               "ok": not bad}
        failed |= bool(bad)

    if do_faults:
        from repro.analysis.fault_runner import (
            analyze_faults, analyze_sm_faults, format_overhead_table,
        )

        from repro.harness.config import clamped_scale
        n_f = clamped_scale(args.scale, 96,
                            reason="the chaos suite replays whole kernel "
                                   "grids per fault seed")
        seeds = tuple(range(max(1, args.fault_seeds)))
        runs = []
        if fault_scope_dm:
            say(f"chaos suite: 4 DM kernels x backends x fault plans, "
                f"P={args.threads}, {args.dataset} n={n_f}, "
                f"{len(seeds)} fault seed(s)")
            runs += analyze_faults(n=n_f, P=args.threads, seed=args.seed,
                                   dataset=args.dataset, fault_seeds=seeds,
                                   progress=progress)
        if fault_scope_sm:
            say(f"chaos suite: 4 SM kernels x push/pull x fault plans, "
                f"P={args.threads}, {args.dataset} n={n_f}, "
                f"{len(seeds)} fault seed(s)")
            runs += analyze_sm_faults(n=n_f, P=args.threads, seed=args.seed,
                                      dataset=args.dataset,
                                      fault_seeds=seeds, progress=progress)
        bad = [r for r in runs if not r.ok]
        for r in bad:
            for race in r.races:
                say("  " + race)
        say(format_overhead_table(runs))
        say(f"faults: {len(bad)} failing run(s) of {len(runs)}")
        doc["passes"]["faults"] = {
            "runs": [{"runtime": r.runtime, "algorithm": r.algorithm,
                      "variant": r.variant, "plan": r.plan_name,
                      "seed": r.seed, "ok": r.ok,
                      "races": [str(x) for x in r.races]}
                     for r in runs],
            "ok": not bad,
        }
        failed |= bool(bad)

    if do_effects:
        from repro.analysis.effect_report import render_text, report_to_json
        from repro.analysis.effects import analyze_effects
        from repro.observability.footprint import reconcile_effects

        say(f"effect inference: 17 kernels (SM+DM), rules ANL101-ANL105")
        report = analyze_effects()
        say(render_text(report), end="")
        effects_failed = not report.ok
        entry = {"report": report_to_json(report), "ok": report.ok}
        if not args.no_reconcile:
            say("reconciling static write sets against dynamic traces "
                "(14 cells)...")
            cells = reconcile_effects(
                report=report, P=args.threads,
                progress=None if as_json else (
                    lambda a, v, d: print(
                        f"  .. {a} {v} [{'dm' if d else 'sm'}]")))
            bad_cells = [c for c in cells if not c.ok]
            for c in bad_cells:
                say(f"  RECONCILE FAIL {c.algorithm}/{c.variant} "
                    f"[{'dm' if c.dm else 'sm'}]: traced writes "
                    f"{c.missing} not in the static write set")
            say(f"reconcile: {len(bad_cells)} failing cell(s) of "
                f"{len(cells)}")
            entry["reconcile"] = [c.to_json() for c in cells]
            entry["ok"] = entry["ok"] and not bad_cells
            effects_failed |= bool(bad_cells)
        say(f"effects: {len(report.errors())} error(s), "
            f"{len(report.advice())} advisory finding(s)")
        doc["passes"]["effects"] = entry
        failed |= effects_failed

    doc["ok"] = not failed
    if as_json:
        print(_json.dumps(doc, indent=2))
    return 1 if failed else 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # forward everything after "experiments" verbatim (argparse REMAINDER
    # refuses leading flags)
    if argv and argv[0] == "experiments":
        from repro.harness.run_all import main as run_all_main
        return run_all_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "trace":
        from repro.observability.driver import trace_main
        try:
            return trace_main(args)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.command == "bench":
        if args.bench_command == "speedup":
            from repro.observability.speedup import speedup_main
            return speedup_main(args)
        if args.bench_command == "history":
            from repro.observability.history import history_main
            return history_main(args)
        from repro.observability.regress import diff_main
        return diff_main(args)
    from repro.harness.run_all import main as run_all_main
    return run_all_main(args.rest)


if __name__ == "__main__":
    sys.exit(main())
