"""Gather-Apply-Scatter abstraction (Section 7.4).

A GAS vertex program supplies ``gather`` / ``apply`` / ``scatter``; the
engine runs them per active vertex until quiescence, in either a pull
execution (each active vertex gathers from its neighbors) or a push
execution (each updated vertex scatters into its neighbors' pending
accumulators).  SSSP and greedy coloring are provided as the two
programs the paper walks through.
"""

from repro.gas.engine import GASEngine, VertexProgram
from repro.gas.programs import (
    SSSPProgram, ColoringProgram, PageRankProgram,
    gas_sssp, gas_coloring, gas_pagerank,
)

__all__ = [
    "GASEngine",
    "VertexProgram",
    "SSSPProgram",
    "ColoringProgram",
    "gas_sssp",
    "gas_coloring",
    "PageRankProgram",
    "gas_pagerank",
]
