"""GAS programs: the SSSP and coloring walkthroughs of Section 7.4,
plus PageRank (the canonical GAS example in the PowerGraph paper the
section builds on)."""

from __future__ import annotations

import numpy as np

from repro.gas.engine import GASEngine, GASRunStats, VertexProgram
from repro.graph.csr import CSRGraph


class SSSPProgram(VertexProgram):
    """Section 7.4 SSSP: each vertex keeps the best distance offered by
    any incident edge; changed vertices schedule their neighbors."""

    def __init__(self, source: int) -> None:
        self.source = source

    def init_value(self, v: int):
        return 0.0 if v == self.source else np.inf

    def gather(self, v: int, u: int, weight: float, value_u):
        return value_u + weight

    def sum(self, a, b):
        return min(a, b)

    def identity(self):
        return np.inf

    def apply(self, v: int, old, acc):
        if v == self.source:
            return 0.0
        return min(old, acc)

    def scatter_condition(self, v: int, old, new) -> bool:
        return new < old


class ColoringProgram(VertexProgram):
    """Section 7.4 GC: every vertex collects the neighbor color set and
    recomputes the smallest free color; conflicting vertices reschedule.

    This is "a special case of BGC: each vertex constitutes a separate
    partition".  The priority tie-break (higher id defers to lower)
    guarantees convergence in the synchronous engine.
    """

    def init_value(self, v: int):
        return -1  # uncolored

    def gather(self, v: int, u: int, weight: float, value_u):
        # contribution: the neighbor's (id, color) pair
        return {(u, value_u)}

    def sum(self, a, b):
        return a | b

    def identity(self):
        return set()

    def apply(self, v: int, old, acc):
        used = {c for (u, c) in acc if c >= 0}
        # defer to any smaller-id conflicting/uncolored neighbor
        conflicted = any(c == old and u < v for (u, c) in acc if old >= 0)
        if old >= 0 and not conflicted:
            return old
        c = 0
        while c in used:
            c += 1
        return c

    def scatter_condition(self, v: int, old, new) -> bool:
        return old != new


class PageRankProgram(VertexProgram):
    """PageRank as gather/apply/scatter with tolerance-based scheduling.

    gather collects r(u)/d(u) from neighbors; apply damps; scatter
    re-schedules neighbors while the rank still moves by more than
    ``tol`` (PowerGraph's delta-scheduling, which the push mode turns
    into remote accumulator updates).
    """

    def __init__(self, g: CSRGraph, damping: float = 0.85,
                 tol: float = 1e-10) -> None:
        import numpy as np
        self.n = g.n
        self.damping = damping
        self.tol = tol
        deg = np.diff(g.offsets).astype(float)
        self.inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg),
                                 where=deg > 0)

    def init_value(self, v: int):
        return 1.0 / max(self.n, 1)

    def gather(self, v: int, u: int, weight: float, value_u):
        return value_u * self.inv_deg[u]

    def sum(self, a, b):
        return a + b

    def identity(self):
        return 0.0

    def apply(self, v: int, old, acc):
        return (1.0 - self.damping) / max(self.n, 1) + self.damping * acc

    def scatter_condition(self, v: int, old, new) -> bool:
        return abs(new - old) > self.tol


def gas_pagerank(g: CSRGraph, mode: str = "pull", damping: float = 0.85,
                 tol: float = 1e-10,
                 max_iterations: int | None = None) -> GASRunStats:
    """Run GAS PageRank to tolerance; ``stats.values`` holds the ranks.

    Only the *pull* mode converges to the power-iteration fixpoint: the
    push mode's pending accumulators mix iterations (asynchronous
    Jacobi), which is exactly the delta-caching subtlety PowerGraph
    documents -- we expose pull as the faithful variant and leave push
    for the engine's scatter accounting.
    """
    engine = GASEngine(g, PageRankProgram(g, damping, tol))
    return engine.run(mode=mode,
                      max_iterations=max_iterations or 4 * g.n + 16)


def gas_sssp(g: CSRGraph, source: int, mode: str = "pull") -> GASRunStats:
    """Run the GAS SSSP program; ``stats.values`` holds the distances."""
    engine = GASEngine(g, SSSPProgram(source))
    return engine.run(initial_active=[source] + [int(u) for u in g.neighbors(source)],
                      mode=mode)


def gas_coloring(g: CSRGraph, mode: str = "pull") -> GASRunStats:
    """Run the GAS coloring program; ``stats.values`` holds the colors."""
    engine = GASEngine(g, ColoringProgram())
    return engine.run(mode=mode)
