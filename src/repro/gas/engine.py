"""The GAS engine with push and pull execution modes.

Section 7.4's mapping:

* **pull mode**: every vertex scheduled for update iterates over its
  neighbors (gathers) and recomputes its own value -- only t[v] writes
  v.
* **push mode**: a vertex whose value changed propagates (scatters) the
  new value into each neighbor's *pending accumulator*; scheduled
  vertices then apply their accumulator without re-reading the
  neighborhood.  Writing another vertex's accumulator is exactly the
  remote write that makes this the push direction.

Both modes run the same :class:`VertexProgram` and converge to the same
fixpoint for programs whose gather-sum is commutative/associative and
whose apply is monotone (SSSP is the canonical example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph


class VertexProgram:
    """Override the four hooks; state lives in NumPy arrays you own."""

    def init_value(self, v: int) -> Any:
        raise NotImplementedError

    def gather(self, v: int, u: int, weight: float, value_u: Any) -> Any:
        """Contribution of neighbor u to v (pull direction)."""
        raise NotImplementedError

    def sum(self, a: Any, b: Any) -> Any:
        """Commutative, associative combine of gather contributions."""
        raise NotImplementedError

    def identity(self) -> Any:
        """Identity of :meth:`sum`."""
        raise NotImplementedError

    def apply(self, v: int, old: Any, acc: Any) -> Any:
        """New value of v from its old value and the gathered sum."""
        raise NotImplementedError

    def scatter_condition(self, v: int, old: Any, new: Any) -> bool:
        """Whether v's change schedules its neighbors."""
        return old != new


@dataclass
class GASRunStats:
    iterations: int = 0
    gathers: int = 0
    scatters: int = 0
    remote_writes: int = 0      #: accumulator writes to other vertices (push)
    values: dict = field(default_factory=dict)


class GASEngine:
    """Synchronous GAS execution over a :class:`CSRGraph`."""

    def __init__(self, g: CSRGraph, program: VertexProgram) -> None:
        self.g = g
        self.program = program

    def run(self, initial_active=None, mode: str = "pull",
            max_iterations: int | None = None) -> GASRunStats:
        if mode not in ("push", "pull"):
            raise ValueError("mode must be 'push' or 'pull'")
        g, prog = self.g, self.program
        values = {v: prog.init_value(v) for v in range(g.n)}
        stats = GASRunStats()
        active = (set(range(g.n)) if initial_active is None
                  else set(int(v) for v in initial_active))
        # push mode keeps a pending accumulator per vertex
        pending = {v: prog.identity() for v in range(g.n)}
        if mode == "push":
            # seed the accumulators of the initially-active set's neighbors?
            # No: initially-active vertices gather once (cold start), then
            # pushing takes over.
            for v in list(active):
                pending[v] = self._gather_all(v, values, stats)
        limit = max_iterations if max_iterations is not None else 4 * g.n + 16
        it = 0
        while active and it < limit:
            it += 1
            nxt: set[int] = set()
            if mode == "pull":
                snapshot = dict(values)
                for v in sorted(active):
                    acc = self._gather_all(v, snapshot, stats)
                    new = prog.apply(v, values[v], acc)
                    if prog.scatter_condition(v, values[v], new):
                        stats.scatters += 1
                        nxt.update(int(u) for u in g.neighbors(v))
                    values[v] = new
            else:
                changed: list[tuple[int, Any]] = []
                for v in sorted(active):
                    new = prog.apply(v, values[v], pending[v])
                    if prog.scatter_condition(v, values[v], new):
                        changed.append((v, new))
                    values[v] = new
                for v, new in changed:
                    stats.scatters += 1
                    nbrs = g.neighbors(v)
                    wgts = (g.edge_weights(v) if g.weights is not None
                            else np.ones(len(nbrs)))
                    for u, w in zip(nbrs, wgts):
                        u = int(u)
                        contrib = prog.gather(u, v, float(w), new)
                        pending[u] = prog.sum(pending[u], contrib)
                        stats.remote_writes += 1
                        nxt.add(u)
            active = nxt
        stats.iterations = it
        stats.values = values
        return stats

    def _gather_all(self, v: int, values: dict, stats: GASRunStats) -> Any:
        prog, g = self.program, self.g
        acc = prog.identity()
        nbrs = g.neighbors(v)
        wgts = (g.edge_weights(v) if g.weights is not None
                else np.ones(len(nbrs)))
        for u, w in zip(nbrs, wgts):
            acc = prog.sum(acc, prog.gather(v, int(u), float(w), values[int(u)]))
            stats.gathers += 1
        return acc
