"""Numeric evaluators for the Section-4 cost analyses.

Each function returns an :class:`AlgorithmCost` with PRAM time/work
(abstract steps, evaluated without hidden constants -- comparisons
between variants are meaningful, absolute values are up to Θ), the
conflict counts, and the atomic/lock counts of Section 4's per-
algorithm "Conflicts" / "Atomics/Locks" paragraphs.

These evaluators are the analytic counterpart of the instrumented
implementations in :mod:`repro.algorithms`; the test suite checks that
measured event counts respect the bounds derived here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pram.models import PRAM


def _log(x: float) -> float:
    return max(1.0, math.log2(max(x, 2.0)))


@dataclass(frozen=True)
class AlgorithmCost:
    """PRAM cost summary of one (algorithm, direction, model) triple."""

    algorithm: str
    direction: str              #: 'push' or 'pull'
    model: PRAM
    time: float                 #: PRAM time (steps)
    work: float                 #: PRAM work (total instructions)
    read_conflicts: float = 0.0
    write_conflicts: float = 0.0
    atomics: float = 0.0        #: FAA/CAS count (order)
    locks: float = 0.0          #: lock count (order)
    time_formula: str = ""
    work_formula: str = ""

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm, "dir": self.direction,
            "model": self.model.value, "time": self.time, "work": self.work,
            "R-conf": self.read_conflicts, "W-conf": self.write_conflicts,
            "atomics": self.atomics, "locks": self.locks,
        }


def _creW_push_factor(model: PRAM, d_hat: int) -> float:
    """The extra log(d̂) multiplier pushing pays outside CRCW-CB."""
    return _log(d_hat) if model is not PRAM.CRCW_CB else 1.0


def pagerank_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
                  P: int, L: int = 1) -> AlgorithmCost:
    """Section 4.1: PR costs.

    pull:           O(L (m/P + d̂)) time,            O(L m) work
    push, CRCW-CB:  O(L (m/P + d̂)) time,            O(L m) work
    push, CREW:     O(L log(d̂) (m/P + d̂)) time,     O(L m log(d̂)) work
    Conflicts O(Lm) writes (push) / reads (pull); push needs O(Lm)
    locks (float targets), pull none.
    """
    base_time = L * (m / max(P, 1) + d_hat)
    if direction == "pull":
        return AlgorithmCost("PR", "pull", model, base_time, L * m,
                             read_conflicts=L * m,
                             time_formula="O(L(m/P + d̂))", work_formula="O(Lm)")
    f = _creW_push_factor(model, d_hat)
    return AlgorithmCost("PR", "push", model, base_time * f, L * m * f,
                         write_conflicts=L * m, locks=L * m,
                         time_formula="O(L·log(d̂)·(m/P + d̂))" if f > 1 else "O(L(m/P + d̂))",
                         work_formula="O(Lm·log(d̂))" if f > 1 else "O(Lm)")


def triangle_count_cost(direction: str, model: PRAM, n: int, m: int,
                        d_hat: int, P: int) -> AlgorithmCost:
    """Section 4.2: TC costs; both directions read O(m d̂), push also writes."""
    base_time = d_hat * (m / max(P, 1) + d_hat)
    work = m * d_hat
    if direction == "pull":
        return AlgorithmCost("TC", "pull", model, base_time, work,
                             read_conflicts=work,
                             time_formula="O(d̂(m/P + d̂))", work_formula="O(m·d̂)")
    f = _creW_push_factor(model, d_hat)
    return AlgorithmCost("TC", "push", model, base_time * f, work * f,
                         read_conflicts=work, write_conflicts=work, atomics=work,
                         time_formula="O(d̂·log(d̂)·(m/P + d̂))" if f > 1 else "O(d̂(m/P + d̂))",
                         work_formula="O(m·d̂·log(d̂))" if f > 1 else "O(m·d̂)")


def bfs_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
             P: int, D: int) -> AlgorithmCost:
    """Section 4.3: BFS costs for a graph of diameter D.

    pull:           O(D (m/P + d̂)) time, O(D m) work
    push, CRCW-CB:  O(m/P + D(d̂ + log P)) time, O(m) work
    push, CREW:     log(d̂) more time and work
    """
    if direction == "pull":
        return AlgorithmCost("BFS", "pull", model,
                             D * (m / max(P, 1) + d_hat), D * m,
                             read_conflicts=D * m,
                             time_formula="O(D(m/P + d̂))", work_formula="O(Dm)")
    f = _creW_push_factor(model, d_hat)
    time = (m / max(P, 1) + D * (d_hat + _log(P))) * f
    return AlgorithmCost("BFS", "push", model, time, m * f,
                         write_conflicts=m, atomics=m,
                         time_formula="O(log(d̂)(m/P + D(d̂+log P)))" if f > 1
                         else "O(m/P + D(d̂+log P))",
                         work_formula="O(m·log(d̂))" if f > 1 else "O(m)")


def sssp_delta_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
                    P: int, L_over_delta: float, l_delta: float) -> AlgorithmCost:
    """Section 4.4: Δ-Stepping with L/Δ epochs and l_Δ iterations per epoch.

    pull:  O((L/Δ) l_Δ (m/P + d̂)) time, O((L/Δ) m l_Δ) work
    push:  O(m l_Δ / P + (L/Δ) l_Δ d̂) time, O(m l_Δ) work (CRCW-CB)
    """
    if direction == "pull":
        time = L_over_delta * l_delta * (m / max(P, 1) + d_hat)
        work = L_over_delta * m * l_delta
        # analytically pull needs no locks (only t[v] writes v); the
        # *implementation* locks to read the remote (dist, bucket) pair
        # consistently, which is what Table 1 measures -- see
        # repro.algorithms.sssp_delta
        return AlgorithmCost("SSSP-Δ", "pull", model, time, work,
                             read_conflicts=work,
                             time_formula="O((L/Δ)·l_Δ·(m/P + d̂))",
                             work_formula="O((L/Δ)·m·l_Δ)")
    f = _creW_push_factor(model, d_hat)
    time = (m * l_delta / max(P, 1) + L_over_delta * l_delta * d_hat) * f
    work = m * l_delta * f
    return AlgorithmCost("SSSP-Δ", "push", model, time, work,
                         write_conflicts=m * l_delta, atomics=m * l_delta,
                         time_formula="O(log(d̂)(m·l_Δ/P + (L/Δ)·l_Δ·d̂))" if f > 1
                         else "O(m·l_Δ/P + (L/Δ)·l_Δ·d̂)",
                         work_formula="O(m·l_Δ·log(d̂))" if f > 1 else "O(m·l_Δ)")


def bc_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int, P: int,
            D: int, sources: int | None = None) -> AlgorithmCost:
    """Section 4.5: BC is dominated by 2n BFS invocations.

    With ``sources`` s (default n) and up to O(n²) usable processors,
    the s forward+backward sweeps are independent; we charge 2s BFS
    invocations at P/s processors each when P > s, else sequential-
    over-sources BFS cost.  The backward sweep uses float locks when
    pushing and integer atomics when pulling (the Madduri et al. [39]
    successor-set trick).
    """
    s = n if sources is None else sources
    per_source_P = max(1, P // max(s, 1)) if P > s else P
    bfs = bfs_cost(direction, model, n, m, d_hat, per_source_P, D)
    time = bfs.time * (2 * s if P <= s else 2)
    work = bfs.work * 2 * s
    if direction == "pull":
        return AlgorithmCost("BC", "pull", model, time, work,
                             read_conflicts=2 * s * m, atomics=2 * s * m,
                             time_formula="2s × BFS_pull time",
                             work_formula="O(s·D·m)")
    return AlgorithmCost("BC", "push", model, time, work,
                         write_conflicts=2 * s * m, locks=s * m,
                         time_formula="2s × BFS_push time",
                         work_formula="O(s·m)")


def boman_coloring_cost(direction: str, model: PRAM, n: int, m: int,
                        d_hat: int, P: int, L: int = 1) -> AlgorithmCost:
    """Section 4.6: BGC costs O(L(m/P + d̂)) time / O(Lm) work in both
    directions on CRCW-CB; pushing pays log(d̂) more on CREW; O(Lm)
    CAS-resolvable conflicts either way."""
    base_time = L * (m / max(P, 1) + d_hat)
    work = L * m
    if direction == "pull":
        return AlgorithmCost("BGC", "pull", model, base_time, work,
                             read_conflicts=work, atomics=work,
                             time_formula="O(L(m/P + d̂))", work_formula="O(Lm)")
    f = _creW_push_factor(model, d_hat)
    return AlgorithmCost("BGC", "push", model, base_time * f, work * f,
                         write_conflicts=work, atomics=work,
                         time_formula="O(L·log(d̂)·(m/P + d̂))" if f > 1 else "O(L(m/P + d̂))",
                         work_formula="O(Lm·log(d̂))" if f > 1 else "O(Lm)")


def boruvka_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
                 P: int) -> AlgorithmCost:
    """Section 4.7: Borůvka costs O(n²/P) time and O(n²) work in both
    directions on CRCW-CB; pushing pays log(n) more on CREW."""
    base_time = n * n / max(P, 1)
    work = float(n) * n
    if direction == "pull":
        return AlgorithmCost("MST", "pull", model, base_time, work,
                             read_conflicts=work,
                             time_formula="O(n²/P)", work_formula="O(n²)")
    f = _log(n) if model is not PRAM.CRCW_CB else 1.0
    return AlgorithmCost("MST", "push", model, base_time * f, work * f,
                         write_conflicts=work, atomics=work,
                         time_formula="O(log(n)·n²/P)" if f > 1 else "O(n²/P)",
                         work_formula="O(n²·log n)" if f > 1 else "O(n²)")


def prim_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
              P: int) -> AlgorithmCost:
    """Technical-report extension (Section 3.7): Prim's key updates.

    n rounds; per round, push relaxes d(u) edges (CAS-min on remote
    keys), pull probes every fringe vertex (a log(d̂) binary search in
    its own list).  Selection is a parallel min-reduction per round.
    """
    select = n * (n / max(P, 1) + _log(P))
    if direction == "pull":
        probe = n * (n / max(P, 1)) * _log(d_hat)
        return AlgorithmCost("Prim", "pull", model, select + probe,
                             n * n * _log(d_hat),
                             read_conflicts=n * n,
                             time_formula="O(n(n/P)·log d̂)",
                             work_formula="O(n²·log d̂)")
    f = _creW_push_factor(model, d_hat)
    update = (2 * m / max(P, 1) + n * _log(P)) * f
    return AlgorithmCost("Prim", "push", model, select + update, 2 * m * f,
                         write_conflicts=2 * m, atomics=2 * m,
                         time_formula="O(m/P + n·log P)",
                         work_formula="O(m·log d̂)" if f > 1 else "O(m)")


def kruskal_cost(direction: str, model: PRAM, n: int, m: int, d_hat: int,
                 P: int) -> AlgorithmCost:
    """Technical-report extension: filter-Kruskal's component tests.

    Edges are sorted once (O(m log m) work); the union-find filter is
    where push and pull differ -- push unions write the other root's
    parent (CAS), pull filtering re-reads component labels per edge
    block per round.
    """
    sort = (m * _log(m)) / max(P, 1)
    if direction == "pull":
        return AlgorithmCost("Kruskal", "pull", model,
                             sort + m * _log(n) / max(P, 1),
                             m * _log(m) + m * _log(n),
                             read_conflicts=m * _log(n),
                             time_formula="O((m log m)/P + (m log n)/P)",
                             work_formula="O(m log m)")
    f = 1.0 if model is PRAM.CRCW_CB else _log(n)
    return AlgorithmCost("Kruskal", "push", model,
                         sort + (n * _log(n) / max(P, 1)) * f,
                         m * _log(m) + n * _log(n) * f,
                         write_conflicts=n, atomics=n,
                         time_formula="O((m log m)/P + (n log n)/P)",
                         work_formula="O(m log m)")


def connected_components_cost(direction: str, model: PRAM, n: int, m: int,
                              d_hat: int, P: int, D: int) -> AlgorithmCost:
    """Label propagation CC (extension X3): D rounds of min-combining.

    Push relaxes only the changed frontier's edges (O(m) total work
    amortized over the run, CRCW-CB combining); pull rescans all edges
    every round (O(D·m) reads), mirroring the BFS asymmetry.
    """
    if direction == "pull":
        return AlgorithmCost("CC", "pull", model,
                             D * (m / max(P, 1) + d_hat), D * m,
                             read_conflicts=D * m,
                             time_formula="O(D(m/P + d̂))",
                             work_formula="O(Dm)")
    f = _creW_push_factor(model, d_hat)
    return AlgorithmCost("CC", "push", model,
                         (m / max(P, 1) + D * (d_hat + _log(P))) * f, m * f,
                         write_conflicts=m, atomics=m,
                         time_formula="O(m/P + D(d̂+log P))",
                         work_formula="O(m·log d̂)" if f > 1 else "O(m)")


#: name -> cost function, for table-driven sweeps
ALGORITHM_COSTS = {
    "PR": pagerank_cost,
    "TC": triangle_count_cost,
    "BFS": bfs_cost,
    "SSSP-Δ": sssp_delta_cost,
    "BC": bc_cost,
    "BGC": boman_coloring_cost,
    "MST": boruvka_cost,
    "Prim": prim_cost,
    "Kruskal": kruskal_cost,
    "CC": connected_components_cost,
}
