"""PRAM model variants and simulation lemmas (Section 2.1 of the paper).

The paper uses three PRAM flavours: EREW (no concurrent access), CREW
(concurrent reads only) and Combining CRCW (concurrent writes combined
with an associative+commutative operator).  Two classical lemmas let
costs transfer between them:

* **Simulation**: any CRCW (or CREW) step over M cells runs on a
  CREW/EREW machine with Θ(log P) slowdown.
* **Processor limiting (LP / Brent)**: S time on P processors becomes
  ``ceil(S * P / P')`` time on P' < P processors.
"""

from __future__ import annotations

import math
from enum import Enum


class PRAM(Enum):
    """The PRAM variants of Section 2.1."""

    EREW = "EREW"
    CREW = "CREW"
    CRCW_CB = "CRCW-CB"   #: Combining CRCW

    @property
    def allows_concurrent_reads(self) -> bool:
        return self is not PRAM.EREW

    @property
    def allows_concurrent_writes(self) -> bool:
        return self is PRAM.CRCW_CB


def simulate_crcw_on_weaker(time_steps: float, P: int,
                            target: PRAM = PRAM.CREW) -> float:
    """Time after simulating a CRCW-CB algorithm on a weaker PRAM.

    Both CRCW->CREW and CREW->EREW simulations cost Θ(log P) slowdown
    (Harris [30]); chaining both costs the same asymptotically, so we
    apply a single log-factor per weakening level.
    """
    if P <= 1:
        return time_steps
    slow = max(1.0, math.log2(P))
    if target is PRAM.CRCW_CB:
        return time_steps
    if target is PRAM.CREW:
        return time_steps * slow
    return time_steps * slow  # EREW: same Θ(log P) bound

def limit_processors(time_steps: float, P: int, P_prime: int) -> float:
    """The LP lemma: S' = ceil(S * P / P') for P' < P (fixed memory M)."""
    if P_prime <= 0:
        raise ValueError("P' must be positive")
    if P_prime >= P:
        return time_steps
    return math.ceil(time_steps * P / P_prime)
