"""PRAM machinery and the paper's Section-4 cost analyses.

* :mod:`repro.pram.models` -- the PRAM variants (EREW / CREW /
  Combining-CRCW) and the simulation lemmas of Section 2.1.
* :mod:`repro.pram.primitives` -- the ``k-relaxation`` and ``k-filter``
  cost primitives every per-algorithm analysis is phrased in.
* :mod:`repro.pram.costs` -- numeric evaluators (and human-readable
  formula strings) for the push and pull complexities of all seven
  algorithms.
"""

from repro.pram.models import PRAM, simulate_crcw_on_weaker, limit_processors
from repro.pram.machine import PRAMMachine, AccessViolation
from repro.pram.primitives import k_bar, k_relaxation, k_filter, PrimitiveCost
from repro.pram.costs import (
    AlgorithmCost,
    connected_components_cost,
    kruskal_cost,
    pagerank_cost,
    prim_cost,
    triangle_count_cost,
    bfs_cost,
    sssp_delta_cost,
    bc_cost,
    boman_coloring_cost,
    boruvka_cost,
    ALGORITHM_COSTS,
)

__all__ = [
    "PRAM",
    "simulate_crcw_on_weaker",
    "limit_processors",
    "k_bar",
    "k_relaxation",
    "k_filter",
    "PrimitiveCost",
    "AlgorithmCost",
    "pagerank_cost",
    "triangle_count_cost",
    "bfs_cost",
    "sssp_delta_cost",
    "bc_cost",
    "boman_coloring_cost",
    "boruvka_cost",
    "prim_cost",
    "kruskal_cost",
    "connected_components_cost",
    "ALGORITHM_COSTS",
    "PRAMMachine",
    "AccessViolation",
]
