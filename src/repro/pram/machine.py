"""An executable PRAM: step-synchronous processors with access checking.

Section 2.1 defines the machine the analyses run on: P processors over
a shared memory, proceeding in tightly-synchronized steps, with the
variants differing in what concurrent accesses they admit.  This module
makes that machine *executable*: programs are written as per-processor
step functions, and the machine

* enforces the variant's access rules -- an EREW run raises
  :class:`AccessViolation` on any concurrent access to a cell, a CREW
  run on concurrent writes, while CRCW-CB *combines* concurrent writes
  with the configured associative-commutative operator;
* counts time (steps) and work (total instructions), the S and W of
  the paper's notation.

The test suite uses it to demonstrate the k-relaxation facts behind
Section 4: a push relaxation is a single CRCW-CB step, needs a
log(d̂)-depth merge tree on CREW, and is illegal as-is on EREW.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.pram.models import PRAM


class AccessViolation(RuntimeError):
    """A program broke the active PRAM variant's concurrency rules."""


class PRAMMachine:
    """A P-processor PRAM over ``memory_cells`` shared cells.

    Programs execute through :meth:`step`: every processor contributes
    a list of (op, cell, value) instructions for the *same* time step;
    the machine validates concurrency, applies reads before writes
    (the standard PRAM convention), and advances S and W.
    """

    def __init__(self, P: int, memory_cells: int,
                 model: PRAM = PRAM.CRCW_CB,
                 combine: Callable[[float, float], float] = lambda a, b: a + b,
                 ) -> None:
        if P <= 0 or memory_cells <= 0:
            raise ValueError("P and memory size must be positive")
        self.P = P
        self.model = model
        self.combine = combine
        self.memory = np.zeros(memory_cells)
        self.time_steps = 0      #: S
        self.work = 0            #: W

    # -- one synchronous step ------------------------------------------------
    def step(self, instructions: list[list[tuple]]) -> list[list[float]]:
        """Execute one synchronous step.

        ``instructions[p]`` is processor p's instruction list for this
        step: tuples ``("read", cell)``, ``("write", cell, value)``, or
        ``("local",)`` (pure computation).  Returns per-processor read
        results in order.  A processor may idle with an empty list.
        """
        if len(instructions) != self.P:
            raise ValueError("need one instruction list per processor")
        reads: dict[int, list[int]] = {}
        writes: dict[int, list[float]] = {}
        results: list[list[float]] = [[] for _ in range(self.P)]

        for p, prog in enumerate(instructions):
            for instr in prog:
                self.work += 1
                op = instr[0]
                if op == "local":
                    continue
                cell = int(instr[1])
                if not (0 <= cell < len(self.memory)):
                    raise AccessViolation(f"cell {cell} out of bounds")
                if op == "read":
                    reads.setdefault(cell, []).append(p)
                elif op == "write":
                    writes.setdefault(cell, []).append(float(instr[2]))
                else:
                    raise ValueError(f"unknown op {op!r}")

        # --- concurrency validation -----------------------------------------
        if self.model is PRAM.EREW:
            for cell, readers in reads.items():
                if len(readers) > 1:
                    raise AccessViolation(
                        f"EREW: concurrent reads of cell {cell}")
        if self.model in (PRAM.EREW, PRAM.CREW):
            for cell, values in writes.items():
                if len(values) > 1:
                    raise AccessViolation(
                        f"{self.model.value}: concurrent writes to cell {cell}")
        for cell in writes:
            if cell in reads and self.model is PRAM.EREW:
                raise AccessViolation(
                    f"EREW: cell {cell} read and written in one step")

        # --- apply: reads see the pre-step memory -----------------------------
        snapshot = self.memory
        for p, prog in enumerate(instructions):
            for instr in prog:
                if instr[0] == "read":
                    results[p].append(float(snapshot[int(instr[1])]))
        new_memory = self.memory.copy()
        for cell, values in writes.items():
            acc = values[0]
            for v in values[1:]:
                acc = self.combine(acc, v)   # CRCW-CB combining rule
            new_memory[cell] = acc
        self.memory = new_memory
        self.time_steps += 1
        return results

    # -- convenience program: one k-relaxation -----------------------------------
    def k_relaxation_push(self, sources: list[int], target: int) -> None:
        """All of ``sources`` push their cell values into ``target`` in
        one step -- legal only under CRCW-CB; CREW/EREW raise, which is
        exactly why Section 4 charges pushing a log(d̂) merge tree there.
        """
        step = [[] for _ in range(self.P)]
        for i, s in enumerate(sources):
            step[i % self.P].append(("read", s))
        vals = self.step(step)
        flat = [v for sub in vals for v in sub]
        step2 = [[] for _ in range(self.P)]
        for i, v in enumerate(flat):
            step2[i % self.P].append(("write", target, v))
        self.step(step2)

    def k_relaxation_push_crew(self, sources: list[int], target: int,
                               scratch_base: int) -> None:
        """CREW-legal push: a binary merge tree over scratch cells.

        Takes ceil(log2(k)) + 2 steps, matching the O(k̄ log d̂) CREW
        bound of Section 4's cost derivations.
        """
        vals_cells = list(sources)
        level = 0
        while len(vals_cells) > 1:
            nxt = []
            step = [[] for _ in range(self.P)]
            read_plan = []
            for i in range(0, len(vals_cells) - 1, 2):
                a, b_ = vals_cells[i], vals_cells[i + 1]
                proc = (i // 2) % self.P
                step[proc].extend([("read", a), ("read", b_)])
                read_plan.append((proc, scratch_base + len(nxt)))
                nxt.append(scratch_base + len(nxt))
            carried = [vals_cells[-1]] if len(vals_cells) % 2 else []
            results = self.step(step)
            wstep = [[] for _ in range(self.P)]
            consumed = {p: 0 for p in range(self.P)}
            for proc, out_cell in read_plan:
                i = consumed[proc]
                a, b_ = results[proc][i], results[proc][i + 1]
                consumed[proc] += 2
                wstep[proc].append(("write", out_cell, self.combine(a, b_)))
            self.step(wstep)
            vals_cells = nxt + carried
            scratch_base += len(nxt)
            level += 1
        # final move into the target
        final = self.step([[("read", vals_cells[0])]]
                          + [[] for _ in range(self.P - 1)])
        self.step([[("write", target, final[0][0])]]
                  + [[] for _ in range(self.P - 1)])
