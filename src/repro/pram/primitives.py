"""The k-relaxation and k-filter cost primitives (Section 4).

The paper phrases every per-algorithm analysis in two primitives:

* ``k-relaxation``: simultaneously propagate updates from/to k vertices
  to/from one of their neighbors (push/pull respectively).
    - pulling:            O(k̄) time,            O(k) work
    - pushing, CRCW-CB:   O(k̄) time,            O(k) work
    - pushing, CREW:      O(k̄ · log d̂) time,    O(k · log d̂) work
      (binary merge-tree reductions over each updated vertex's degree)
* ``k-filter``: extract the vertices updated by one or more
  k-relaxations (non-trivial only when pushing):
    - O(log P + k̄) time, O(min(k, n)) work via a prefix sum

with k̄ = max(1, k / P).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pram.models import PRAM


@dataclass(frozen=True)
class PrimitiveCost:
    """(time, work) of one primitive invocation, in abstract PRAM steps."""

    time: float
    work: float

    def __add__(self, other: "PrimitiveCost") -> "PrimitiveCost":
        return PrimitiveCost(self.time + other.time, self.work + other.work)

    def scaled(self, factor: float) -> "PrimitiveCost":
        return PrimitiveCost(self.time * factor, self.work * factor)


def k_bar(k: float, P: int) -> float:
    """k̄ = max(1, k / P)."""
    return max(1.0, k / max(P, 1))


def k_relaxation(k: float, P: int, direction: str,
                 model: PRAM = PRAM.CRCW_CB, d_hat: int = 2) -> PrimitiveCost:
    """Cost of one k-relaxation.

    ``direction`` is ``"push"`` or ``"pull"``; ``d_hat`` only matters
    for the CREW push case (merge-tree height log d̂).
    """
    if direction not in ("push", "pull"):
        raise ValueError("direction must be 'push' or 'pull'")
    kb = k_bar(k, P)
    if direction == "pull" or model is PRAM.CRCW_CB:
        return PrimitiveCost(time=kb, work=k)
    # pushing on CREW (or EREW, same tree bound): binary merge trees
    log_d = max(1.0, math.log2(max(d_hat, 2)))
    return PrimitiveCost(time=kb * log_d, work=k * log_d)


def k_filter(k: float, P: int, n: int) -> PrimitiveCost:
    """Cost of one k-filter (prefix-sum compaction of updated vertices)."""
    return PrimitiveCost(
        time=math.log2(max(P, 2)) + k_bar(k, P),
        work=min(k, n),
    )
