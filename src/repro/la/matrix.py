"""CSR / CSC adjacency-matrix layouts.

A(i, j) = weight of the edge j -> i (Section 7.1's convention: "the
element in row i and column j of A equals 1 iff there is an edge from
vertex j to vertex i").  Thus:

* row i of CSR holds the *in*-neighbors of i  -> CSR SpMV pulls;
* column j of CSC holds the *out*-neighbors of j -> CSC SpMV pushes.

For an undirected :class:`~repro.graph.csr.CSRGraph` both layouts share
the same index structure (A is symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass
class CSRMatrix:
    """Row-major sparse matrix: ``indices[ptr[i]:ptr[i+1]]`` = columns of row i."""

    n: int
    ptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        s = slice(self.ptr[i], self.ptr[i + 1])
        return self.indices[s], self.values[s]

    def block(self, i0: int, i1: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ptr slice, indices, values) of the contiguous row block [i0, i1)."""
        lo, hi = int(self.ptr[i0]), int(self.ptr[i1])
        return self.ptr[i0:i1 + 1], self.indices[lo:hi], self.values[lo:hi]

    @property
    def nnz(self) -> int:
        return len(self.indices)


@dataclass
class CSCMatrix:
    """Column-major sparse matrix: ``indices[ptr[j]:ptr[j+1]]`` = rows of column j."""

    n: int
    ptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        s = slice(self.ptr[j], self.ptr[j + 1])
        return self.indices[s], self.values[s]

    def block(self, j0: int, j1: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ptr slice, indices, values) of the contiguous column block [j0, j1)."""
        lo, hi = int(self.ptr[j0]), int(self.ptr[j1])
        return self.ptr[j0:j1 + 1], self.indices[lo:hi], self.values[lo:hi]

    @property
    def nnz(self) -> int:
        return len(self.indices)


def adjacency_matrices(g: CSRGraph, values: np.ndarray | None = None
                       ) -> tuple[CSRMatrix, CSCMatrix]:
    """Both layouts of g's adjacency matrix (weights default to g's or 1).

    For a directed graph, row i of the CSR layout lists the sources of
    arcs *into* i (A's convention above), i.e. it is built from the
    transposed CSR graph; the CSC layout reuses g's own arrays.
    """
    if values is None:
        values = (g.weights if g.weights is not None
                  else np.ones(len(g.adj)))
    if g.directed:
        tr = g.transposed()
        tvals = (tr.weights if tr.weights is not None
                 else np.ones(len(tr.adj)))
        csr = CSRMatrix(g.n, tr.offsets, tr.adj, tvals)
        csc = CSCMatrix(g.n, g.offsets, g.adj, values)
    else:
        csr = CSRMatrix(g.n, g.offsets, g.adj, values)
        csc = CSCMatrix(g.n, g.offsets, g.adj, values)
    return csr, csc


def pull_matrix(g: CSRGraph, gin: CSRGraph | None = None) -> CSRMatrix:
    """The CSR (pull) layout over g, reusing a precomputed transpose.

    The stream kernels already hold ``gin = g.transposed()`` for their
    incoming-edge walks; passing it here avoids transposing twice.  For
    undirected graphs ``gin`` is ``g`` itself (A is symmetric).
    """
    src = gin if (g.directed and gin is not None) else (
        g.transposed() if g.directed else g)
    vals = src.weights if src.weights is not None else np.ones(len(src.adj))
    return CSRMatrix(g.n, src.offsets, src.adj, vals)


def push_matrix(g: CSRGraph) -> CSCMatrix:
    """The CSC (push) layout over g's own arrays (outgoing edges)."""
    vals = g.weights if g.weights is not None else np.ones(len(g.adj))
    return CSCMatrix(g.n, g.offsets, g.adj, vals)
