"""SpMV and SpMSpV over semirings, with operation counting.

The counts demonstrate Section 7.1's core point: the CSR (pull) product
must touch every row even when the input vector is sparse, while the
CSC (push) product "facilitates exploiting the sparsity of the vector
by simply ignoring columns of A that match up to zeros" -- and,
conversely, CSC needs combining (the atomics of the push world) while
CSR rows are independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.la.matrix import CSCMatrix, CSRMatrix
from repro.la.semiring import Semiring


@dataclass
class OpCount:
    """Work performed by one product."""

    multiplies: int = 0       #: semiring multiplications
    rows_touched: int = 0     #: rows (CSR) or columns (CSC) visited
    combines: int = 0         #: scatter-combining writes (CSC only)


def spmv_csr(A: CSRMatrix, x: np.ndarray, sr: Semiring
             ) -> tuple[np.ndarray, OpCount]:
    """Dense-vector product in the CSR layout (pulling)."""
    y = np.full(A.n, sr.zero)
    ops = OpCount()
    for i in range(A.n):
        cols, vals = A.row(i)
        if len(cols) == 0:
            continue
        y[i] = sr.add_reduce(sr.mul(vals, x[cols]))
        ops.multiplies += len(cols)
        ops.rows_touched += 1
    return y, ops


def spmv_csc(A: CSCMatrix, x: np.ndarray, sr: Semiring
             ) -> tuple[np.ndarray, OpCount]:
    """Dense-vector product in the CSC layout (pushing)."""
    y = np.full(A.n, sr.zero)
    ops = OpCount()
    for j in range(A.n):
        rows, vals = A.col(j)
        if len(rows) == 0:
            continue
        sr.add_at(y, rows, sr.mul(vals, x[j]))
        ops.multiplies += len(rows)
        ops.combines += len(rows)
        ops.rows_touched += 1
    return y, ops


def spmspv_csr(A: CSRMatrix, x_idx: np.ndarray, x_val: np.ndarray,
               sr: Semiring) -> tuple[np.ndarray, np.ndarray, OpCount]:
    """Sparse-vector product in CSR (pulling): every row must be scanned.

    Returns (y_idx, y_val, ops).  The input sparsity cannot be
    exploited -- each row's intersection with the nonzero set still
    requires visiting the row, which is why frontier-style algorithms
    prefer CSC/push when the frontier is small.
    """
    x_dense = np.full(A.n, sr.zero)
    x_dense[x_idx] = x_val
    nonzero = np.zeros(A.n, dtype=bool)
    nonzero[x_idx] = True
    ops = OpCount()
    out_idx, out_val = [], []
    for i in range(A.n):
        cols, vals = A.row(i)
        ops.rows_touched += 1      # <- unavoidable full-row sweep
        if len(cols) == 0:
            continue
        hit = nonzero[cols]
        k = int(hit.sum())
        if k == 0:
            continue
        ops.multiplies += k
        out_idx.append(i)
        out_val.append(sr.add_reduce(sr.mul(vals[hit], x_dense[cols[hit]])))
    return (np.asarray(out_idx, dtype=np.int64), np.asarray(out_val), ops)


def spmspv_csc(A: CSCMatrix, x_idx: np.ndarray, x_val: np.ndarray,
               sr: Semiring) -> tuple[np.ndarray, np.ndarray, OpCount]:
    """Sparse-vector product in CSC (pushing): zero columns are skipped."""
    y = np.full(A.n, sr.zero)
    touched = np.zeros(A.n, dtype=bool)
    ops = OpCount()
    for j, xv in zip(np.asarray(x_idx), np.asarray(x_val)):
        rows, vals = A.col(int(j))
        ops.rows_touched += 1      # <- only the nonzero columns
        if len(rows) == 0:
            continue
        sr.add_at(y, rows, sr.mul(vals, xv))
        touched[rows] = True
        ops.multiplies += len(rows)
        ops.combines += len(rows)
    out_idx = np.flatnonzero(touched)
    return out_idx, y[out_idx], ops
