"""SpMV and SpMSpV over semirings, with operation counting.

The counts demonstrate Section 7.1's core point: the CSR (pull) product
must touch every row even when the input vector is sparse, while the
CSC (push) product "facilitates exploiting the sparsity of the vector
by simply ignoring columns of A that match up to zeros" -- and,
conversely, CSC needs combining (the atomics of the push world) while
CSR rows are independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.la.matrix import CSCMatrix, CSRMatrix
from repro.la.semiring import Semiring


@dataclass
class OpCount:
    """Work performed by one product."""

    multiplies: int = 0       #: semiring multiplications
    rows_touched: int = 0     #: rows (CSR) or columns (CSC) visited
    combines: int = 0         #: scatter-combining writes (CSC only)


def spmv_csr(A: CSRMatrix, x: np.ndarray, sr: Semiring
             ) -> tuple[np.ndarray, OpCount]:
    """Dense-vector product in the CSR layout (pulling)."""
    y = np.full(A.n, sr.zero)
    ops = OpCount()
    for i in range(A.n):
        cols, vals = A.row(i)
        if len(cols) == 0:
            continue
        y[i] = sr.add_reduce(sr.mul(vals, x[cols]))
        ops.multiplies += len(cols)
        ops.rows_touched += 1
    return y, ops


def spmv_csc(A: CSCMatrix, x: np.ndarray, sr: Semiring
             ) -> tuple[np.ndarray, OpCount]:
    """Dense-vector product in the CSC layout (pushing)."""
    y = np.full(A.n, sr.zero)
    ops = OpCount()
    for j in range(A.n):
        rows, vals = A.col(j)
        if len(rows) == 0:
            continue
        sr.add_at(y, rows, sr.mul(vals, x[j]))
        ops.multiplies += len(rows)
        ops.combines += len(rows)
        ops.rows_touched += 1
    return y, ops


def spmspv_csr(A: CSRMatrix, x_idx: np.ndarray, x_val: np.ndarray,
               sr: Semiring) -> tuple[np.ndarray, np.ndarray, OpCount]:
    """Sparse-vector product in CSR (pulling): every row must be scanned.

    Returns (y_idx, y_val, ops).  The input sparsity cannot be
    exploited -- each row's intersection with the nonzero set still
    requires visiting the row, which is why frontier-style algorithms
    prefer CSC/push when the frontier is small.
    """
    x_dense = np.full(A.n, sr.zero)
    x_dense[x_idx] = x_val
    nonzero = np.zeros(A.n, dtype=bool)
    nonzero[x_idx] = True
    ops = OpCount()
    out_idx, out_val = [], []
    for i in range(A.n):
        cols, vals = A.row(i)
        ops.rows_touched += 1      # <- unavoidable full-row sweep
        if len(cols) == 0:
            continue
        hit = nonzero[cols]
        k = int(hit.sum())
        if k == 0:
            continue
        ops.multiplies += k
        out_idx.append(i)
        out_val.append(sr.add_reduce(sr.mul(vals[hit], x_dense[cols[hit]])))
    return (np.asarray(out_idx, dtype=np.int64), np.asarray(out_val), ops)


# -- batched-kernel primitives ------------------------------------------------
# The stream-emitting kernels (repro.streams.kernels) evaluate whole
# CSR/CSC blocks as one semiring product instead of looping rows in
# Python.  These helpers are the vectorized row/column reductions they
# are built from; each documents the per-element loop it replaces.

def segment_reduce(sr: Semiring, vals: np.ndarray, starts: np.ndarray,
                   ends: np.ndarray) -> np.ndarray:
    """Per-row semiring add-reduction of a CSR block's products.

    Equivalent to ``[sr.add_reduce(vals[s:e]) for s, e in zip(starts,
    ends)]`` for contiguous segments tiling ``vals``; empty rows yield
    ``sr.zero``.  Wraps ``sr.add.reduceat``, which would otherwise
    return the element *at* an empty segment's start.
    """
    k = len(starts)
    dtype = vals.dtype if vals.dtype.kind == "f" else np.float64
    out = np.full(k, sr.zero, dtype=dtype)
    nonempty = np.asarray(ends) > np.asarray(starts)
    if vals.size and nonempty.any():
        out[nonempty] = sr.add.reduceat(vals, np.asarray(starts)[nonempty])
    return out


def masked_first_hit(flags: np.ndarray, seg: np.ndarray) -> np.ndarray:
    """Per-segment index of the first True flag, -1 when none.

    The SpMSpV-with-early-exit primitive of pull-BFS: row i's product
    over the boolean semiring is nonzero iff some masked entry hits,
    and the *short-circuit* evaluation stops at the first hit -- this
    returns where each row's scan would stop.  ``seg`` is the segment
    offset array (``len(seg) == nrows + 1``) tiling ``flags``.
    """
    seg = np.asarray(seg, dtype=np.int64)
    sizes = np.diff(seg)
    out = np.full(len(sizes), -1, dtype=np.int64)
    flags = np.asarray(flags)
    if flags.size == 0 or not sizes.any():
        return out
    big = np.int64(flags.size)
    cand = np.where(flags, np.arange(flags.size, dtype=np.int64), big)
    nz = sizes > 0
    first_abs = np.minimum.reduceat(cand, seg[:-1][nz])
    hit = first_abs < big
    idx_nz = np.flatnonzero(nz)
    out[idx_nz[hit]] = first_abs[hit] - seg[:-1][nz][hit]
    return out


def first_claim(targets: np.ndarray, eligible: np.ndarray) -> np.ndarray:
    """Positions winning a write-once combining scatter (CSC push claim).

    Given the concatenated edge targets of a frontier block (in issue
    order) and an eligibility mask, returns the sorted positions of the
    *first* eligible occurrence of each distinct target -- exactly the
    CAS claims that succeed when the block's vertices run one after
    another, since a claimed target is ineligible for every later edge.
    """
    targets = np.asarray(targets)
    pos = np.flatnonzero(eligible)
    if pos.size == 0:
        return pos
    _, fi = np.unique(targets[pos], return_index=True)
    return np.sort(pos[fi])


def spmspv_csc(A: CSCMatrix, x_idx: np.ndarray, x_val: np.ndarray,
               sr: Semiring) -> tuple[np.ndarray, np.ndarray, OpCount]:
    """Sparse-vector product in CSC (pushing): zero columns are skipped."""
    y = np.full(A.n, sr.zero)
    touched = np.zeros(A.n, dtype=bool)
    ops = OpCount()
    for j, xv in zip(np.asarray(x_idx), np.asarray(x_val)):
        rows, vals = A.col(int(j))
        ops.rows_touched += 1      # <- only the nonzero columns
        if len(rows) == 0:
            continue
        sr.add_at(y, rows, sr.mul(vals, xv))
        touched[rows] = True
        ops.multiplies += len(rows)
        ops.combines += len(rows)
    out_idx = np.flatnonzero(touched)
    return out_idx, y[out_idx], ops
