"""Semirings for algebraic graph algorithms.

A semiring supplies the (add, multiply) pair the matrix-vector product
is evaluated over, plus their identities.  The classic instances:

* ``PLUS_TIMES`` -- ordinary arithmetic (PageRank's rank propagation);
* ``MIN_PLUS``   -- tropical semiring (shortest paths / Bellman-Ford);
* ``OR_AND``     -- boolean semiring (reachability / BFS frontiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """An algebraic semiring with vectorized NumPy operations.

    ``add``/``mul`` are binary ufunc-like callables; ``add_reduce``
    folds an array with the additive operation; ``zero`` is the
    additive identity (also the implicit value of vector entries) and
    ``one`` the multiplicative identity.
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    add_reduce: Callable[[np.ndarray], float]
    zero: float
    one: float
    #: the ufunc used for scatter-accumulation (``<ufunc>.at``)
    add_at: Callable[[np.ndarray, np.ndarray, np.ndarray], None]

    def is_zero(self, x: np.ndarray) -> np.ndarray:
        if np.isnan(self.zero):
            return np.isnan(x)
        return x == self.zero

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


PLUS_TIMES = Semiring(
    name="plus-times",
    add=np.add, mul=np.multiply,
    add_reduce=lambda a: float(np.add.reduce(a)) if len(a) else 0.0,
    zero=0.0, one=1.0,
    add_at=np.add.at,
)

MIN_PLUS = Semiring(
    name="min-plus",
    add=np.minimum, mul=np.add,
    add_reduce=lambda a: float(np.minimum.reduce(a)) if len(a) else np.inf,
    zero=np.inf, one=0.0,
    add_at=np.minimum.at,
)

OR_AND = Semiring(
    name="or-and",
    add=np.logical_or, mul=np.logical_and,
    add_reduce=lambda a: bool(np.logical_or.reduce(a)) if len(a) else False,
    zero=0.0, one=1.0,
    add_at=np.logical_or.at,
)
