"""Batched algebraic Betweenness Centrality (the paper's reference [54]).

Solomonik, Besta, Vella & Hoefler scale BC with communication-efficient
sparse-matrix--dense-matrix products; this module implements the
single-node algebraic core: Brandes over a *batch* of b sources at
once, where every step is one SpMM against the adjacency matrix:

* forward: the boolean frontier matrix F (n x b) expands as
  ``A^T ⊗ F`` over plus-times, accumulating path counts Σ (n x b);
* backward: dependency matrices Δ (n x b) accumulate level by level
  with the same product structure.

Batching is exactly the "additional parallelism" of Section 4.5 (many
sources processed independently); in the algebraic framing it becomes
dense right-hand sides, which is where the SpMM formulation earns its
keep.  The CSR layout realizes the *pull* direction (each output row
is reduced independently), per Section 7.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.csr import CSRGraph


@dataclass
class BCLAResult:
    bc: np.ndarray
    sources: np.ndarray
    spmm_count: int          #: number of SpMM invocations
    flops: int               #: scalar multiply-adds across all SpMMs


def _adjacency(g: CSRGraph) -> sp.csr_matrix:
    indptr = g.offsets.astype(np.int64)
    return sp.csr_matrix(
        (np.ones(len(g.adj)), g.adj.astype(np.int64), indptr),
        shape=(g.n, g.n))


def bc_la(g: CSRGraph, sources=None, batch: int = 32,
          seed: int = 0) -> BCLAResult:
    """Unweighted Brandes BC with SpMM-batched sources.

    ``sources``: None = all vertices; int = sampled count; iterable =
    explicit list.  ``batch`` bounds the dense right-hand-side width.
    """
    n = g.n
    if sources is None:
        src_list = np.arange(n)
    elif np.isscalar(sources):
        rng = np.random.default_rng(seed)
        src_list = rng.choice(n, size=min(int(sources), n), replace=False)
    else:
        src_list = np.asarray(list(sources), dtype=np.int64)

    A = _adjacency(g)          # symmetric for undirected graphs
    At = A.T.tocsr()
    bc = np.zeros(n)
    spmm_count = 0
    flops = 0

    for lo in range(0, len(src_list), batch):
        batch_src = src_list[lo:lo + batch]
        b = len(batch_src)

        # ---- forward: levels + path counts, one SpMM per level ----------
        sigma = np.zeros((n, b))
        sigma[batch_src, np.arange(b)] = 1.0
        level = np.full((n, b), -1, dtype=np.int64)
        level[batch_src, np.arange(b)] = 0
        frontier = np.zeros((n, b))
        frontier[batch_src, np.arange(b)] = 1.0
        frontiers = [frontier.astype(bool)]
        depth = 0
        while frontier.any():
            contrib = At @ (sigma * frontier)        # paths reaching nbrs
            spmm_count += 1
            flops += int(A.nnz) * b
            fresh = (contrib > 0) & (level < 0)
            depth += 1
            level[fresh] = depth
            this_level = level == depth
            sigma[this_level] += contrib[this_level]
            frontier = this_level.astype(np.float64)
            frontiers.append(this_level)

        # ---- backward: dependency accumulation, one SpMM per level -----------
        delta = np.zeros((n, b))
        for d in range(depth - 1, 0, -1):
            mask_child = frontiers[d + 1] if d + 1 < len(frontiers) else \
                np.zeros((n, b), dtype=bool)
            child_term = np.where(mask_child, (1.0 + delta) /
                                  np.where(sigma > 0, sigma, 1.0), 0.0)
            pulled = At @ child_term
            spmm_count += 1
            flops += int(A.nnz) * b
            mine = frontiers[d]
            delta[mine] += (sigma * pulled)[mine]
        # level-0 contribution is never added to bc (s excluded below)

        contrib_mask = level > 0
        bc += np.where(contrib_mask, delta, 0.0).sum(axis=1)

    if not g.directed:
        bc /= 2.0
    return BCLAResult(bc=bc, sources=src_list, spmm_count=spmm_count,
                      flops=flops)
