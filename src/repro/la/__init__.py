"""Linear-algebra formulation of graph algorithms (Section 7.1).

The dichotomy between push and pull variants "is mirrored by the
dichotomy between the Compressed Sparse Column (CSC) and Compressed
Sparse Row (CSR) representations of A":

* CSR SpMV computes each output element independently from a row --
  **pulling** updates (no write conflicts, can't exploit input-vector
  sparsity);
* CSC SpMV scatters each input element down a column -- **pushing**
  updates (write combining needed, but SpMSpV skips zero columns
  entirely).

The layer implements semirings, both matrix layouts, SpMV/SpMSpV with
operation counting, and PR/BFS/Bellman-Ford instantiations.
"""

from repro.la.semiring import Semiring, PLUS_TIMES, MIN_PLUS, OR_AND
from repro.la.matrix import CSRMatrix, CSCMatrix, adjacency_matrices
from repro.la.spmv import spmv_csr, spmv_csc, spmspv_csr, spmspv_csc, OpCount
from repro.la.algorithms import pagerank_la, bfs_la, bellman_ford_la
from repro.la.bc_la import bc_la, BCLAResult

__all__ = [
    "Semiring", "PLUS_TIMES", "MIN_PLUS", "OR_AND",
    "CSRMatrix", "CSCMatrix", "adjacency_matrices",
    "spmv_csr", "spmv_csc", "spmspv_csr", "spmspv_csc", "OpCount",
    "pagerank_la", "bfs_la", "bellman_ford_la",
    "bc_la", "BCLAResult",
]
