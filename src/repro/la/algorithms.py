"""Graph algorithms in algebraic (matrix-vector) form (Section 7.1).

Each algorithm is one SpMV/SpMSpV loop over the right semiring:

* PageRank: dense plus-times SpMV per power iteration (the vector is
  always dense, so CSR/pull "works extremely well");
* BFS: or-and SpMSpV of the frontier indicator -- the vector sparsity
  tracks the frontier, making the CSC/push layout the natural choice
  for small frontiers;
* Bellman-Ford SSSP: min-plus SpMV iterated to fixpoint.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.la.matrix import adjacency_matrices
from repro.la.semiring import MIN_PLUS, OR_AND, PLUS_TIMES
from repro.la.spmv import (
    OpCount, spmspv_csc, spmspv_csr, spmv_csc, spmv_csr,
)


def _merge(total: OpCount, part: OpCount) -> None:
    total.multiplies += part.multiplies
    total.rows_touched += part.rows_touched
    total.combines += part.combines


def pagerank_la(g: CSRGraph, iterations: int = 20, damping: float = 0.85,
                layout: str = "csr") -> tuple[np.ndarray, OpCount]:
    """Algebraic PageRank: r <- (1-f)/n + f * (A D^-1) r."""
    deg = np.diff(g.offsets).astype(np.float64)
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    # scale each stored entry A(i, j) by 1/d(j): the column degree
    csr, csc = adjacency_matrices(g)
    csr_vals = csr.values * inv_deg[csr.indices]       # columns along rows
    src = np.repeat(np.arange(g.n), np.diff(csc.ptr))
    csc_vals = csc.values * inv_deg[src]               # per-column scale
    rank = np.full(g.n, 1.0 / max(g.n, 1))
    base = (1.0 - damping) / max(g.n, 1)
    total = OpCount()
    for _ in range(iterations):
        if layout == "csr":
            y, ops = spmv_csr(type(csr)(csr.n, csr.ptr, csr.indices, csr_vals),
                              rank, PLUS_TIMES)
        elif layout == "csc":
            y, ops = spmv_csc(type(csc)(csc.n, csc.ptr, csc.indices, csc_vals),
                              rank, PLUS_TIMES)
        else:
            raise ValueError("layout must be 'csr' or 'csc'")
        _merge(total, ops)
        rank = base + damping * y
    return rank, total


def bfs_la(g: CSRGraph, root: int, layout: str = "csc"
           ) -> tuple[np.ndarray, OpCount]:
    """Algebraic BFS: levels via or-and SpMSpV of the frontier vector."""
    csr, csc = adjacency_matrices(g)
    level = np.full(g.n, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    total = OpCount()
    depth = 0
    while len(frontier):
        ones = np.ones(len(frontier))
        if layout == "csc":
            idx, _, ops = spmspv_csc(csc, frontier, ones, OR_AND)
        elif layout == "csr":
            idx, val, ops = spmspv_csr(csr, frontier, ones, OR_AND)
            idx = idx[np.asarray(val, dtype=bool)]
        else:
            raise ValueError("layout must be 'csr' or 'csc'")
        _merge(total, ops)
        depth += 1
        fresh = idx[level[idx] < 0]
        level[fresh] = depth
        frontier = fresh
    return level, total


def bellman_ford_la(g: CSRGraph, source: int, layout: str = "csr",
                    max_iterations: int | None = None
                    ) -> tuple[np.ndarray, OpCount]:
    """Algebraic SSSP: iterate d <- min(d, A ⊗ d) over min-plus."""
    csr, csc = adjacency_matrices(g)
    dist = np.full(g.n, np.inf)
    dist[source] = 0.0
    total = OpCount()
    limit = max_iterations if max_iterations is not None else g.n
    for _ in range(limit):
        if layout == "csr":
            y, ops = spmv_csr(csr, dist, MIN_PLUS)
        elif layout == "csc":
            y, ops = spmv_csc(csc, dist, MIN_PLUS)
        else:
            raise ValueError("layout must be 'csr' or 'csc'")
        _merge(total, ops)
        new = np.minimum(dist, y)
        if np.array_equal(new, dist):   # inf == inf holds elementwise
            break
        dist = new
    return dist, total
