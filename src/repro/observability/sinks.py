"""Pluggable trace sinks: where the :class:`Tracer` puts its events.

Before this module, the tracer buffered every :class:`TraceEvent` in an
unbounded Python list and every exporter walked that list post-hoc --
fine for the n=96 baseline cells, a hard memory wall for the batched
engine's large-family runs.  A *sink* receives events **incrementally**
as the runtimes emit them; the tracer dispatches each event to every
attached sink, and each sink decides what to retain:

* :class:`BufferSink` -- today's behavior, the default: retain every
  event in order.  All post-hoc exporters keep working byte-identically
  (``tracer.events`` is this sink's list).
* :class:`JsonlStreamSink` -- constant-memory archival export: the
  ``repro-trace/1`` header line at attach, one compact JSON line per
  event as it happens.  The finished file is byte-identical to the
  post-hoc :func:`repro.observability.export.to_jsonl_lines` output.
* :class:`RollupSink` -- online, bounded-memory computation of the
  **full** ``repro-metrics/3`` rollup: per-step/per-phase aggregates,
  the per-rank-pair traffic matrix, the critical-path decomposition,
  reconciled run totals.  State is O(steps + phases + rank pairs), not
  O(events) -- DM communication verbs fold into the matrix and are
  dropped.  :meth:`RollupSink.rollup` is proven equal (same serialized
  bytes) to the post-hoc :func:`~repro.observability.export.
  metrics_rollup` on every committed bench cell -- the bench generator
  asserts it per cell, so the CI staleness gate re-proves it on every
  run.
* :class:`SamplingSink` -- deterministic seeded head + reservoir
  retention of *span* events (regions, supersteps, barriers, stalls)
  for Chrome/flame export at scales where retaining everything is
  impossible; exact counters are preserved through an embedded
  :class:`RollupSink` even when spans are dropped.

Every sink tracks an approximate retained-state size
(:attr:`TraceSink.nbytes`, peak in :attr:`TraceSink.peak_nbytes`) via
the :meth:`TraceEvent.approx_nbytes` estimator, and the tracer
aggregates the per-sink peaks into ``tracer.peak_sink_bytes`` -- the
number ``repro trace`` prints in its summary line so silent buffer
growth is visible.

``Tracer.on_reset()`` (called by ``rt.reset()``) resets every sink:
the buffer clears, the stream sink truncates and rewrites its header,
rollup accumulators zero, and the sampler reseeds -- a reused runtime
produces a fresh, reconcilable trace per run through any sink.
"""

from __future__ import annotations

import math
import random

from repro.machine.counters import PerfCounters
from repro.observability.events import TraceEvent, approx_value_nbytes

#: event kinds the sampling sink retains (the span timeline the
#: Chrome/flame exporters render; instants fold into the rollup)
SPAN_KINDS = frozenset({"region", "superstep", "barrier", "stall"})


def format_bytes(n: int | float) -> str:
    """Human-readable byte count for the CLI summary line."""
    n = float(n)
    for unit in ("B", "KiB", "MiB"):
        if n < 1024.0:
            return f"{n:,.0f} {unit}" if unit == "B" else f"{n:,.1f} {unit}"
        n /= 1024.0
    return f"{n:,.1f} GiB"


class TraceSink:
    """Base class for all sinks (the ``TraceSink`` protocol).

    Subclasses implement :meth:`on_event`; the tracer calls
    :meth:`bind` at attach, :meth:`on_reset` from ``rt.reset()``, and
    :meth:`close` when exports are finalized.  ``nbytes`` is the
    current approximate retained-state size; ``peak_nbytes`` its
    high-water mark (sinks call :meth:`_mark` after growing).
    """

    #: short name shown in the ``repro trace`` summary line
    name = "sink"

    def __init__(self) -> None:
        self.tracer = None
        self._nbytes = 0
        self.peak_nbytes = 0

    def bind(self, tracer) -> None:
        """Called once when the owning tracer attaches this sink."""
        self.tracer = tracer

    def on_event(self, ev: TraceEvent) -> None:
        raise NotImplementedError

    def on_reset(self) -> None:
        """Re-arm for a fresh run (``rt.reset()``); keep ``peak_nbytes``."""

    def close(self) -> None:
        """Flush/close any external resources (idempotent)."""

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def _mark(self) -> None:
        if self.nbytes > self.peak_nbytes:
            self.peak_nbytes = self.nbytes


class BufferSink(TraceSink):
    """Retain every event in emission order (the pre-sink behavior).

    The default sink: ``tracer.events`` resolves to :attr:`events`, so
    every post-hoc exporter -- Chrome, JSONL, metrics, flame -- works
    unchanged and byte-identically.
    """

    name = "buffer"

    def __init__(self) -> None:
        super().__init__()
        self.events: list[TraceEvent] = []

    def on_event(self, ev: TraceEvent) -> None:
        self.events.append(ev)
        self._nbytes += ev.approx_nbytes()
        self._mark()

    def on_reset(self) -> None:
        self.events = []
        self._nbytes = 0


class JsonlStreamSink(TraceSink):
    """Stream the ``repro-trace/1`` JSONL export as events happen.

    Writes the header line at bind and one compact JSON line per event;
    retained state is O(1) (a file handle).  After :meth:`close`, the
    file at :attr:`path` is byte-identical to what
    :func:`~repro.observability.export.to_jsonl_lines` would have
    produced from a full buffer.  ``on_reset`` truncates and rewrites
    the header, mirroring the buffer's clear.
    """

    name = "jsonl-stream"

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._fh = None
        self.lines = 0

    def bind(self, tracer) -> None:
        super().bind(tracer)
        self._open()

    def _open(self) -> None:
        from repro.observability.export import _dumps
        self._fh = open(self.path, "w")
        self._fh.write(_dumps(self.tracer.meta()) + "\n")
        self.lines = 1

    def on_event(self, ev: TraceEvent) -> None:
        from repro.observability.export import _dumps
        if self._fh is None:  # closed early (exported); drop silently is
            # wrong -- reopen in append would desync; fail loudly instead
            raise RuntimeError(
                f"JsonlStreamSink({self.path!r}) received an event after "
                f"close(); call tracer.on_reset() to re-arm it")
        self._fh.write(_dumps(ev.to_dict()) + "\n")
        self.lines += 1

    def on_reset(self) -> None:
        self.close()
        self._open()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class RollupSink(TraceSink):
    """Online, bounded-memory ``repro-metrics/3`` rollup.

    Maintains exactly the accumulators the post-hoc
    :func:`~repro.observability.export.metrics_rollup` derives by
    walking the event list -- in the same per-event order, so every
    float lands identically and :meth:`rollup` serializes to the same
    bytes.  Communication verbs (``send``/``rma``) fold straight into
    the per-rank-pair matrix and are not retained; the dominant cost of
    a large DM trace therefore never materializes.

    Also backs the tracer's reconciliation surface when no buffer is
    attached: :meth:`traced_totals`, :attr:`decomposed_mtu`, and
    :meth:`critical` replace the post-hoc walks.
    """

    name = "rollup"

    def __init__(self) -> None:
        super().__init__()
        self._steps: list[dict] = []
        self._phase_order: list[str] = []
        self._phases: dict[str, dict] = {}
        self._frontier: list[dict] = []
        self._switches: list[dict] = []
        self._pairs: dict[tuple[int, int], dict] = {}
        self._totals = PerfCounters()
        self._decomposed = 0.0
        self._compute = self._comm = self._injected = 0.0
        self._sync = self._recovery = 0.0
        self._lane_busy: list[float] = []
        self._lane_idle: list[float] = []
        self._lane_critical: list[float] = []
        self._intervals: list[dict] = []

    def bind(self, tracer) -> None:
        super().bind(tracer)
        P = tracer.rt.P
        self._lane_busy = [0.0] * P
        self._lane_idle = [0.0] * P
        self._lane_critical = [0.0] * P
        self._nbytes = 24 * P

    def on_reset(self) -> None:
        tracer, peak = self.tracer, self.peak_nbytes
        self.__init__()
        self.bind(tracer)
        self.peak_nbytes = peak

    # -- incremental accumulation ------------------------------------------------
    def on_event(self, ev: TraceEvent) -> None:
        kind = ev.kind
        if kind in ("region", "superstep"):
            self._decomposed += ev.dur
            self._on_step(ev)
        elif kind == "barrier":
            self._decomposed += ev.dur
            self._sync += ev.dur
            self._totals.barriers += ev.data["barriers"]
        elif kind == "stall":
            self._decomposed += ev.dur
            self._recovery += ev.dur
        elif kind == "frontier":
            row = dict(ev.data)
            self._frontier.append(row)
            self._grow(row)
        elif kind == "switch":
            row = {"ts": ev.ts, **ev.data}
            self._switches.append(row)
            self._grow(row)
        elif kind == "send" and ev.lane is not None:
            e = self._pair(ev.lane, int(ev.data["dest"]))
            e["messages"] += 1
            e["msg_bytes"] += int(ev.data["nbytes"])
        elif kind == "rma" and ev.lane is not None:
            owner = int(ev.data["owner"])
            if owner != ev.lane:  # local window access: no network traffic
                e = self._pair(ev.lane, owner)
                ops = int(ev.data.get("ops", ev.data["items"]))
                if ev.label == "get":
                    e["gets"] += ops
                elif ev.label == "put":
                    e["puts"] += ops
                else:
                    field = ("acc_float" if ev.data.get("dtype") == "float"
                             else "acc_int")
                    e[field] += ops
                e["rma_bytes"] += int(ev.data.get("nbytes",
                                                  8 * int(ev.data["items"])))

    def _on_step(self, ev: TraceEvent) -> None:
        from repro.observability.export import COMM_COUNTERS
        deltas = ev.data["deltas"]
        counters: dict[str, float] = {}
        for d in deltas:
            for k, v in d.items():
                counters[k] = counters.get(k, 0) + v
        step = {"index": ev.data["index"], "kind": ev.kind,
                "label": ev.label, "ts": ev.ts, "time": ev.dur,
                "counters": counters}
        self._steps.append(step)
        self._grow(step)
        agg = self._phases.get(ev.label)
        if agg is None:
            self._phase_order.append(ev.label)
            agg = self._phases[ev.label] = {"label": ev.label, "events": 0,
                                            "time": 0.0, "counters": {}}
            self._nbytes += 256
        agg["events"] += 1
        agg["time"] += ev.dur
        for k, v in counters.items():
            agg["counters"][k] = agg["counters"].get(k, 0) + v
        acc = self._totals
        for d in deltas:
            for k, v in d.items():
                setattr(acc, k, getattr(acc, k) + v)
        # critical-path attribution of this barrier-delimited interval
        spans = ev.data["spans"]
        dur = ev.dur
        bl = (max(range(len(spans)), key=lambda t: spans[t]) if spans else 0)
        delta = deltas[bl] if bl < len(deltas) else {}
        parts = self.tracer.rt.machine.time_parts(PerfCounters(**delta))
        cm = min(sum(parts.get(k, 0.0) for k in COMM_COUNTERS), dur)
        stalls = ev.data.get("stalls")
        inj = (min(stalls[bl], dur - cm)
               if stalls and bl < len(stalls) else 0.0)
        cp = dur - cm - inj
        self._compute += cp
        self._comm += cm
        self._injected += inj
        P = len(self._lane_busy)
        for t in range(P):
            s = min(spans[t], dur) if t < len(spans) else 0.0
            self._lane_busy[t] += s
            self._lane_idle[t] += dur - s
        if bl < P:
            self._lane_critical[bl] += dur
        interval = {"index": ev.data["index"], "kind": ev.kind,
                    "label": ev.label, "lane": bl, "time": dur,
                    "compute": cp, "comm": cm, "injected": inj}
        self._intervals.append(interval)
        self._grow(interval)

    def _pair(self, src: int, dst: int) -> dict:
        from repro.observability.export import TRAFFIC_FIELDS
        key = (src, dst)
        e = self._pairs.get(key)
        if e is None:
            e = self._pairs[key] = dict.fromkeys(TRAFFIC_FIELDS, 0)
            self._nbytes += 512
            self._mark()
        return e

    def _grow(self, row: dict) -> None:
        self._nbytes += 64 + approx_value_nbytes(row)
        self._mark()

    # -- snapshot views (each equals its post-hoc counterpart) --------------------
    @property
    def decomposed_mtu(self) -> float:
        """Σ dur over region/superstep/stall/barrier events, in order --
        the left side of :meth:`Tracer.reconcile_time`."""
        return self._decomposed

    def traced_totals(self) -> PerfCounters:
        """Sum of every recorded counter delta plus barrier episodes."""
        return self._totals.copy()

    def traffic(self) -> dict:
        """The per-rank-pair matrix (== :func:`export.traffic_matrix`)."""
        from repro.observability.export import _TRAFFIC_TOTALS
        rows = [{"src": s, "dst": d, **self._pairs[(s, d)]}
                for s, d in sorted(self._pairs)]
        totals = {counter: sum(r[field] for r in rows)
                  for field, counter in _TRAFFIC_TOTALS.items()}
        return {"ranks": self.tracer.rt.P, "pairs": rows, "totals": totals}

    def critical(self) -> dict:
        """The decomposition (== :func:`export.critical_path`)."""
        decomposed = self._decomposed
        actual = self.tracer.rt.time - self.tracer.start_time
        totals = {
            "compute": self._compute,
            "comm": self._comm,
            "injected_stall": self._injected,
            "sync": self._sync,
            "recovery_stall": self._recovery,
            "off_path_idle": sum(self._lane_idle),
            "decomposed_mtu": decomposed,
            "time_mtu": actual,
            "reconciled": math.isclose(decomposed, actual,
                                       rel_tol=1e-9, abs_tol=1e-6),
        }
        lanes = [{"lane": t, "critical": self._lane_critical[t],
                  "busy": self._lane_busy[t], "idle": self._lane_idle[t]}
                 for t in range(len(self._lane_busy))]
        return {"totals": totals, "lanes": lanes,
                "intervals": list(self._intervals)}

    def rollup(self) -> dict:
        """The full ``repro-metrics/3`` document, incrementally built.

        Serializes to the same bytes as
        :func:`~repro.observability.export.metrics_rollup` over a full
        buffer of the same run (asserted per committed bench cell).
        """
        from repro.observability.export import (
            COMM_COUNTERS, METRICS_SCHEMA, _cache_view,
        )
        tracer = self.tracer
        names = sorted({k for s in self._steps for k in s["counters"]})
        series = {k: [s["counters"].get(k, 0) for s in self._steps]
                  for k in names}
        totals = self._totals.to_dict()
        phase_rows = [self._phases[label] for label in self._phase_order]
        roll = {
            "schema": METRICS_SCHEMA,
            "meta": tracer.meta(),
            "time_mtu": tracer.rt.time - tracer.start_time,
            "steps": list(self._steps),
            "series": series,
            "phases": phase_rows,
            "cache": _cache_view(phase_rows),
            "cut": tracer.cut,
            "comm": {k: totals[k] for k in COMM_COUNTERS if totals[k]},
            "traffic": self.traffic(),
            "critical_path": self.critical(),
            "frontier": list(self._frontier),
            "switches": list(self._switches),
            "totals": {k: v for k, v in totals.items() if v},
        }
        wallclock = getattr(tracer, "wallclock", None)
        if wallclock is not None:
            roll["wallclock"] = wallclock.block()
        return roll


class SamplingSink(TraceSink):
    """Deterministic head + reservoir retention of span events.

    Keeps the first ``head`` spans verbatim (the run's warm-up shape)
    and a seeded uniform reservoir over the rest, bounding retained
    spans at ``max_events`` however long the run.  Exact counters,
    traffic, and the critical path survive through the embedded
    :class:`RollupSink` (:attr:`rollup`) even when spans are dropped.
    :meth:`view` exposes the retained sample as a tracer-shaped object
    for :func:`~repro.observability.export.chrome_trace` and
    :func:`~repro.observability.flame.folded_stacks`; its ``meta()``
    carries a ``sampled`` block naming the retention so a sampled
    export is never mistaken for a full one.  Two runs of the same
    seeded configuration retain identical samples.
    """

    name = "sampling"

    def __init__(self, max_events: int = 4096, head: int | None = None,
                 seed: int = 0) -> None:
        super().__init__()
        self.max_events = max(2, int(max_events))
        self.head_target = (self.max_events // 4 if head is None
                            else max(1, min(int(head), self.max_events - 1)))
        self.seed = seed
        self._rng = random.Random(seed)
        self.rollup = RollupSink()
        self._head: list[TraceEvent] = []
        self._reservoir: list[TraceEvent] = []
        self._tail_seen = 0
        self.spans_seen = 0
        self._sample_bytes = 0

    def bind(self, tracer) -> None:
        super().bind(tracer)
        self.rollup.bind(tracer)

    def on_reset(self) -> None:
        self.rollup.on_reset()
        self._rng = random.Random(self.seed)
        self._head = []
        self._reservoir = []
        self._tail_seen = 0
        self.spans_seen = 0
        self._sample_bytes = 0

    @property
    def nbytes(self) -> int:
        return self.rollup.nbytes + self._sample_bytes

    def on_event(self, ev: TraceEvent) -> None:
        self.rollup.on_event(ev)
        if ev.kind not in SPAN_KINDS:
            self._mark()
            return
        self.spans_seen += 1
        if len(self._head) < self.head_target:
            self._head.append(ev)
            self._sample_bytes += ev.approx_nbytes()
        else:
            cap = self.max_events - self.head_target
            self._tail_seen += 1
            if len(self._reservoir) < cap:
                self._reservoir.append(ev)
                self._sample_bytes += ev.approx_nbytes()
            else:
                j = self._rng.randrange(self._tail_seen)
                if j < cap:
                    dropped = self._reservoir[j]
                    self._reservoir[j] = ev
                    self._sample_bytes += (ev.approx_nbytes()
                                           - dropped.approx_nbytes())
        self._mark()

    def retained(self) -> list[TraceEvent]:
        """The sampled span events in emission order."""
        return self._head + sorted(self._reservoir, key=lambda e: e.seq)

    def view(self) -> "TraceView":
        """A tracer-shaped view over the sample for the span exporters."""
        events = self.retained()
        meta = dict(self.tracer.meta())
        meta["sampled"] = {"retained": len(events),
                           "spans_seen": self.spans_seen,
                           "head": len(self._head), "seed": self.seed}
        return TraceView(self.tracer, events, meta)


class TraceView:
    """Duck-typed tracer over a retained event subset.

    Carries exactly the surface :func:`~repro.observability.export.
    chrome_trace` and :func:`~repro.observability.flame.folded_stacks`
    read (``rt``, ``is_dm``, ``cut``, ``events``, ``meta()``), so the
    span exporters render a sample without knowing it is one -- except
    through ``meta()["sampled"]``.
    """

    def __init__(self, tracer, events: list[TraceEvent],
                 meta: dict | None = None) -> None:
        self.rt = tracer.rt
        self.is_dm = tracer.is_dm
        self.cut = tracer.cut
        self.events = events
        self._meta = dict(meta if meta is not None else tracer.meta())

    def meta(self) -> dict:
        return self._meta


__all__ = ["SPAN_KINDS", "BufferSink", "JsonlStreamSink", "RollupSink",
           "SamplingSink", "TraceSink", "TraceView", "format_bytes"]
