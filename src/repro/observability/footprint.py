"""Dynamic write-footprint recording for static/dynamic reconciliation.

The effect-inference pass (:mod:`repro.analysis.effects`) claims, per
kernel, the set of registered arrays the kernel may write.  This module
checks that claim against reality, in the spirit of
``Tracer.reconcile``: a :class:`FootprintRecorder` wraps the runtime's
declared store verbs (``mem.write`` / ``cas`` / ``faa`` / ``lock``,
plus the DM data-carrying RMA verbs ``rt.put`` / ``rt.accumulate``) and
collects every array name actually written during a traced run.  The
static write set must be a **superset** of the dynamic one -- static
analysis may over-approximate (an IfExp handle resolves to both arms)
but may never miss a write.

Installed through ``run_traced(..., attach=recorder.install)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _handle_name(handle) -> str:
    return str(getattr(handle, "name", handle))


class FootprintRecorder:
    """Collects the names of arrays written through declared verbs."""

    def __init__(self) -> None:
        self.written: set[str] = set()
        self.windows: set[str] = set()

    def install(self, rt) -> None:
        """Wrap the runtime's store verbs in place (instance attributes
        shadow the bound methods; the originals are closed over)."""
        mem = rt.mem
        recorder = self

        for verb in ("write", "cas", "faa", "lock"):
            orig = getattr(mem, verb)

            def wrapped(handle, *args, _orig=orig, **kwargs):
                recorder.written.add(_handle_name(handle))
                for pair in (kwargs.get("covers") or ()):
                    try:
                        recorder.written.add(_handle_name(pair[0]))
                    except (TypeError, IndexError):
                        pass
                return _orig(handle, *args, **kwargs)

            setattr(mem, verb, wrapped)

        # the batched engine's fast paths (CountingMemory /
        # CacheSimMemory) never call the per-element verbs above;
        # StreamMemory.replay announces every op batch through this
        # hook before consuming it, so the footprint stays complete
        def on_stream_replay(ops):
            for op in ops:
                if op.verb in ("write", "cas", "faa", "lock"):
                    recorder.written.add(_handle_name(op.handle))
                    for pair in (op.covers or ()):
                        try:
                            recorder.written.add(_handle_name(pair[0]))
                        except (TypeError, IndexError):
                            pass

        mem.on_stream_replay = on_stream_replay

        for verb in ("put", "accumulate"):
            orig = getattr(rt, verb, None)
            if orig is None:
                continue

            def wrapped_rma(owner, vals, *args, _orig=orig, **kwargs):
                win = kwargs.get("window")
                if win is not None:
                    recorder.windows.add(_handle_name(win))
                return _orig(owner, vals, *args, **kwargs)

            setattr(rt, verb, wrapped_rma)


@dataclass
class ReconcileCell:
    """One (algorithm, variant, runtime) cell of the reconciliation."""

    algorithm: str
    variant: str
    dm: bool
    kernel: str
    traced: list[str] = field(default_factory=list)
    static: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)   # traced but not claimed

    @property
    def ok(self) -> bool:
        return not self.missing

    def to_json(self) -> dict:
        return {"algorithm": self.algorithm, "variant": self.variant,
                "runtime": "dm" if self.dm else "sm", "kernel": self.kernel,
                "traced": self.traced, "missing": self.missing,
                "ok": self.ok}


#: traced cell -> effect-matrix kernel name
_CELL_KERNELS = {
    ("pagerank", False): "pagerank",
    ("bfs", False): "bfs",
    ("sssp", False): "sssp_delta",
    ("cc", False): "connected_components",
    ("pagerank", True): "dm_pagerank",
    ("bfs", True): "dm_bfs",
    ("sssp", True): "dm_sssp_delta",
}


def reconcile_effects(report=None, n: int = 96, P: int = 4,
                      iterations: int = 3, progress=None,
                      engine: str = "interpreted") -> list[ReconcileCell]:
    """Run the 14-cell trace matrix with a footprint recorder and check
    each kernel's static write set covers what was dynamically written.

    Runs with ``cache_scale=0``: the recorder's verb wrappers are plain
    instance attributes, and flat counting memory keeps the run cheap.
    ``engine="batched"`` reconciles the stream kernels instead: each
    batched kernel must stay inside the write set its interpreted twin
    declares (the stream replays are observed through the recorder's
    ``on_stream_replay`` hook).
    """
    import fnmatch

    from repro.analysis.effects import analyze_effects
    from repro.observability.driver import run_traced

    if report is None:
        report = analyze_effects()
    cells: list[ReconcileCell] = []
    for (algorithm, dm), kernel in _CELL_KERNELS.items():
        for variant in ("push", "pull"):
            if progress is not None:
                progress(algorithm, variant, dm)
            rec = FootprintRecorder()
            run_traced(algorithm, variant=variant, dm=dm, n=n, P=P,
                       iterations=iterations, cache_scale=0,
                       attach=rec.install, engine=engine)
            keff = report.kernels[kernel]
            claimed = set(keff.write_set) | set(keff.windows)
            traced = rec.written | rec.windows
            missing = sorted(
                name for name in traced
                if not any(fnmatch.fnmatchcase(name, pat)
                           for pat in claimed))
            cells.append(ReconcileCell(
                algorithm=algorithm, variant=variant, dm=dm, kernel=kernel,
                traced=sorted(traced), static=sorted(claimed),
                missing=missing))
    return cells
