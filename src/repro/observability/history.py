"""The append-only bench-history timeline (``repro bench history``).

``repro bench diff`` answers "did the tree drift from the committed
baseline" -- a two-point comparison.  This module gives the baselines a
*trajectory*: every recorded ``repro-bench/*`` document becomes one
compact snapshot line in an append-only JSONL timeline
(``BENCH_history.jsonl``, schema ``repro-bench-history/1``), and the
CLI renders per-cell trend tables across snapshots with regression
flagging.  The committed timeline is seeded from the committed
``BENCH_perf.json`` (deterministic: no timestamp unless ``--stamp``),
and CI appends a stamped snapshot per run so the artifact carries the
measured trajectory even though the committed file stays fixed.

A snapshot keeps only the cell-level trend surface -- ``time_mtu``,
the run counters, and the critical-path decomposition per cell, keyed
exactly like ``bench diff`` keys cells
(:func:`repro.observability.regress._cell_key`) -- so a timeline of
hundreds of snapshots stays small and every line is diffable against
any other.

* :func:`snapshot_from_doc` -- one ``repro-bench/*`` document -> one
  snapshot dict.
* :func:`load_history` / :func:`append_snapshot` -- the JSONL file.
* :func:`trend_rows` / :func:`regressions` -- the per-cell trajectory
  and the cells whose latest ``time_mtu`` grew past the threshold.
* :func:`render_trend` -- plain or markdown trend table.
* :func:`history_main` -- the CLI entry point.
"""

from __future__ import annotations

import json
import os

from repro.observability.export import _dumps
from repro.observability.regress import (
    BenchDiffError, _cell_key, load_baseline,
)

#: versioned schema tag of one timeline line
HISTORY_SCHEMA = "repro-bench-history/1"


def _numeric(d: dict | None) -> dict:
    """Numeric leaves only (the diffable trend surface)."""
    if not isinstance(d, dict):
        return {}
    return {k: v for k, v in d.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def snapshot_from_doc(doc: dict, label: str, source: str,
                      recorded: str | None = None) -> dict:
    """Compress one ``repro-bench/*`` document into a timeline snapshot.

    ``recorded`` is an ISO-8601 UTC stamp or ``None`` -- the committed
    timeline keeps it ``None`` so regeneration is byte-deterministic;
    CI passes a real stamp (``--stamp``).
    """
    cells = []
    for cell in doc["cells"]:
        cells.append({
            "key": _cell_key(cell),
            "time_mtu": cell["time_mtu"],
            "counters": _numeric(cell.get("counters")),
            "critical": _numeric(cell.get("critical")),
        })
    cells.sort(key=lambda c: c["key"])
    return {
        "schema": HISTORY_SCHEMA,
        "label": label,
        "source": source,
        "bench_schema": doc.get("schema"),
        "kind": doc.get("kind", "trace"),
        "recorded": recorded,
        "cells": cells,
    }


def load_history(path: str) -> list[dict]:
    """Parse the timeline file into snapshot dicts (oldest first)."""
    snapshots = []
    with open(path) as fh:
        for i, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                snap = json.loads(line)
            except json.JSONDecodeError as exc:
                raise BenchDiffError(
                    f"history {path!r} line {i}: not valid JSON: "
                    f"{exc}") from exc
            if snap.get("schema") != HISTORY_SCHEMA:
                raise BenchDiffError(
                    f"history {path!r} line {i}: schema "
                    f"{snap.get('schema')!r} is not {HISTORY_SCHEMA!r}")
            snapshots.append(snap)
    return snapshots


def append_snapshot(path: str, snapshot: dict) -> None:
    """Append one snapshot line (creates the file on first use)."""
    with open(path, "a") as fh:
        fh.write(_dumps(snapshot) + "\n")


def trend_rows(snapshots: list[dict], last: int = 8) -> list[dict]:
    """Per-cell ``time_mtu`` trajectory over the last ``last`` snapshots.

    Each row: ``{"key", "values" (one per shown snapshot, None where
    the cell is absent), "pct_prev" (last vs previous, None when either
    is missing/zero), "pct_first" (last vs first shown)}``.
    """
    shown = snapshots[-last:] if last else snapshots
    keys = sorted({c["key"] for s in shown for c in s["cells"]})
    by_snap = [{c["key"]: c["time_mtu"] for c in s["cells"]} for s in shown]
    rows = []
    for key in keys:
        values = [m.get(key) for m in by_snap]
        present = [v for v in values if v is not None]
        pct_prev = pct_first = None
        if values and values[-1] is not None:
            prior = [v for v in values[:-1] if v is not None]
            if prior and prior[-1]:
                pct_prev = 100.0 * (values[-1] - prior[-1]) / prior[-1]
            if len(present) > 1 and present[0]:
                pct_first = 100.0 * (values[-1] - present[0]) / present[0]
        rows.append({"key": key, "values": values,
                     "pct_prev": pct_prev, "pct_first": pct_first})
    return rows


def regressions(snapshots: list[dict], threshold_pct: float = 0.0,
                last: int = 8) -> list[dict]:
    """Cells whose latest ``time_mtu`` grew more than ``threshold_pct``
    percent over the previous snapshot that had the cell."""
    return [r for r in trend_rows(snapshots, last=last)
            if r["pct_prev"] is not None and r["pct_prev"] > threshold_pct]


def _fmt(v) -> str:
    if v is None:
        return "—"
    return f"{v:,.0f}"


def _fmt_pct(v) -> str:
    return "—" if v is None else f"{v:+.2f}%"


def render_trend(snapshots: list[dict], markdown: bool = False,
                 last: int = 8, threshold_pct: float = 0.0) -> str:
    """The trend table over the last ``last`` snapshots."""
    shown = snapshots[-last:] if last else snapshots
    rows = trend_rows(snapshots, last=last)
    flagged = {r["key"] for r in regressions(snapshots,
                                             threshold_pct=threshold_pct,
                                             last=last)}
    labels = [s["label"] for s in shown]
    lines = []
    if markdown:
        lines.append("## Bench history (time_mtu per cell)")
        lines.append("")
        lines.append(f"{len(snapshots)} snapshot(s) on the timeline; "
                     f"showing the last {len(shown)}.")
        lines.append("")
        lines.append("| cell | " + " | ".join(labels)
                     + " | Δ% prev | Δ% first | |")
        lines.append("|---|" + "---:|" * (len(labels) + 2) + "---|")
        for r in rows:
            flag = "REGRESSION" if r["key"] in flagged else ""
            lines.append(
                "| " + r["key"] + " | "
                + " | ".join(_fmt(v) for v in r["values"])
                + f" | {_fmt_pct(r['pct_prev'])}"
                + f" | {_fmt_pct(r['pct_first'])} | {flag} |")
    else:
        lines.append(f"bench history: {len(snapshots)} snapshot(s), "
                     f"showing last {len(shown)}: " + " -> ".join(labels))
        for r in rows:
            flag = "  REGRESSION" if r["key"] in flagged else ""
            lines.append(
                f"  {r['key']}: "
                + " -> ".join(_fmt(v) for v in r["values"])
                + f"  ({_fmt_pct(r['pct_prev'])} vs prev)" + flag)
    return "\n".join(lines)


def record(history_path: str, doc_path: str, label: str | None = None,
           stamp: bool = False) -> dict:
    """Load ``doc_path``, append it to the timeline, return the snapshot."""
    doc = load_baseline(doc_path)
    name = os.path.basename(doc_path)
    recorded = None
    if stamp:
        import datetime
        recorded = datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ")
    snap = snapshot_from_doc(doc, label=label or name, source=name,
                             recorded=recorded)
    append_snapshot(history_path, snap)
    return snap


def history_main(args) -> int:
    """Back the ``repro bench history`` CLI subcommand."""
    import sys

    try:
        snapshots = (load_history(args.history)
                     if os.path.exists(args.history) else [])
        if args.doc is not None:
            snapshots.append(record(args.history, args.doc,
                                    label=args.label, stamp=args.stamp))
    except BenchDiffError as exc:
        print(f"bench history: error: {exc}", file=sys.stderr)
        return 2
    if not snapshots:
        print(f"bench history: no timeline at {args.history!r} and no "
              f"document to record; pass a repro-bench JSON to seed it",
              file=sys.stderr)
        return 2
    print(render_trend(snapshots, markdown=args.markdown, last=args.last,
                       threshold_pct=args.threshold_pct))
    flagged = regressions(snapshots, threshold_pct=args.threshold_pct,
                          last=args.last)
    if flagged:
        print()
        for r in flagged:
            prior = [v for v in r["values"][:-1] if v is not None]
            print(f"REGRESSION {r['key']}: {_fmt(prior[-1])} -> "
                  f"{_fmt(r['values'][-1])} time_mtu "
                  f"({_fmt_pct(r['pct_prev'])} > "
                  f"{args.threshold_pct:g}% threshold)")
        if args.gate:
            return 1
    return 0


__all__ = ["HISTORY_SCHEMA", "append_snapshot", "history_main",
           "load_history", "record", "regressions", "render_trend",
           "snapshot_from_doc", "trend_rows"]
