"""Folded-stack flamegraph export of a recorded trace.

The folded format is the lingua franca of flamegraph tooling (Brendan
Gregg's ``flamegraph.pl``, speedscope, inferno): one line per unique
stack, semicolon-separated frames, a space, and a positive integer
weight.  We fold the simulated timeline as::

    <runtime>;<lane>;<phase>  <mtu>

* ``<runtime>`` is ``sm`` or ``dm`` (the root frame);
* ``<lane>`` is ``thread N`` / ``rank N``;
* ``<phase>`` is the region/superstep label the kernel declared via
  ``rt.annotate`` (``pr.pull``, ``bfs.kfilter [seq]``, ...), or one of
  the synthetic frames ``[off-path]`` (the lane's slack inside a region
  whose critical path was another lane -- exactly the
  ``off_path_idle`` total of :func:`repro.observability.export.
  critical_path`), ``[barrier]`` and ``[stall]``
  (synchronization / recovery waits).  ``[stall]`` appears two ways:
  barrier-gating recovery stalls land on every lane, while per-lane
  injected span stretch (SM stragglers, lock-preempt waits -- the
  region event's ``data["stalls"]``) is carved out of the injured
  lane's phase frame only, so a flamegraph of a chaotic run shows
  exactly *which* thread lost time to which fault.

Weights are simulated mtu rounded to integers, so every lane's total
width equals the run's simulated time and two runs of the same seeded
configuration produce **byte-identical** files (lines are emitted in
sorted order).  Zero-weight stacks are dropped -- flamegraph.pl
rejects non-positive counts -- which also keeps empty traces valid
(an empty folded file renders as an empty graph).
"""

from __future__ import annotations


def folded_stacks(tracer) -> list[str]:
    """The folded-stack lines (sorted, no trailing newline)."""
    rt = tracer.rt
    root = "dm" if tracer.is_dm else "sm"
    noun = "rank" if tracer.is_dm else "thread"
    weights: dict[tuple[str, ...], float] = {}

    def add(lane_frame: str, phase: str, w: float) -> None:
        if w <= 0.0:
            return
        key = (root, lane_frame, phase)
        weights[key] = weights.get(key, 0.0) + w

    lanes = [f"{noun} {t}" for t in range(rt.P)]
    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            spans = ev.data["spans"]
            stalls = ev.data.get("stalls")
            for t, s in enumerate(spans):
                if t >= rt.P:
                    continue
                w = min(s, ev.dur)
                # injected per-lane stretch is part of the span but not
                # of the phase's real work: carve it into [stall]
                st = min(stalls[t], w) if stalls else 0.0
                add(lanes[t], ev.label, w - st)
                add(lanes[t], "[stall]", st)
                add(lanes[t], "[off-path]", ev.dur - w)
        elif ev.kind == "barrier":
            for lane in lanes:
                add(lane, "[barrier]", ev.dur)
        elif ev.kind == "stall":
            if ev.lane is not None and ev.lane < rt.P:
                add(lanes[ev.lane], "[stall]", ev.dur)
            else:
                for lane in lanes:
                    add(lane, "[stall]", ev.dur)

    lines = []
    for key in sorted(weights):
        w = int(round(weights[key]))
        if w > 0:
            lines.append(";".join(key) + f" {w}")
    return lines


def write_flame(tracer, path: str) -> str:
    """Write the folded stacks to ``path``; returns the path.

    The output feeds straight into standard tooling::

        flamegraph.pl flame.folded > flame.svg
        speedscope flame.folded
    """
    lines = folded_stacks(tracer)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return path


__all__ = ["folded_stacks", "write_flame"]
