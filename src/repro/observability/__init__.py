"""Unified trace/metrics layer for the SM and DM runtimes.

The paper's performance study attributes cost to *phases* -- per-phase
PAPI counter tables (Table 1), per-iteration direction decisions, and
per-superstep communication volumes.  This package gives the simulated
runtimes the same attribution surface:

* :mod:`repro.observability.events` -- the typed event model and the
  versioned JSONL schema.
* :mod:`repro.observability.tracer` -- :class:`Tracer`, attached to an
  :class:`~repro.runtime.sm.SMRuntime` or
  :class:`~repro.runtime.dm.DMRuntime` via the ``rt.tracer`` hook (a
  single ``is None`` check per hook site, like ``rt.observer`` and
  ``rt.faults``); records parallel regions and supersteps with
  per-thread/per-rank spans and :class:`PerfCounters` deltas, barriers
  and recovery stalls, frontier evolution, push/pull switch decisions
  with their operands, DM communication verbs, and fault/recovery
  events.
* :mod:`repro.observability.export` -- exporters: Chrome trace-event
  JSON (``chrome://tracing`` / Perfetto, one lane per thread or rank),
  a flat JSONL event log, and a metrics rollup (counter time-series per
  region/superstep, per-phase Table-1 cache columns, partition
  edge-cut, per-rank-pair traffic matrix, critical-path decomposition,
  switch decisions; schema ``repro-metrics/3``).
* :mod:`repro.observability.hwcounters` -- cache-counter attribution:
  :func:`equip_cache_sim` swaps the trace-driven cache/TLB simulator
  into a runtime so every span delta carries L1/L2/L3/TLB miss counts;
  :func:`miss_asymmetry` quantifies the paper's push-vs-pull locality
  gap.
* :mod:`repro.observability.flame` -- deterministic folded-stack
  flamegraph export (lane -> phase over simulated time; feeds
  ``flamegraph.pl`` / speedscope).
* :mod:`repro.observability.sinks` -- pluggable event sinks: buffered
  retention (the default), constant-memory streaming JSONL, the online
  bounded-memory metrics rollup (proven byte-equal to the post-hoc
  rollup on every committed bench cell), and seeded span sampling for
  Chrome/flame export at scales where full retention is impossible.
* :mod:`repro.observability.regress` -- semantic perf-baseline diffing
  (``repro bench diff``): metric-by-metric comparison with tolerances,
  drift attributed to cell -> phase -> counter.
* :mod:`repro.observability.history` -- the append-only bench-history
  timeline (``repro bench history``): ``repro-bench/*`` snapshots on a
  JSONL timeline with per-cell trend tables and regression flags.
* :mod:`repro.observability.speedup` -- comparative analysis
  (``repro bench speedup``): config-vs-config winner-by-factor tables
  (the shape of the paper's Figures 5-9) with per-counter attribution
  of why the winner wins (schema ``repro-speedup/1``).
* :mod:`repro.observability.driver` -- the ``python -m repro trace``
  entry point: run one kernel under a tracer and write all exports.

The package is import-light by design: nothing here imports the
harness (charts, experiments) -- the :class:`~repro.runtime.profiler.
Profile` view renders without pulling chart code unless asked to.
"""

from repro.observability.events import SCHEMA, TraceEvent
from repro.observability.export import (
    METRICS_SCHEMA, chrome_trace, critical_path, metrics_rollup,
    to_jsonl_lines, traffic_matrix, write_outputs,
)
from repro.observability.flame import folded_stacks, write_flame
from repro.observability.hwcounters import (
    equip_cache_sim, miss_asymmetry, miss_rates,
)
from repro.observability.history import (
    HISTORY_SCHEMA, load_history, render_trend, snapshot_from_doc,
)
from repro.observability.regress import (
    BENCHDIFF_SCHEMA, BenchDiff, BenchDiffError, Drift, diff_bench,
    diff_paths, load_baseline,
)
from repro.observability.sinks import (
    BufferSink, JsonlStreamSink, RollupSink, SamplingSink, TraceSink,
)
from repro.observability.speedup import SPEEDUP_SCHEMA, build_speedup
from repro.observability.tracer import (
    Tracer, WallclockProfiler, attach_tracer, edge_cut,
)

__all__ = [
    "BENCHDIFF_SCHEMA",
    "BenchDiff",
    "BenchDiffError",
    "BufferSink",
    "Drift",
    "HISTORY_SCHEMA",
    "JsonlStreamSink",
    "METRICS_SCHEMA",
    "RollupSink",
    "SCHEMA",
    "SPEEDUP_SCHEMA",
    "SamplingSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "WallclockProfiler",
    "attach_tracer",
    "build_speedup",
    "chrome_trace",
    "critical_path",
    "diff_bench",
    "diff_paths",
    "edge_cut",
    "equip_cache_sim",
    "folded_stacks",
    "load_baseline",
    "load_history",
    "metrics_rollup",
    "miss_asymmetry",
    "miss_rates",
    "render_trend",
    "snapshot_from_doc",
    "to_jsonl_lines",
    "traffic_matrix",
    "write_flame",
    "write_outputs",
]
