"""The :class:`Tracer`: structured event recording for both runtimes.

Attachment follows the repo's hook convention (``rt.observer`` for the
epoch checker, ``rt.faults`` for the injector): ``attach_tracer(rt)``
installs the tracer as ``rt.tracer`` and every hook site in the
runtimes is a single ``is None`` check, so an untraced run pays
nothing and a traced run's *simulated* time and counters are identical
to an untraced one -- tracing only ever reads the machine state.

What lands in the trace:

* every SM parallel region / DM superstep, with per-thread (per-rank)
  simulated spans **and** :class:`PerfCounters` deltas -- the deltas
  are measured by snapshotting each lane's counter block around the
  body, so summing all region/superstep deltas plus the barrier events
  reconciles *exactly* with the run-level counter totals
  (:meth:`Tracer.reconcile`);
* barriers, and the recovery stalls the fault layer charges to them;
* frontier sizes/densities and push<->pull switch decisions with the
  operand values that triggered them (traversal kernels report these
  through the duck-typed ``rt.tracer`` attribute -- no import needed);
* loop-schedule decisions (policy + per-thread chunk sizes);
* DM sends, inbox reads, RMA verbs, flushes -- on the issuing rank's
  lane, timestamped by that rank's progress within the superstep;
* fault-injection and recovery events from both injectors --
  :mod:`repro.runtime.faults` (drop/retry/rollback/restart/...) and
  :mod:`repro.runtime.sm_faults` (straggler/cas-lost/crash/...) -- on
  the affected lane, plus per-lane injected span stretch
  (``data["stalls"]``) on the region events of perturbed SM runs.

All timestamps are simulated mtu, so traces are deterministic.
"""

from __future__ import annotations

import time

from repro.machine.counters import PerfCounters
from repro.observability.events import RECOVERY_KINDS, SCHEMA, TraceEvent
from repro.observability.sinks import (
    BufferSink, RollupSink, SamplingSink, TraceSink,
)


def _nonzero(c: PerfCounters) -> dict:
    """Compact counter-delta dict (nonzero fields only)."""
    return {k: v for k, v in c.to_dict().items() if v}


class Tracer:
    """Records typed events from one runtime; see the module docstring.

    Events flow through :meth:`_emit` into the attached *sinks*
    (:mod:`repro.observability.sinks`).  The default is a single
    :class:`BufferSink` -- every event retained in order, ``.events``
    exposed for the post-hoc exporters, byte-identical to the
    pre-sink tracer.  Alternative sinks trade retention for bounded
    memory (streaming JSONL, online rollup, seeded span sampling);
    the tracer itself only keeps O(1) bookkeeping (sequence number,
    per-kind counts, the peak of the sinks' approximate retained
    bytes in :attr:`peak_sink_bytes`).

    The tracer never mutates runtime state; it is re-armed by
    ``rt.reset()`` (sinks reset, counter baseline re-snapshotted) so
    a reused runtime produces a fresh, reconcilable trace per run.
    """

    def __init__(self, rt, graph=None,
                 sinks: list[TraceSink] | None = None) -> None:
        self.rt = rt
        self.is_dm = hasattr(rt, "superstep")
        self.sinks: list[TraceSink] = (list(sinks) if sinks is not None
                                       else [BufferSink()])
        self._seq = 0
        self.n_regions = 0
        self.n_events = 0
        self.kind_counts: dict[str, int] = {}
        self.peak_sink_bytes = 0
        #: wall-clock self-profiler (:meth:`enable_wallclock`); when set,
        #: the metrics rollup gains a ``wallclock`` block
        self.wallclock: WallclockProfiler | None = None
        self.start_time = rt.time
        self.start_counters = rt.total_counters()
        #: partition edge-cut summary (set when a graph is supplied)
        self.cut = edge_cut(graph, rt.part) if graph is not None else None
        # superstep context (DM): start time + per-rank progress baselines
        self._ss_t0: float = rt.time
        self._ss_befores: list[float] = []
        self._ss_snaps: list[PerfCounters] = []
        for sink in self.sinks:
            sink.bind(self)

    # -- sink plumbing -------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The retained event list of the attached :class:`BufferSink`.

        Only a buffering tracer has one; under streaming/rollup sinks
        the events were deliberately not retained, and post-hoc
        consumers must use the sink's own view instead.
        """
        sink = self.find_sink(BufferSink)
        if sink is None:
            raise AttributeError(
                "this tracer has no BufferSink (sinks: "
                + ", ".join(s.name for s in self.sinks)
                + "); post-hoc event access requires buffered retention")
        return sink.events

    def find_sink(self, cls: type) -> TraceSink | None:
        """The first attached sink of type ``cls`` (or ``None``)."""
        for sink in self.sinks:
            if isinstance(sink, cls):
                return sink
        return None

    def _rollup_sink(self) -> RollupSink | None:
        """The attached rollup accumulator, direct or sampler-embedded."""
        sink = self.find_sink(RollupSink)
        if sink is not None:
            return sink
        sampler = self.find_sink(SamplingSink)
        return sampler.rollup if sampler is not None else None

    def enable_wallclock(self) -> "WallclockProfiler":
        """Attach the wall-clock self-profiler (idempotent)."""
        if self.wallclock is None:
            self.wallclock = WallclockProfiler()
        return self.wallclock

    def close(self) -> None:
        """Flush/close every attached sink (idempotent)."""
        for sink in self.sinks:
            sink.close()

    # -- bookkeeping ---------------------------------------------------------------
    def meta(self) -> dict:
        """Header fields for the exporters."""
        return {
            "schema": SCHEMA,
            "runtime": "dm" if self.is_dm else "sm",
            "P": self.rt.P,
            "machine": getattr(self.rt.machine, "name", "?"),
            "clock": "simulated-mtu",
        }

    def on_reset(self) -> None:
        """Re-arm for a fresh run (called by ``rt.reset()``).

        Resets sink state too: the buffer clears, a streaming file
        truncates and rewrites its header, rollup accumulators zero,
        the sampler reseeds.  ``peak_sink_bytes`` is a high-water mark
        across the tracer's lifetime and survives.
        """
        self._seq = 0
        self.n_regions = 0
        self.n_events = 0
        self.kind_counts = {}
        self.start_time = self.rt.time
        self.start_counters = self.rt.total_counters()
        self._ss_befores = []
        self._ss_snaps = []
        for sink in self.sinks:
            sink.on_reset()
        if self.wallclock is not None:
            self.wallclock.on_reset()

    def _emit(self, kind: str, ts: float, dur: float = 0.0,
              lane: int | None = None, label: str = "",
              data: dict | None = None) -> None:
        ev = TraceEvent(
            seq=self._seq, kind=kind, ts=float(ts), dur=float(dur),
            lane=lane, label=label, data=data or {})
        self._seq += 1
        self.n_events += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        for sink in self.sinks:
            sink.on_event(ev)
        retained = sum(sink.nbytes for sink in self.sinks)
        if retained > self.peak_sink_bytes:
            self.peak_sink_bytes = retained
        if self.wallclock is not None:
            self.wallclock.on_event(ev)

    def _lanes(self) -> list[float]:
        """Per-rank progress (mtu) within the open superstep."""
        m = self.rt.machine
        return [m.time(c) - b for c, b
                in zip(self.rt.proc_counters, self._ss_befores)]

    def _now(self, lane: int | None) -> float:
        """Simulated timestamp for an instant event on ``lane``."""
        if lane is None or not self._ss_befores:
            return self.rt.time
        return self._ss_t0 + max(0.0, self._lanes()[lane])

    # -- shared-memory hooks ---------------------------------------------------------
    def on_region(self, label: str, start: float, span: float,
                  spans: list[float], deltas: list[PerfCounters],
                  sizes: list[int] | None = None,
                  sequential: bool = False,
                  stalls: list[float] | None = None) -> None:
        index = self.n_regions
        self.n_regions += 1
        if sequential:
            label = (label or "sequential") + " [seq]"
        else:
            label = label or f"region-{index}"
        data = {
            "index": index,
            "spans": [float(s) for s in spans],
            "deltas": [_nonzero(d) for d in deltas],
            "sequential": sequential,
        }
        if sizes is not None:
            data["sizes"] = [int(s) for s in sizes]
        # per-lane injected span stretch (straggler factor, lock-preempt
        # waits) -- recorded only when the fault layer stretched someone,
        # so fault-free traces stay byte-identical to pre-chaos ones
        if stalls is not None and any(stalls):
            data["stalls"] = [float(s) for s in stalls]
        self._emit("region", ts=start, dur=span, label=label, data=data)

    def on_stall(self, ts: float, dur: float, index: int) -> None:
        """An SM recovery stall gating the next barrier (all lanes wait)."""
        self._emit("stall", ts=ts, dur=dur, label="recovery-stall",
                   data={"index": int(index)})

    def on_barrier(self, ts: float) -> None:
        self._emit("barrier", ts=ts, dur=self.rt.machine.w_barrier,
                   label="barrier", data={"barriers": self.rt.P})

    def on_schedule(self, policy: str, items: int, sizes: list[int],
                    chunk: int | None) -> None:
        self._emit("schedule", ts=self.rt.time, label=policy,
                   data={"policy": policy, "items": int(items),
                         "chunk": chunk, "sizes": [int(s) for s in sizes]})

    # -- traversal attribution (duck-typed: kernels call through rt.tracer) ------------
    def on_frontier(self, iteration: int, size: int, n: int,
                    edges: int | None = None) -> None:
        data = {"iteration": int(iteration), "size": int(size),
                "density": (float(size) / n) if n else 0.0}
        if edges is not None:
            data["edges"] = int(edges)
        self._emit("frontier", ts=self.rt.time, label="frontier", data=data)

    def on_switch(self, iteration: int, previous: str, chosen: str,
                  operands: dict) -> None:
        data = {"iteration": int(iteration), "previous": previous,
                "chosen": chosen}
        data.update({k: (int(v) if isinstance(v, (int, bool)) else v)
                     for k, v in operands.items()})
        self._emit("switch", ts=self.rt.time,
                   label=f"{previous}->{chosen}", data=data)

    # -- distributed-memory hooks -------------------------------------------------------
    def on_superstep_begin(self, index: int) -> None:
        rt = self.rt
        self._ss_t0 = rt.time
        self._ss_befores = [rt.machine.time(c) for c in rt.proc_counters]
        self._ss_snaps = [c.copy() for c in rt.proc_counters]

    def on_superstep_end(self, index: int, spans: list[float],
                         stall: float) -> None:
        rt = self.rt
        deltas = [c - s for c, s in zip(rt.proc_counters, self._ss_snaps)]
        span = max(spans) if spans else 0.0
        label = getattr(rt, "_label", "") or f"superstep-{index}"
        self._emit("superstep", ts=self._ss_t0, dur=span, label=label,
                   data={"index": int(index),
                         "spans": [float(s) for s in spans],
                         "deltas": [_nonzero(d) for d in deltas],
                         "stall": float(stall)})
        t = self._ss_t0 + span
        if stall > 0:
            self._emit("stall", ts=t, dur=stall, label="recovery-stall",
                       data={"index": int(index)})
            t += stall
        self._emit("barrier", ts=t, dur=rt.machine.w_barrier,
                   label="barrier", data={"barriers": rt.P})
        self._ss_befores = []
        self._ss_snaps = []

    def on_send(self, rank: int, dest: int, tag, nbytes: int) -> None:
        self._emit("send", ts=self._now(rank), lane=rank, label="send",
                   data={"dest": int(dest), "tag": _plain(tag),
                         "nbytes": int(nbytes)})

    def on_inbox(self, rank: int, tag, count: int) -> None:
        self._emit("inbox", ts=self._now(rank), lane=rank, label="inbox",
                   data={"tag": _plain(tag), "messages": int(count)})

    def on_rma(self, verb: str, rank: int, owner: int, window,
               nitems: int, dtype: str | None, nbytes: int | None = None,
               ops: int | None = None) -> None:
        """One RMA verb.  ``nbytes``/``ops`` mirror what the runtime
        charges to ``remote_bytes`` and the verb counter (``rma_get``
        may fetch many items in one get, an accumulate is one op per
        item), so the per-rank-pair traffic matrix reconciles exactly
        against the counters; a local verb (``owner == rank``) charges
        plain memory traffic instead and is excluded from the matrix."""
        data = {"owner": int(owner), "window": _window_name(window),
                "items": int(nitems), "dtype": dtype}
        if nbytes is not None:
            data["nbytes"] = int(nbytes)
        if ops is not None:
            data["ops"] = int(ops)
        self._emit("rma", ts=self._now(rank), lane=rank, label=verb,
                   data=data)

    def on_flush(self, rank: int, owner: int | None) -> None:
        self._emit("flush", ts=self._now(rank), lane=rank, label="flush",
                   data={"owner": None if owner is None else int(owner)})

    # -- fault-injection / recovery hooks -----------------------------------------------
    def on_fault(self, kind: str, detail: tuple, superstep: int) -> None:
        lane = detail[0] if detail and isinstance(detail[0], int) else None
        self._emit("recovery" if kind in RECOVERY_KINDS else "fault",
                   ts=self._now(lane), lane=lane, label=kind,
                   data={"superstep": int(superstep),
                         "detail": [_plain(d) for d in detail]})

    # -- reconciliation ------------------------------------------------------------------
    def traced_totals(self) -> PerfCounters:
        """Sum of every recorded counter delta (regions/supersteps +
        barrier episodes) -- must equal the run-level totals.

        Answered from the buffered events when a :class:`BufferSink` is
        attached, else from the online rollup accumulator -- both sum
        the same integer deltas in emission order, so the reconciliation
        surface is sink-independent.
        """
        if self.find_sink(BufferSink) is None:
            roll = self._rollup_sink()
            if roll is None:
                raise AttributeError(
                    "traced_totals() needs a BufferSink or RollupSink; "
                    "sinks: " + ", ".join(s.name for s in self.sinks))
            return roll.traced_totals()
        acc = PerfCounters()
        for ev in self.events:
            if ev.kind in ("region", "superstep"):
                for d in ev.data["deltas"]:
                    for k, v in d.items():
                        setattr(acc, k, getattr(acc, k) + v)
            elif ev.kind == "barrier":
                acc.barriers += ev.data["barriers"]
        return acc

    def reconcile(self) -> tuple[PerfCounters, PerfCounters]:
        """(traced, actual) counter totals since attach/reset.

        ``traced == actual`` iff every counted event of the run happened
        inside a traced region/superstep or barrier -- the invariant the
        instrumented kernels maintain.
        """
        return self.traced_totals(), self.rt.total_counters() - self.start_counters

    def reconcile_time(self) -> tuple[float, float]:
        """(decomposed, actual) simulated-time totals since attach/reset.

        The decomposed total sums every timed event in emission order --
        region/superstep spans, recovery stalls, barrier episodes --
        which is exactly the partition the critical-path attribution
        (:func:`repro.observability.export.critical_path`) refines into
        critical-compute / critical-comm / sync components.  The two
        totals agree to float associativity (the DM runtime adds
        ``span + stall + barrier`` in one expression), so callers
        compare with a tight relative tolerance rather than ``==``.

        Like :meth:`traced_totals`, answered from the buffer when one
        is attached, else from the rollup accumulator (which added the
        same durations in the same emission order, so the float is
        bit-identical).
        """
        actual = self.rt.time - self.start_time
        if self.find_sink(BufferSink) is None:
            roll = self._rollup_sink()
            if roll is None:
                raise AttributeError(
                    "reconcile_time() needs a BufferSink or RollupSink; "
                    "sinks: " + ", ".join(s.name for s in self.sinks))
            return roll.decomposed_mtu, actual
        decomposed = 0.0
        for ev in self.events:
            if ev.kind in ("region", "superstep", "stall", "barrier"):
                decomposed += ev.dur
        return decomposed, actual

    def critical_totals(self) -> dict:
        """The critical-path ``totals`` block, whichever sink can answer.

        Buffered tracers compute it post-hoc
        (:func:`repro.observability.export.critical_path`); rollup /
        sampling tracers read the online accumulator.
        """
        if self.find_sink(BufferSink) is not None:
            from repro.observability.export import critical_path
            return critical_path(self)["totals"]
        roll = self._rollup_sink()
        if roll is None:
            raise AttributeError(
                "critical_totals() needs a BufferSink or RollupSink; "
                "sinks: " + ", ".join(s.name for s in self.sinks))
        return roll.critical()["totals"]


class WallclockProfiler:
    """Real-seconds self-profiling next to the simulated-mtu trace.

    Attached via :meth:`Tracer.enable_wallclock`.  Charges the wall
    time elapsed since the previous region/superstep emission to that
    phase label (the tracer's emission points partition the run), and
    :meth:`block` renders the ``wallclock`` block the metrics rollup
    gains when the profiler is attached: per-phase wall seconds, traced
    vs. untraced wall time, the overhead factor, event throughput, and
    peak sink memory.  Everything here is *wall* time and therefore
    nondeterministic -- which is why the block only exists when
    explicitly enabled (``repro trace --wallclock``); default outputs
    stay byte-identical.
    """

    def __init__(self) -> None:
        self.on_reset()

    def on_reset(self) -> None:
        self._t0 = time.perf_counter()
        self._last = self._t0
        self._phase_order: list[str] = []
        self._phase_s: dict[str, float] = {}
        self.events = 0
        self.traced_s: float | None = None
        self.untraced_s: float | None = None
        self.peak_sink_bytes: int | None = None

    def on_event(self, ev: TraceEvent) -> None:
        self.events += 1
        if ev.kind in ("region", "superstep"):
            now = time.perf_counter()
            if ev.label not in self._phase_s:
                self._phase_order.append(ev.label)
                self._phase_s[ev.label] = 0.0
            self._phase_s[ev.label] += now - self._last
            self._last = now

    def finish(self, traced_s: float, untraced_s: float | None = None,
               peak_sink_bytes: int | None = None) -> None:
        """Record the end-to-end measurements before export."""
        self.traced_s = float(traced_s)
        self.untraced_s = None if untraced_s is None else float(untraced_s)
        self.peak_sink_bytes = peak_sink_bytes

    @property
    def overhead_x(self) -> float | None:
        """Traced / untraced wall-time factor (``None`` until known)."""
        if self.traced_s is None or not self.untraced_s:
            return None
        return self.traced_s / self.untraced_s

    def block(self) -> dict:
        """The ``wallclock`` block of the metrics rollup."""
        traced = (self.traced_s if self.traced_s is not None
                  else time.perf_counter() - self._t0)
        return {
            "clock": "wall-seconds",
            "traced_s": traced,
            "untraced_s": self.untraced_s,
            "overhead_x": self.overhead_x,
            "events": self.events,
            "events_per_s": (self.events / traced) if traced > 0 else 0.0,
            "peak_sink_bytes": self.peak_sink_bytes,
            "phases": [{"label": label, "seconds": self._phase_s[label]}
                       for label in self._phase_order],
        }


def _plain(v):
    """JSON-safe scalar for tags/payload details."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    return str(v)


def _window_name(window) -> str | None:
    if window is None:
        return None
    return str(getattr(window, "name", window))


def edge_cut(g, part) -> dict:
    """Partition edge-cut summary for the metrics rollup.

    Counts directed edges whose endpoints live on different lanes of
    the 1D partition -- the traffic ceiling every DM communication verb
    is chargeable against (:func:`repro.analysis.crosscheck.
    dm_crosscheck`) -- plus the per-lane outbound cross-edge counts.
    """
    import numpy as np
    srcs = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
    so = part.owner(srcs)
    cross = so != part.owner(g.adj)
    edges_total = int(len(g.adj))
    edges_cross = int(cross.sum())
    per_lane = np.bincount(so[cross], minlength=part.P)
    return {
        "edges_total": edges_total,
        "edges_cross": edges_cross,
        "fraction": (edges_cross / edges_total) if edges_total else 0.0,
        "per_lane_out": [int(x) for x in per_lane],
    }


def attach_tracer(rt, graph=None, sinks=None) -> Tracer:
    """Install a :class:`Tracer` as ``rt.tracer`` and return it.

    Composes with ``attach_dm_race_detector`` and
    ``attach_fault_injector`` in any order (each occupies its own
    hook).  Re-attaching replaces the previous tracer.  Passing the
    input ``graph`` lets the tracer compute the partition edge-cut
    summary the metrics rollup reports next to the communication verb
    counts (``rollup["cut"]``).  ``sinks`` selects the retention
    strategy (default: one :class:`~repro.observability.sinks.
    BufferSink`, the byte-identical pre-sink behavior).
    """
    tracer = Tracer(rt, graph=graph, sinks=sinks)
    rt.tracer = tracer
    return tracer
