"""Exporters for recorded traces.

Three views over the same event list, all deterministic (simulated
timestamps, sorted JSON keys, compact separators -- two runs with the
same seed/config produce byte-identical files):

* :func:`to_jsonl_lines` -- flat JSONL: a ``{"schema": ...}`` header
  line, then one event object per line (the archival format; schema
  ``repro-trace/1``).
* :func:`chrome_trace` -- Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto: one lane (tid) per simulated thread
  or rank plus a ``runtime`` lane for global events; regions and
  supersteps become matched ``B``/``E`` duration pairs, communication
  and fault events become instants on the issuing rank's lane, frontier
  sizes become a counter track.  1 mtu is rendered as 1 µs.
* :func:`metrics_rollup` -- counter time-series per region/superstep
  plus run totals (schema ``repro-metrics/1``).

:func:`write_outputs` writes all three into a directory.
"""

from __future__ import annotations

import json
import os

from repro.observability.events import SCHEMA

#: versioned schema tag for the metrics rollup
METRICS_SCHEMA = "repro-metrics/1"

#: event kinds rendered as B/E duration pairs on the runtime lane
_GLOBAL_SPANS = ("barrier", "stall")

#: event kinds rendered as instants on their lane
_INSTANTS = ("send", "inbox", "rma", "flush", "fault", "recovery",
             "switch", "schedule")


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_jsonable)


def _jsonable(o):
    # numpy scalars leak into event data from kernel code; coerce them
    # so the export never depends on numpy repr
    if hasattr(o, "item"):
        return o.item()
    return str(o)


def to_jsonl_lines(tracer) -> list[str]:
    """Header line + one compact JSON object per event."""
    return [_dumps(tracer.meta())] + [_dumps(ev.to_dict())
                                      for ev in tracer.events]


def chrome_trace(tracer) -> dict:
    """Chrome trace-event JSON (loadable in Perfetto).

    Lanes: tid ``0..P-1`` are the simulated threads/ranks, tid ``P`` is
    the ``runtime`` lane (barriers, stalls, switch/schedule decisions,
    unattributable fault events).  Every duration event is an explicit
    ``B``/``E`` pair with ``E.ts >= B.ts`` on the same lane.
    """
    P = tracer.rt.P
    meta = tracer.meta()
    lane_noun = "rank" if tracer.is_dm else "thread"
    out = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": f"repro {meta['runtime']} ({meta['machine']})"}},
    ]
    for t in range(P):
        out.append({"ph": "M", "pid": 0, "tid": t, "name": "thread_name",
                    "args": {"name": f"{lane_noun} {t}"}})
    out.append({"ph": "M", "pid": 0, "tid": P, "name": "thread_name",
                "args": {"name": "runtime"}})

    def span(name, ts, dur, tid, args=None):
        out.append({"ph": "B", "pid": 0, "tid": tid, "ts": ts,
                    "name": name, "args": args or {}})
        out.append({"ph": "E", "pid": 0, "tid": tid, "ts": ts + dur,
                    "name": name})

    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            spans = ev.data["spans"]
            deltas = ev.data["deltas"]
            sizes = ev.data.get("sizes")
            for t, s in enumerate(spans):
                args = {"delta": deltas[t]} if t < len(deltas) else {}
                if sizes is not None and t < len(sizes):
                    args["items"] = sizes[t]
                span(ev.label, ev.ts, s, t, args)
            span(ev.label, ev.ts, ev.dur, P,
                 {"index": ev.data["index"], "kind": ev.kind})
        elif ev.kind in _GLOBAL_SPANS:
            span(ev.label, ev.ts, ev.dur, P, dict(ev.data))
        elif ev.kind == "frontier":
            out.append({"ph": "C", "pid": 0, "tid": P, "ts": ev.ts,
                        "name": "frontier-size",
                        "args": {"size": ev.data["size"]}})
        elif ev.kind in _INSTANTS:
            tid = ev.lane if ev.lane is not None else P
            name = ev.label if ev.kind in ("switch", "schedule") \
                else f"{ev.kind}:{ev.label}"
            out.append({"ph": "i", "s": "t", "pid": 0, "tid": tid,
                        "ts": ev.ts, "name": name, "args": dict(ev.data)})
    return {"displayTimeUnit": "ms", "traceEvents": out,
            "otherData": meta}


def metrics_rollup(tracer) -> dict:
    """Counter time-series per region/superstep, plus run totals."""
    steps = []
    frontier = []
    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            counters: dict[str, float] = {}
            for d in ev.data["deltas"]:
                for k, v in d.items():
                    counters[k] = counters.get(k, 0) + v
            steps.append({"index": ev.data["index"], "kind": ev.kind,
                          "label": ev.label, "ts": ev.ts, "time": ev.dur,
                          "counters": counters})
        elif ev.kind == "frontier":
            frontier.append(dict(ev.data))
    names = sorted({k for s in steps for k in s["counters"]})
    series = {k: [s["counters"].get(k, 0) for s in steps] for k in names}
    traced = tracer.traced_totals()
    return {
        "schema": METRICS_SCHEMA,
        "meta": tracer.meta(),
        "time_mtu": tracer.rt.time - tracer.start_time,
        "steps": steps,
        "series": series,
        "frontier": frontier,
        "totals": {k: v for k, v in traced.to_dict().items() if v},
    }


def write_outputs(tracer, outdir: str) -> dict:
    """Write ``events.jsonl``, ``trace.json``, ``metrics.json``.

    Returns ``{"jsonl": path, "chrome": path, "metrics": path}``.
    """
    os.makedirs(outdir, exist_ok=True)
    paths = {
        "jsonl": os.path.join(outdir, "events.jsonl"),
        "chrome": os.path.join(outdir, "trace.json"),
        "metrics": os.path.join(outdir, "metrics.json"),
    }
    with open(paths["jsonl"], "w") as fh:
        fh.write("\n".join(to_jsonl_lines(tracer)) + "\n")
    with open(paths["chrome"], "w") as fh:
        fh.write(_dumps(chrome_trace(tracer)) + "\n")
    with open(paths["metrics"], "w") as fh:
        fh.write(_dumps(metrics_rollup(tracer)) + "\n")
    return paths


__all__ = ["METRICS_SCHEMA", "SCHEMA", "chrome_trace", "metrics_rollup",
           "to_jsonl_lines", "write_outputs"]
