"""Exporters for recorded traces.

Three views over the same event list, all deterministic (simulated
timestamps, sorted JSON keys, compact separators -- two runs with the
same seed/config produce byte-identical files):

* :func:`to_jsonl_lines` -- flat JSONL: a ``{"schema": ...}`` header
  line, then one event object per line (the archival format; schema
  ``repro-trace/1``).
* :func:`chrome_trace` -- Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto: one lane (tid) per simulated thread
  or rank plus a ``runtime`` lane for global events; regions and
  supersteps become matched ``B``/``E`` duration pairs, communication
  and fault events become instants on the issuing rank's lane, frontier
  sizes become a counter track.  1 mtu is rendered as 1 µs.
* :func:`metrics_rollup` -- counter time-series per region/superstep,
  per-phase aggregates with Table-1-style cache columns, the partition
  edge-cut next to the communication verb totals, the per-rank-pair
  traffic matrix, the critical-path decomposition, the push<->pull
  switch decisions, and run totals (schema ``repro-metrics/3``).

Two derived views back the comparative analysis layer
(:mod:`repro.observability.speedup`):

* :func:`traffic_matrix` -- per ``(src, dst)`` rank pair: messages and
  message bytes from traced sends, and the get / put / int-accumulate /
  float-accumulate op counts plus RMA bytes from traced verbs.  Local
  verbs (``owner == rank``) charge plain memory traffic, not network
  counters, and are excluded; on fault-free runs the totals (and the
  per-source row sums against each rank's own counters) reconcile
  *exactly* with the run's ``messages``/``msg_bytes``/``remote_*``
  counters.  (The fault layer recharges counters on retries without
  re-emitting trace events, so under a fault plan the matrix reports
  first-attempt traffic only.)
* :func:`critical_path` -- for every barrier-delimited interval the
  bounding (slowest) lane and its time split into compute vs.
  communication (the machine's comm-counter weights applied to the
  bounding lane's delta) vs. injected fault stretch; barrier episodes
  are ``sync`` and recovery waits ``recovery_stall``.  The five
  on-path components sum to the run's ``time_mtu`` (checked by
  :meth:`Tracer.reconcile_time`); ``off_path_idle`` is the slack of
  the other lanes, the ``[off-path]`` frames of the flamegraph.

All exporters emit valid, schema-complete documents for *empty* traces
(a tracer that recorded nothing) and for zero-duration spans (regions
whose lanes did no costed work): every top-level key is present, idle
zero-span lanes are dropped from the Chrome view instead of emitting
empty boxes, and no derived rate divides by zero.

:func:`write_outputs` writes all three into a directory (plus the
folded-stack flamegraph when asked).
"""

from __future__ import annotations

import json
import math
import os

from repro.machine.counters import PerfCounters
from repro.observability.events import SCHEMA
from repro.observability.hwcounters import TABLE1_COLUMNS

#: versioned schema tag for the metrics rollup
METRICS_SCHEMA = "repro-metrics/3"

#: the communication verb totals reported next to the edge cut
COMM_COUNTERS = ("messages", "msg_bytes", "collectives", "collective_bytes",
                 "remote_gets", "remote_puts", "remote_acc_int",
                 "remote_acc_float", "remote_bytes", "flushes")

#: event kinds rendered as B/E duration pairs on the runtime lane
_GLOBAL_SPANS = ("barrier", "stall")

#: event kinds rendered as instants on their lane
_INSTANTS = ("send", "inbox", "rma", "flush", "fault", "recovery",
             "switch", "schedule")


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_jsonable)


def _jsonable(o):
    # numpy scalars leak into event data from kernel code; coerce them
    # so the export never depends on numpy repr
    if hasattr(o, "item"):
        return o.item()
    return str(o)


def to_jsonl_lines(tracer) -> list[str]:
    """Header line + one compact JSON object per event."""
    return [_dumps(tracer.meta())] + [_dumps(ev.to_dict())
                                      for ev in tracer.events]


def chrome_trace(tracer) -> dict:
    """Chrome trace-event JSON (loadable in Perfetto).

    Lanes: tid ``0..P-1`` are the simulated threads/ranks, tid ``P`` is
    the ``runtime`` lane (barriers, stalls, switch/schedule decisions,
    unattributable fault events).  Every duration event is an explicit
    ``B``/``E`` pair with ``E.ts >= B.ts`` on the same lane.
    """
    P = tracer.rt.P
    meta = tracer.meta()
    lane_noun = "rank" if tracer.is_dm else "thread"
    out = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": f"repro {meta['runtime']} ({meta['machine']})"}},
    ]
    for t in range(P):
        out.append({"ph": "M", "pid": 0, "tid": t, "name": "thread_name",
                    "args": {"name": f"{lane_noun} {t}"}})
    out.append({"ph": "M", "pid": 0, "tid": P, "name": "thread_name",
                "args": {"name": "runtime"}})

    def span(name, ts, dur, tid, args=None):
        out.append({"ph": "B", "pid": 0, "tid": tid, "ts": ts,
                    "name": name, "args": args or {}})
        out.append({"ph": "E", "pid": 0, "tid": tid, "ts": ts + dur,
                    "name": name})

    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            spans = ev.data["spans"]
            deltas = ev.data["deltas"]
            sizes = ev.data.get("sizes")
            for t, s in enumerate(spans):
                args = {"delta": deltas[t]} if t < len(deltas) else {}
                if sizes is not None and t < len(sizes):
                    args["items"] = sizes[t]
                if s == 0.0 and not args.get("delta") and not args.get("items"):
                    # an idle lane (e.g. in a sequential region): a
                    # zero-duration empty box is degenerate, skip it
                    continue
                span(ev.label, ev.ts, s, t, args)
            span(ev.label, ev.ts, ev.dur, P,
                 {"index": ev.data["index"], "kind": ev.kind})
        elif ev.kind in _GLOBAL_SPANS:
            span(ev.label, ev.ts, ev.dur, P, dict(ev.data))
        elif ev.kind == "frontier":
            out.append({"ph": "C", "pid": 0, "tid": P, "ts": ev.ts,
                        "name": "frontier-size",
                        "args": {"size": ev.data["size"]}})
        elif ev.kind in _INSTANTS:
            tid = ev.lane if ev.lane is not None else P
            name = ev.label if ev.kind in ("switch", "schedule") \
                else f"{ev.kind}:{ev.label}"
            out.append({"ph": "i", "s": "t", "pid": 0, "tid": tid,
                        "ts": ev.ts, "name": name, "args": dict(ev.data)})
    return {"displayTimeUnit": "ms", "traceEvents": out,
            "otherData": meta}


#: per-pair fields of the traffic matrix, in row order
TRAFFIC_FIELDS = ("messages", "msg_bytes", "gets", "puts", "acc_int",
                  "acc_float", "rma_bytes")

#: traffic-matrix field -> the PerfCounters total it must reconcile with
_TRAFFIC_TOTALS = {"messages": "messages", "msg_bytes": "msg_bytes",
                   "gets": "remote_gets", "puts": "remote_puts",
                   "acc_int": "remote_acc_int",
                   "acc_float": "remote_acc_float",
                   "rma_bytes": "remote_bytes"}


def traffic_matrix(tracer) -> dict:
    """Per-(src, dst) rank-pair traffic from the traced DM verbs.

    See the module docstring for semantics.  Always schema-complete:
    an SM trace (no communication verbs) yields an empty ``pairs`` list
    with all-zero totals.
    """
    pairs: dict[tuple[int, int], dict] = {}

    def entry(src: int, dst: int) -> dict:
        return pairs.setdefault((src, dst), dict.fromkeys(TRAFFIC_FIELDS, 0))

    for ev in tracer.events:
        if ev.kind == "send" and ev.lane is not None:
            e = entry(ev.lane, int(ev.data["dest"]))
            e["messages"] += 1
            e["msg_bytes"] += int(ev.data["nbytes"])
        elif ev.kind == "rma" and ev.lane is not None:
            owner = int(ev.data["owner"])
            if owner == ev.lane:
                continue  # local window access: no network traffic
            e = entry(ev.lane, owner)
            ops = int(ev.data.get("ops", ev.data["items"]))
            if ev.label == "get":
                e["gets"] += ops
            elif ev.label == "put":
                e["puts"] += ops
            else:
                kind = ("acc_float" if ev.data.get("dtype") == "float"
                        else "acc_int")
                e[kind] += ops
            e["rma_bytes"] += int(ev.data.get("nbytes",
                                              8 * int(ev.data["items"])))
    rows = [{"src": s, "dst": d, **pairs[(s, d)]}
            for s, d in sorted(pairs)]
    totals = {counter: sum(r[field] for r in rows)
              for field, counter in _TRAFFIC_TOTALS.items()}
    return {"ranks": tracer.rt.P, "pairs": rows, "totals": totals}


def critical_path(tracer) -> dict:
    """Critical-path attribution over the barrier-delimited intervals.

    Per region/superstep the *bounding lane* is the lane with the
    largest span (first on ties); its interval time splits into
    ``comm`` (the machine's comm-counter weights applied to that lane's
    counter delta, clamped to the interval), ``injected`` (the fault
    layer's span stretch on that lane), and ``compute`` (the rest, so
    the three sum to the interval exactly).  Two identities hold, both
    to float associativity:

    * run:   compute + comm + injected_stall + sync + recovery_stall
      == ``time_mtu``;
    * lane:  busy + idle + sync + recovery_stall == ``time_mtu`` for
      *every* lane -- ``off_path_idle`` is Σ lane idle, the flame
      exporter's ``[off-path]`` frames.

    ``totals["reconciled"]`` reports the run identity under a tight
    relative tolerance (:meth:`Tracer.reconcile_time`).
    """
    machine = tracer.rt.machine
    P = tracer.rt.P
    intervals = []
    compute = comm = injected = sync = recovery = 0.0
    lane_busy = [0.0] * P
    lane_idle = [0.0] * P
    lane_critical = [0.0] * P
    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            spans = ev.data["spans"]
            dur = ev.dur
            bl = (max(range(len(spans)), key=lambda t: spans[t])
                  if spans else 0)
            deltas = ev.data["deltas"]
            delta = deltas[bl] if bl < len(deltas) else {}
            parts = machine.time_parts(PerfCounters(**delta))
            cm = min(sum(parts.get(k, 0.0) for k in COMM_COUNTERS), dur)
            stalls = ev.data.get("stalls")
            inj = (min(stalls[bl], dur - cm)
                   if stalls and bl < len(stalls) else 0.0)
            cp = dur - cm - inj
            compute += cp
            comm += cm
            injected += inj
            for t in range(P):
                s = min(spans[t], dur) if t < len(spans) else 0.0
                lane_busy[t] += s
                lane_idle[t] += dur - s
            if bl < P:
                lane_critical[bl] += dur
            intervals.append({"index": ev.data["index"], "kind": ev.kind,
                              "label": ev.label, "lane": bl, "time": dur,
                              "compute": cp, "comm": cm, "injected": inj})
        elif ev.kind == "barrier":
            sync += ev.dur
        elif ev.kind == "stall":
            recovery += ev.dur
    decomposed, actual = tracer.reconcile_time()
    totals = {
        "compute": compute,
        "comm": comm,
        "injected_stall": injected,
        "sync": sync,
        "recovery_stall": recovery,
        "off_path_idle": sum(lane_idle),
        "decomposed_mtu": decomposed,
        "time_mtu": actual,
        "reconciled": math.isclose(decomposed, actual,
                                   rel_tol=1e-9, abs_tol=1e-6),
    }
    lanes = [{"lane": t, "critical": lane_critical[t],
              "busy": lane_busy[t], "idle": lane_idle[t]}
             for t in range(P)]
    return {"totals": totals, "lanes": lanes, "intervals": intervals}


def metrics_rollup(tracer) -> dict:
    """Counter time-series per region/superstep, plus phase/cut/run views.

    ``steps`` is the per-region/superstep table, ``series`` pivots it
    into one array per counter name, ``phases`` aggregates steps by
    their ``rt.annotate`` label (in first-occurrence order), ``cache``
    renders the phases as the paper's Table-1 cache columns (reads /
    writes / L1 / L2 / L3 / TLB misses plus the per-read L1 miss rate),
    ``cut`` is the partition edge-cut summary (``null`` when the tracer
    was attached without a graph) and ``comm`` the communication verb
    totals it bounds, ``traffic`` the per-rank-pair matrix those verbs
    decompose into (:func:`traffic_matrix`), ``critical_path`` the
    bounding-lane time decomposition (:func:`critical_path`),
    ``frontier`` collects the traversal samples, ``switches`` the
    push<->pull direction decisions with their trigger operands, and
    ``totals`` are the reconciled run totals.
    """
    steps = []
    frontier = []
    switches = []
    phase_order: list[str] = []
    phases: dict[str, dict] = {}
    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            counters: dict[str, float] = {}
            for d in ev.data["deltas"]:
                for k, v in d.items():
                    counters[k] = counters.get(k, 0) + v
            steps.append({"index": ev.data["index"], "kind": ev.kind,
                          "label": ev.label, "ts": ev.ts, "time": ev.dur,
                          "counters": counters})
            agg = phases.get(ev.label)
            if agg is None:
                phase_order.append(ev.label)
                agg = phases[ev.label] = {"label": ev.label, "events": 0,
                                          "time": 0.0, "counters": {}}
            agg["events"] += 1
            agg["time"] += ev.dur
            for k, v in counters.items():
                agg["counters"][k] = agg["counters"].get(k, 0) + v
        elif ev.kind == "frontier":
            frontier.append(dict(ev.data))
        elif ev.kind == "switch":
            switches.append({"ts": ev.ts, **ev.data})
    names = sorted({k for s in steps for k in s["counters"]})
    series = {k: [s["counters"].get(k, 0) for s in steps] for k in names}
    traced = tracer.traced_totals()
    totals = traced.to_dict()
    phase_rows = [phases[label] for label in phase_order]
    roll = {
        "schema": METRICS_SCHEMA,
        "meta": tracer.meta(),
        "time_mtu": tracer.rt.time - tracer.start_time,
        "steps": steps,
        "series": series,
        "phases": phase_rows,
        "cache": _cache_view(phase_rows),
        "cut": tracer.cut,
        "comm": {k: totals[k] for k in COMM_COUNTERS if totals[k]},
        "traffic": traffic_matrix(tracer),
        "critical_path": critical_path(tracer),
        "frontier": frontier,
        "switches": switches,
        "totals": {k: v for k, v in totals.items() if v},
    }
    # wall-clock self-profiling block: only when explicitly enabled
    # (repro trace --wallclock), so default rollups stay byte-identical
    # and deterministic
    wallclock = getattr(tracer, "wallclock", None)
    if wallclock is not None:
        roll["wallclock"] = wallclock.block()
    return roll


def _cache_view(phase_rows: list[dict]) -> dict:
    """Table-1-style cache columns per phase (always schema-complete)."""
    rows = []
    for phase in phase_rows:
        c = phase["counters"]
        row = {"label": phase["label"]}
        for k in TABLE1_COLUMNS:
            row[k] = int(c.get(k, 0))
        reads = row["reads"]
        row["l1_per_read"] = (row["l1_misses"] / reads) if reads else 0.0
        rows.append(row)
    return {"columns": list(TABLE1_COLUMNS) + ["l1_per_read"], "rows": rows}


def write_outputs(tracer, outdir: str, flame: bool = False) -> dict:
    """Write whatever views the tracer's sinks can back.

    A buffered tracer (the default) writes ``events.jsonl``,
    ``trace.json``, ``metrics.json`` exactly as before -- byte-identical
    outputs.  With bounded-memory sinks instead, each export comes from
    the sink that can answer it: a :class:`~repro.observability.sinks.
    JsonlStreamSink` already streamed ``events.jsonl`` (it is closed
    here and its path returned), a :class:`~repro.observability.sinks.
    RollupSink` renders ``metrics.json`` from its online accumulators,
    and a :class:`~repro.observability.sinks.SamplingSink` renders the
    Chrome/flame span views from its retained sample.  Views no
    attached sink can back are skipped rather than failed.  With
    ``flame=True`` also writes the folded-stack flamegraph
    ``flame.folded``.  Returns the ``{view: path}`` map of what was
    written.
    """
    from repro.observability.sinks import (
        BufferSink, JsonlStreamSink, SamplingSink,
    )
    os.makedirs(outdir, exist_ok=True)
    paths = {}
    stream = tracer.find_sink(JsonlStreamSink)
    if stream is not None:
        stream.close()
        paths["jsonl"] = stream.path
    if tracer.find_sink(BufferSink) is not None:
        if "jsonl" not in paths:
            paths["jsonl"] = os.path.join(outdir, "events.jsonl")
            with open(paths["jsonl"], "w") as fh:
                fh.write("\n".join(to_jsonl_lines(tracer)) + "\n")
        paths["chrome"] = os.path.join(outdir, "trace.json")
        paths["metrics"] = os.path.join(outdir, "metrics.json")
        with open(paths["chrome"], "w") as fh:
            fh.write(_dumps(chrome_trace(tracer)) + "\n")
        with open(paths["metrics"], "w") as fh:
            fh.write(_dumps(metrics_rollup(tracer)) + "\n")
        if flame:
            from repro.observability.flame import write_flame
            paths["flame"] = write_flame(
                tracer, os.path.join(outdir, "flame.folded"))
        return paths
    roll = tracer._rollup_sink()
    if roll is not None:
        paths["metrics"] = os.path.join(outdir, "metrics.json")
        with open(paths["metrics"], "w") as fh:
            fh.write(_dumps(roll.rollup()) + "\n")
    sampler = tracer.find_sink(SamplingSink)
    if sampler is not None:
        view = sampler.view()
        paths["chrome"] = os.path.join(outdir, "trace.json")
        with open(paths["chrome"], "w") as fh:
            fh.write(_dumps(chrome_trace(view)) + "\n")
        if flame:
            from repro.observability.flame import write_flame
            paths["flame"] = write_flame(
                view, os.path.join(outdir, "flame.folded"))
    return paths


__all__ = ["COMM_COUNTERS", "METRICS_SCHEMA", "SCHEMA", "TRAFFIC_FIELDS",
           "chrome_trace", "critical_path", "metrics_rollup",
           "to_jsonl_lines", "traffic_matrix", "write_outputs"]
