"""Exporters for recorded traces.

Three views over the same event list, all deterministic (simulated
timestamps, sorted JSON keys, compact separators -- two runs with the
same seed/config produce byte-identical files):

* :func:`to_jsonl_lines` -- flat JSONL: a ``{"schema": ...}`` header
  line, then one event object per line (the archival format; schema
  ``repro-trace/1``).
* :func:`chrome_trace` -- Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto: one lane (tid) per simulated thread
  or rank plus a ``runtime`` lane for global events; regions and
  supersteps become matched ``B``/``E`` duration pairs, communication
  and fault events become instants on the issuing rank's lane, frontier
  sizes become a counter track.  1 mtu is rendered as 1 µs.
* :func:`metrics_rollup` -- counter time-series per region/superstep,
  per-phase aggregates with Table-1-style cache columns, the partition
  edge-cut next to the communication verb totals, and run totals
  (schema ``repro-metrics/2``).

All exporters emit valid, schema-complete documents for *empty* traces
(a tracer that recorded nothing) and for zero-duration spans (regions
whose lanes did no costed work): every top-level key is present, idle
zero-span lanes are dropped from the Chrome view instead of emitting
empty boxes, and no derived rate divides by zero.

:func:`write_outputs` writes all three into a directory (plus the
folded-stack flamegraph when asked).
"""

from __future__ import annotations

import json
import os

from repro.observability.events import SCHEMA
from repro.observability.hwcounters import TABLE1_COLUMNS

#: versioned schema tag for the metrics rollup
METRICS_SCHEMA = "repro-metrics/2"

#: the communication verb totals reported next to the edge cut
COMM_COUNTERS = ("messages", "msg_bytes", "collectives", "collective_bytes",
                 "remote_gets", "remote_puts", "remote_acc_int",
                 "remote_acc_float", "remote_bytes", "flushes")

#: event kinds rendered as B/E duration pairs on the runtime lane
_GLOBAL_SPANS = ("barrier", "stall")

#: event kinds rendered as instants on their lane
_INSTANTS = ("send", "inbox", "rma", "flush", "fault", "recovery",
             "switch", "schedule")


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False, default=_jsonable)


def _jsonable(o):
    # numpy scalars leak into event data from kernel code; coerce them
    # so the export never depends on numpy repr
    if hasattr(o, "item"):
        return o.item()
    return str(o)


def to_jsonl_lines(tracer) -> list[str]:
    """Header line + one compact JSON object per event."""
    return [_dumps(tracer.meta())] + [_dumps(ev.to_dict())
                                      for ev in tracer.events]


def chrome_trace(tracer) -> dict:
    """Chrome trace-event JSON (loadable in Perfetto).

    Lanes: tid ``0..P-1`` are the simulated threads/ranks, tid ``P`` is
    the ``runtime`` lane (barriers, stalls, switch/schedule decisions,
    unattributable fault events).  Every duration event is an explicit
    ``B``/``E`` pair with ``E.ts >= B.ts`` on the same lane.
    """
    P = tracer.rt.P
    meta = tracer.meta()
    lane_noun = "rank" if tracer.is_dm else "thread"
    out = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": f"repro {meta['runtime']} ({meta['machine']})"}},
    ]
    for t in range(P):
        out.append({"ph": "M", "pid": 0, "tid": t, "name": "thread_name",
                    "args": {"name": f"{lane_noun} {t}"}})
    out.append({"ph": "M", "pid": 0, "tid": P, "name": "thread_name",
                "args": {"name": "runtime"}})

    def span(name, ts, dur, tid, args=None):
        out.append({"ph": "B", "pid": 0, "tid": tid, "ts": ts,
                    "name": name, "args": args or {}})
        out.append({"ph": "E", "pid": 0, "tid": tid, "ts": ts + dur,
                    "name": name})

    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            spans = ev.data["spans"]
            deltas = ev.data["deltas"]
            sizes = ev.data.get("sizes")
            for t, s in enumerate(spans):
                args = {"delta": deltas[t]} if t < len(deltas) else {}
                if sizes is not None and t < len(sizes):
                    args["items"] = sizes[t]
                if s == 0.0 and not args.get("delta") and not args.get("items"):
                    # an idle lane (e.g. in a sequential region): a
                    # zero-duration empty box is degenerate, skip it
                    continue
                span(ev.label, ev.ts, s, t, args)
            span(ev.label, ev.ts, ev.dur, P,
                 {"index": ev.data["index"], "kind": ev.kind})
        elif ev.kind in _GLOBAL_SPANS:
            span(ev.label, ev.ts, ev.dur, P, dict(ev.data))
        elif ev.kind == "frontier":
            out.append({"ph": "C", "pid": 0, "tid": P, "ts": ev.ts,
                        "name": "frontier-size",
                        "args": {"size": ev.data["size"]}})
        elif ev.kind in _INSTANTS:
            tid = ev.lane if ev.lane is not None else P
            name = ev.label if ev.kind in ("switch", "schedule") \
                else f"{ev.kind}:{ev.label}"
            out.append({"ph": "i", "s": "t", "pid": 0, "tid": tid,
                        "ts": ev.ts, "name": name, "args": dict(ev.data)})
    return {"displayTimeUnit": "ms", "traceEvents": out,
            "otherData": meta}


def metrics_rollup(tracer) -> dict:
    """Counter time-series per region/superstep, plus phase/cut/run views.

    ``steps`` is the per-region/superstep table, ``series`` pivots it
    into one array per counter name, ``phases`` aggregates steps by
    their ``rt.annotate`` label (in first-occurrence order), ``cache``
    renders the phases as the paper's Table-1 cache columns (reads /
    writes / L1 / L2 / L3 / TLB misses plus the per-read L1 miss rate),
    ``cut`` is the partition edge-cut summary (``null`` when the tracer
    was attached without a graph) and ``comm`` the communication verb
    totals it bounds, ``frontier`` collects the traversal samples, and
    ``totals`` are the reconciled run totals.
    """
    steps = []
    frontier = []
    phase_order: list[str] = []
    phases: dict[str, dict] = {}
    for ev in tracer.events:
        if ev.kind in ("region", "superstep"):
            counters: dict[str, float] = {}
            for d in ev.data["deltas"]:
                for k, v in d.items():
                    counters[k] = counters.get(k, 0) + v
            steps.append({"index": ev.data["index"], "kind": ev.kind,
                          "label": ev.label, "ts": ev.ts, "time": ev.dur,
                          "counters": counters})
            agg = phases.get(ev.label)
            if agg is None:
                phase_order.append(ev.label)
                agg = phases[ev.label] = {"label": ev.label, "events": 0,
                                          "time": 0.0, "counters": {}}
            agg["events"] += 1
            agg["time"] += ev.dur
            for k, v in counters.items():
                agg["counters"][k] = agg["counters"].get(k, 0) + v
        elif ev.kind == "frontier":
            frontier.append(dict(ev.data))
    names = sorted({k for s in steps for k in s["counters"]})
    series = {k: [s["counters"].get(k, 0) for s in steps] for k in names}
    traced = tracer.traced_totals()
    totals = traced.to_dict()
    phase_rows = [phases[label] for label in phase_order]
    return {
        "schema": METRICS_SCHEMA,
        "meta": tracer.meta(),
        "time_mtu": tracer.rt.time - tracer.start_time,
        "steps": steps,
        "series": series,
        "phases": phase_rows,
        "cache": _cache_view(phase_rows),
        "cut": tracer.cut,
        "comm": {k: totals[k] for k in COMM_COUNTERS if totals[k]},
        "frontier": frontier,
        "totals": {k: v for k, v in totals.items() if v},
    }


def _cache_view(phase_rows: list[dict]) -> dict:
    """Table-1-style cache columns per phase (always schema-complete)."""
    rows = []
    for phase in phase_rows:
        c = phase["counters"]
        row = {"label": phase["label"]}
        for k in TABLE1_COLUMNS:
            row[k] = int(c.get(k, 0))
        reads = row["reads"]
        row["l1_per_read"] = (row["l1_misses"] / reads) if reads else 0.0
        rows.append(row)
    return {"columns": list(TABLE1_COLUMNS) + ["l1_per_read"], "rows": rows}


def write_outputs(tracer, outdir: str, flame: bool = False) -> dict:
    """Write ``events.jsonl``, ``trace.json``, ``metrics.json``.

    With ``flame=True`` also writes the folded-stack flamegraph
    ``flame.folded``.  Returns ``{"jsonl": path, "chrome": path,
    "metrics": path[, "flame": path]}``.
    """
    os.makedirs(outdir, exist_ok=True)
    paths = {
        "jsonl": os.path.join(outdir, "events.jsonl"),
        "chrome": os.path.join(outdir, "trace.json"),
        "metrics": os.path.join(outdir, "metrics.json"),
    }
    with open(paths["jsonl"], "w") as fh:
        fh.write("\n".join(to_jsonl_lines(tracer)) + "\n")
    with open(paths["chrome"], "w") as fh:
        fh.write(_dumps(chrome_trace(tracer)) + "\n")
    with open(paths["metrics"], "w") as fh:
        fh.write(_dumps(metrics_rollup(tracer)) + "\n")
    if flame:
        from repro.observability.flame import write_flame
        paths["flame"] = write_flame(tracer, os.path.join(outdir,
                                                          "flame.folded"))
    return paths


__all__ = ["COMM_COUNTERS", "METRICS_SCHEMA", "SCHEMA", "chrome_trace",
           "metrics_rollup", "to_jsonl_lines", "write_outputs"]
