"""Config-vs-config speedup tables (``repro bench speedup``).

The paper's headline results are *comparative* -- Figures 5-9 report
who wins (push vs. pull, MP vs. RMA, per machine and scale) and by
what factor.  ``repro bench diff`` can only compare a configuration
against its own committed baseline; this module joins the cells of one
(or two) ``repro-bench/*`` documents across a chosen *axis* and emits
deterministic "winner by factor" tables with per-counter attribution
of why the winner wins -- the ``repro-speedup/1`` document.

A *pair* is ``a:b`` where both tokens name values of one cell axis:

========== ==========================================================
axis       tokens
========== ==========================================================
variant    ``push`` ``pull`` ``push-pa`` ``switching`` ``mp``
runtime    ``sm`` ``dm``
engine     ``interpreted`` ``batched``
family     ``baseline`` ``large``
resolved   anything else: prefix-matched against ``resolved_variant``
           (``mp:rma`` compares the message-passing DM backend with
           the best one-sided one, Figure 3's MP >> RMA comparison)
========== ==========================================================

Cells are grouped by every key field *except* the pair's axis (the
same algorithm/variant/runtime/family key ``repro bench diff`` uses);
within a group the fastest matching cell represents each side, so a
``resolved`` token matching several cells (``rma`` -> ``rma-push`` and
``rma-pull``) compares against the best of them.  A group where one
side has no cell becomes a *hole* -- reported in the document and the
markdown, never an error: the committed baseline legitimately has no
``mp`` cells, and the large family no DM cells.

The per-row ``attribution`` applies the machine's per-counter time
weights (:meth:`repro.machine.cost_model.MachineSpec.time_parts`) to
both sides' counter totals and ranks the differences: it decomposes
the gap in *lane-summed work time* (counters are summed over lanes,
while ``time_mtu`` is the BSP max), so it is directional -- it names
the counters the gap lives in (atomics vs. remote_bytes vs. cache
misses), not an exact partition of the factor.

Schema-version mismatches between the two documents fail fast with the
same ``regenerate the older document`` message as ``repro bench diff``
(CLI exit code 2) instead of joining incomparable cells.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields

from repro.machine.counters import PerfCounters
from repro.machine.cost_model import MACHINES
from repro.observability.regress import BenchDiffError, load_baseline

#: versioned schema tag of the speedup document
SPEEDUP_SCHEMA = "repro-speedup/1"

#: the cell axes a pair token can select, with their legal tokens
AXIS_TOKENS = {
    "variant": ("push", "pull", "push-pa", "switching", "mp"),
    "runtime": ("sm", "dm"),
    "engine": ("interpreted", "batched"),
    "family": ("baseline", "large"),
}

#: how many weighted counter deltas each row's attribution keeps
ATTRIBUTION_TOP = 6

_COUNTER_FIELDS = {f.name for f in dataclass_fields(PerfCounters)}


def _axis_of(a: str, b: str) -> str:
    for axis, tokens in AXIS_TOKENS.items():
        if a in tokens and b in tokens:
            return axis
    return "resolved"


def _matches(cell: dict, axis: str, token: str) -> bool:
    if axis == "variant":
        return cell.get("variant") == token
    if axis == "runtime":
        return cell.get("runtime") == token
    if axis == "engine":
        return cell.get("engine") == token
    if axis == "family":
        return cell.get("family", "baseline") == token
    resolved = cell.get("resolved_variant", cell.get("variant", ""))
    return resolved == token or resolved.startswith(token + "-")


def _group_key(cell: dict, axis: str) -> str:
    parts = {
        "algorithm": cell.get("algorithm", "?"),
        "variant": cell.get("variant", "?"),
        "runtime": cell.get("runtime", "?"),
        "family": cell.get("family", "baseline"),
    }
    if axis in parts:
        parts[axis] = "*"
    elif axis == "resolved":
        parts["variant"] = "*"
    return "/".join(parts.values())


def _side(token: str, cell: dict) -> dict:
    side = {
        "token": token,
        "variant": cell.get("variant"),
        "resolved_variant": cell.get("resolved_variant",
                                     cell.get("variant")),
        "runtime": cell.get("runtime"),
        "engine": cell.get("engine"),
        "family": cell.get("family", "baseline"),
        "time_mtu": float(cell["time_mtu"]),
    }
    if "critical" in cell:
        side["critical"] = cell["critical"]
    return side


def _counters(d: dict) -> PerfCounters:
    return PerfCounters(**{k: v for k, v in d.items()
                           if k in _COUNTER_FIELDS})


def _attribution(left: dict, right: dict) -> dict:
    """Ranked per-counter time deltas (left minus right).

    A positive delta means the left side spends more on that counter.
    With a known machine the deltas are in weighted mtu of lane-summed
    work; an unknown machine falls back to raw count differences.
    """
    lc, rc = left.get("counters", {}), right.get("counters", {})
    machine = MACHINES.get(str(left.get("machine", "")).split("/")[0])
    if machine is None:
        deltas = {k: float(lc.get(k, 0)) - float(rc.get(k, 0))
                  for k in set(lc) | set(rc) if k in _COUNTER_FIELDS}
        unit = "count"
    else:
        lp = machine.time_parts(_counters(lc))
        rp = machine.time_parts(_counters(rc))
        deltas = {k: lp.get(k, 0.0) - rp.get(k, 0.0)
                  for k in set(lp) | set(rp)}
        unit = "mtu"
    top = sorted((k for k in deltas if deltas[k]),
                 key=lambda k: (-abs(deltas[k]), k))[:ATTRIBUTION_TOP]
    return {"unit": unit,
            "leaders": [{"counter": k, "delta": deltas[k]} for k in top]}


def _row(pair: str, axis: str, key: str, a: str, b: str,
         left: dict, right: dict) -> dict:
    lt, rt = float(left["time_mtu"]), float(right["time_mtu"])
    winner = a if lt <= rt else b
    slower, faster = max(lt, rt), min(lt, rt)
    return {
        "pair": pair,
        "axis": axis,
        "key": key,
        "left": _side(a, left),
        "right": _side(b, right),
        "winner": winner,
        "factor": (slower / faster) if faster > 0 else None,
        "attribution": _attribution(left, right),
    }


def _parse_pairs(spec) -> list[tuple[str, str]]:
    tokens = []
    items = spec.split(",") if isinstance(spec, str) else list(spec)
    for item in items:
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        if len(parts) != 2 or not all(parts) or parts[0] == parts[1]:
            raise BenchDiffError(
                f"bad pair {item!r}: expected two distinct axis tokens "
                f"as 'a:b' (e.g. push:pull, sm:dm, mp:rma)")
        tokens.append((parts[0], parts[1]))
    if not tokens:
        raise BenchDiffError("no pairs given")
    return tokens


def speedup_cells(cells: list[dict], pairs) -> dict:
    """Join ``cells`` over every pair; returns the rows/holes core."""
    rows: list[dict] = []
    holes: list[dict] = []
    covered: set[int] = set()
    parsed = _parse_pairs(pairs)
    for a, b in parsed:
        pair = f"{a}:{b}"
        axis = _axis_of(a, b)
        groups: dict[str, dict[str, list]] = {}
        for i, cell in enumerate(cells):
            for side, token in (("left", a), ("right", b)):
                if _matches(cell, axis, token):
                    g = groups.setdefault(_group_key(cell, axis),
                                          {"left": [], "right": []})
                    g[side].append((i, cell))
        for key in sorted(groups):
            g = groups[key]
            if not g["left"] or not g["right"]:
                missing = "left" if not g["left"] else "right"
                holes.append({
                    "pair": pair, "key": key, "missing": missing,
                    "missing_token": a if missing == "left" else b,
                    "present_cells": len(g["left"]) + len(g["right"]),
                })
                continue
            li, lc = min(g["left"], key=lambda ic: float(ic[1]["time_mtu"]))
            ri, rc = min(g["right"], key=lambda ic: float(ic[1]["time_mtu"]))
            covered.update(i for i, _ in g["left"])
            covered.update(i for i, _ in g["right"])
            rows.append(_row(pair, axis, key, a, b, lc, rc))
    rows.sort(key=lambda r: (r["pair"], r["key"]))
    holes.sort(key=lambda h: (h["pair"], h["key"]))
    return {"pairs": [f"{a}:{b}" for a, b in parsed], "rows": rows,
            "holes": holes, "cells_covered": len(covered),
            "cells_total": len(cells)}


def build_speedup(source_path: str, against_path: str | None = None,
                  pairs="push:pull") -> dict:
    """Load, validate, join; returns the ``repro-speedup/1`` document.

    Raises :class:`BenchDiffError` on malformed input, a bad pair
    spec, or a schema-version mismatch between the two documents.
    """
    source = load_baseline(source_path)
    cells = list(source["cells"])
    meta = {"source": {"path": source_path,
                       "schema": source.get("schema"),
                       "kind": source.get("kind", "trace"),
                       "cells": len(cells)}}
    if against_path is not None:
        against = load_baseline(against_path)
        if against.get("schema") != source.get("schema"):
            raise BenchDiffError(
                f"schema mismatch: {source_path!r} is "
                f"{source.get('schema')!r}, {against_path!r} is "
                f"{against.get('schema')!r} -- regenerate the older "
                f"document before comparing")
        meta["against"] = {"path": against_path,
                           "schema": against.get("schema"),
                           "kind": against.get("kind", "trace"),
                           "cells": len(against["cells"])}
        cells += list(against["cells"])
    doc = {"schema": SPEEDUP_SCHEMA, **meta}
    doc.update(speedup_cells(cells, pairs))
    return doc


def _fmt(v: float) -> str:
    return f"{v:,.0f}"


def markdown(doc: dict) -> str:
    """Paper-style winner-by-factor tables, one section per pair."""
    lines = ["# Speedup tables (repro-speedup/1)", ""]
    for pair in doc["pairs"]:
        a, b = pair.split(":")
        rows = [r for r in doc["rows"] if r["pair"] == pair]
        holes = [h for h in doc["holes"] if h["pair"] == pair]
        lines += [f"## {a} vs {b}", ""]
        if rows:
            lines += [
                f"| cell | {a} (mtu) | {b} (mtu) | winner | factor "
                f"| why (top weighted counter deltas) |",
                "|---|---:|---:|---|---:|---|",
            ]
            for r in rows:
                why = ", ".join(
                    f"{ld['counter']} {ld['delta']:+,.0f}"
                    for ld in r["attribution"]["leaders"][:3]) or "—"
                factor = ("n/a" if r["factor"] is None
                          else f"{r['factor']:.2f}x")
                lines.append(
                    f"| {r['key']} | {_fmt(r['left']['time_mtu'])} "
                    f"| {_fmt(r['right']['time_mtu'])} | {r['winner']} "
                    f"| {factor} | {why} |")
            lines.append("")
        for h in holes:
            lines.append(f"- hole: {h['key']} has no "
                         f"`{h['missing_token']}` cell "
                         f"({h['present_cells']} on the other side)")
        if holes:
            lines.append("")
        if not rows and not holes:
            lines += ["no cells match either side of this pair", ""]
    return "\n".join(lines).rstrip() + "\n"


def summary(doc: dict) -> list[str]:
    """One line per row/hole for the plain CLI output."""
    out = [f"bench speedup: {len(doc['rows'])} comparison(s), "
           f"{len(doc['holes'])} hole(s), "
           f"{doc['cells_covered']}/{doc['cells_total']} cells covered"]
    for r in doc["rows"]:
        lead = r["attribution"]["leaders"]
        why = f" ({lead[0]['counter']})" if lead else ""
        factor = "n/a" if r["factor"] is None else f"{r['factor']:.2f}x"
        out.append(f"  [{r['pair']}] {r['key']}: {r['winner']} wins "
                   f"by {factor}{why}")
    for h in doc["holes"]:
        out.append(f"  [{h['pair']}] {h['key']}: hole -- no "
                   f"{h['missing_token']!r} cell")
    return out


def speedup_main(args) -> int:
    """Back the ``repro bench speedup`` CLI subcommand."""
    import sys

    try:
        doc = build_speedup(args.doc, against_path=args.against,
                            pairs=args.pairs)
    except BenchDiffError as exc:
        print(f"bench speedup: error: {exc}", file=sys.stderr)
        return 2
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=1, allow_nan=False)
            fh.write("\n")
    if args.markdown:
        print(markdown(doc), end="")
    else:
        for line in summary(doc):
            print(line)
    return 0


__all__ = [
    "ATTRIBUTION_TOP",
    "AXIS_TOKENS",
    "SPEEDUP_SCHEMA",
    "build_speedup",
    "markdown",
    "speedup_cells",
    "speedup_main",
    "summary",
]
