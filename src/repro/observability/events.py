"""The typed trace-event model and its versioned schema.

Every record a :class:`~repro.observability.tracer.Tracer` emits is one
:class:`TraceEvent`.  Timestamps are **simulated** machine time units
(mtu) -- the same clock as ``rt.time`` -- so traces are bit-identical
across runs of the same (kernel, graph, config, fault plan) and carry
no wall-clock noise.

Event kinds
-----------
``region``
    One SM parallel region (or ``sequential`` phase).  ``lane`` is
    ``None`` (the per-thread expansion lives in ``data["spans"]``);
    ``dur`` is the region's simulated span under the core/SMT
    topology.  ``data``: ``index``, ``spans`` (per-thread mtu),
    ``deltas`` (per-thread nonzero :class:`PerfCounters` fields),
    ``sizes`` (items per thread, when launched via ``parallel_for``),
    ``sequential`` (bool), and -- only when the SM fault layer
    stretched a lane -- ``stalls`` (per-thread injected span stretch in
    mtu: straggler factor, lock-preempt waits; the flamegraph exporter
    carves these into per-lane ``[stall]`` frames).
``superstep``
    One DM superstep.  ``data``: ``index``, ``spans`` (per-rank mtu
    after straggler stretch), ``deltas`` (per-rank counter deltas,
    including any recovery work charged inside the boundary), and
    ``stall`` (the barrier-level recovery wait).
``barrier``
    A barrier episode; ``dur`` is ``w_barrier``; ``data["barriers"]``
    is the number of per-thread barrier counter increments (= P).
``stall``
    Recovery wait gating a superstep's or SM region's barrier (retry
    backoff, redelivery, restart timeouts, store-buffer fences);
    strictly-additive time, carrying no counters -- so
    :meth:`Tracer.reconcile` holds under faults by construction.
``frontier``
    Frontier evolution of a traversal: ``data`` has ``iteration``,
    ``size``, ``density`` (size / n), and ``edges`` when the caller
    measured the frontier's out-edges.
``switch``
    A push<->pull direction decision, with the operand values that
    produced it (``data``: ``iteration``, ``previous``, ``chosen``,
    plus the policy operands, e.g. ``frontier_edges``,
    ``unexplored_edges``, ``frontier_size``, ``n``).
``schedule``
    A loop-scheduling decision: ``data`` has ``policy`` (static /
    dynamic / by-owner), ``items``, ``chunk``, and per-thread
    ``sizes``.
``send`` / ``inbox`` / ``rma`` / ``flush``
    DM communication verbs, on the issuing rank's lane; ``data``
    carries destination/tag/window/dtype/op counts as applicable.
``fault`` / ``recovery``
    Injected fault events and the paired recovery actions from
    :mod:`repro.runtime.faults` and :mod:`repro.runtime.sm_faults`;
    ``label`` is the fault-schedule kind (``drop``, ``retry``,
    ``crash``, ``restart``, ``rma-replay``, ``straggler``,
    ``cas-lost``, ``cas-retry``, ``store-delay``, ``store-fence``, ...)
    and ``lane`` the affected rank/thread where attributable.

The JSONL export writes a header line ``{"schema": SCHEMA, ...}``
followed by one event object per line; consumers must check the
schema string before parsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: versioned schema tag written in the JSONL header line
SCHEMA = "repro-trace/1"

#: fault-injector schedule kinds that are *recovery* actions (the rest
#: are injected faults)
RECOVERY_KINDS = frozenset({
    "retry", "retry-a2a", "rma-replay", "restart", "deliver-late",
    "cas-retry", "store-fence",
})


@dataclass(frozen=True)
class TraceEvent:
    """One typed, simulated-time-stamped trace record."""

    seq: int                  #: emission index (total order of the run)
    kind: str                 #: event kind (see module docstring)
    ts: float                 #: simulated start time (mtu)
    dur: float = 0.0          #: simulated duration (0 = instant)
    lane: int | None = None   #: thread/rank lane; None = runtime-global
    label: str = ""           #: human-readable name (region label, verb...)
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat dict for the JSONL export (stable key set)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "ts": self.ts,
            "dur": self.dur,
            "lane": self.lane,
            "label": self.label,
            "data": self.data,
        }

    def approx_nbytes(self) -> int:
        """Cheap, deterministic estimate of this record's Python heap
        footprint -- what a :class:`~repro.observability.sinks.BufferSink`
        charges its memory accounting per retained event.  It is an
        O(size-of-event) shallow walk (CPython object-header constants,
        no ``sys.getsizeof`` recursion), so the trace layer can report
        peak sink memory without measurably slowing emission."""
        return 176 + 49 + len(self.label) + approx_value_nbytes(self.data)


def approx_value_nbytes(v) -> int:
    """Approximate heap bytes of one JSON-shaped value (see above)."""
    if isinstance(v, dict):
        return 64 + sum(56 + len(k) + approx_value_nbytes(x)
                        for k, x in v.items())
    if isinstance(v, (list, tuple)):
        return 56 + sum(8 + approx_value_nbytes(x) for x in v)
    if isinstance(v, str):
        return 49 + len(v)
    return 28
