"""Hardware-counter attribution for traced runs (the paper's Table 1).

The paper explains *why* push beats pull (or vice versa) with PAPI
cache counters: pull variants issue random reads of neighbor state
while push variants stream adjacency arrays, so the two directions
show very different L1/L2/L3/TLB miss columns (Section 6.1, Table 1).
The repo has carried a trace-driven cache/TLB simulator since the
seed (:mod:`repro.machine.cache` behind
:class:`~repro.machine.memory.CacheSimMemory`), but traced runs used
the analytic :class:`~repro.machine.memory.CountingMemory`, whose
miss estimates round to zero on the small stand-in instances -- trace
spans carried no cache columns at all.

:func:`equip_cache_sim` closes that gap: it shrinks the runtime's
machine geometry (the same ``MachineSpec.scaled`` convention every
experiment uses to restore the out-of-cache regime, DESIGN.md §2) and
swaps in a :class:`CacheSimMemory` with one private L1/L2/TLB per
lane -- L3 shared for SM threads, private per rank for DM processes
(separate nodes).  From then on every region/superstep delta the
tracer snapshots carries exact per-lane miss counts, and
:meth:`Tracer.reconcile` covers them like any other
:class:`~repro.machine.counters.PerfCounters` field.

:func:`cache_table` renders a rollup's per-phase cache columns the
way Table 1 does; :func:`miss_asymmetry` extracts the push-vs-pull
miss-rate comparison the paper builds its direction arguments on.
"""

from __future__ import annotations

from repro.machine.memory import CacheSimMemory

#: the PerfCounters fields that come from the cache/TLB simulation
CACHE_COUNTERS = ("l1_misses", "l2_misses", "l3_misses", "tlb_d_misses")

#: Table-1 column order: memory traffic, then the miss hierarchy
TABLE1_COLUMNS = ("reads", "writes") + CACHE_COUNTERS

#: default cache-shrink factor for traced runs (matches ``repro run``)
DEFAULT_CACHE_SCALE = 64


def equip_cache_sim(rt, cache_scale: int = DEFAULT_CACHE_SCALE
                    ) -> CacheSimMemory:
    """Re-equip a runtime with a trace-driven cache simulation.

    Scales the runtime's machine geometry down by ``cache_scale`` and
    installs a fresh :class:`CacheSimMemory` over the scaled hierarchy
    with one lane per simulated thread/rank.  DM runtimes get private
    L3s (ranks live on different nodes); SM threads share one L3 slice
    (the paper's Xeons).  Call before running the kernel -- the new
    model starts cold and registers arrays on first use.
    """
    is_dm = hasattr(rt, "superstep")
    if cache_scale and cache_scale > 1:
        rt.machine = rt.machine.scaled(cache_scale)
    mem = CacheSimMemory(rt.machine.hierarchy, n_threads=rt.P,
                         shared_l3=not is_dm)
    rt.mem = mem
    counters = rt.proc_counters if is_dm else rt.thread_counters
    mem.set_counters(counters[0])
    return mem


def cache_table(rollup: dict) -> list[dict]:
    """Table-1-style rows from a ``repro-metrics/2`` rollup.

    One row per phase label: the Table-1 columns plus derived
    ``l1_per_read`` (the miss-rate the paper's push/pull cache argument
    turns on).  Zero-read phases report a rate of 0.0.
    """
    rows = []
    for phase in rollup.get("phases", []):
        c = phase["counters"]
        row = {"label": phase["label"], "time": phase["time"]}
        for k in TABLE1_COLUMNS:
            row[k] = int(c.get(k, 0))
        reads = row["reads"]
        row["l1_per_read"] = (row["l1_misses"] / reads) if reads else 0.0
        rows.append(row)
    return rows


def miss_rates(counters: dict) -> dict:
    """Per-read miss rates for one counter dict (cell, phase, or run)."""
    reads = counters.get("reads", 0)
    if not reads:
        return {k: 0.0 for k in CACHE_COUNTERS}
    return {k: counters.get(k, 0) / reads for k in CACHE_COUNTERS}


def miss_asymmetry(push_counters: dict, pull_counters: dict) -> dict:
    """Compare push vs pull miss rates (paper Section 6.1).

    Returns ``{counter: pull_rate - push_rate}`` -- positive values
    mean the pull variant misses more per read, the signature of its
    random neighbor-state reads vs push's streamed adjacency scans.
    """
    push = miss_rates(push_counters)
    pull = miss_rates(pull_counters)
    return {k: pull[k] - push[k] for k in CACHE_COUNTERS}


__all__ = [
    "CACHE_COUNTERS",
    "DEFAULT_CACHE_SCALE",
    "TABLE1_COLUMNS",
    "cache_table",
    "equip_cache_sim",
    "miss_asymmetry",
    "miss_rates",
]
