"""The ``python -m repro trace`` entry point.

Runs one kernel (pagerank / bfs / sssp) on a deterministic generated
instance with a :class:`~repro.observability.tracer.Tracer` attached,
optionally on the DM runtime and optionally under the default chaos
fault plan, then writes all three exports into a directory::

    python -m repro trace pagerank --variant push --out /tmp/t
    python -m repro trace pagerank --variant pull --flame --out /tmp/t
    python -m repro trace pagerank --variant push --dm --faults --out /tmp/t
    python -m repro trace bfs --variant push --faults --flame --out /tmp/t
    python -m repro trace --bench --out BENCH_trace.json

By default the run is equipped with the trace-driven cache simulation
(:func:`repro.observability.hwcounters.equip_cache_sim`), so every
span delta and the metrics rollup carry the Table-1 L1/L2/L3/TLB miss
columns; ``--cache-scale 0`` falls back to flat counting memory.
Everything is seeded, so two invocations with the same flags produce
byte-identical ``events.jsonl`` / ``trace.json`` / ``metrics.json`` /
``flame.folded``.
"""

from __future__ import annotations

from repro.observability.export import write_outputs
from repro.observability.hwcounters import DEFAULT_CACHE_SCALE, equip_cache_sim
from repro.observability.tracer import attach_tracer

#: kernels the trace driver knows how to launch
TRACE_ALGORITHMS = ("pagerank", "bfs", "sssp", "cc")

#: execution engines: "interpreted" = per-element MemoryModel calls,
#: "batched" = stream-emitting kernels (repro.streams) replaying numpy
#: op batches -- byte-identical counters, far less Python dispatch
TRACE_ENGINES = ("interpreted", "batched")


def default_fault_plan(seed: int = 1):
    """The chaos plan ``--faults --dm`` injects: every fault class
    enabled at rates that make recovery near-certain on a short run."""
    from repro.runtime.faults import FaultPlan
    return FaultPlan(seed=seed, drop=0.15, duplicate=0.05, delay=0.05,
                     rma_lost=0.2, rma_duplicate=0.1, straggler=0.1,
                     crash=0.05)


def default_sm_fault_plan(seed: int = 1):
    """The SM twin: every SM fault class enabled, crash included, so a
    traced run shows stragglers, retries, fences, and rollbacks."""
    from repro.runtime.sm_faults import SMFaultPlan
    return SMFaultPlan(seed=seed, straggler=0.1, lock_preempt=0.1,
                       cas_lost=0.05, cas_duplicate=0.05, store_delay=0.05,
                       crash=0.05)


def _dispatch(algorithm: str, variant: str, g, rt, dm: bool,
              iterations: int, engine: str = "interpreted"):
    if engine not in TRACE_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {TRACE_ENGINES}")
    batched = engine == "batched" and not dm
    # DM kernels already emit their communication as per-superstep verb
    # batches (alltoallv, staged RMA), so the batched engine treats DM
    # cells as an exact passthrough (docs/streams.md)
    if batched and variant in ("switching", "push-pa", "mp"):
        raise ValueError(
            f"variant {variant!r} has no batched kernel; the batched "
            "engine covers the plain push/pull kernels")
    if algorithm == "pagerank":
        if dm:
            from repro.algorithms.dm_pagerank import dm_pagerank
            resolved = {"push": "rma-push", "pull": "rma-pull"}.get(
                variant, variant)
            return resolved, dm_pagerank(g, rt, variant=resolved,
                                         iterations=iterations)
        if batched:
            from repro.streams.kernels import pagerank_batched
            return variant, pagerank_batched(g, rt, direction=variant,
                                             iterations=iterations)
        from repro.algorithms.pagerank import pagerank
        return variant, pagerank(g, rt, direction=variant,
                                 iterations=iterations)
    if algorithm == "bfs":
        if dm:
            from repro.algorithms.dm_bfs import dm_bfs
            return variant, dm_bfs(g, rt, root=0, variant=variant)
        if variant == "switching":
            from repro.strategies.switching import direction_optimizing_bfs
            return variant, direction_optimizing_bfs(g, rt, root=0)
        if batched:
            from repro.streams.kernels import bfs_batched
            return variant, bfs_batched(g, rt, root=0, direction=variant)
        from repro.algorithms.bfs import bfs
        return variant, bfs(g, rt, root=0, direction=variant)
    if algorithm == "sssp":
        if dm:
            from repro.algorithms.dm_sssp import dm_sssp_delta
            return variant, dm_sssp_delta(g, rt, source=0, variant=variant)
        if batched:
            from repro.streams.kernels import sssp_delta_batched
            return variant, sssp_delta_batched(g, rt, source=0,
                                               direction=variant)
        from repro.algorithms.sssp_delta import sssp_delta
        return variant, sssp_delta(g, rt, source=0, direction=variant)
    if algorithm == "cc":
        if dm:
            raise ValueError("cc has no DM kernel; drop --dm")
        if batched:
            from repro.streams.kernels import cc_batched
            return variant, cc_batched(g, rt, direction=variant)
        from repro.algorithms.connected_components import connected_components
        return variant, connected_components(g, rt, direction=variant)
    raise ValueError(
        f"unknown algorithm {algorithm!r}; choose from {TRACE_ALGORITHMS}")


def run_traced(algorithm: str, variant: str = "push", dm: bool = False,
               faults: bool = False, dataset: str = "er", n: int = 96,
               P: int = 4, seed: int = 7, iterations: int = 5,
               fault_seed: int = 1, cache_scale: int = DEFAULT_CACHE_SCALE,
               attach=None, engine: str = "interpreted", sinks=None,
               wallclock: bool = False, traced: bool = True):
    """Run one kernel under a fresh tracer.

    Returns ``(rt, tracer, resolved_variant, result)``.  ``faults``
    attaches the runtime's chaos injector under its default plan
    (:func:`default_fault_plan` / :func:`default_sm_fault_plan`); on
    the SM side this also forces the batched engine onto its oracle
    lowering, so both engines observe the same fault schedule.  A
    nonzero
    ``cache_scale`` swaps in the trace-driven cache simulator (scaled
    down by that factor) so span deltas carry cache/TLB miss counters;
    ``cache_scale=0`` keeps the runtime's flat counting memory.
    ``attach``, when given, is called with the fully equipped runtime
    right before dispatch -- the hook the effect-inference layer uses to
    install its dynamic write-footprint recorder.  ``engine="batched"``
    dispatches to the stream-emitting kernels (:mod:`repro.streams`);
    counters, span deltas, and results are byte-identical to the
    interpreted kernels (certified by tests/test_streams_differential).

    ``sinks`` selects the tracer's retention strategy
    (:mod:`repro.observability.sinks`; default: one buffering sink).
    ``wallclock=True`` attaches the wall-clock self-profiler.
    ``traced=False`` skips the tracer entirely (``tracer`` comes back
    ``None``) -- the untraced twin the overhead measurement compares
    against.
    """
    from repro.analysis.runner import instance_graph
    g = instance_graph(dataset, n, d_bar=4.0, seed=seed,
                       weighted=(algorithm == "sssp"))
    if dm:
        from repro.runtime.dm import DMRuntime
        rt = DMRuntime(g.n, P)
    else:
        from repro.runtime.sm import SMRuntime
        rt = SMRuntime(g, P)
    if cache_scale:
        equip_cache_sim(rt, cache_scale=cache_scale)
    tracer = attach_tracer(rt, graph=g, sinks=sinks) if traced else None
    if tracer is not None and wallclock:
        tracer.enable_wallclock()
    if faults:
        if dm:
            from repro.runtime.faults import attach_fault_injector
            attach_fault_injector(rt, default_fault_plan(fault_seed))
        else:
            from repro.runtime.sm_faults import attach_sm_fault_injector
            attach_sm_fault_injector(rt, default_sm_fault_plan(fault_seed))
    if attach is not None:
        attach(rt)
    resolved, result = _dispatch(algorithm, variant, g, rt, dm, iterations,
                                 engine=engine)
    return rt, tracer, resolved, result


def _make_sinks(args):
    """Build the sink list the ``--sink`` flag selects (None = default
    buffer).  The streaming sink opens its file at attach, so the
    output directory is created here."""
    import os

    from repro.observability.sinks import (
        JsonlStreamSink, RollupSink, SamplingSink,
    )
    if args.sink == "buffer":
        return None
    if args.sink == "rollup":
        return [RollupSink()]
    if args.sink == "sampling":
        return [SamplingSink(max_events=args.sample_events,
                             seed=args.sample_seed)]
    # stream: constant-memory JSONL plus the online rollup so
    # metrics.json and the reconciliation checks still exist
    os.makedirs(args.out, exist_ok=True)
    return [JsonlStreamSink(os.path.join(args.out, "events.jsonl")),
            RollupSink()]


def trace_main(args) -> int:
    """Back the ``repro trace`` CLI subcommand; returns an exit code."""
    if args.bench:
        from repro.harness.bench import write_bench
        paths = write_bench(args.out, engine=args.engine)
        print(f"wrote perf baseline: {paths['trace']}")
        print(f"wrote perf rollup:   {paths['perf']}")
        return 0
    if args.algorithm is None:
        print("error: an algorithm is required unless --bench is given")
        return 2
    budget = args.overhead_budget
    wallclock = args.wallclock or budget is not None
    config = dict(
        variant=args.variant, dm=args.dm, faults=args.faults,
        dataset=args.dataset, n=args.scale, P=args.procs, seed=args.seed,
        iterations=args.iterations, fault_seed=args.fault_seed,
        cache_scale=args.cache_scale, engine=args.engine)
    untraced_s = None
    if wallclock:
        import time

        # warm the kernel/engine imports on a tiny instance so neither
        # timed run pays first-import cost, then time the untraced twin
        warm = dict(config, n=min(96, args.scale), iterations=1)
        run_traced(args.algorithm, **warm, traced=False)
        t0 = time.perf_counter()
        run_traced(args.algorithm, **config, traced=False)
        untraced_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        rt, tracer, resolved, _result = run_traced(
            args.algorithm, **config, sinks=_make_sinks(args),
            wallclock=True)
        tracer.wallclock.finish(
            traced_s=time.perf_counter() - t0, untraced_s=untraced_s,
            peak_sink_bytes=tracer.peak_sink_bytes)
    else:
        rt, tracer, resolved, _result = run_traced(
            args.algorithm, **config, sinks=_make_sinks(args))
    paths = write_outputs(tracer, args.out, flame=args.flame)
    from repro.observability.sinks import format_bytes
    kinds = tracer.kind_counts
    runtime = "dm" if args.dm else "sm"
    print(f"traced {args.algorithm}/{resolved} [{runtime}] on "
          f"{args.dataset} n={args.scale} P={args.procs}: "
          f"{tracer.n_events} events, {rt.time:,.0f} mtu")
    print("  " + "  ".join(f"{k}={kinds[k]}" for k in sorted(kinds)))
    print("  sinks: " + ", ".join(s.name for s in tracer.sinks)
          + f"  events={tracer.n_events}"
          + f"  peak-sink-mem={format_bytes(tracer.peak_sink_bytes)}")
    traced, actual = tracer.reconcile()
    status = "ok" if traced.to_dict() == actual.to_dict() else "MISMATCH"
    print(f"  counter reconciliation: {status}")
    crit = tracer.critical_totals()
    tstatus = "ok" if crit["reconciled"] else "MISMATCH"
    print(f"  time decomposition: {tstatus} "
          f"(compute={crit['compute']:,.0f} comm={crit['comm']:,.0f} "
          f"sync={crit['sync']:,.0f} "
          f"stall={crit['injected_stall'] + crit['recovery_stall']:,.0f} "
          f"off-path={crit['off_path_idle']:,.0f})")
    if wallclock:
        wc = tracer.wallclock
        rate = wc.events / wc.traced_s if wc.traced_s else 0.0
        print(f"  wallclock: traced={wc.traced_s:.3f}s "
              f"untraced={untraced_s:.3f}s "
              f"overhead={wc.overhead_x:.2f}x "
              f"({rate:,.0f} events/s)")
    for key in ("jsonl", "chrome", "metrics", "flame"):
        if key in paths:
            print(f"  {key}: {paths[key]}")
    skipped = [k for k in (("chrome", "metrics")
                           + (("flame",) if args.flame else ()))
               if k not in paths]
    if skipped:
        print("  skipped (no sink retains what these need): "
              + ", ".join(skipped))
    ok = status == "ok" and tstatus == "ok"
    if budget is not None and wc.overhead_x is not None \
            and wc.overhead_x > budget:
        print(f"  OVERHEAD BUDGET EXCEEDED: {wc.overhead_x:.2f}x > "
              f"{budget:.2f}x (traced {wc.traced_s:.3f}s vs untraced "
              f"{untraced_s:.3f}s)")
        ok = False
    return 0 if ok else 1
