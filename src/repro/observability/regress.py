"""Semantic perf-baseline diffing (``repro bench diff``).

CI used to gate the committed ``BENCH_trace.json`` byte-for-byte with
``cmp``, which can only say "changed" -- never *what* changed or *by
how much*.  This module compares two ``repro-bench/*`` documents
metric by metric and attributes every drift to the specific
**cell -> phase -> counter** that moved, the same attribution the
paper's Table 1 does by hand.

* :func:`diff_bench` -- compare two loaded baseline documents under a
  relative tolerance; returns a :class:`BenchDiff`.
* :class:`BenchDiff` -- the drift list plus ``verdict()`` (the
  machine-readable ``repro-benchdiff/1`` document) and
  ``markdown()``/``summary()`` reports.
* :func:`diff_main` -- the ``repro bench diff`` CLI entry point.

Tolerance semantics: a metric drifts out of tolerance when its
relative change exceeds ``tolerance_pct`` percent (a metric appearing
or vanishing is always out of tolerance, as is a structural change --
a cell or phase present on one side only).  Drift *direction* is
classified per record -- ``regression`` when the metric grew (every
baseline metric is a cost: time, misses, messages), ``improvement``
when it shrank -- but both directions gate, because either means the
committed baseline no longer describes the tree and must be
regenerated.  The exit code is 0 when every metric is within
tolerance, 1 on out-of-tolerance drift, 2 on malformed or
schema-mismatched input.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: versioned schema tag of the machine-readable verdict
BENCHDIFF_SCHEMA = "repro-benchdiff/1"


class BenchDiffError(ValueError):
    """Malformed or incomparable baseline input (CLI exit code 2)."""


@dataclass(frozen=True)
class Drift:
    """One metric that differs between baseline and candidate."""

    cell: str                #: "algorithm/variant/runtime"
    scope: str               #: cell | phase | events | critical | traffic | structure
    phase: str | None        #: phase label for scope == "phase"
    metric: str              #: time_mtu, a counter name, or an event kind
    baseline: float
    candidate: float
    out_of_tolerance: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def pct(self) -> float | None:
        """Relative drift in percent; None when the baseline is 0."""
        if self.baseline == 0:
            return None
        return 100.0 * (self.candidate - self.baseline) / abs(self.baseline)

    @property
    def direction(self) -> str:
        return "regression" if self.candidate > self.baseline else "improvement"

    def where(self) -> str:
        place = self.cell
        if self.phase is not None:
            place += f" :: {self.phase}"
        return f"{place} :: {self.metric}"

    def to_dict(self) -> dict:
        return {
            "cell": self.cell, "scope": self.scope, "phase": self.phase,
            "metric": self.metric, "baseline": self.baseline,
            "candidate": self.candidate, "delta": self.delta,
            "pct": self.pct, "direction": self.direction,
            "out_of_tolerance": self.out_of_tolerance,
        }


@dataclass
class BenchDiff:
    """Outcome of one baseline comparison."""

    tolerance_pct: float
    schema: str                      #: the (shared) repro-bench schema
    cells_compared: int
    drifts: list[Drift] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.out_of_tolerance for d in self.drifts)

    @property
    def failing(self) -> list[Drift]:
        return [d for d in self.drifts if d.out_of_tolerance]

    def verdict(self) -> dict:
        """The machine-readable ``repro-benchdiff/1`` document."""
        failing = self.failing
        return {
            "schema": BENCHDIFF_SCHEMA,
            "bench_schema": self.schema,
            "tolerance_pct": self.tolerance_pct,
            "cells_compared": self.cells_compared,
            "ok": self.ok,
            "drifts": [d.to_dict() for d in self.drifts],
            "summary": {
                "total_drifts": len(self.drifts),
                "out_of_tolerance": len(failing),
                "regressions": sum(d.direction == "regression"
                                   for d in failing),
                "improvements": sum(d.direction == "improvement"
                                    for d in failing),
                "cells_affected": sorted({d.cell for d in failing}),
            },
        }

    def summary(self) -> str:
        """One-line human verdict."""
        if not self.drifts:
            return (f"bench diff: clean -- {self.cells_compared} cells "
                    f"identical at ±{self.tolerance_pct:g}% tolerance")
        failing = self.failing
        if not failing:
            return (f"bench diff: ok -- {len(self.drifts)} drift(s) all "
                    f"within ±{self.tolerance_pct:g}% over "
                    f"{self.cells_compared} cells")
        cells = sorted({d.cell for d in failing})
        return (f"bench diff: FAIL -- {len(failing)} out-of-tolerance "
                f"drift(s) (±{self.tolerance_pct:g}%) in "
                f"{len(cells)} cell(s): {', '.join(cells)}")

    def markdown(self, max_within: int = 20) -> str:
        """Markdown report: verdict line + attribution table."""
        lines = [
            "## Perf baseline diff",
            "",
            self.summary(),
            "",
        ]
        if not self.drifts:
            return "\n".join(lines)
        lines += [
            "| cell | phase | metric | baseline | candidate | Δ | Δ% | verdict |",
            "|---|---|---|---:|---:|---:|---:|---|",
        ]
        shown_within = 0
        hidden = 0
        for d in self.drifts:
            if not d.out_of_tolerance:
                if shown_within >= max_within:
                    hidden += 1
                    continue
                shown_within += 1
            pct = "new" if d.pct is None else f"{d.pct:+.2f}%"
            verdict = (d.direction if d.out_of_tolerance
                       else "within tolerance")
            lines.append(
                f"| {d.cell} | {d.phase or '—'} | {d.metric} "
                f"| {_num(d.baseline)} | {_num(d.candidate)} "
                f"| {_num(d.delta, signed=True)} | {pct} | {verdict} |")
        if hidden:
            lines.append("")
            lines.append(f"… and {hidden} more within-tolerance drift(s).")
        return "\n".join(lines)


def _num(v: float, signed: bool = False) -> str:
    text = f"{v:+g}" if signed else f"{v:g}"
    return text


def load_baseline(path: str) -> dict:
    """Load and structurally validate one ``repro-bench/*`` document."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BenchDiffError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BenchDiffError(f"baseline {path!r} is not valid JSON: "
                             f"{exc}") from exc
    if not isinstance(doc, dict):
        raise BenchDiffError(f"baseline {path!r}: expected a JSON object")
    schema = doc.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro-bench/"):
        raise BenchDiffError(
            f"baseline {path!r}: schema {schema!r} is not a repro-bench/* "
            f"document")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not all(
            isinstance(c, dict) for c in cells):
        raise BenchDiffError(f"baseline {path!r}: missing or malformed "
                             f"'cells' list")
    for cell in cells:
        if not all(k in cell for k in ("algorithm", "variant", "runtime",
                                       "time_mtu")):
            raise BenchDiffError(
                f"baseline {path!r}: cell {cell.get('algorithm')!r} lacks "
                f"the algorithm/variant/runtime/time_mtu keys")
    return doc


def _cell_key(cell: dict) -> str:
    key = f"{cell['algorithm']}/{cell['variant']}/{cell['runtime']}"
    # repro-bench/3 documents carry multiple cell families (baseline /
    # large); older documents predate the field and keep the bare key.
    # "engine" is deliberately NOT part of the key: an interpreted
    # baseline and a batched candidate must land on the same cells --
    # that comparison IS the zero-drift gate.
    family = cell.get("family")
    return f"{key}/{family}" if family else key


def _within(base: float, cand: float, tolerance_pct: float) -> bool:
    if base == cand:
        return True
    if base == 0:
        return False  # a metric appeared (or the sign flipped from zero)
    return abs(cand - base) / abs(base) * 100.0 <= tolerance_pct


def _compare_dict(out: list[Drift], cell: str, scope: str,
                  phase: str | None, base: dict, cand: dict,
                  tolerance_pct: float) -> None:
    # only numeric leaves are diffable metrics (the cut block also
    # carries a per-lane list; structural lists are compared elsewhere)
    base = {k: v for k, v in base.items() if isinstance(v, (int, float))}
    cand = {k: v for k, v in cand.items() if isinstance(v, (int, float))}
    for metric in sorted(set(base) | set(cand)):
        b = float(base.get(metric, 0))
        c = float(cand.get(metric, 0))
        if b == c:
            continue
        out.append(Drift(cell=cell, scope=scope, phase=phase, metric=metric,
                         baseline=b, candidate=c,
                         out_of_tolerance=not _within(b, c, tolerance_pct)))


def diff_bench(baseline: dict, candidate: dict,
               tolerance_pct: float = 0.0) -> BenchDiff:
    """Compare two loaded baseline documents metric by metric.

    Raises :class:`BenchDiffError` when the documents are not
    comparable (different schema, kind, or sweep config).
    """
    if baseline.get("schema") != candidate.get("schema"):
        raise BenchDiffError(
            f"schema mismatch: baseline is {baseline.get('schema')!r}, "
            f"candidate is {candidate.get('schema')!r} -- regenerate the "
            f"older document before diffing")
    if baseline.get("kind", "trace") != candidate.get("kind", "trace"):
        raise BenchDiffError(
            f"kind mismatch: baseline is {baseline.get('kind', 'trace')!r}, "
            f"candidate is {candidate.get('kind', 'trace')!r}")
    if baseline.get("config") != candidate.get("config"):
        raise BenchDiffError(
            f"sweep config mismatch: baseline ran {baseline.get('config')!r}"
            f", candidate ran {candidate.get('config')!r} -- the cells are "
            f"not comparable")

    base_cells = {_cell_key(c): c for c in baseline["cells"]}
    cand_cells = {_cell_key(c): c for c in candidate["cells"]}
    drifts: list[Drift] = []

    for key in sorted(set(base_cells) | set(cand_cells)):
        if key not in cand_cells:
            drifts.append(Drift(cell=key, scope="structure", phase=None,
                                metric="cell-missing-from-candidate",
                                baseline=1, candidate=0,
                                out_of_tolerance=True))
            continue
        if key not in base_cells:
            drifts.append(Drift(cell=key, scope="structure", phase=None,
                                metric="cell-missing-from-baseline",
                                baseline=0, candidate=1,
                                out_of_tolerance=True))
            continue
        b, c = base_cells[key], cand_cells[key]
        _compare_dict(drifts, key, "cell", None,
                      {"time_mtu": b["time_mtu"]},
                      {"time_mtu": c["time_mtu"]}, tolerance_pct)
        _compare_dict(drifts, key, "cell", None, b.get("counters", {}),
                      c.get("counters", {}), tolerance_pct)
        _compare_dict(drifts, key, "events", None, b.get("events", {}),
                      c.get("events", {}), tolerance_pct)
        _compare_dict(drifts, key, "cell", None,
                      b.get("cut") or {}, c.get("cut") or {}, tolerance_pct)
        # PR 9 cell blocks: the critical-path decomposition and the
        # traffic-matrix totals drift-gate like any other metric
        _compare_dict(drifts, key, "critical", None,
                      b.get("critical") or {}, c.get("critical") or {},
                      tolerance_pct)
        _compare_dict(drifts, key, "traffic", None,
                      b.get("traffic") or {}, c.get("traffic") or {},
                      tolerance_pct)
        bp = {p["label"]: p for p in b.get("phases", [])}
        cp = {p["label"]: p for p in c.get("phases", [])}
        for label in sorted(set(bp) | set(cp)):
            if label not in cp or label not in bp:
                missing = "candidate" if label not in cp else "baseline"
                drifts.append(Drift(cell=key, scope="structure", phase=label,
                                    metric=f"phase-missing-from-{missing}",
                                    baseline=float(label in bp),
                                    candidate=float(label in cp),
                                    out_of_tolerance=True))
                continue
            _compare_dict(
                drifts, key, "phase", label,
                {"time_mtu": bp[label].get("time_mtu", 0),
                 "events": bp[label].get("events", 0)},
                {"time_mtu": cp[label].get("time_mtu", 0),
                 "events": cp[label].get("events", 0)}, tolerance_pct)
            _compare_dict(drifts, key, "phase", label,
                          bp[label].get("counters", {}),
                          cp[label].get("counters", {}), tolerance_pct)

    return BenchDiff(tolerance_pct=tolerance_pct,
                     schema=baseline["schema"],
                     cells_compared=len(set(base_cells) & set(cand_cells)),
                     drifts=drifts)


def diff_paths(baseline_path: str, candidate_path: str,
               tolerance_pct: float = 0.0) -> BenchDiff:
    """Load two baseline files and diff them."""
    return diff_bench(load_baseline(baseline_path),
                      load_baseline(candidate_path),
                      tolerance_pct=tolerance_pct)


def diff_main(args) -> int:
    """Back the ``repro bench diff`` CLI subcommand; returns exit code."""
    import sys

    try:
        diff = diff_paths(args.baseline, args.candidate,
                          tolerance_pct=args.tolerance_pct)
    except BenchDiffError as exc:
        print(f"bench diff: error: {exc}", file=sys.stderr)
        return 2
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(diff.verdict(), fh, sort_keys=True, indent=1,
                      allow_nan=False)
            fh.write("\n")
    if args.markdown:
        print(diff.markdown())
    else:
        print(diff.summary())
        for d in diff.failing[:40]:
            pct = "new" if d.pct is None else f"{d.pct:+.2f}%"
            print(f"  [{d.direction}] {d.where()}: "
                  f"{_num(d.baseline)} -> {_num(d.candidate)} ({pct})")
        if len(diff.failing) > 40:
            print(f"  ... and {len(diff.failing) - 40} more")
    if getattr(args, "history", None):
        # record the candidate on the bench-history timeline and show
        # its trajectory next to the two-point diff verdict
        import os

        from repro.observability.history import (
            load_history, record, render_trend,
        )
        try:
            snapshots = (load_history(args.history)
                         if os.path.exists(args.history) else [])
            snapshots.append(record(
                args.history, args.candidate,
                label=getattr(args, "history_label", None)))
            print()
            print(render_trend(snapshots, markdown=args.markdown))
        except BenchDiffError as exc:
            print(f"bench diff: history error: {exc}", file=sys.stderr)
            return 2
    return 0 if diff.ok else 1


__all__ = [
    "BENCHDIFF_SCHEMA",
    "BenchDiff",
    "BenchDiffError",
    "Drift",
    "diff_bench",
    "diff_main",
    "diff_paths",
    "load_baseline",
]
