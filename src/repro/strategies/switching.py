"""Push<->pull switching strategies (Generic-Switch and the
direction-optimizing BFS of Beamer et al., the paper's reference [4]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.bfs import BFSResult, BFSState
from repro.algorithms.common import PULL, PUSH
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class SwitchPolicy:
    """The Beamer direction-optimization heuristic.

    Push (top-down) while the frontier is small; switch to pull
    (bottom-up) once the frontier's out-edges exceed ``1/alpha`` of the
    unexplored edges; switch back once the frontier shrinks below
    ``n / beta`` vertices.  alpha=14, beta=24 are the published
    defaults.
    """

    alpha: float = 14.0
    beta: float = 24.0

    def choose(self, current: str, frontier_edges: int, unexplored_edges: int,
               frontier_size: int, n: int) -> str:
        if current == PUSH:
            # enter bottom-up only on genuinely fat frontiers: the edge
            # condition alone would also fire near the *end* of a
            # long-diameter traversal (unexplored -> 0 with a tiny
            # frontier), where a full bottom-up sweep is a disaster
            if (frontier_edges * self.alpha > max(unexplored_edges, 1)
                    and frontier_size * self.beta >= n):
                return PULL
            return PUSH
        if frontier_size * self.beta < n:
            return PUSH
        return PULL


def direction_optimizing_bfs(g: CSRGraph, rt: SMRuntime, root: int,
                             policy: SwitchPolicy | None = None) -> BFSResult:
    """BFS that re-decides push vs pull at every level.

    Returns a :class:`BFSResult` whose ``directions`` list records the
    per-level choice (the classic pattern on low-diameter graphs is
    push, push, pull..., push).
    """
    policy = policy or SwitchPolicy()
    state = BFSState(g, rt, root)
    degrees = np.diff(g.offsets)
    total_edges = int(degrees.sum())
    explored_edges = int(degrees[root])
    direction = PUSH
    tr = getattr(rt, "tracer", None)
    while state.frontier_nonempty():
        frontier_edges = int(degrees[state.frontier].sum())
        previous = direction
        direction = policy.choose(direction, frontier_edges,
                                  total_edges - explored_edges,
                                  len(state.frontier), g.n)
        if tr is not None:
            tr.on_switch(state.cur_level, previous, direction, {
                "frontier_edges": frontier_edges,
                "unexplored_edges": total_edges - explored_edges,
                "frontier_size": len(state.frontier),
                "n": g.n,
                "alpha": policy.alpha,
                "beta": policy.beta,
            })
        state.step(direction)
        explored_edges += int(degrees[state.frontier].sum())
    return state.result("direction-optimizing")
