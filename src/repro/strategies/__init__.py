"""Acceleration strategies (Section 5 of the paper).

* **Partition-Awareness (PA)** -- split adjacency into local/remote to
  trade atomics for plain writes (:mod:`repro.strategies.partition_awareness`;
  the PR instance also lives in :func:`repro.algorithms.pagerank.pagerank`
  as ``direction="push-pa"``).
* **Frontier-Exploit (FE)** -- color BGC like a multi-source traversal
  so each iteration touches only a frontier
  (:mod:`repro.strategies.frontier_exploit`).
* **Generic-Switch (GS)** -- switch between push and pull mid-run
  (:mod:`repro.strategies.switching`), including the Beamer-style
  direction-optimizing BFS the paper cites as [4].
* **Greedy-Switch (GrS)** -- abandon the parallel scheme for an
  optimized sequential greedy when little work remains.
* **Conflict-Removal (CR)** -- pre-color the border set so the parallel
  phase cannot conflict at all (:mod:`repro.strategies.conflict_removal`).
"""

from repro.strategies.switching import (
    direction_optimizing_bfs,
    SwitchPolicy,
)
from repro.strategies.frontier_exploit import frontier_exploit_coloring
from repro.strategies.conflict_removal import conflict_removal_coloring
from repro.strategies.partition_awareness import (
    pagerank_partition_aware,
    triangle_count_partition_aware,
)

__all__ = [
    "direction_optimizing_bfs",
    "SwitchPolicy",
    "frontier_exploit_coloring",
    "conflict_removal_coloring",
    "pagerank_partition_aware",
    "triangle_count_partition_aware",
]
