"""Partition-Awareness wrappers (Section 5, Algorithm 8).

PA transforms push variants so that updates whose target is owned by
the executing thread use plain writes, and only cross-partition targets
pay atomics.  The strategy applies to PR, TC and BGC (per the paper);
the PR and TC instances are implemented inside the respective algorithm
modules and re-exported here under strategy-explicit names, together
with the atomics-bound helper of Section 5 (0 <= PA atomics <= 2m,
depending on how the partition cuts the edges).
"""

from __future__ import annotations

from repro.algorithms.pagerank import PageRankResult, pagerank
from repro.algorithms.triangle import TriangleCountResult, triangle_count
from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D
from repro.graph.partition_aware import PartitionAwareCSR
from repro.runtime.sm import SMRuntime


def pagerank_partition_aware(g: CSRGraph, rt: SMRuntime,
                             iterations: int = 20, damping: float = 0.85,
                             **kwargs) -> PageRankResult:
    """Push-based PageRank with the PA split representation (Algorithm 8)."""
    pa = PartitionAwareCSR(g, rt.part)
    return pagerank(g, rt, direction="push-pa", iterations=iterations,
                    damping=damping, pa=pa, **kwargs)


def triangle_count_partition_aware(g: CSRGraph, rt: SMRuntime
                                   ) -> TriangleCountResult:
    """Push-based TC where locally-owned counters skip the FAA."""
    return triangle_count(g, rt, direction="push-pa")


def pa_atomics_bounds(g: CSRGraph, P: int) -> tuple[int, int, int]:
    """(min possible, actual remote entries, max possible) PA atomic counts.

    Section 5 bounds the atomics of one push+PA iteration between 0 --
    no edge crosses owners, i.e. each thread owns whole connected
    components -- and 2m -- every edge crosses, e.g. a bipartite graph
    whose two sides are owned by different threads.  (The paper's prose
    swaps the two conditions; the bounds themselves are as stated
    here.)  The middle value is the actual remote-entry count under a
    1D block partition of ``g`` over ``P`` owners.
    """
    pa = PartitionAwareCSR(g, Partition1D(g.n, P))
    return 0, pa.remote_edge_count(), 2 * g.m
