"""Conflict-Removal for BGC (Section 5, Algorithm 9).

Instead of iterating to fix conflicts over border vertices, color the
border set B *first* with an optimized sequential greedy; afterwards
the partitions can be colored fully in parallel and no conflict can
occur (every cross-partition edge has its border endpoints already
colored).  Advantageous when |B| is small relative to |V| -- the
road-network regime; on community graphs with random partitions B is
almost all of V and the sequential phase dominates.
"""

from __future__ import annotations


from repro.algorithms.coloring import BGCState, ColoringResult
from repro.algorithms.common import PUSH, check_direction
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


def conflict_removal_coloring(g: CSRGraph, rt: SMRuntime,
                              direction: str = PUSH,
                              max_colors: int = 1024) -> ColoringResult:
    """BGC with the CR strategy; always completes in one parallel pass."""
    check_direction(direction)
    state = BGCState(g, rt, max_colors)
    mem = rt.mem
    start_time = rt.time
    start_counters = rt.total_counters()

    # phase 0: sequential greedy over the border set (Algorithm 9, line 2)
    def seq_border() -> None:
        for v in state.border:
            nbrs = g.neighbors(v)
            mem.read(state.ga.off, idx=int(v), count=2, mode="rand")
            mem.read(state.ga.adj, start=int(g.offsets[v]), count=len(nbrs))
            mem.read(state.colors_h, idx=nbrs, mode="rand")
            mem.branch_cond(len(nbrs))
            used = set(int(c) for c in state.colors[nbrs] if c >= 0)
            col = 0
            while col in used:
                col += 1
            state.colors[v] = col
            state.need[v] = False
            mem.write(state.colors_h, idx=int(v), mode="rand")

    rt.sequential(seq_border)
    state.snapshot()

    # phase 1: partitions in parallel; border vertices are fixed, so the
    # remaining vertices only constrain within their own partition and
    # against already-final border colors -- conflict-free
    state.color_partitions(direction)
    n_conf = state.fix_conflicts(direction)   # verification pass: must be 0

    return ColoringResult(
        direction=f"CR-{direction}",
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=1,
        iteration_times=[rt.time - start_time],
        colors=state.colors,
        n_colors=int(state.colors.max()) + 1 if g.n else 0,
        conflicts_per_iteration=[n_conf],
    )
