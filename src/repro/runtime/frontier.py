"""Frontier management: per-thread fragments and their merge.

Algorithm 3 of the paper: "The frontier F is represented as a single
array while my_F is private for each process and contains vertices
explored at each iteration.  All my_Fs are repeatedly merged into the
next F."  In the push direction the merge is the paper's
``d-hat * f_i``-filter (a prefix-sum compaction); in the pull direction
no filter is needed because every vertex checks its own membership.
"""

from __future__ import annotations

import numpy as np

from repro.machine.memory import MemoryModel


class ThreadLocalFrontiers:
    """The my_F fragments of one BFS/SSSP iteration."""

    def __init__(self, P: int) -> None:
        self.P = P
        self.frags: list[list[int]] = [[] for _ in range(P)]

    def add(self, t: int, v: int) -> None:
        self.frags[t].append(int(v))

    def extend(self, t: int, vs) -> None:
        self.frags[t].extend(int(v) for v in np.asarray(vs).ravel())

    def sizes(self) -> list[int]:
        return [len(f) for f in self.frags]

    def merge(self, mem: MemoryModel | None = None, dedup: bool = True,
              handle=None) -> np.ndarray:
        """Concatenate my_F fragments into the next global frontier F.

        When a memory model is given, accounts the prefix-sum merge:
        one read + one write per element plus an unconditional branch
        per fragment (the paper's k-filter costs O(min(k, n)) work).
        """
        total = sum(len(f) for f in self.frags)
        if mem is not None and handle is not None and total:
            mem.read(handle, count=total, mode="seq")
            mem.write(handle, count=total, mode="seq")
            mem.branch_uncond(self.P)
        if total == 0:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate([
            np.asarray(f, dtype=np.int64) for f in self.frags if f
        ])
        if dedup:
            merged = np.unique(merged)
        else:
            merged = np.sort(merged)
        self.frags = [[] for _ in range(self.P)]
        return merged

    def clear(self) -> None:
        self.frags = [[] for _ in range(self.P)]
