"""Loop scheduling policies.

The paper evaluates both static and dynamic OpenMP scheduling
(Section 6, "Selected Benchmarks & Parameters").  In the simulated
runtime a schedule decides which simulated thread *executes* each loop
item; vertex *ownership* (and hence the push/pull atomicity rules)
always follows the 1D partition regardless of the schedule.
"""

from __future__ import annotations

import numpy as np


def static_chunks(items: np.ndarray, P: int) -> list[np.ndarray]:
    """OpenMP ``schedule(static)``: one contiguous chunk per thread."""
    items = np.asarray(items)
    return [chunk for chunk in np.array_split(items, P)]


def dynamic_chunks(items: np.ndarray, P: int, chunk: int = 64) -> list[np.ndarray]:
    """OpenMP ``schedule(dynamic, chunk)`` under deterministic simulation.

    Real dynamic scheduling balances load at runtime; the deterministic
    equivalent assigns fixed-size chunks round-robin, which equalizes
    *expected* work when per-item work is unevenly distributed along
    the iteration space (e.g. skewed degrees sorted by community).
    """
    items = np.asarray(items)
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    n_chunks = (len(items) + chunk - 1) // chunk
    per_thread: list[list[np.ndarray]] = [[] for _ in range(P)]
    for i in range(n_chunks):
        per_thread[i % P].append(items[i * chunk:(i + 1) * chunk])
    return [
        np.concatenate(parts) if parts else items[:0]
        for parts in per_thread
    ]


def assign(items: np.ndarray, P: int, schedule: str = "static",
           chunk: int = 64, tracer=None) -> list[np.ndarray]:
    """Dispatch to the named schedule ('static' or 'dynamic').

    When a tracer is attached the decision (policy, item count, chunk
    size, per-thread assignment sizes) is recorded as a ``schedule``
    event so imbalance can be attributed to the policy that caused it.
    """
    if schedule == "static":
        chunks = static_chunks(items, P)
    elif schedule == "dynamic":
        chunks = dynamic_chunks(items, P, chunk)
    else:
        raise ValueError(f"unknown schedule {schedule!r}")
    if tracer is not None:
        tracer.on_schedule(schedule, len(items), [len(c) for c in chunks],
                           chunk if schedule == "dynamic" else None)
    return chunks
