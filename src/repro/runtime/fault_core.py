"""Runtime-agnostic core of the fault-injection layer.

Both injectors -- the DM one (:mod:`repro.runtime.faults`, PR 3) and
the SM one (:mod:`repro.runtime.sm_faults`) -- share one contract:

* every random draw comes from **one** seeded ``numpy`` generator,
  consumed in a fixed order by the sequential simulation, so the whole
  fault schedule is a pure function of (kernel, graph, plan, recovery);
* a zero probability consumes **no** draws, keeping plans comparable
  across seeds fault class by fault class;
* every injected fault and recovery action is appended to
  ``injector.schedule`` (and mirrored to ``rt.tracer`` when one is
  attached) for bit-exact comparison across runs;
* recovery waits are charged to the **barrier** after the step's
  BSP max-span (:meth:`BaseFaultInjector._wait`), so fault overhead is
  strictly visible in ``rt.time`` and can never hide under another
  lane's longer span.

This module holds that shared machinery -- the seeded draw helpers,
the combined :class:`FaultStats` tally, the stall/backoff accounting,
and the plan validation/labeling helpers -- so the two runtime-specific
injectors only implement what their machines actually perturb.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields

import numpy as np


def _probability_fields(plan) -> list[str]:
    """The plan's probability field names (everything except the seed
    and the class's declared ``_NON_PROB`` magnitude fields)."""
    skip = set(getattr(plan, "_NON_PROB", ())) | {"seed"}
    return [f.name for f in fields(plan) if f.name not in skip]


def validate_plan(plan) -> None:
    """Shared ``__post_init__`` validation for fault plans.

    Every probability field must lie in [0, 1] (a silent ``drop=1.5``
    used to mean "always", ``drop=-0.1`` meant "never" -- both are now
    errors), and a plan with every probability at zero draws a warning:
    it is a valid no-op, but a chaos cell built on it tests nothing.
    """
    for name in _probability_fields(plan):
        v = getattr(plan, name)
        if not 0.0 <= float(v) <= 1.0:
            raise ValueError(
                f"{type(plan).__name__}.{name} is a probability and must "
                f"lie in [0, 1]; got {v!r}")
    if all(not getattr(plan, name) for name in _probability_fields(plan)):
        warnings.warn(
            f"{type(plan).__name__}(seed={plan.seed}) has every fault "
            "probability at zero -- a no-op chaos plan",
            stacklevel=4)


def validate_recovery(recovery) -> None:
    """Shared ``__post_init__`` validation for recovery configs."""
    for name in ("backoff_base", "delay_wait", "crash_timeout",
                 "restart_penalty", "store_flush_wait"):
        v = getattr(recovery, name, None)
        if v is not None and v <= 0.0:
            raise ValueError(
                f"{type(recovery).__name__}.{name} must be positive "
                f"(it prices a recovery wait); got {v!r}")
    if recovery.retry_limit < 1:
        raise ValueError(
            f"{type(recovery).__name__}.retry_limit must be >= 1; "
            f"got {recovery.retry_limit!r}")


def plan_label(plan) -> str:
    """Compact ``seed=N field=p ...`` label (nonzero probabilities only).

    Shared by every plan class so the field filtering -- skip the seed
    and the ``_NON_PROB`` magnitude knobs, show what can fire -- exists
    exactly once.
    """
    parts = [f"seed={plan.seed}"]
    for name in _probability_fields(plan):
        v = getattr(plan, name)
        if v:
            parts.append(f"{name}={v:g}")
    return " ".join(parts) if len(parts) > 1 else f"seed={plan.seed} (none)"


@dataclass
class FaultStats:
    """Tally of injected faults and recovery actions (one run).

    One combined namespace for both runtimes: DM runs leave the SM
    fields at zero and vice versa, so ``to_dict()`` is directly
    comparable across engines and runtimes (the batched-vs-interpreted
    differential suite relies on this).
    """

    # -- distributed-memory faults (messages, staged RMA, processes) --
    dropped: int = 0            #: messages lost forever (no retry protocol)
    retries: int = 0            #: message retransmissions
    duplicates: int = 0         #: duplicated deliveries injected
    dup_suppressed: int = 0     #: duplicates discarded by seq dedup
    delayed: int = 0            #: messages hit by a delay fault
    delivered_late: int = 0     #: held messages released at a later boundary
    reordered: int = 0          #: destination batches permuted
    rma_lost: int = 0           #: staged ops lost by their flush
    rma_replayed: int = 0       #: staged-op replay attempts at boundaries
    rma_duplicates: int = 0     #: staged ops applied twice
    rma_dup_suppressed: int = 0  #: double-applies discarded by seq dedup
    # -- shared-memory faults (threads, CAS claims, store buffers) --
    cas_lost: int = 0           #: CAS claim outcomes lost by the hardware
    cas_retries: int = 0        #: re-issued CAS attempts (retry protocol)
    cas_duplicates: int = 0     #: CAS claims applied twice
    cas_dup_suppressed: int = 0  #: double-applies discarded by claim dedup
    lock_preempts: int = 0      #: lock-holder preemptions (waiter pays)
    store_delays: int = 0       #: plain stores parked in the store buffer
    store_flushes: int = 0      #: barrier fences draining delayed stores
    stale_reads: int = 0        #: cross-thread reads of parked store targets
    # -- shared between the runtimes --
    retry_exhausted: int = 0    #: deliveries forced after retry_limit rounds
    stragglers: int = 0         #: (lane, step) slowdowns
    crashes: int = 0            #: lane crash events
    restarts: int = 0           #: crashes recovered by rollback + rerun
    backoff_time: float = 0.0   #: total recovery wait charged to barriers

    def fired(self) -> int:
        """Fault events that occurred (recovery bookkeeping excluded)."""
        return (self.dropped + self.retries + self.duplicates + self.delayed
                + self.reordered + self.rma_lost + self.rma_duplicates
                + self.cas_lost + self.cas_duplicates + self.lock_preempts
                + self.store_delays + self.stragglers + self.crashes)

    def costly(self) -> int:
        """Events whose recovery wait must show up in simulated time.

        These all charge the barrier-level stall, so a run with
        ``costly() > 0`` is strictly slower than its fault-free twin.
        Stragglers and lock preemptions are excluded: they stretch one
        lane's *span*, which the BSP max legitimately hides when that
        lane is off the critical path.  CAS duplicates are excluded for
        the same reason (the double-apply inflates the issuing thread's
        span, not the barrier).
        """
        return (self.retries + self.delayed + self.rma_replayed
                + self.cas_retries + self.store_flushes + self.restarts)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class BaseFaultInjector:
    """Seeded draw machinery shared by the DM and SM injectors.

    Subclasses provide :meth:`_step_index` (the superstep / region
    index their events are stamped with) and may extend :meth:`reset`
    via :meth:`_on_reset`.
    """

    def __init__(self, rt, plan, recovery) -> None:
        self.rt = rt
        self.plan = plan
        self.recovery = recovery
        self.reset()

    def reset(self) -> None:
        """Re-seed; called by the runtime's ``reset`` so reruns are exact."""
        self.rng = np.random.default_rng(self.plan.seed)
        self.stats = FaultStats()
        #: (step, kind, *detail) -- the deterministic event schedule
        self.schedule: list[tuple] = []
        self._stall = 0.0      # barrier-level recovery wait (this step)
        self._on_reset()

    def _on_reset(self) -> None:
        """Subclass hook: clear runtime-specific per-run state."""

    def _step_index(self) -> int:
        """The step (superstep / region) index events are stamped with."""
        raise NotImplementedError

    # -- draw helpers ---------------------------------------------------------------
    def _hit(self, p: float) -> bool:
        return p > 0.0 and float(self.rng.random()) < p

    def _event(self, kind: str, *detail) -> None:
        step = self._step_index()
        self.schedule.append((step, kind, *detail))
        tracer = getattr(self.rt, "tracer", None)
        if tracer is not None:
            tracer.on_fault(kind, detail, step)

    @property
    def dedup(self) -> bool:
        return self.recovery is not None and self.recovery.dedup

    def _backoff(self, attempts: int) -> float:
        """Exponential retry backoff (doubles per round, capped)."""
        return self.recovery.backoff_base * (2 ** min(attempts - 1, 20))

    # -- stall accounting -----------------------------------------------------------
    def _wait(self, cost: float) -> None:
        """Charge a recovery wait to the current step's barrier.

        Timeout detection, retransmission backoff, and redelivery all
        gate barrier exit, so the wait extends the *global* span -- it
        can never hide under another lane's longer local span.
        """
        self._stall += cost
        self.stats.backoff_time += cost

    def consume_stall(self) -> float:
        """Hand this step's barrier stall to the runtime (and reset)."""
        s = self._stall
        self._stall = 0.0
        return s
