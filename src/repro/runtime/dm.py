"""The simulated distributed-memory machine (Section 6.3).

P processes, each owning a 1D block of vertices, communicate through
one of two backends:

* **Message Passing (MP)** -- explicit point-to-point messages with
  implicit synchronization, plus the ``alltoallv`` collective the
  paper's MP PageRank uses.  Messages are buffered in mailboxes and
  delivered at the next superstep boundary; an optional ``tag``
  (mirroring MPI tags) lets a receiver consume one message class while
  other in-flight classes remain pending -- the epoch checker uses the
  tag match to tell a synchronized read from a read racing the current
  superstep's sends.
* **Remote Memory Access (RMA)** -- puts/gets/accumulates on remote
  windows with explicit flushes, mirroring MPI-3 one-sided / foMPI.
  ``accumulate`` distinguishes float and integer operands: the paper
  found that float ``MPI_Accumulate`` uses a costly locking protocol
  while 64-bit-integer fetch-and-op has a hardware fast path, and that
  difference is what flips the PR-vs-TC backend ranking (Section 6.5).
  RMA calls optionally name the ``window`` (a registered array handle)
  and the targeted item indices; the base runtime ignores both, the
  epoch checker of :mod:`repro.analysis.dm_race` needs them for its
  region analysis.

An ``observer`` (set by ``attach_dm_race_detector``) receives every
communication event; with no observer attached the hooks are single
``is None`` checks, and all cost accounting is identical either way.
A second optional hook, ``rt.faults`` (set by
:func:`repro.runtime.faults.attach_fault_injector`), perturbs
communication at superstep boundaries; without it every channel is the
lossless synchronous network of the paper.

To give faults something real to corrupt, the runtime carries a
**window registry** (:meth:`DMRuntime.register_window`) and two
data-carrying RMA verbs, :meth:`DMRuntime.put` and
:meth:`DMRuntime.accumulate`: remote operations are *staged* -- cost
and observer event charged at issue, data applied to the registered
array at ``rma_flush`` in issue order -- so a lost flush genuinely
loses the update and a duplicated accumulate genuinely double-counts
unless recovery dedups it.  With no faults attached the staged apply at
the kernel's own flush is bit-identical to an immediate apply.  The
registry doubles as the checkpoint set for crash rollback.

Simulated time per superstep is the max over processes of the event
cost accumulated in that superstep (BSP accounting), plus any recovery
waits (retry backoff, delayed-message stalls, restart penalties) and
straggler multipliers the fault layer charges; the α-β weights live in
:class:`repro.machine.cost_model.MachineSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.graph.partition import Partition1D
from repro.machine.cost_model import MachineSpec, XC40
from repro.machine.counters import PerfCounters
from repro.machine.memory import CacheSimMemory, CountingMemory, MemoryModel


@dataclass
class _StagedOp:
    """A data-carrying put/accumulate awaiting completion at a flush."""

    seq: int
    rank: int
    owner: int
    window: Any               #: as passed (handle or name) -- for observers
    wkey: str                 #: registry key
    idx: np.ndarray
    vals: np.ndarray
    kind: str                 #: 'acc' | 'put'
    dtype: str | None
    op_count: int
    nbytes: int
    applied: bool = False


class DMRuntime:
    """P simulated processes with MP and RMA communication primitives."""

    def __init__(self, n_vertices: int, P: int, machine: MachineSpec = XC40,
                 memory: MemoryModel | None = None) -> None:
        self.P = P
        self.machine = machine
        self.part = Partition1D(n_vertices, P)
        self.mem = memory or CountingMemory(machine.hierarchy)
        self.proc_counters = [PerfCounters() for _ in range(P)]
        self.time = 0.0
        self.superstep_index = 0
        #: epoch-checker hook (see repro.analysis.dm_race); None = no-op
        self.observer = None
        #: fault-injection hook (see repro.runtime.faults); None = lossless
        self.faults = None
        #: observability hook (repro.observability.attach_tracer)
        self.tracer = None
        self._label = ""
        self._rank: int | None = None
        # mailboxes[dest] = list of (source, payload, tag, nbytes, seq)
        # delivered next superstep (tag stays at index 2 -- the epoch
        # checker's inbox matching relies on it)
        self._in_flight: list[list[tuple]] = [[] for _ in range(P)]
        self._mailboxes: list[list[tuple]] = [[] for _ in range(P)]
        #: window registry: data-carrying RMA targets + crash checkpoints
        self._windows: dict[str, np.ndarray] = {}
        self._staged: list[_StagedOp] = []
        self._applied_seqs: set[int] = set()
        self._next_seq = 0
        self.mem.set_counters(self.proc_counters[0])

    # -- process bookkeeping ------------------------------------------------------
    def owner(self, v):
        return self.part.owner(v)

    def owned(self, p: int) -> np.ndarray:
        return self.part.owned(p)

    def total_counters(self) -> PerfCounters:
        return PerfCounters.total(self.proc_counters)

    def annotate(self, label: str) -> None:
        """Label subsequent supersteps in the trace (sticky)."""
        self._label = label

    def reset(self) -> None:
        """Clear counters, time, and mailboxes between runs.

        Rebinds memory accounting to process 0 -- without this, events
        issued between runs land on whichever process happened to
        execute last (the counter-rebinding bug class
        ``SMRuntime.reset`` fixed on the shared-memory side).
        """
        for c in self.proc_counters:
            c.reset()
        self.time = 0.0
        self.superstep_index = 0
        self._rank = None
        self._in_flight = [[] for _ in range(self.P)]
        self._mailboxes = [[] for _ in range(self.P)]
        self._windows = {}
        self._staged = []
        self._applied_seqs = set()
        self._next_seq = 0
        if self.faults is not None:
            self.faults.reset()
        if self.tracer is not None:
            self.tracer.on_reset()
        self.mem.set_counters(self.proc_counters[0])

    def _activate(self, p: int) -> None:
        self._rank = p
        self.mem.set_counters(self.proc_counters[p])
        # route trace-driven cache simulation into rank p's private
        # caches (a no-op for the counting models)
        if isinstance(self.mem, CacheSimMemory):
            self.mem.set_thread(min(p, self.mem.n_threads - 1))
        else:
            self.mem.set_thread(p)
        if self.observer is not None:
            self.observer.on_activate(p)

    @property
    def rank(self) -> int:
        if self._rank is None:
            raise RuntimeError("not inside a superstep")
        return self._rank

    # -- superstep execution --------------------------------------------------------
    def superstep(self, body: Callable[[int], None]) -> None:
        """Run ``body(p)`` for every process; deliver messages afterwards.

        Time advances by the slowest process in the superstep plus a
        barrier (the implicit synchronization of the MP model / the
        window synchronization of RMA).  Per-process spans are measured
        over the whole superstep -- including costs charged to a process
        by another's body (the TC-MP reply emulation) and any recovery
        work the fault layer performs at the boundary -- then stretched
        by straggler factors before the max is taken; recovery waits
        (retry backoff, redelivery, restart timeouts) stall the barrier
        itself, after the max, so they are never hidden by skew.

        With a fault injector attached, processes drawn to crash run
        against a pre-body snapshot of every registered window: the
        failed attempt's effects (window state, outgoing messages,
        staged ops, consumed mailbox) are rolled back, the observer is
        told to forget the attempt (``on_rollback``), and -- under
        checkpoint/restart recovery -- the body reruns after a detection
        timeout.  The failed attempt's counters stay: that work was done
        and lost, and it is exactly the overhead BSP time must show.
        """
        tracer = self.tracer
        if tracer is not None:
            # before the fault draw, so straggler/crash events already
            # have this superstep's time base
            tracer.on_superstep_begin(self.superstep_index)
        if self.observer is not None:
            self.observer.on_superstep_begin(self.superstep_index)
        faults = self.faults
        crashes = faults.begin_superstep() if faults is not None else ()
        befores = [self.machine.time(c) for c in self.proc_counters]
        for p in range(self.P):
            snapshot = self._snapshot(p) if p in crashes else None
            self._activate(p)
            body(p)
            if snapshot is not None:
                faults.crash(p, snapshot, body)
        self._rank = None
        if faults is not None:
            faults.boundary()
        spans = []
        for p in range(self.P):
            s = self.machine.time(self.proc_counters[p]) - befores[p]
            if faults is not None:
                s = s * faults.straggler_factor(p)
            spans.append(s)
        span = max(spans) if spans else 0.0
        stall = faults.consume_stall() if faults is not None else 0.0
        if tracer is not None:
            # before the barrier increments, so superstep counter deltas
            # and the barrier event partition the totals exactly
            tracer.on_superstep_end(self.superstep_index, spans, stall)
        self.time += span + stall + self.machine.w_barrier
        for c in self.proc_counters:
            c.barriers += 1
        # deliver in-flight messages
        self._mailboxes = self._in_flight
        self._in_flight = [[] for _ in range(self.P)]
        self._applied_seqs.clear()
        self.superstep_index += 1
        if self.observer is not None:
            self.observer.on_superstep_end()

    # -- crash checkpointing ---------------------------------------------------------
    def _snapshot(self, p: int) -> dict:
        """Everything ``body(p)`` may touch, captured just before it runs."""
        return {
            "windows": {k: a.copy() for k, a in self._windows.items()},
            "mailbox": list(self._mailboxes[p]),
            "in_flight": [len(box) for box in self._in_flight],
            "staged": len(self._staged),
        }

    def _restore(self, p: int, snapshot: dict) -> None:
        """Undo ``body(p)`` (processes run sequentially, so this is exact)."""
        for k, a in snapshot["windows"].items():
            self._windows[k][:] = a
        self._mailboxes[p] = snapshot["mailbox"]
        for dest, ln in enumerate(snapshot["in_flight"]):
            del self._in_flight[dest][ln:]
        del self._staged[snapshot["staged"]:]

    # -- Message Passing -----------------------------------------------------------
    def send(self, dest: int, payload: Any, nbytes: int | None = None,
             tag: Any = None) -> None:
        """Post a sequence-numbered point-to-point message.

        Delivered at the next superstep boundary -- where the fault
        layer, if attached, draws its fate (drop/duplicate/delay and
        the recovery retries).
        """
        nb = self._payload_bytes(payload) if nbytes is None else int(nbytes)
        c = self.proc_counters[self.rank]
        c.messages += 1
        c.msg_bytes += nb
        if self.observer is not None:
            self.observer.on_send(self.rank, dest, tag)
        if self.tracer is not None:
            self.tracer.on_send(self.rank, dest, tag, nb)
        self._in_flight[dest].append((self.rank, payload, tag, nb,
                                      self._next_seq))
        self._next_seq += 1

    def inbox(self, tag: Any = None) -> list[tuple[int, Any]]:
        """Messages delivered to this process at the last boundary.

        With ``tag`` given, only matching messages are consumed;
        non-matching ones stay in the mailbox (MPI tag matching).
        """
        if self.observer is not None:
            self.observer.on_inbox(self.rank, tag)
        box = self._mailboxes[self.rank]
        if tag is None:
            msgs, keep = box, []
        else:
            msgs = [m for m in box if m[2] == tag]
            keep = [m for m in box if m[2] != tag]
        self._mailboxes[self.rank] = keep
        if self.tracer is not None:
            self.tracer.on_inbox(self.rank, tag, len(msgs))
        # receive cost: latency per message is paid by the receiver too
        self.proc_counters[self.rank].messages += 0  # latency counted at sender
        return [(m[0], m[1]) for m in msgs]

    def alltoallv(self, contributions: list[list[Any]]) -> list[list[Any]]:
        """The MPI_Alltoallv collective.

        ``contributions[p][q]`` is the payload process p sends to q.
        Every process pays ``ceil(log2 P)`` collective steps plus the
        bytes it sends and receives (the paper's Section 6.3.1 notes
        this variant both pushes and pulls, erasing the distinction).
        Returns ``received[q][p]`` = payload from p to q.
        """
        if len(contributions) != self.P:
            raise ValueError("need one contribution vector per process")
        steps = max(1, int(np.ceil(np.log2(max(self.P, 2)))))
        received: list[list[Any]] = [[None] * self.P for _ in range(self.P)]
        for p in range(self.P):
            row = contributions[p]
            if len(row) != self.P:
                raise ValueError("each contribution vector must have P entries")
            sent_bytes = sum(self._payload_bytes(x) for x in row)
            c = self.proc_counters[p]
            c.collectives += steps
            c.collective_bytes += sent_bytes
            for q in range(self.P):
                received[q][p] = row[q]
        for q in range(self.P):
            c = self.proc_counters[q]
            c.collective_bytes += sum(self._payload_bytes(x) for x in received[q])
        if self.faults is not None:
            self.faults.perturb_alltoallv(received)
        return received

    # -- Remote Memory Access ----------------------------------------------------------
    def rma_get(self, owner: int, nitems: int, itemsize: int = 8,
                ops: int = 1, window=None, idx=None) -> None:
        """Fetch ``nitems`` items from a remote window in ``ops`` gets."""
        if self.observer is not None:
            self.observer.on_rma("get", self.rank, owner, window, idx, None)
        self._remote_op(owner, "remote_gets", nitems * itemsize, op_count=ops)
        if self.tracer is not None:
            self.tracer.on_rma("get", self.rank, owner, window, nitems, None,
                               nbytes=nitems * itemsize, ops=ops)

    def rma_put(self, owner: int, nitems: int, itemsize: int = 8,
                ops: int = 1, window=None, idx=None) -> None:
        if self.observer is not None:
            self.observer.on_rma("put", self.rank, owner, window, idx, None)
        self._remote_op(owner, "remote_puts", nitems * itemsize, op_count=ops,
                        local_kind="write")
        if self.tracer is not None:
            self.tracer.on_rma("put", self.rank, owner, window, nitems, None,
                               nbytes=nitems * itemsize, ops=ops)

    def rma_accumulate(self, owner: int, nitems: int, dtype: str = "float",
                       itemsize: int = 8, window=None, idx=None) -> None:
        """Remote accumulate; ``dtype`` chooses the protocol (Section 6.3).

        With ``owner == rank`` this is a *local* atomic update on the
        process's own window: an integer accumulate is a processor
        fetch-and-add, a float accumulate a CAS loop (no float atomics
        on CPUs) -- the same convention the SM kernels use.
        """
        if self.observer is not None:
            self.observer.on_rma("acc", self.rank, owner, window, idx, dtype)
        attr = "remote_acc_float" if dtype == "float" else "remote_acc_int"
        self._remote_op(owner, attr, nitems * itemsize, op_count=nitems,
                        local_kind="faa" if dtype != "float" else "cas")
        if self.tracer is not None:
            self.tracer.on_rma("acc", self.rank, owner, window, nitems, dtype,
                               nbytes=nitems * itemsize, ops=nitems)

    def rma_flush(self, owner: int | None = None) -> None:
        """Complete this process's outstanding staged puts/accumulates."""
        self.proc_counters[self.rank].flushes += 1
        if self.observer is not None:
            self.observer.on_flush(self.rank, owner)
        if self.tracer is not None:
            self.tracer.on_flush(self.rank, owner)
        self._complete_staged(self.rank, owner)

    # -- data-carrying RMA (window registry + staged completion) -----------------------
    def register_window(self, window, array: np.ndarray) -> None:
        """Expose ``array`` as the storage behind a window handle (or name).

        Required before :meth:`put`/:meth:`accumulate` can target the
        window; also the checkpoint set crash rollback restores.
        Re-registering a name overwrites the binding (kernels register
        their windows at entry, every run).
        """
        self._windows[self._window_key(window)] = array

    def put(self, owner: int, vals, *, window, idx, itemsize: int = 8,
            ops: int | None = None) -> None:
        """A :meth:`rma_put` that moves data through the window registry.

        Charges exactly what ``rma_put(owner, len(idx), ...)`` charges
        and fires the same observer event; a local put stores
        immediately, a remote one is staged until ``rma_flush``.
        """
        vals = np.asarray(vals)
        idx = np.asarray(idx, dtype=np.int64).ravel()
        op_count = len(idx) if ops is None else int(ops)
        if self.observer is not None:
            self.observer.on_rma("put", self.rank, owner, window, idx, None)
        self._remote_op(owner, "remote_puts", op_count * itemsize,
                        op_count=op_count, local_kind="write")
        if self.tracer is not None:
            self.tracer.on_rma("put", self.rank, owner, window, op_count, None,
                               nbytes=op_count * itemsize, ops=op_count)
        self._stage_or_apply("put", owner, window, idx, vals, None,
                             op_count, op_count * itemsize)

    def accumulate(self, owner: int, vals, *, window, idx,
                   dtype: str = "float", itemsize: int = 8,
                   ops: int | None = None) -> None:
        """An :meth:`rma_accumulate` that moves data (``+=`` at the target).

        Charges exactly what ``rma_accumulate(owner, n, dtype, ...)``
        charges for ``n = len(idx)`` (or ``ops``, for kernels that
        account several logical updates in one batched entry, like TC's
        per-witness counts) and fires the same observer event.  Local
        accumulates apply immediately (they are processor atomics);
        remote ones are staged until ``rma_flush``, in issue order, so
        fault-free float results are bit-identical to immediate
        application.
        """
        vals = np.asarray(vals)
        idx = np.asarray(idx, dtype=np.int64).ravel()
        op_count = len(idx) if ops is None else int(ops)
        if self.observer is not None:
            self.observer.on_rma("acc", self.rank, owner, window, idx, dtype)
        attr = "remote_acc_float" if dtype == "float" else "remote_acc_int"
        self._remote_op(owner, attr, op_count * itemsize, op_count=op_count,
                        local_kind="faa" if dtype != "float" else "cas")
        if self.tracer is not None:
            self.tracer.on_rma("acc", self.rank, owner, window, op_count,
                               dtype, nbytes=op_count * itemsize,
                               ops=op_count)
        self._stage_or_apply("acc", owner, window, idx, vals, dtype,
                             op_count, op_count * itemsize)

    def _stage_or_apply(self, kind: str, owner: int, window, idx, vals,
                        dtype, op_count: int, nbytes: int) -> None:
        op = _StagedOp(seq=self._next_seq, rank=self.rank, owner=owner,
                       window=window, wkey=self._window_key(window),
                       idx=idx, vals=vals, kind=kind, dtype=dtype,
                       op_count=op_count, nbytes=nbytes)
        self._next_seq += 1
        if owner == self.rank:
            # local window update: no network to fault, applies now
            self._apply_staged(op)
            return
        self._staged.append(op)

    def _complete_staged(self, rank: int, owner: int | None = None) -> None:
        for op in self._staged:
            if op.applied or op.rank != rank:
                continue
            if owner is not None and op.owner != owner:
                continue
            if self.faults is not None:
                self.faults.flush_op(op)
            else:
                self._apply_staged(op)
        if self.faults is None:
            self._staged = [op for op in self._staged if not op.applied]

    def _apply_staged(self, op: _StagedOp) -> bool:
        """Apply a staged op; ``False`` = suppressed by sequence dedup."""
        arr = self._window_array(op.window)
        faults = self.faults
        if (faults is not None and faults.dedup
                and op.seq in self._applied_seqs):
            return False
        self._applied_seqs.add(op.seq)
        if op.kind == "acc":
            np.add.at(arr, op.idx, op.vals)
        else:
            arr[op.idx] = op.vals
        op.applied = True
        return True

    @staticmethod
    def _window_key(window) -> str:
        return str(getattr(window, "name", window))

    def _window_array(self, window) -> np.ndarray:
        key = self._window_key(window)
        try:
            return self._windows[key]
        except KeyError:
            raise KeyError(
                f"window {key!r} is not registered; call "
                "rt.register_window(handle, array) before data-carrying "
                "put/accumulate") from None

    def _remote_op(self, owner: int, attr: str, nbytes: int,
                   op_count: int = 1, local_kind: str = "read") -> None:
        c = self.proc_counters[self.rank]
        if owner == self.rank:
            # local window access: plain memory traffic / processor
            # atomics, no network
            n = max(1, nbytes // 8)
            if local_kind == "write":
                c.writes += n
            elif local_kind in ("faa", "cas"):
                c.atomics += n
                setattr(c, local_kind, getattr(c, local_kind) + n)
            else:
                c.reads += n
            return
        setattr(c, attr, getattr(c, attr) + op_count)
        c.remote_bytes += nbytes

    # -- helpers ------------------------------------------------------------------------
    @staticmethod
    def _payload_bytes(payload: Any) -> int:
        if payload is None:
            return 0
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (list, tuple)):
            return 8 * len(payload)
        return 8
