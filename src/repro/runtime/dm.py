"""The simulated distributed-memory machine (Section 6.3).

P processes, each owning a 1D block of vertices, communicate through
one of two backends:

* **Message Passing (MP)** -- explicit point-to-point messages with
  implicit synchronization, plus the ``alltoallv`` collective the
  paper's MP PageRank uses.  Messages are buffered in mailboxes and
  delivered at the next superstep boundary; an optional ``tag``
  (mirroring MPI tags) lets a receiver consume one message class while
  other in-flight classes remain pending -- the epoch checker uses the
  tag match to tell a synchronized read from a read racing the current
  superstep's sends.
* **Remote Memory Access (RMA)** -- puts/gets/accumulates on remote
  windows with explicit flushes, mirroring MPI-3 one-sided / foMPI.
  ``accumulate`` distinguishes float and integer operands: the paper
  found that float ``MPI_Accumulate`` uses a costly locking protocol
  while 64-bit-integer fetch-and-op has a hardware fast path, and that
  difference is what flips the PR-vs-TC backend ranking (Section 6.5).
  RMA calls optionally name the ``window`` (a registered array handle)
  and the targeted item indices; the base runtime ignores both, the
  epoch checker of :mod:`repro.analysis.dm_race` needs them for its
  region analysis.

An ``observer`` (set by ``attach_dm_race_detector``) receives every
communication event; with no observer attached the hooks are single
``is None`` checks, and all cost accounting is identical either way.

Simulated time per superstep is the max over processes of the event
cost accumulated in that superstep (BSP accounting); the α-β weights
live in :class:`repro.machine.cost_model.MachineSpec`.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.graph.partition import Partition1D
from repro.machine.cost_model import MachineSpec, XC40
from repro.machine.counters import PerfCounters
from repro.machine.memory import CountingMemory, MemoryModel


class DMRuntime:
    """P simulated processes with MP and RMA communication primitives."""

    def __init__(self, n_vertices: int, P: int, machine: MachineSpec = XC40,
                 memory: MemoryModel | None = None) -> None:
        self.P = P
        self.machine = machine
        self.part = Partition1D(n_vertices, P)
        self.mem = memory or CountingMemory(machine.hierarchy)
        self.proc_counters = [PerfCounters() for _ in range(P)]
        self.time = 0.0
        self.superstep_index = 0
        #: epoch-checker hook (see repro.analysis.dm_race); None = no-op
        self.observer = None
        self._rank: int | None = None
        # mailboxes[dest] = list of (source, payload, tag) delivered next
        # superstep
        self._in_flight: list[list[tuple[int, Any, Any]]] = [[] for _ in range(P)]
        self._mailboxes: list[list[tuple[int, Any, Any]]] = [[] for _ in range(P)]
        self.mem.set_counters(self.proc_counters[0])

    # -- process bookkeeping ------------------------------------------------------
    def owner(self, v):
        return self.part.owner(v)

    def owned(self, p: int) -> np.ndarray:
        return self.part.owned(p)

    def total_counters(self) -> PerfCounters:
        return PerfCounters.total(self.proc_counters)

    def reset(self) -> None:
        """Clear counters, time, and mailboxes between runs.

        Rebinds memory accounting to process 0 -- without this, events
        issued between runs land on whichever process happened to
        execute last (the counter-rebinding bug class
        ``SMRuntime.reset`` fixed on the shared-memory side).
        """
        for c in self.proc_counters:
            c.reset()
        self.time = 0.0
        self.superstep_index = 0
        self._rank = None
        self._in_flight = [[] for _ in range(self.P)]
        self._mailboxes = [[] for _ in range(self.P)]
        self.mem.set_counters(self.proc_counters[0])

    def _activate(self, p: int) -> None:
        self._rank = p
        self.mem.set_counters(self.proc_counters[p])
        if self.observer is not None:
            self.observer.on_activate(p)

    @property
    def rank(self) -> int:
        if self._rank is None:
            raise RuntimeError("not inside a superstep")
        return self._rank

    # -- superstep execution --------------------------------------------------------
    def superstep(self, body: Callable[[int], None]) -> None:
        """Run ``body(p)`` for every process; deliver messages afterwards.

        Time advances by the slowest process in the superstep plus a
        barrier (the implicit synchronization of the MP model / the
        window synchronization of RMA).
        """
        if self.observer is not None:
            self.observer.on_superstep_begin(self.superstep_index)
        span = 0.0
        for p in range(self.P):
            self._activate(p)
            before = self.machine.time(self.proc_counters[p])
            body(p)
            span = max(span, self.machine.time(self.proc_counters[p]) - before)
        self._rank = None
        self.time += span + self.machine.w_barrier
        for c in self.proc_counters:
            c.barriers += 1
        # deliver in-flight messages
        self._mailboxes = self._in_flight
        self._in_flight = [[] for _ in range(self.P)]
        self.superstep_index += 1
        if self.observer is not None:
            self.observer.on_superstep_end()

    # -- Message Passing -----------------------------------------------------------
    def send(self, dest: int, payload: Any, nbytes: int | None = None,
             tag: Any = None) -> None:
        """Post a point-to-point message (delivered next superstep)."""
        c = self.proc_counters[self.rank]
        c.messages += 1
        c.msg_bytes += self._payload_bytes(payload) if nbytes is None else int(nbytes)
        if self.observer is not None:
            self.observer.on_send(self.rank, dest, tag)
        self._in_flight[dest].append((self.rank, payload, tag))

    def inbox(self, tag: Any = None) -> list[tuple[int, Any]]:
        """Messages delivered to this process at the last boundary.

        With ``tag`` given, only matching messages are consumed;
        non-matching ones stay in the mailbox (MPI tag matching).
        """
        if self.observer is not None:
            self.observer.on_inbox(self.rank, tag)
        box = self._mailboxes[self.rank]
        if tag is None:
            msgs, keep = box, []
        else:
            msgs = [m for m in box if m[2] == tag]
            keep = [m for m in box if m[2] != tag]
        self._mailboxes[self.rank] = keep
        # receive cost: latency per message is paid by the receiver too
        self.proc_counters[self.rank].messages += 0  # latency counted at sender
        return [(src, payload) for src, payload, _ in msgs]

    def alltoallv(self, contributions: list[list[Any]]) -> list[list[Any]]:
        """The MPI_Alltoallv collective.

        ``contributions[p][q]`` is the payload process p sends to q.
        Every process pays ``ceil(log2 P)`` collective steps plus the
        bytes it sends and receives (the paper's Section 6.3.1 notes
        this variant both pushes and pulls, erasing the distinction).
        Returns ``received[q][p]`` = payload from p to q.
        """
        if len(contributions) != self.P:
            raise ValueError("need one contribution vector per process")
        steps = max(1, int(np.ceil(np.log2(max(self.P, 2)))))
        received: list[list[Any]] = [[None] * self.P for _ in range(self.P)]
        for p in range(self.P):
            row = contributions[p]
            if len(row) != self.P:
                raise ValueError("each contribution vector must have P entries")
            sent_bytes = sum(self._payload_bytes(x) for x in row)
            c = self.proc_counters[p]
            c.collectives += steps
            c.collective_bytes += sent_bytes
            for q in range(self.P):
                received[q][p] = row[q]
        for q in range(self.P):
            c = self.proc_counters[q]
            c.collective_bytes += sum(self._payload_bytes(x) for x in received[q])
        return received

    # -- Remote Memory Access ----------------------------------------------------------
    def rma_get(self, owner: int, nitems: int, itemsize: int = 8,
                ops: int = 1, window=None, idx=None) -> None:
        """Fetch ``nitems`` items from a remote window in ``ops`` gets."""
        if self.observer is not None:
            self.observer.on_rma("get", self.rank, owner, window, idx, None)
        self._remote_op(owner, "remote_gets", nitems * itemsize, op_count=ops)

    def rma_put(self, owner: int, nitems: int, itemsize: int = 8,
                ops: int = 1, window=None, idx=None) -> None:
        if self.observer is not None:
            self.observer.on_rma("put", self.rank, owner, window, idx, None)
        self._remote_op(owner, "remote_puts", nitems * itemsize, op_count=ops,
                        local_kind="write")

    def rma_accumulate(self, owner: int, nitems: int, dtype: str = "float",
                       itemsize: int = 8, window=None, idx=None) -> None:
        """Remote accumulate; ``dtype`` chooses the protocol (Section 6.3).

        With ``owner == rank`` this is a *local* atomic update on the
        process's own window: an integer accumulate is a processor
        fetch-and-add, a float accumulate a CAS loop (no float atomics
        on CPUs) -- the same convention the SM kernels use.
        """
        if self.observer is not None:
            self.observer.on_rma("acc", self.rank, owner, window, idx, dtype)
        attr = "remote_acc_float" if dtype == "float" else "remote_acc_int"
        self._remote_op(owner, attr, nitems * itemsize, op_count=nitems,
                        local_kind="faa" if dtype != "float" else "cas")

    def rma_flush(self, owner: int | None = None) -> None:
        self.proc_counters[self.rank].flushes += 1
        if self.observer is not None:
            self.observer.on_flush(self.rank, owner)

    def _remote_op(self, owner: int, attr: str, nbytes: int,
                   op_count: int = 1, local_kind: str = "read") -> None:
        c = self.proc_counters[self.rank]
        if owner == self.rank:
            # local window access: plain memory traffic / processor
            # atomics, no network
            n = max(1, nbytes // 8)
            if local_kind == "write":
                c.writes += n
            elif local_kind in ("faa", "cas"):
                c.atomics += n
                setattr(c, local_kind, getattr(c, local_kind) + n)
            else:
                c.reads += n
            return
        setattr(c, attr, getattr(c, attr) + op_count)
        c.remote_bytes += nbytes

    # -- helpers ------------------------------------------------------------------------
    @staticmethod
    def _payload_bytes(payload: Any) -> int:
        if payload is None:
            return 0
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (list, tuple)):
            return 8 * len(payload)
        return 8
