"""The simulated shared-memory machine.

Why a simulation: the paper's shared-memory study runs P hardware
threads over one address space; CPython's GIL makes real threads
useless for this, so the repo executes P *simulated* threads
superstep-style (deterministically, one after another within a parallel
region) while accounting events per thread.  Simulated parallel time of
a region is the maximum of its threads' event costs, plus a barrier
term -- the standard BSP accounting.

The push/pull ownership discipline of Section 3.8 is enforceable: with
``check_ownership=True`` any write a pull-variant performs to a vertex
outside the executing thread's partition raises
:class:`OwnershipViolation`.  Push variants instead declare their
remote writes through the atomic/lock memory primitives.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D
from repro.machine.cost_model import MachineSpec, XC30
from repro.machine.counters import PerfCounters
from repro.machine.memory import CacheSimMemory, CountingMemory, MemoryModel
from repro.runtime.scheduler import assign


class OwnershipViolation(RuntimeError):
    """A pull-mode thread wrote to a vertex it does not own (Section 3.8)."""


class SMRuntime:
    """P simulated threads over a 1D-partitioned graph.

    Parameters
    ----------
    g:
        The input graph (used for its vertex count; algorithms receive
        it separately).
    P:
        Number of simulated threads.
    machine:
        The :class:`MachineSpec` whose weights convert events to time.
    memory:
        An explicit memory model; defaults to a
        :class:`CountingMemory` over the machine's cache hierarchy.
        Pass a :class:`CacheSimMemory` for Table-1-style trace runs.
    schedule, chunk:
        Loop scheduling policy for :meth:`parallel_for`.
    check_ownership:
        Enable the pull-mode owner-write assertion.
    """

    def __init__(self, g: CSRGraph, P: int, machine: MachineSpec = XC30,
                 memory: MemoryModel | None = None, schedule: str = "static",
                 chunk: int = 64, check_ownership: bool = False) -> None:
        self.g = g
        self.P = P
        self.machine = machine
        self.part = Partition1D(g.n, P)
        if memory is None:
            memory = CountingMemory(machine.hierarchy)
        self.mem = memory
        self.schedule = schedule
        self.chunk = chunk
        self.check_ownership = check_ownership
        self.thread_counters = [PerfCounters() for _ in range(P)]
        self.time = 0.0              #: accumulated simulated time (mtu)
        self.region_count = 0
        self._active_thread: int | None = None
        #: observability hook (repro.observability.attach_tracer)
        self.tracer = None
        #: chaos hook (repro.runtime.sm_faults.attach_sm_fault_injector)
        self.faults = None
        self._label = ""
        self.mem.set_counters(self.thread_counters[0])

    # -- bookkeeping -------------------------------------------------------------
    def owner(self, v):
        return self.part.owner(v)

    def total_counters(self) -> PerfCounters:
        return PerfCounters.total(self.thread_counters)

    def annotate(self, label: str) -> None:
        """Label subsequent regions in the trace/profile (sticky)."""
        self._label = label

    def reset(self) -> None:
        """Clear counters and time (the memory model keeps its caches warm)."""
        for c in self.thread_counters:
            c.reset()
        self.time = 0.0
        self.region_count = 0
        # rebind accounting to thread 0: without this, events issued
        # between runs land on whichever thread happened to execute last
        self._active_thread = None
        self.mem.set_counters(self.thread_counters[0])
        if self.tracer is not None:
            self.tracer.on_reset()
        if self.faults is not None:
            self.faults.reset()

    def _activate(self, t: int) -> None:
        self._active_thread = t
        self.mem.set_counters(self.thread_counters[t])
        if isinstance(self.mem, CacheSimMemory):
            self.mem.set_thread(min(t, self.mem.n_threads - 1))
        else:
            self.mem.set_thread(t)

    def owned_write_check(self, v) -> None:
        """Raise if the executing thread writes a vertex it does not own.

        Called by pull variants (cheaply skipped unless
        ``check_ownership``); push variants never call it -- they use
        atomics/locks for remote writes instead.
        """
        if not self.check_ownership or self._active_thread is None:
            return
        ok = self.part.is_local(self._active_thread, v)
        if not np.all(ok):
            bad = np.asarray(v)[~np.asarray(ok)] if not np.isscalar(v) else v
            raise OwnershipViolation(
                f"thread {self._active_thread} wrote non-owned vertex {bad}")

    # -- parallel constructs -----------------------------------------------------
    def for_each_thread(self, body: Callable[[int, np.ndarray], None],
                        barrier: bool = True) -> None:
        """Run ``body(t, owned_vertices)`` once per thread (a parallel region).

        This is the owner-computes loop shape: thread t receives its
        contiguous vertex block.
        """
        self._region([self.part.owned(t) for t in range(self.P)], body, barrier)

    def parallel_for(self, items: np.ndarray,
                     body: Callable[[int, np.ndarray], None],
                     schedule: str | None = None, by_owner: bool = False,
                     barrier: bool = True) -> None:
        """Run ``body(t, chunk_of_items)`` with items spread over threads.

        ``by_owner=True`` routes every item to the thread owning it (the
        paper's "t[v] does ..." formulation for sparse frontiers);
        otherwise the configured loop schedule decides.
        """
        items = np.asarray(items, dtype=np.int64)
        if by_owner:
            chunks = self.part.group_by_owner(items)
            if self.tracer is not None:
                self.tracer.on_schedule("by-owner", len(items),
                                        [len(c) for c in chunks], None)
        else:
            chunks = assign(items, self.P, schedule or self.schedule,
                            self.chunk, tracer=self.tracer)
        self._region(chunks, body, barrier)

    def sequential(self, body: Callable[[], None], thread: int = 0,
                   barrier: bool = True) -> None:
        """Run ``body`` on one simulated thread while others idle.

        Models the serial phases of Greedy-Switch / Conflict-Removal:
        the region's time is that single thread's cost.
        """
        tracer = self.tracer
        faults = self.faults
        t_start = self.time
        self._activate(thread)
        self.mem.region_begin()
        if faults is not None:
            # the serial phase is the conceptual master thread: it can
            # straggle but never crashes (like DM rank bookkeeping
            # between supersteps, which PR 3 also leaves uninjured)
            faults.begin_region([thread], allow_crash=False)
        snap = self.thread_counters[thread].copy() if tracer is not None else None
        before = self.machine.time(self.thread_counters[thread])
        body()
        span = self.machine.time(self.thread_counters[thread]) - before
        self.mem.region_end()
        stalls = None
        if faults is not None:
            full = [0.0] * self.P
            full[thread] = span
            full, stalls = faults.end_region(full)
            span = full[thread]
        self.time += span
        if tracer is not None:
            spans = [0.0] * self.P
            spans[thread] = span
            deltas = [PerfCounters() for _ in range(self.P)]
            deltas[thread] = self.thread_counters[thread] - snap
            tracer.on_region(self._label, t_start, span, spans, deltas,
                             sequential=True, stalls=stalls)
        if barrier:
            self.barrier()

    def barrier(self) -> None:
        """A full barrier: every thread pays the barrier cost once.

        Recovery waits (crash timeouts, CAS-retry backoff, store-buffer
        fences) gate barrier exit: the stall lands *before* the barrier
        cost, after the region's max span -- the PR 3 convention that
        keeps fault overhead strictly visible in ``time``.
        """
        if self.faults is not None:
            stall = self.faults.barrier_stall()
            if stall > 0.0:
                if self.tracer is not None:
                    self.tracer.on_stall(self.time, stall, self.region_count)
                self.time += stall
        if self.tracer is not None:
            self.tracer.on_barrier(self.time)
        for c in self.thread_counters:
            c.barriers += 1
        self.time += self.machine.w_barrier
        self.region_count += 1
        self.mem.on_barrier()

    # -- internals -----------------------------------------------------------------
    def _region(self, chunks: Sequence[np.ndarray],
                body: Callable[[int, np.ndarray], None], barrier: bool) -> None:
        tracer = self.tracer
        faults = self.faults
        t_start = self.time
        spans = []
        deltas = []
        self.mem.region_begin()
        crashed = (faults.begin_region(range(len(chunks)))
                   if faults is not None else ())
        for t, chunk in enumerate(chunks):
            self._activate(t)
            # region-boundary checkpoint, taken only for the threads the
            # injector doomed: the pre-body array snapshot is what crash
            # recovery rolls back to before the rerun
            ckpt = faults.checkpoint() if t in crashed else None
            snap = self.thread_counters[t].copy() if tracer is not None else None
            before = self.machine.time(self.thread_counters[t])
            body(t, chunk)
            if ckpt is not None:
                faults.crash(t, ckpt, lambda t=t, chunk=chunk: body(t, chunk))
            spans.append(self.machine.time(self.thread_counters[t]) - before)
            if tracer is not None:
                deltas.append(self.thread_counters[t] - snap)
        self.mem.region_end()
        stalls = None
        if faults is not None:
            spans, stalls = faults.end_region(spans)
        span = self._region_span(spans)
        self.time += span
        if tracer is not None:
            tracer.on_region(self._label, t_start, span, spans, deltas,
                             sizes=[len(c) for c in chunks], stalls=stalls)
        if barrier:
            self.barrier()

    def _region_span(self, spans: list[float]) -> float:
        """Parallel time of one region under the core/SMT topology.

        With P <= cores every simulated thread has a core: BSP max.
        With P > cores, threads are placed round-robin (t % cores) and
        co-scheduled SMT siblings share a core at ``smt_yield`` combined
        throughput -- hyper-threading helps (the paper's Section 6.5
        observation) but does not double throughput.
        """
        if not spans:
            return 0.0
        cores = self.machine.cores
        if self.P <= cores:
            return max(spans)
        per_core: dict[int, list[float]] = {}
        for t, s in enumerate(spans):
            per_core.setdefault(t % cores, []).append(s)
        worst = 0.0
        for sibling_spans in per_core.values():
            if len(sibling_spans) == 1:
                core_time = sibling_spans[0]
            else:
                core_time = sum(sibling_spans) / self.machine.smt_yield
            worst = max(worst, core_time)
        return worst
