"""Region-level profiling for the simulated shared-memory runtime.

Wraps an :class:`~repro.runtime.sm.SMRuntime` so every parallel region
is recorded: label (caller-supplied or auto-numbered), simulated span,
per-thread spans (for imbalance), and the dominant event of the region.
The report renders the top regions with load-imbalance factors --
the tool one reaches for when a push variant is slower than expected
and the question is *which phase* and *which thread*.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.harness.charts import bar_chart
from repro.runtime.sm import SMRuntime


@dataclass
class RegionRecord:
    index: int
    label: str
    span: float                 #: simulated region time (mtu)
    thread_spans: list          #: per-thread costs within the region

    @property
    def imbalance(self) -> float:
        """max/mean thread cost -- 1.0 is perfectly balanced."""
        busy = [s for s in self.thread_spans if s > 0]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


@dataclass
class Profile:
    records: list = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(r.span for r in self.records)

    def top(self, k: int = 10) -> list[RegionRecord]:
        return sorted(self.records, key=lambda r: -r.span)[:k]

    def by_label(self) -> dict:
        agg: dict[str, float] = {}
        for r in self.records:
            agg[r.label] = agg.get(r.label, 0.0) + r.span
        return dict(sorted(agg.items(), key=lambda kv: -kv[1]))

    def render(self, k: int = 10) -> str:
        lines = [f"profile: {len(self.records)} regions, "
                 f"{self.total:,.0f} mtu total"]
        agg = self.by_label()
        if agg:
            lines.append(bar_chart(list(agg.items())[:k]))
        lines.append("top regions by span:")
        for r in self.top(k):
            lines.append(f"  #{r.index:<4} {r.label:<24} {r.span:>12,.0f} mtu  "
                         f"imbalance {r.imbalance:.2f}x")
        return "\n".join(lines)


class ProfiledRuntime(SMRuntime):
    """An SMRuntime that records every region into a :class:`Profile`.

    Use :meth:`annotate` to label the regions an algorithm is about to
    run (labels stick until changed); unlabeled regions are numbered.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.profile = Profile()
        self._label = ""

    def annotate(self, label: str) -> "ProfiledRuntime":
        self._label = label
        return self

    def _region(self, chunks, body, barrier) -> None:
        spans = []
        for t, chunk in enumerate(chunks):
            self._activate(t)
            before = self.machine.time(self.thread_counters[t])
            body(t, chunk)
            spans.append(self.machine.time(self.thread_counters[t]) - before)
        span = self._region_span(spans)
        self.time += span
        self.profile.records.append(RegionRecord(
            index=len(self.profile.records),
            label=self._label or f"region-{len(self.profile.records)}",
            span=span,
            thread_spans=spans,
        ))
        if barrier:
            self.barrier()

    def sequential(self, body, thread: int = 0, barrier: bool = True) -> None:
        self._activate(thread)
        before = self.machine.time(self.thread_counters[thread])
        body()
        span = self.machine.time(self.thread_counters[thread]) - before
        self.time += span
        spans = [0.0] * self.P
        spans[thread] = span
        self.profile.records.append(RegionRecord(
            index=len(self.profile.records),
            label=(self._label or "sequential") + " [seq]",
            span=span,
            thread_spans=spans,
        ))
        if barrier:
            self.barrier()
