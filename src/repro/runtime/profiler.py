"""Region-level profiling as a *view* over the trace layer.

Historically ``ProfiledRuntime`` re-implemented ``_region`` to record
spans; it is now a thin :class:`~repro.runtime.sm.SMRuntime` that
attaches a :class:`~repro.observability.tracer.Tracer` at construction
and projects the region events into the familiar
:class:`Profile`/:class:`RegionRecord` report -- label (caller-supplied
via ``annotate`` or auto-numbered), simulated span, per-thread spans
(for imbalance).  The tracer is the single source of truth; anything
the profile shows is also in the JSONL/Chrome exports.

This module stays import-light: the chart renderer is loaded lazily
inside :meth:`Profile.render`, so tracing/JSONL-only consumers never
pull the harness in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.tracer import attach_tracer
from repro.runtime.sm import SMRuntime


@dataclass
class RegionRecord:
    index: int
    label: str
    span: float                 #: simulated region time (mtu)
    thread_spans: list          #: per-thread costs within the region

    @property
    def imbalance(self) -> float:
        """max/mean thread cost -- 1.0 is perfectly balanced."""
        busy = [s for s in self.thread_spans if s > 0]
        if not busy:
            return 1.0
        return max(busy) / (sum(busy) / len(busy))


@dataclass
class Profile:
    records: list = field(default_factory=list)

    @classmethod
    def from_trace(cls, events) -> "Profile":
        """Project a tracer's event list onto region records."""
        return cls([
            RegionRecord(index=ev.data["index"], label=ev.label,
                         span=ev.dur, thread_spans=list(ev.data["spans"]))
            for ev in events if ev.kind == "region"
        ])

    @property
    def total(self) -> float:
        return sum(r.span for r in self.records)

    def top(self, k: int = 10) -> list[RegionRecord]:
        return sorted(self.records, key=lambda r: -r.span)[:k]

    def by_label(self) -> dict:
        agg: dict[str, float] = {}
        for r in self.records:
            agg[r.label] = agg.get(r.label, 0.0) + r.span
        return dict(sorted(agg.items(), key=lambda kv: -kv[1]))

    def render(self, k: int = 10) -> str:
        # lazy: rendering is the only place the harness chart code is
        # needed, and JSONL-only trace consumers must not import it
        from repro.harness.charts import bar_chart
        lines = [f"profile: {len(self.records)} regions, "
                 f"{self.total:,.0f} mtu total"]
        agg = self.by_label()
        if agg:
            lines.append(bar_chart(list(agg.items())[:k]))
        lines.append("top regions by span:")
        for r in self.top(k):
            lines.append(f"  #{r.index:<4} {r.label:<24} {r.span:>12,.0f} mtu  "
                         f"imbalance {r.imbalance:.2f}x")
        return "\n".join(lines)


class ProfiledRuntime(SMRuntime):
    """An SMRuntime with a tracer pre-attached and a profile view.

    Use :meth:`~repro.runtime.sm.SMRuntime.annotate` to label the
    regions an algorithm is about to run (labels stick until changed);
    unlabeled regions are numbered.  The full event stream stays
    available as ``rt.tracer`` for the exporters.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        attach_tracer(self)

    @property
    def profile(self) -> Profile:
        return Profile.from_trace(self.tracer.events)
