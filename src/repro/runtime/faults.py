"""Seeded fault injection and recovery for the DM runtime.

The paper's distributed-memory study (Sections 6.3--6.5) assumes a
lossless synchronous network.  Real Cray-scale runs do not: messages
drop, duplicate, and arrive late; flushes lose one-sided operations;
processes straggle and crash.  This module perturbs the simulated
machine's communication *at superstep boundaries* -- deterministically,
from one seeded RNG -- and pairs every fault class with the recovery
protocol a reliable transport would use:

==================  ==========================================  =========================================
fault (``FaultPlan``)  without recovery                          with recovery (``RecoveryConfig``)
==================  ==========================================  =========================================
``drop``            message vanishes                            ack/retry with exponential backoff
``duplicate``       message delivered twice                     sequence-number dedup discards the copy
``delay``           message arrives ``delay_steps`` boundaries  the barrier waits for the straggling
                    late (reordering across supersteps)         message (delivery guarantee at a cost)
``reorder``         one destination's batch is permuted         same (tag matching is order-blind)
``rma_lost``        a flushed put/accumulate never lands        replayed at the boundary until acked
``rma_duplicate``   the op is applied twice (FAAs double-count)  sequence-number dedup applies it once
``straggler``       the superstep span is multiplied            same (BSP absorbs it at the barrier)
``crash``           the process's superstep work is lost        checkpoint rollback + restart and rerun
==================  ==========================================  =========================================

Faults only touch the *data-carrying* channels: mailbox messages, the
``alltoallv`` cells, and the staged :meth:`DMRuntime.put` /
:meth:`DMRuntime.accumulate` operations.  Cost-only messages (payload
``None`` -- the BFS-pull bitmap fragments, the TC request emulation)
participate in the cost of faults (retries, waits) but carry no data to
corrupt; the synchronous neighbor-list fetches of the simulation are
documented compromises (see ``docs/robustness.md``).

Every random draw comes from one ``numpy`` generator seeded by
``FaultPlan.seed``, consumed in a fixed order by the sequential
simulation, so the whole fault *schedule* -- and therefore results,
counters, and simulated time -- is a pure function of (kernel, graph,
plan, recovery).  ``FaultInjector.schedule`` records every event for
bit-exact comparison across runs.

Usage mirrors ``attach_dm_race_detector`` (the two compose -- the
detector occupies ``rt.observer``/``rt.mem``, the injector ``rt.faults``)::

    rt = DMRuntime(g.n, P=4, machine=XC40.scaled(64))
    detector = attach_dm_race_detector(rt)
    injector = attach_fault_injector(rt, FaultPlan(seed=1, drop=0.1))
    result = dm_bfs(g, rt, root=0, variant="push")
    assert injector.stats.retries > 0 and detector.report().clean
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.fault_core import (
    BaseFaultInjector, FaultStats, plan_label, validate_plan,
    validate_recovery,
)

__all__ = ["FaultPlan", "RecoveryConfig", "FaultStats", "FaultInjector",
           "attach_fault_injector"]


@dataclass(frozen=True)
class FaultPlan:
    """Per-event fault probabilities and magnitudes, plus the RNG seed.

    All probabilities are evaluated independently per message / staged
    RMA op / process-superstep.  A zero probability consumes no random
    draws, so plans stay comparable across seeds fault class by fault
    class.  Probabilities outside [0, 1] raise at construction; a plan
    with every probability at zero warns (a no-op chaos cell).
    """

    #: magnitude knobs -- everything else is a probability in [0, 1]
    _NON_PROB = ("delay_steps", "straggler_factor")

    seed: int = 0
    #: P(point-to-point message or alltoallv cell is dropped)
    drop: float = 0.0
    #: P(message or alltoallv cell is delivered twice)
    duplicate: float = 0.0
    #: P(message arrives ``delay_steps`` boundaries late)
    delay: float = 0.0
    delay_steps: int = 1
    #: P(one destination's delivered batch is permuted at the boundary)
    reorder: float = 0.0
    #: P(a staged put/accumulate is lost by the flush that posted it)
    rma_lost: float = 0.0
    #: P(a staged put/accumulate is applied twice)
    rma_duplicate: float = 0.0
    #: P(a process runs ``straggler_factor`` x slower in a superstep)
    straggler: float = 0.0
    straggler_factor: float = 4.0
    #: P(a process crashes during a superstep, losing its work)
    crash: float = 0.0

    def __post_init__(self) -> None:
        validate_plan(self)

    def label(self) -> str:
        return plan_label(self)


@dataclass(frozen=True)
class RecoveryConfig:
    """Which recovery protocols the run opts into, and their price.

    The time constants are in the machine's cost units (mtu) and are
    charged to the *barrier* of the superstep where the recovery work
    happens (acks and redelivery gate barrier exit), so fault overhead
    is always visible in ``rt.time``.
    """

    #: sequence-numbered sends with ack/retry (messages, alltoallv
    #: cells, and boundary replay of lost staged RMA ops)
    ack_retry: bool = True
    #: discard re-deliveries by sequence number (messages and staged
    #: ops; the "idempotent accumulate replay" of duplicated FAAs)
    dedup: bool = True
    #: snapshot registered windows before a superstep body and, on a
    #: crash, roll back and rerun (without it the crashed work is lost)
    checkpoint_restart: bool = True
    #: first retry backoff; doubles every further round
    backoff_base: float = 5000.0
    retry_limit: int = 64
    #: barrier wait per delay step when holding the barrier for a
    #: straggling message
    delay_wait: float = 20000.0
    #: timeout-based failure detection + process restart
    crash_timeout: float = 200000.0
    restart_penalty: float = 100000.0
    #: barrier fence draining delayed stores (SM store-buffer faults)
    store_flush_wait: float = 2000.0

    def __post_init__(self) -> None:
        validate_recovery(self)


class FaultInjector(BaseFaultInjector):
    """Perturbs one :class:`~repro.runtime.dm.DMRuntime` per its plan.

    Installed as ``rt.faults`` by :func:`attach_fault_injector`; the
    runtime calls back at the three points where the simulated network
    acts -- superstep begin (crash/straggler draws), ``rma_flush``
    (staged-op completion), and the superstep boundary (message fates,
    staged-op replay).  With ``recovery=None`` the faults hit raw.
    """

    def _on_reset(self) -> None:
        self._held: list[tuple[int, int, tuple]] = []   # delayed messages
        self._factors: list[float] = [1.0] * self.rt.P

    def _step_index(self) -> int:
        return self.rt.superstep_index

    # -- superstep begin: crash and straggler draws ----------------------------------
    def begin_superstep(self) -> set[int]:
        plan, P = self.plan, self.rt.P
        crashes: set[int] = set()
        if plan.crash > 0:
            crashes = {p for p in range(P) if self._hit(plan.crash)}
        self._factors = [1.0] * P
        if plan.straggler > 0:
            for p in range(P):
                if self._hit(plan.straggler):
                    self._factors[p] = plan.straggler_factor
                    self.stats.stragglers += 1
                    self._event("straggler", p)
        return crashes

    def straggler_factor(self, p: int) -> float:
        return self._factors[p]

    # -- crash semantics -------------------------------------------------------------
    def crash(self, p: int, snapshot, body) -> None:
        """Roll back ``p``'s failed superstep attempt; rerun if recovering.

        The failed attempt's *counters* are kept -- the work was done
        and lost, and the double execution is exactly the rollback
        overhead the acceptance criteria want visible in time.
        """
        rt = self.rt
        rt._restore(p, snapshot)
        self.stats.crashes += 1
        self._event("crash", p)
        if rt.observer is not None:
            rollback = getattr(rt.observer, "on_rollback", None)
            if rollback is not None:
                rollback(p)
        rec = self.recovery
        if rec is None or not rec.checkpoint_restart:
            return                       # work lost; nobody notices in time
        self._wait(rec.crash_timeout + rec.restart_penalty)
        self.stats.restarts += 1
        self._event("restart", p)
        rt._activate(p)
        body(p)

    # -- staged RMA completion (called by rt.rma_flush) --------------------------------
    def flush_op(self, op) -> None:
        rt, plan = self.rt, self.plan
        if self._hit(plan.rma_lost):
            self.stats.rma_lost += 1
            self._event("rma-lost", op.rank, op.wkey)
            return                       # stays pending; boundary may replay
        rt._apply_staged(op)
        if self._hit(plan.rma_duplicate):
            self.stats.rma_duplicates += 1
            self._event("rma-dup", op.rank, op.wkey)
            if not rt._apply_staged(op):
                self.stats.rma_dup_suppressed += 1

    def _replay_op(self, op) -> None:
        rt, rec, plan = self.rt, self.recovery, self.plan
        attempts = 0
        while not op.applied:
            force = attempts >= rec.retry_limit
            attempts += 1
            self.stats.rma_replayed += 1
            self._event("rma-replay", op.rank, op.wkey)
            # the replay is a real re-issued op: same observer event,
            # same cost, its own flush -- the epoch checker's books stay
            # balanced within the epoch
            if rt.observer is not None:
                rt.observer.on_rma(op.kind, op.rank, op.owner, op.window,
                                   op.idx, op.dtype)
            c = rt.proc_counters[op.rank]
            if op.kind == "acc":
                attr = ("remote_acc_float" if op.dtype == "float"
                        else "remote_acc_int")
            else:
                attr = "remote_puts"
            setattr(c, attr, getattr(c, attr) + op.op_count)
            c.remote_bytes += op.nbytes
            c.flushes += 1
            if rt.observer is not None:
                rt.observer.on_flush(op.rank, op.owner)
            self._wait(self._backoff(attempts))
            if force:
                self.stats.retry_exhausted += 1
                rt._apply_staged(op)
            elif not self._hit(plan.rma_lost):
                rt._apply_staged(op)

    # -- superstep boundary: message fates + staged replay ------------------------------
    def boundary(self) -> None:
        rt, plan = self.rt, self.plan
        processed: list[list[tuple]] = [[] for _ in range(rt.P)]
        if self._held:
            still = []
            for release, dest, msg in self._held:
                if release <= rt.superstep_index:
                    processed[dest].append(msg)
                    self.stats.delivered_late += 1
                    self._event("deliver-late", msg[0], dest, msg[2])
                else:
                    still.append((release, dest, msg))
            self._held = still
        for dest in range(rt.P):
            for msg in rt._in_flight[dest]:
                self._fate(msg, dest, processed)
            if (plan.reorder > 0 and len(processed[dest]) > 1
                    and self._hit(plan.reorder)):
                perm = self.rng.permutation(len(processed[dest]))
                processed[dest] = [processed[dest][i] for i in perm]
                self.stats.reordered += 1
                self._event("reorder", dest)
        rt._in_flight = processed
        pending = [op for op in rt._staged if not op.applied]
        if pending and self.recovery is not None and self.recovery.ack_retry:
            for op in pending:
                self._replay_op(op)
        rt._staged = [op for op in rt._staged if not op.applied]

    def _fate(self, msg: tuple, dest: int, processed) -> None:
        plan, rec, rt = self.plan, self.recovery, self.rt
        src, _, tag, nbytes, _ = msg
        attempts = 0
        while self._hit(plan.drop):
            if rec is not None and rec.ack_retry:
                if attempts >= rec.retry_limit:
                    self.stats.retry_exhausted += 1
                    break
                attempts += 1
                self.stats.retries += 1
                self._event("retry", src, dest, tag)
                c = rt.proc_counters[src]
                c.messages += 1
                c.msg_bytes += nbytes
                self._wait(self._backoff(attempts))
                continue
            self.stats.dropped += 1
            self._event("drop", src, dest, tag)
            return
        if self._hit(plan.duplicate):
            self.stats.duplicates += 1
            self._event("duplicate", src, dest, tag)
            if self.dedup:
                self.stats.dup_suppressed += 1
            else:
                processed[dest].append(msg)
        if self._hit(plan.delay):
            self.stats.delayed += 1
            self._event("delay", src, dest, tag)
            if rec is not None and rec.ack_retry:
                self._wait(rec.delay_wait * plan.delay_steps)
            else:
                self._held.append(
                    (rt.superstep_index + plan.delay_steps, dest, msg))
                return
        processed[dest].append(msg)

    # -- alltoallv ------------------------------------------------------------------
    def perturb_alltoallv(self, received: list[list]) -> None:
        """Apply message faults per (sender, receiver) collective cell.

        The collective completes as a unit, so recovery stalls (and
        delays, which cannot partially deliver) are charged straight to
        ``rt.time``; a drop without recovery voids the cell (``None``),
        a duplicate without dedup appends the payload again.
        """
        rt, plan, rec = self.rt, self.plan, self.recovery
        retry = rec is not None and rec.ack_retry
        wait = 0.0
        for q in range(rt.P):
            extras = []
            for p in range(rt.P):
                if p == q:
                    continue
                payload = received[q][p]
                nbytes = rt._payload_bytes(payload)
                attempts = 0
                lost = False
                while self._hit(plan.drop):
                    if retry:
                        if attempts >= rec.retry_limit:
                            self.stats.retry_exhausted += 1
                            break
                        attempts += 1
                        self.stats.retries += 1
                        self._event("retry-a2a", p, q)
                        c = rt.proc_counters[p]
                        c.messages += 1
                        c.msg_bytes += nbytes
                        backoff = self._backoff(attempts)
                        wait += backoff
                        self.stats.backoff_time += backoff
                        continue
                    lost = True
                    self.stats.dropped += 1
                    self._event("drop-a2a", p, q)
                    break
                if lost:
                    received[q][p] = None
                    continue
                if self._hit(plan.duplicate):
                    self.stats.duplicates += 1
                    self._event("duplicate-a2a", p, q)
                    if self.dedup:
                        self.stats.dup_suppressed += 1
                    else:
                        extras.append(payload)
                if self._hit(plan.delay):
                    self.stats.delayed += 1
                    self._event("delay-a2a", p, q)
                    stall = ((rec.delay_wait if rec is not None else 20000.0)
                             * plan.delay_steps)
                    wait += stall
                    self.stats.backoff_time += stall
            received[q].extend(extras)
        rt.time += wait


def attach_fault_injector(rt, plan: FaultPlan,
                          recovery: RecoveryConfig | None = RecoveryConfig()
                          ) -> FaultInjector:
    """Install a seeded :class:`FaultInjector` as ``rt.faults``.

    ``recovery=None`` injects the raw faults with no protocol on top --
    the seeded-bug mode the chaos tests use to prove the faults have
    teeth.  Composes with ``attach_dm_race_detector`` in either order.
    """
    injector = FaultInjector(rt, plan, recovery)
    rt.faults = injector
    return injector
