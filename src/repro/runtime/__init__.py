"""Simulated parallel runtimes.

* :mod:`repro.runtime.sm` -- the shared-memory machine: P simulated
  threads over a 1D vertex partition, superstep execution, per-thread
  performance counters, simulated parallel time (max over threads per
  region plus barrier costs).
* :mod:`repro.runtime.frontier` -- per-thread frontier fragments
  (``my_F``) and their merge into the global frontier ``F`` (the
  k-filter of the paper's Section 4).
* :mod:`repro.runtime.scheduler` -- static / dynamic loop scheduling
  (the paper benchmarks both OpenMP policies).
* :mod:`repro.runtime.dm` -- the distributed-memory machine with
  Message-Passing and Remote-Memory-Access backends.
"""

from repro.runtime.sm import SMRuntime, OwnershipViolation
from repro.runtime.profiler import ProfiledRuntime, Profile
from repro.runtime.frontier import ThreadLocalFrontiers
from repro.runtime.scheduler import static_chunks, dynamic_chunks, assign

__all__ = [
    "SMRuntime",
    "OwnershipViolation",
    "ProfiledRuntime",
    "Profile",
    "ThreadLocalFrontiers",
    "static_chunks",
    "dynamic_chunks",
    "assign",
]
