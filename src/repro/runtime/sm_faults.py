"""Seeded fault injection and recovery for the SM runtime.

PR 3 gave the distributed-memory machine a chaos layer; this module is
its shared-memory twin.  The paper's SM study (Sections 3--6) assumes
P well-behaved threads over one coherent address space; real NUMA
boxes do not: threads get descheduled mid-region, lock holders are
preempted while waiters spin, CAS outcomes are lost or doubly applied
by contended cache lines, and store buffers delay plain-store
visibility ("Specializing Coherence, Consistency, and Push/Pull" in
PAPERS.md motivates exactly these relaxed-visibility faults).  Every
fault class pairs with the recovery a resilient runtime would use:

==================  =========================================  ==========================================
fault (``SMFaultPlan``)  without recovery                       with recovery (``RecoveryConfig``)
==================  =========================================  ==========================================
``straggler``       the thread's region span is multiplied     same (the BSP max absorbs it at the
                    (visible as a ``[stall]`` flame frame)     barrier; off the critical path it hides)
``lock_preempt``    the lock holder is preempted; the          same (the critical-section delay is
                    acquiring thread's span stretches          charged to the waiting thread's span)
``cas_lost``        a claim outcome silently vanishes: the     the claim is re-issued with exponential
                    CAS target and its ``covers=`` companions  backoff until it lands (``ack_retry``);
                    revert to pre-CAS values at region end     the wait gates the barrier
``cas_duplicate``   the claim is applied twice (a second       claim dedup discards the double apply
                    CAS attempt's cost lands on the thread)    (``dedup``)
``store_delay``     a plain store parks in the store buffer;   the barrier fences the buffer
                    cross-thread reads of parked addresses     (``store_flush_wait`` per episode) --
                    are tallied as ``stale_reads``             bounded staleness, drained every barrier
``crash``           the thread's region work is rolled back    region-granular checkpoint: registered
                    to the last region boundary and lost       arrays restored, timeout + restart
                                                               charged to the barrier, the body rerun
==================  =========================================  ==========================================

Simulation compromises (mirrors of the DM layer's, see
``docs/robustness.md``): delayed store visibility perturbs *cost and
observability* (stale-read tallies, fence stalls), not array values --
kernels write real numpy arrays the simulator cannot intercept, and
the race detector cross-check confirms the affected address pairs are
the benign pull-paradigm sharing where either value converges.  Crash
rollback restores **registered** arrays exactly (threads execute
sequentially, so the pre-body snapshot isolates precisely the doomed
thread's writes); unregistered side state (thread-local frontier
buffers) is not rolled back, which at worst duplicates frontier
entries the claim filters already discard.  Crashes are drawn for
parallel regions only -- ``sequential`` phases are the conceptual
master thread, like DM rank bookkeeping between supersteps.

Determinism is inherited from :class:`~repro.runtime.fault_core.
BaseFaultInjector`: one seeded generator, fixed draw order, the whole
schedule a pure function of (kernel, graph, plan, recovery).  Because
the batched stream engine lowers its op streams to the exact
per-element call script of the interpreted kernels whenever ``rt.mem``
is not a bare counting model (the race-detector rule,
``docs/streams.md``), attaching this injector forces that oracle path
and both engines observe **byte-identical** fault schedules.

Usage mirrors :func:`~repro.runtime.faults.attach_fault_injector`::

    rt = SMRuntime(g, P=4, machine=XC30.scaled(64))
    detector = attach_race_detector(rt)
    injector = attach_sm_fault_injector(rt, SMFaultPlan(seed=1, crash=0.05))
    result = bfs(g, rt, root=0, direction="push")
    assert injector.stats.restarts > 0 and detector.report().clean
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.fault_core import (
    BaseFaultInjector, FaultStats, plan_label, validate_plan,
)
from repro.runtime.faults import RecoveryConfig

__all__ = ["SMFaultPlan", "FaultPerturbedMemory", "SMFaultInjector",
           "attach_sm_fault_injector", "FaultStats", "RecoveryConfig"]


@dataclass(frozen=True)
class SMFaultPlan:
    """Per-event SM fault probabilities and magnitudes, plus the seed.

    Straggler and crash probabilities are evaluated per
    (thread, parallel region); lock/CAS/store probabilities per
    instrumented memory call.  A zero probability consumes no random
    draws (the shared plan contract); probabilities outside [0, 1]
    raise at construction and an all-zero plan warns.
    """

    #: magnitude knobs -- everything else is a probability in [0, 1]
    _NON_PROB = ("straggler_factor", "preempt_cost")

    seed: int = 0
    #: P(a thread runs ``straggler_factor`` x slower in a region)
    straggler: float = 0.0
    straggler_factor: float = 4.0
    #: P(a lock holder is preempted; the acquirer waits ``preempt_cost``)
    lock_preempt: float = 0.0
    preempt_cost: float = 3000.0
    #: P(a CAS call loses one claim outcome)
    cas_lost: float = 0.0
    #: P(a CAS call applies one claim twice)
    cas_duplicate: float = 0.0
    #: P(a plain store parks in the store buffer until the barrier)
    store_delay: float = 0.0
    #: P(a thread crashes during a parallel region, losing its work)
    crash: float = 0.0

    def __post_init__(self) -> None:
        validate_plan(self)

    def label(self) -> str:
        return plan_label(self)


def _as_index_array(idx) -> np.ndarray:
    if np.isscalar(idx):
        return np.array([int(idx)], dtype=np.int64)
    return np.asarray(idx, dtype=np.int64).ravel()


class FaultPerturbedMemory:
    """A perturbing proxy in front of any :class:`MemoryModel`.

    Mirrors the delegated surface of
    :class:`~repro.analysis.race.RaceDetectingMemory` (the two compose
    in either order; the chaos suite wraps the detector).  All
    event/cache accounting delegates to the wrapped model; the proxy
    additionally draws per-call faults from the injector's seeded RNG
    and keeps the ndarray references :meth:`register` sees, which is
    what makes region-granular checkpoint/rollback possible (the
    :class:`~repro.machine.memory.ArrayHandle` itself carries no array
    reference).
    """

    def __init__(self, inner, injector: "SMFaultInjector") -> None:
        self.inner = inner
        self.inj = injector
        self._thread = 0
        self._in_region = False
        self._handles: dict[str, object] = {}
        #: registered ndarrays by handle name (the checkpoint targets)
        self._snapshot_arrays: dict[str, np.ndarray] = {}
        #: (thread, handle name, parked index array) store-buffer entries
        self._pending_stores: list[tuple[int, str, np.ndarray]] = []
        #: (ndarray, item index, saved value) lost-claim reverts
        self._reverts: list[tuple[np.ndarray, int, object]] = []

    # -- delegated surface ---------------------------------------------------------
    @property
    def arrays(self) -> dict:
        return self.inner.arrays

    @property
    def counters(self):
        return self.inner.counters

    def register(self, name: str, array_or_size, itemsize: int | None = None):
        handle = self.inner.register(name, array_or_size, itemsize)
        self._handles[handle.name] = handle
        # keep (and refresh, on re-registration) the live array -- the
        # inner model returns the existing handle untouched, but the
        # checkpoint must roll back the array the kernel writes *now*
        if isinstance(array_or_size, np.ndarray):
            self._snapshot_arrays[handle.name] = array_or_size
        return handle

    def set_counters(self, counters) -> None:
        self.inner.set_counters(counters)

    def branch_cond(self, n: int = 1) -> None:
        self.inner.branch_cond(n)

    def branch_uncond(self, n: int = 1) -> None:
        self.inner.branch_uncond(n)

    def flop(self, n: int = 1) -> None:
        self.inner.flop(n)

    # -- runtime hooks -------------------------------------------------------------
    def set_thread(self, tid: int) -> None:
        self._thread = tid
        # CacheSimMemory needs its clamped private-cache id
        n_threads = getattr(self.inner, "n_threads", None)
        if n_threads is not None:
            self.inner.set_thread(min(tid, n_threads - 1))
        else:
            self.inner.set_thread(tid)

    def region_begin(self) -> None:
        self._in_region = True
        self.inner.region_begin()

    def region_end(self) -> None:
        self._in_region = False
        self.inner.region_end()

    def on_barrier(self) -> None:
        self.inner.on_barrier()

    # -- perturbed verbs -----------------------------------------------------------
    def read(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        inj = self.inj
        if (self._in_region and self._pending_stores and idx is not None
                and inj.plan.store_delay > 0):
            inj.note_stale_reads(self._thread, handle, _as_index_array(idx),
                                 self._pending_stores)
        self.inner.read(handle, idx=idx, count=count, mode=mode, start=start)

    def write(self, handle, idx=None, count=None, mode="seq", start=None) -> None:
        inj = self.inj
        if (self._in_region and idx is not None
                and inj._hit(inj.plan.store_delay)):
            self._pending_stores.append(
                (self._thread, handle.name, _as_index_array(idx)))
            inj.stats.store_delays += 1
            inj._event("store-delay", self._thread, handle.name)
        self.inner.write(handle, idx=idx, count=count, mode=mode, start=start)

    def faa(self, handle, idx=None, count=None, mode="rand", start=None,
            batched=False, covers=None) -> None:
        self.inner.faa(handle, idx=idx, count=count, mode=mode, start=start,
                       batched=batched, covers=covers)

    def cas(self, handle, idx=None, count=None, successes=None, mode="rand",
            start=None, batched=False, covers=None) -> None:
        self.inner.cas(handle, idx=idx, count=count, successes=successes,
                       mode=mode, start=start, batched=batched, covers=covers)
        inj = self.inj
        if not self._in_region or idx is None:
            return
        plan = inj.plan
        if plan.cas_lost > 0 and inj._hit(plan.cas_lost):
            inj.lose_claim(self, self._thread, handle, _as_index_array(idx),
                           covers, batched=batched)
        if plan.cas_duplicate > 0 and inj._hit(plan.cas_duplicate):
            inj.duplicate_claim(self, self._thread, handle,
                                _as_index_array(idx), batched=batched)

    def lock(self, handle, idx=None, count=None, mode="rand", start=None,
             covers=None) -> None:
        self.inner.lock(handle, idx=idx, count=count, mode=mode, start=start,
                        covers=covers)
        inj = self.inj
        if (self._in_region and inj.plan.lock_preempt > 0
                and inj._hit(inj.plan.lock_preempt)):
            inj.preempt_lock(self._thread, handle)

    # -- fault bookkeeping ---------------------------------------------------------
    def queue_revert(self, arr: np.ndarray, item: int) -> None:
        """Park (array, index, current value) for region-end rollback."""
        self._reverts.append((arr, item, arr[item].copy()
                              if hasattr(arr[item], "copy") else arr[item]))

    def apply_reverts(self) -> None:
        """Undo lost claims: pre-CAS values land back at region end."""
        for arr, item, value in self._reverts:
            arr[item] = value
        self._reverts.clear()

    def drain_stores(self) -> int:
        """Empty the store buffer (barrier visibility); returns count."""
        n = len(self._pending_stores)
        self._pending_stores.clear()
        return n

    def queue_marks(self) -> tuple[int, int]:
        """Queue lengths for crash checkpoints (rollback truncates to these)."""
        return len(self._pending_stores), len(self._reverts)

    def truncate_queues(self, marks: tuple[int, int]) -> None:
        del self._pending_stores[marks[0]:]
        del self._reverts[marks[1]:]


class SMFaultInjector(BaseFaultInjector):
    """Perturbs one :class:`~repro.runtime.sm.SMRuntime` per its plan.

    Installed as ``rt.faults`` by :func:`attach_sm_fault_injector`,
    which also wraps ``rt.mem`` in a :class:`FaultPerturbedMemory`.
    The runtime calls back at region begin (crash/straggler draws),
    region end (span stretch + lost-claim reverts), and the barrier
    (store-buffer fence + accumulated recovery stalls); the per-call
    CAS/lock/store faults arrive through the memory proxy.  With
    ``recovery=None`` the faults hit raw.
    """

    def __init__(self, rt, plan: SMFaultPlan,
                 recovery: RecoveryConfig | None = None) -> None:
        self.mem = FaultPerturbedMemory(rt.mem, self)
        super().__init__(rt, plan, recovery)

    def _on_reset(self) -> None:
        P = self.rt.P
        self._factors = [1.0] * P
        self._span_extra = [0.0] * P
        self.mem._pending_stores.clear()
        self.mem._reverts.clear()

    def _step_index(self) -> int:
        return self.rt.region_count

    # -- region begin: crash and straggler draws -------------------------------------
    def begin_region(self, threads, allow_crash: bool = True) -> set[int]:
        plan = self.plan
        self._factors = [1.0] * self.rt.P
        self._span_extra = [0.0] * self.rt.P
        crashes: set[int] = set()
        if plan.crash > 0 and allow_crash:
            crashes = {t for t in threads if self._hit(plan.crash)}
        if plan.straggler > 0:
            for t in threads:
                if self._hit(plan.straggler):
                    self._factors[t] = plan.straggler_factor
                    self.stats.stragglers += 1
                    self._event("straggler", t)
        return crashes

    # -- region end: span stretch + lost-claim corruption ------------------------------
    def end_region(self, spans: list[float]
                   ) -> tuple[list[float], list[float]]:
        """Stretch injured lanes' spans; apply parked claim reverts.

        Returns ``(spans, stalls)`` where ``stalls[t]`` is the extra
        span charged to thread ``t`` (straggler stretch + lock-preempt
        waits) -- the tracer records it so the flamegraph can carve a
        per-lane ``[stall]`` frame out of the phase.
        """
        out: list[float] = []
        stalls: list[float] = []
        for t, s in enumerate(spans):
            factor = self._factors[t] if t < len(self._factors) else 1.0
            extra = s * (factor - 1.0)
            if t < len(self._span_extra):
                extra += self._span_extra[t]
            out.append(s + extra)
            stalls.append(extra)
        self.mem.apply_reverts()
        return out, stalls

    # -- barrier: store-buffer fence + accumulated recovery stalls ---------------------
    def barrier_stall(self) -> float:
        """Total recovery wait gating this barrier (and drain the buffer)."""
        pending = self.mem.drain_stores()
        if pending:
            if self.recovery is not None:
                self.stats.store_flushes += 1
                self._event("store-fence", None, pending)
                self._wait(self.recovery.store_flush_wait)
            # without recovery the stores still become visible at the
            # barrier (BSP semantics) -- nobody pays for the fence
        return self.consume_stall()

    # -- crash semantics -------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Region-boundary snapshot: registered arrays + queue marks."""
        return {
            "arrays": {name: arr.copy()
                       for name, arr in self.mem._snapshot_arrays.items()},
            "marks": self.mem.queue_marks(),
        }

    def crash(self, t: int, snapshot: dict, body) -> None:
        """Roll back ``t``'s failed region attempt; rerun if recovering.

        Threads execute sequentially in the simulation, so restoring
        the pre-body snapshot undoes exactly the doomed thread's
        writes.  The failed attempt's *counters* are kept -- the work
        was done and lost, and the double execution is exactly the
        rollback overhead that must stay visible in time (the PR 3
        convention: detection timeout + restart are charged to the
        barrier after the max span).
        """
        for name, saved in snapshot["arrays"].items():
            live = self.mem._snapshot_arrays.get(name)
            if live is not None:
                live[...] = saved
        self.mem.truncate_queues(snapshot["marks"])
        self.stats.crashes += 1
        self._event("crash", t)
        rec = self.recovery
        if rec is None or not rec.checkpoint_restart:
            return                       # work lost; nobody notices in time
        self._wait(rec.crash_timeout + rec.restart_penalty)
        self.stats.restarts += 1
        self._event("restart", t)
        body()

    # -- per-call faults (dispatched by the memory proxy) ------------------------------
    def preempt_lock(self, t: int, handle) -> None:
        """The lock holder got descheduled: the acquirer's span stretches."""
        self.stats.lock_preempts += 1
        self._event("lock-preempt", t, handle.name)
        self._span_extra[t] += self.plan.preempt_cost

    def lose_claim(self, mem: FaultPerturbedMemory, t: int, handle,
                   idx: np.ndarray, covers, batched: bool) -> None:
        """One claim outcome of this CAS call vanishes.

        With ``ack_retry`` the claim is re-issued (a real CAS attempt
        per round: reads + atomics land on the issuing thread, the
        backoff gates the barrier) until it lands.  Without recovery
        the CAS target *and its ``covers=`` companions* revert to their
        pre-CAS values at region end -- the pre-values are captured
        here, before the kernel performs the real stores the CAS
        protects, so the revert erases exactly the lost claim.
        """
        if len(idx) == 0:
            return
        j = int(self.rng.integers(len(idx)))
        v = int(idx[j])
        self.stats.cas_lost += 1
        self._event("cas-lost", t, handle.name, v)
        rec = self.recovery
        if rec is not None and rec.ack_retry:
            attempts = 0
            while True:
                if attempts >= rec.retry_limit:
                    self.stats.retry_exhausted += 1
                    break
                attempts += 1
                self.stats.cas_retries += 1
                self._event("cas-retry", t, handle.name, v)
                mem.inner.cas(handle, idx=v, successes=0, mode="rand",
                              batched=batched)
                self._wait(self._backoff(attempts))
                if not self._hit(self.plan.cas_lost):
                    break
            return
        arr = mem._snapshot_arrays.get(handle.name)
        if arr is not None:
            mem.queue_revert(arr, v)
        for cover_handle, cover_idx in covers or ():
            carr = mem._snapshot_arrays.get(cover_handle.name)
            if carr is None:
                continue
            cidx = _as_index_array(cover_idx)
            if len(cidx) == len(idx):       # element-aligned companion set
                mem.queue_revert(carr, int(cidx[j]))

    def duplicate_claim(self, mem: FaultPerturbedMemory, t: int, handle,
                        idx: np.ndarray, batched: bool) -> None:
        """One claim of this CAS call is applied twice.

        With ``dedup`` the double apply is discarded for free; without
        it the duplicate is a real second CAS attempt on the claimed
        word -- it fails (the word is already set), costing reads +
        atomics on the issuing thread but moving no data.
        """
        if len(idx) == 0:
            return
        j = int(self.rng.integers(len(idx)))
        v = int(idx[j])
        self.stats.cas_duplicates += 1
        self._event("cas-dup", t, handle.name, v)
        if self.dedup:
            self.stats.cas_dup_suppressed += 1
            return
        mem.inner.cas(handle, idx=v, successes=0, mode="rand",
                      batched=batched)

    def note_stale_reads(self, t: int, handle, idx: np.ndarray,
                         pending) -> None:
        """Tally a read that observed another thread's parked store.

        One tally per read call (not per address): the stat counts
        *exposures* to bounded staleness, cross-checked by the chaos
        suite against the race detector's benign read-conflict class.
        """
        for writer, name, parked in pending:
            if writer == t or name != handle.name:
                continue
            if len(np.intersect1d(idx, parked, assume_unique=False)):
                self.stats.stale_reads += 1
                self._event("stale-read", t, handle.name)
                return


def attach_sm_fault_injector(rt, plan: SMFaultPlan,
                             recovery: RecoveryConfig | None = RecoveryConfig()
                             ) -> SMFaultInjector:
    """Install a seeded :class:`SMFaultInjector` as ``rt.faults``.

    Wraps ``rt.mem`` in a :class:`FaultPerturbedMemory` (attach *after*
    ``attach_race_detector`` so the detector observes re-issued
    recovery ops, and *before* kernels construct their state -- they
    capture ``rt.mem`` at registration).  ``recovery=None`` injects the
    raw faults with no protocol on top -- the seeded-bug mode proving
    the faults have teeth.  Wrapping also forces the batched stream
    engine onto its element-at-a-time oracle lowering, so interpreted
    and batched runs observe identical fault schedules.
    """
    if hasattr(rt, "superstep"):
        raise TypeError(
            "attach_sm_fault_injector targets SMRuntime; use "
            "attach_fault_injector for the DM runtime")
    injector = SMFaultInjector(rt, plan, recovery)
    rt.mem = injector.mem
    rt.faults = injector
    return injector
