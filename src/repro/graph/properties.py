"""Graph statistics: the (n, m, d-bar, D) columns of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics in the paper's Table-2 notation."""

    n: int
    m: int
    d_bar: float       #: average degree in the paper's Table-2 convention (m/n)
    d_hat: int         #: maximum degree
    diameter: int      #: (approximate) diameter of the largest component

    def as_row(self) -> dict:
        return {"n": self.n, "m": self.m, "d̄": round(self.d_bar, 2),
                "d̂": self.d_hat, "D": self.diameter}


def _bfs_ecc(g: CSRGraph, source: int) -> tuple[int, int]:
    """Eccentricity of ``source`` in its component and the farthest vertex."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    far = source
    while len(frontier):
        nxt = []
        for v in frontier:
            nbrs = g.neighbors(v)
            fresh = nbrs[dist[nbrs] < 0]
            if len(fresh):
                dist[fresh] = level + 1
                nxt.append(fresh)
        level += 1
        if nxt:
            frontier = np.concatenate(nxt)
            frontier = np.unique(frontier)
            far = int(frontier[0])
        else:
            frontier = np.empty(0, dtype=np.int64)
    ecc = int(dist.max(initial=0))
    if ecc > 0:
        far = int(np.argmax(dist))
    return ecc, far


def approx_diameter(g: CSRGraph, sweeps: int = 4, seed: int = 0) -> int:
    """Lower-bound the diameter with repeated double-sweep BFS.

    Exact for trees and typically tight on the paper's graph classes;
    this mirrors how large-graph studies report D.
    """
    if g.n == 0:
        return 0
    rng = np.random.default_rng(seed)
    # start in the largest component: probe a few random vertices and keep
    # the one whose BFS reaches the most vertices
    best = 0
    start = int(rng.integers(g.n))
    for _ in range(sweeps):
        ecc, far = _bfs_ecc(g, start)
        best = max(best, ecc)
        if far == start:
            start = int(rng.integers(g.n))
        else:
            start = far
    return best


def graph_stats(g: CSRGraph, diameter_sweeps: int = 4) -> GraphStats:
    return GraphStats(
        n=g.n,
        m=g.m,
        d_bar=g.m / max(g.n, 1),
        d_hat=g.max_degree,
        diameter=approx_diameter(g, diameter_sweeps),
    )
