"""Compressed-sparse-row graph representation.

Section 2.2 of the paper: "The neighbors of each v form an array.  The
arrays of all the vertices form a contiguous array accessed by all the
threads; we also store offsets into the array that determine the
beginning of the array of each vertex.  The whole representation takes
n + 2m cells."

For an undirected graph every edge is stored in both endpoint lists, so
``offsets`` has ``n + 1`` entries and ``adj`` has ``2m``.  Directed
graphs store out-neighbors in CSR form and can materialize the
transposed (in-neighbor / CSC) view, which Section 7.1 identifies with
the pull direction.
"""

from __future__ import annotations

import numpy as np


class CSRGraph:
    """An immutable CSR graph with optional edge weights.

    Attributes
    ----------
    n, m:
        Vertex count and *undirected* edge count (for directed graphs
        ``m`` is the arc count).
    offsets:
        ``int64[n + 1]`` -- ``adj[offsets[v]:offsets[v+1]]`` are v's
        neighbors (out-neighbors when directed), sorted ascending.
    adj:
        ``int32[n_entries]`` neighbor array.
    weights:
        ``float64[n_entries]`` parallel to ``adj``, or ``None``.
    directed:
        Whether the graph is directed.
    """

    def __init__(self, offsets: np.ndarray, adj: np.ndarray,
                 weights: np.ndarray | None = None, directed: bool = False,
                 check: bool = True) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.adj = np.ascontiguousarray(adj, dtype=np.int32)
        self.weights = None if weights is None else np.ascontiguousarray(
            weights, dtype=np.float64)
        self.directed = directed
        self.n = len(self.offsets) - 1
        entries = len(self.adj)
        self.m = entries if directed else entries // 2
        if check:
            self._validate()
        self._transpose: CSRGraph | None = None

    # -- invariants ----------------------------------------------------------
    def _validate(self) -> None:
        if self.n < 0:
            raise ValueError("offsets must have at least one entry")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.adj):
            raise ValueError("offsets must start at 0 and end at len(adj)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if len(self.adj) and (self.adj.min() < 0 or self.adj.max() >= self.n):
            raise ValueError("neighbor index out of range")
        if self.weights is not None and len(self.weights) != len(self.adj):
            raise ValueError("weights must parallel adj")
        if not self.directed and len(self.adj) % 2 != 0:
            raise ValueError("undirected graph must have an even adjacency array")

    # -- basic queries ----------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """The (sorted) neighbor slice of ``v`` -- a view, not a copy."""
        return self.adj[self.offsets[v]:self.offsets[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.offsets[v]:self.offsets[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` of (out-)degrees."""
        return np.diff(self.offsets)

    @property
    def max_degree(self) -> int:
        """d-hat of the paper."""
        if self.n == 0:
            return 0
        return int(self.degrees.max(initial=0))

    @property
    def avg_degree(self) -> float:
        """d-bar of the paper: m / n for directed, 2m / n for undirected."""
        if self.n == 0:
            return 0.0
        return len(self.adj) / self.n

    @property
    def n_cells(self) -> int:
        """Representation size in cells: n + 2m (n + m directed)."""
        return self.n + len(self.adj)

    def has_edge(self, v: int, w: int) -> bool:
        nbrs = self.neighbors(v)
        i = np.searchsorted(nbrs, w)
        return bool(i < len(nbrs) and nbrs[i] == w)

    def weight_of(self, v: int, w: int) -> float:
        """Weight of edge (v, w); 1.0 for unweighted graphs."""
        nbrs = self.neighbors(v)
        i = int(np.searchsorted(nbrs, w))
        if i >= len(nbrs) or nbrs[i] != w:
            raise KeyError((v, w))
        if self.weights is None:
            return 1.0
        return float(self.edge_weights(v)[i])

    # -- derived views --------------------------------------------------------------
    def transposed(self) -> "CSRGraph":
        """The reverse graph (CSC view of the adjacency matrix).

        For undirected graphs this is the graph itself.  Cached.
        """
        if not self.directed:
            return self
        if self._transpose is None:
            src = np.repeat(np.arange(self.n, dtype=np.int32), np.diff(self.offsets))
            order = np.lexsort((src, self.adj))
            radj = src[order]
            rdst = self.adj[order]
            roff = np.zeros(self.n + 1, dtype=np.int64)
            np.add.at(roff, rdst + 1, 1)
            np.cumsum(roff, out=roff)
            rw = None if self.weights is None else self.weights[order]
            self._transpose = CSRGraph(roff, radj, rw, directed=True, check=False)
        return self._transpose

    def edges(self) -> np.ndarray:
        """``int64[k, 2]`` array of edges; undirected edges appear once (v < w)."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.offsets))
        dst = self.adj.astype(np.int64)
        pairs = np.stack([src, dst], axis=1)
        if not self.directed:
            pairs = pairs[pairs[:, 0] < pairs[:, 1]]
        return pairs

    def edge_list_with_weights(self) -> list[tuple[int, int, float]]:
        pairs = self.edges()
        out = []
        for v, w in pairs:
            out.append((int(v), int(w), self.weight_of(int(v), int(w))))
        return out

    def with_weights(self, weights_per_entry: np.ndarray) -> "CSRGraph":
        """A copy of this graph carrying the given per-entry weights."""
        return CSRGraph(self.offsets, self.adj, weights_per_entry,
                        directed=self.directed, check=True)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        w = "weighted" if self.weights is not None else "unweighted"
        return f"CSRGraph({kind}, {w}, n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.adj, other.adj)
            and (
                (self.weights is None and other.weights is None)
                or (self.weights is not None and other.weights is not None
                    and np.array_equal(self.weights, other.weights))
            )
        )

    def __hash__(self):  # CSRGraph is mutable-array-backed; identity hash
        return id(self)
