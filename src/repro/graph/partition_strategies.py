"""Alternative 1D vertex decompositions.

The paper fixes the 1D block decomposition (Section 2.2), but several
of its results are sensitive to how the partition cuts edges: the
Partition-Awareness atomic count is exactly the remote-entry count
(Section 5 bounds it by [0, 2m]), and BGC's border set B grows with the
cut.  These variants let experiments probe that sensitivity:

* :class:`BlockPartition` -- the paper's contiguous blocks (an alias of
  :class:`~repro.graph.partition.Partition1D`).
* :class:`HashPartition` -- pseudo-random ownership; maximizes the cut
  (every neighbor is remote with probability (P-1)/P), the worst case
  for PA.
* :class:`LocalityPartition` -- BFS-layered relabeling followed by
  blocks: vertices discovered together land in the same block, which
  minimizes the cut on meshes/road networks (a cheap stand-in for a
  real partitioner like METIS, which is out of scope).

All variants present the :class:`Partition1D` interface, so every
algorithm and the PA representation accept them unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D

BlockPartition = Partition1D


class _RelabeledPartition(Partition1D):
    """Block partition over a permutation of the vertex ids.

    ``perm[v]`` is v's position in the reordered space; ownership and
    locality follow the reordered blocks while all public methods keep
    speaking original vertex ids.
    """

    def __init__(self, n: int, P: int, perm: np.ndarray) -> None:
        super().__init__(n, P)
        if len(perm) != n or not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        self._perm = perm.astype(np.int64)
        # inverse: block position -> original vertex
        self._inv = np.empty(n, dtype=np.int64)
        self._inv[perm] = np.arange(n, dtype=np.int64)

    def owner(self, v):
        result = np.searchsorted(self.starts, self._perm[np.asarray(v)],
                                 side="right") - 1
        if np.isscalar(v) or np.asarray(v).ndim == 0:
            return int(result)
        return result

    def owned(self, t: int) -> np.ndarray:
        return np.sort(self._inv[self.starts[t]:self.starts[t + 1]])

    def owned_slice(self, t: int):
        raise NotImplementedError(
            "relabeled partitions do not own contiguous id ranges; "
            "use owned(t)")

    def is_local(self, t: int, w):
        pos = self._perm[np.asarray(w)]
        res = (pos >= self.starts[t]) & (pos < self.starts[t + 1])
        if np.asarray(w).ndim == 0:
            return bool(res)
        return res

    def group_by_owner(self, vertices: np.ndarray) -> list[np.ndarray]:
        vertices = np.asarray(vertices, dtype=np.int64)
        owners = self.owner(vertices)
        return [vertices[owners == t] for t in range(self.P)]

    def border_vertices(self, g) -> np.ndarray:
        owners = self.owner(np.arange(g.n))
        src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
        cross = owners[src] != owners[g.adj]
        border = np.zeros(g.n, dtype=bool)
        border[src[cross]] = True
        border[g.adj[cross]] = True
        return np.flatnonzero(border)


class HashPartition(_RelabeledPartition):
    """Pseudo-random ownership (a fixed seeded shuffle)."""

    def __init__(self, n: int, P: int, seed: int = 0x5eed) -> None:
        rng = np.random.default_rng(seed)
        super().__init__(n, P, rng.permutation(n))


class LocalityPartition(_RelabeledPartition):
    """Blocks over a BFS (Cuthill–McKee-flavored) vertex ordering."""

    def __init__(self, g: CSRGraph, P: int) -> None:
        order = bfs_ordering(g)
        perm = np.empty(g.n, dtype=np.int64)
        perm[order] = np.arange(g.n, dtype=np.int64)
        super().__init__(g.n, P, perm)


def bfs_ordering(g: CSRGraph) -> np.ndarray:
    """Vertices in BFS discovery order, restarting per component."""
    order = np.empty(g.n, dtype=np.int64)
    seen = np.zeros(g.n, dtype=bool)
    pos = 0
    for root in range(g.n):
        if seen[root]:
            continue
        seen[root] = True
        queue = [root]
        while queue:
            nxt = []
            for v in queue:
                order[pos] = v
                pos += 1
                for w in g.neighbors(v):
                    if not seen[w]:
                        seen[w] = True
                        nxt.append(int(w))
            queue = nxt
    return order


def edge_cut(g: CSRGraph, part: Partition1D) -> int:
    """Number of adjacency entries whose endpoints have different owners.

    This equals the PA atomic count per push+PA PageRank iteration and
    twice the undirected cut size.
    """
    owners = part.owner(np.arange(g.n))
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
    return int((owners[src] != owners[g.adj]).sum())
