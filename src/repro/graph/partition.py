"""1D vertex partitioning.

Section 2.2: "We partition G by vertices (1D decomposition).  We denote
the number of used threads/processes as P.  We name a thread (process)
that owns a given vertex v as t[v]."

The default decomposition is contiguous blocks of (nearly) equal size,
so ownership tests are O(1) arithmetic rather than a lookup -- this is
what makes the Partition-Awareness local/remote split of Section 5
cheap to compute.
"""

from __future__ import annotations

import numpy as np


class Partition1D:
    """Contiguous-block 1D decomposition of vertices ``0..n-1`` over ``P`` owners.

    Block b owns ``[start(b), start(b+1))`` with sizes differing by at
    most one vertex.
    """

    def __init__(self, n: int, P: int) -> None:
        if P <= 0:
            raise ValueError("P must be positive")
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self.P = P
        base, extra = divmod(n, P)
        sizes = np.full(P, base, dtype=np.int64)
        sizes[:extra] += 1
        self.starts = np.zeros(P + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.starts[1:])

    def owner(self, v) -> np.ndarray | int:
        """t[v]: owner thread of vertex v (scalar or vectorized)."""
        result = np.searchsorted(self.starts, np.asarray(v), side="right") - 1
        if np.isscalar(v) or np.asarray(v).ndim == 0:
            return int(result)
        return result

    def owned(self, t: int) -> np.ndarray:
        """The contiguous vertex range owned by thread ``t``."""
        return np.arange(self.starts[t], self.starts[t + 1], dtype=np.int64)

    def owned_slice(self, t: int) -> slice:
        return slice(int(self.starts[t]), int(self.starts[t + 1]))

    def size(self, t: int) -> int:
        return int(self.starts[t + 1] - self.starts[t])

    def is_local(self, t: int, w) -> np.ndarray | bool:
        """Whether vertex/vertices ``w`` are owned by thread ``t``."""
        w = np.asarray(w)
        res = (w >= self.starts[t]) & (w < self.starts[t + 1])
        if w.ndim == 0:
            return bool(res)
        return res

    def border_vertices(self, g) -> np.ndarray:
        """The set B of Section 3.6: vertices with >= 1 cross-partition edge."""
        owners = self.owner(np.arange(g.n))
        src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
        cross = owners[src] != owners[g.adj]
        border = np.zeros(g.n, dtype=bool)
        border[src[cross]] = True
        border[g.adj[cross]] = True
        return np.flatnonzero(border)

    def group_by_owner(self, vertices: np.ndarray) -> list[np.ndarray]:
        """Split a vertex set into per-owner subsets (order preserved)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        owners = self.owner(vertices)
        return [vertices[owners == t] for t in range(self.P)]

    def __repr__(self) -> str:
        return f"Partition1D(n={self.n}, P={self.P})"
