"""Result validators in the Graph500 style.

The paper benchmarks BFS "used [in] the HPC benchmark Graph500"
(Section 3.3); Graph500 specifies an output-validation pass rather than
comparing against a reference run.  These validators implement the same
idea for BFS trees and SSSP distance arrays, so any engine result can be
certified independently of how it was computed (the harness and test
suite use them alongside the networkx oracles).

BFS tree checks (Graph500 spec v1.2, adapted):
  1. the parent array encodes a forest rooted at ``root`` (no cycles);
  2. every tree edge exists in the graph;
  3. levels are consistent: ``level[v] == level[parent[v]] + 1``;
  4. every vertex reachable from the root appears in the tree;
  5. no unreachable vertex appears in the tree.

SSSP checks:
  1. ``dist[source] == 0``;
  2. every edge satisfies the triangle inequality
     ``dist[w] <= dist[v] + W(v, w)``;
  3. every finite-distance vertex (except the source) has a *tight*
     incoming edge (a shortest path predecessor);
  4. finite distances coincide with reachability.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


class ValidationError(AssertionError):
    """A result failed its Graph500-style certification."""


def validate_bfs_tree(g: CSRGraph, root: int, parent: np.ndarray,
                      level: np.ndarray) -> None:
    """Raise :class:`ValidationError` unless (parent, level) is a valid
    BFS tree of ``g`` rooted at ``root``."""
    n = g.n
    if parent[root] != root or level[root] != 0:
        raise ValidationError("root must be its own parent at level 0")
    in_tree = level >= 0

    # (2) + (3): tree edges exist and levels are consistent
    for v in np.flatnonzero(in_tree):
        v = int(v)
        if v == root:
            continue
        p = int(parent[v])
        if p < 0 or not in_tree[p]:
            raise ValidationError(f"vertex {v} has no valid parent")
        edge_ok = (g.has_edge(p, v) if g.directed else g.has_edge(v, p))
        if not edge_ok:
            raise ValidationError(f"tree edge ({p}, {v}) not in graph")
        if level[v] != level[p] + 1:
            raise ValidationError(
                f"level[{v}]={level[v]} != level[{p}]+1={level[p] + 1}")

    # (1): no cycles -- level strictly decreases along parents, so the
    # consistency check above already rules them out; verify termination
    for v in np.flatnonzero(in_tree):
        v, steps = int(v), 0
        while v != root:
            v = int(parent[v])
            steps += 1
            if steps > n:
                raise ValidationError("parent chain does not reach the root")

    # (4) + (5): tree membership == reachability
    reach = _reachable(g, root)
    if not np.array_equal(reach, in_tree):
        bad = int(np.flatnonzero(reach != in_tree)[0])
        raise ValidationError(
            f"vertex {bad}: reachable={bool(reach[bad])} but "
            f"in_tree={bool(in_tree[bad])}")

    # levels are shortest hop counts: every reached vertex at level L > 0
    # must have no neighbor at level < L-1
    for v in np.flatnonzero(in_tree):
        v = int(v)
        nbr = g.transposed().neighbors(v) if g.directed else g.neighbors(v)
        if len(nbr):
            lv = level[nbr]
            lv = lv[lv >= 0]
            if len(lv) and level[v] > lv.min() + 1:
                raise ValidationError(f"level[{v}] is not minimal")


def validate_sssp(g: CSRGraph, source: int, dist: np.ndarray,
                  atol: float = 1e-9) -> None:
    """Raise :class:`ValidationError` unless ``dist`` is the shortest-path
    distance array from ``source``."""
    if dist[source] != 0.0:
        raise ValidationError("dist[source] must be 0")
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
    finite_src = np.isfinite(dist[src])
    cand = dist[src[finite_src]] + weights[finite_src]
    tgt = g.adj[finite_src]
    # (2) triangle inequality on every edge with a finite tail
    viol = cand + atol < dist[tgt]
    if viol.any():
        i = int(np.flatnonzero(viol)[0])
        raise ValidationError(
            f"edge ({src[finite_src][i]}, {tgt[i]}) violates the triangle "
            f"inequality: {dist[tgt[i]]} > {cand[i]}")
    # (3) every finite vertex (except source) has a tight predecessor edge
    tight = np.zeros(g.n, dtype=bool)
    tight[source] = True
    hits = np.isclose(cand, dist[tgt], atol=atol)
    tight[tgt[hits]] = True
    finite = np.isfinite(dist)
    missing = finite & ~tight
    if missing.any():
        raise ValidationError(
            f"vertex {int(np.flatnonzero(missing)[0])} has a finite "
            f"distance but no tight incoming edge")
    # (4) reachability agreement
    reach = _reachable(g, source)
    if not np.array_equal(reach, finite):
        bad = int(np.flatnonzero(reach != finite)[0])
        raise ValidationError(
            f"vertex {bad}: reachable={bool(reach[bad])} but "
            f"finite={bool(finite[bad])}")


def _reachable(g: CSRGraph, root: int) -> np.ndarray:
    seen = np.zeros(g.n, dtype=bool)
    seen[root] = True
    stack = [root]
    while stack:
        v = stack.pop()
        for w in g.neighbors(v):
            if not seen[w]:
                seen[w] = True
                stack.append(int(w))
    return seen
