"""Memory-footprint accounting for the representations the paper sizes.

Section 2.2 sizes the CSR representation at n + 2m cells; Section 5's
Partition-Awareness grows it to 2n + 2m; Section 6.3 compares the O(1)
auxiliary storage of RMA against MP's O(n·d̂/P) buffers.  This module
turns those cell counts into byte figures for concrete graphs, so the
tradeoffs can be reported next to the time results.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D
from repro.graph.partition_aware import PartitionAwareCSR

_CELL = 8  # the paper counts machine words


@dataclass(frozen=True)
class Footprint:
    """Byte sizes of a graph's representations and per-process buffers."""

    n: int
    m: int
    csr_cells: int                #: n + 2m (Section 2.2)
    pa_cells: int                 #: 2n + 2m (Section 5)
    weights_cells: int            #: 2m if weighted else 0
    mp_buffer_cells_bound: int    #: O(n·d̂ / P) per process (Section 6.3.1)
    rma_buffer_cells: int         #: O(1) per process

    @property
    def csr_bytes(self) -> int:
        return self.csr_cells * _CELL

    @property
    def pa_overhead_fraction(self) -> float:
        """Relative growth of PA over plain CSR (n / (n + 2m))."""
        return (self.pa_cells - self.csr_cells) / self.csr_cells

    def as_row(self) -> dict:
        return {
            "n": self.n, "m": self.m,
            "CSR cells": self.csr_cells,
            "PA cells": self.pa_cells,
            "PA overhead": f"{self.pa_overhead_fraction:.1%}",
            "MP buffer bound (cells/proc)": self.mp_buffer_cells_bound,
            "RMA buffer (cells/proc)": self.rma_buffer_cells,
        }


def footprint(g: CSRGraph, P: int = 16) -> Footprint:
    """Compute the representation footprint of ``g`` under ``P`` owners."""
    if P <= 0:
        raise ValueError("P must be positive")
    d_hat = g.max_degree
    return Footprint(
        n=g.n,
        m=g.m,
        csr_cells=g.n_cells,
        pa_cells=PartitionAwareCSR(g, Partition1D(g.n, P)).n_cells,
        weights_cells=(len(g.adj) if g.weights is not None else 0),
        mp_buffer_cells_bound=(g.n * d_hat) // max(P, 1),
        rma_buffer_cells=1,
    )
