"""Partition-Aware adjacency representation (Section 5, "PA").

The strategy: "we partition the adjacency array of each v into two
parts: local and remote.  The former contains the neighbors u in N(v)
that are owned by t[v] and the latter groups the ones owned by other
threads. [...] This increases the representation size from n + 2m to
2n + 2m but also enables detecting if a given vertex v is owned by the
executing thread (to be updated with a non-atomic) or if it is owned by
a different thread (to be updated with an atomic)."

We realize the 2n + 2m layout as the usual ``offsets`` (n + 1 cells)
plus a ``split`` array (n cells): within v's slice, entries
``[offsets[v], split[v])`` are local neighbors and ``[split[v],
offsets[v+1])`` are remote ones.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import Partition1D


class PartitionAwareCSR:
    """A CSR graph whose per-vertex neighbor lists are split local|remote."""

    def __init__(self, g: CSRGraph, part: Partition1D) -> None:
        if part.n != g.n:
            raise ValueError("partition and graph disagree on n")
        self.g = g
        self.part = part
        owners = part.owner(np.arange(g.n, dtype=np.int64))
        src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
        is_local = owners[src] == owners[g.adj]
        # stable partition of each vertex slice: locals first, then remotes,
        # both keeping ascending neighbor order.
        order = np.lexsort((g.adj, ~is_local, src))
        self.adj = g.adj[order]
        self.weights = None if g.weights is None else g.weights[order]
        self.offsets = g.offsets
        local_counts = np.zeros(g.n, dtype=np.int64)
        np.add.at(local_counts, src[is_local], 1)
        self.split = g.offsets[:-1] + local_counts

    @property
    def n(self) -> int:
        return self.g.n

    @property
    def m(self) -> int:
        return self.g.m

    @property
    def n_cells(self) -> int:
        """2n + 2m: offsets (n) + split (n) + adjacency (2m)."""
        return 2 * self.g.n + len(self.adj)

    def local_neighbors(self, v: int) -> np.ndarray:
        return self.adj[self.offsets[v]:self.split[v]]

    def remote_neighbors(self, v: int) -> np.ndarray:
        return self.adj[self.split[v]:self.offsets[v + 1]]

    def local_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.offsets[v]:self.split[v]]

    def remote_weights(self, v: int) -> np.ndarray:
        if self.weights is None:
            raise ValueError("graph is unweighted")
        return self.weights[self.split[v]:self.offsets[v + 1]]

    def remote_edge_count(self) -> int:
        """Total remote adjacency entries == upper bound on PA atomics.

        Section 5 bounds the atomics of push+PA between 0 (bipartite
        graph split across owners) and 2m (each thread owns a whole
        component).
        """
        return int((self.offsets[1:] - self.split).sum())

    def local_edge_count(self) -> int:
        return int((self.split - self.offsets[:-1]).sum())

    def __repr__(self) -> str:
        return (f"PartitionAwareCSR(n={self.n}, m={self.m}, P={self.part.P}, "
                f"remote_entries={self.remote_edge_count()})")
