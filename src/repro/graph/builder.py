"""Graph construction from edge lists and networkx interchange."""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph


def from_edges(n: int, edges, weights=None, directed: bool = False,
               dedup: bool = True) -> CSRGraph:
    """Build a :class:`CSRGraph` from an edge array.

    Parameters
    ----------
    n:
        Vertex count (vertices are ``0..n-1``).
    edges:
        ``(k, 2)`` array-like of endpoint pairs.  Self loops are
        dropped; for undirected graphs each pair is mirrored.
    weights:
        Optional ``k``-vector of non-negative edge weights.
    directed:
        Build a directed graph (edges are arcs ``u -> v``).
    dedup:
        Drop duplicate (parallel) edges, keeping the *minimum* weight
        among duplicates (the convention that keeps SSSP well defined).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(edges):
            raise ValueError("weights must match edges")
        if np.any(weights < 0):
            raise ValueError("edge weights must be non-negative")
    if len(edges) and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")

    keep = edges[:, 0] != edges[:, 1]
    edges = edges[keep]
    if weights is not None:
        weights = weights[keep]

    if not directed:
        edges = np.concatenate([edges, edges[:, ::-1]], axis=0)
        if weights is not None:
            weights = np.concatenate([weights, weights])

    if len(edges) == 0:
        return CSRGraph(np.zeros(n + 1, dtype=np.int64),
                        np.empty(0, dtype=np.int32),
                        np.empty(0) if weights is not None else None,
                        directed=directed)

    if dedup:
        if weights is not None:
            # sort by (src, dst, weight) so the first of each run carries
            # the minimum weight
            order = np.lexsort((weights, edges[:, 1], edges[:, 0]))
        else:
            order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        if weights is not None:
            weights = weights[order]
        uniq = np.ones(len(edges), dtype=bool)
        uniq[1:] = np.any(edges[1:] != edges[:-1], axis=1)
        edges = edges[uniq]
        if weights is not None:
            weights = weights[uniq]
    else:
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        edges = edges[order]
        if weights is not None:
            weights = weights[order]

    counts = np.zeros(n + 1, dtype=np.int64)
    np.add.at(counts, edges[:, 0] + 1, 1)
    offsets = np.cumsum(counts)
    return CSRGraph(offsets, edges[:, 1].astype(np.int32), weights,
                    directed=directed)


def from_networkx(g) -> CSRGraph:
    """Convert a networkx (Di)Graph with integer-labelable nodes.

    Nodes are relabelled to ``0..n-1`` in sorted order; a ``weight``
    edge attribute, if present on every edge, is carried over.
    """
    import networkx as nx

    nodes = sorted(g.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    directed = g.is_directed()
    edges, weights = [], []
    weighted = all("weight" in d for _, _, d in g.edges(data=True)) and g.number_of_edges() > 0
    for u, v, d in g.edges(data=True):
        edges.append((index[u], index[v]))
        if weighted:
            weights.append(float(d["weight"]))
    return from_edges(len(nodes), np.asarray(edges, dtype=np.int64).reshape(-1, 2),
                      np.asarray(weights) if weighted else None, directed=directed)


def to_networkx(g: CSRGraph):
    """Convert to a networkx graph (carrying weights when present)."""
    import networkx as nx

    out = nx.DiGraph() if g.directed else nx.Graph()
    out.add_nodes_from(range(g.n))
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.offsets))
    if g.weights is not None:
        out.add_weighted_edges_from(
            zip(src.tolist(), g.adj.tolist(), g.weights.tolist()))
    else:
        out.add_edges_from(zip(src.tolist(), g.adj.tolist()))
    return out


def relabel_random(g: CSRGraph, seed: int = 0) -> CSRGraph:
    """Randomly permute vertex ids (stress-tests partition sensitivity).

    Partition-Awareness results depend on how many neighbors land in
    the owning thread's block (Section 5 bounds atomics between 0 and
    2m by the distribution); relabelling lets experiments probe both
    ends.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(g.n).astype(np.int64)
    pairs = g.edges()
    new_edges = perm[pairs]
    weights = None
    if g.weights is not None:
        weights = np.array([g.weight_of(int(v), int(w)) for v, w in pairs])
    return from_edges(g.n, new_edges, weights, directed=g.directed)
