"""Graph substrate: CSR representation, construction, partitioning.

Implements the representation of Section 2.2 of the paper: neighbor
arrays of all vertices concatenated into one contiguous array plus an
offset array (``n + 2m`` cells for an undirected graph), 1D vertex
partitioning over threads/processes, and the Partition-Aware split
representation of Section 5 (``2n + 2m`` cells).
"""

from repro.graph.csr import CSRGraph
from repro.graph.builder import (
    from_edges,
    from_networkx,
    to_networkx,
    relabel_random,
)
from repro.graph.partition import Partition1D
from repro.graph.partition_aware import PartitionAwareCSR
from repro.graph.properties import GraphStats, graph_stats, approx_diameter
from repro.graph.validate import ValidationError, validate_bfs_tree, validate_sssp

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "relabel_random",
    "Partition1D",
    "PartitionAwareCSR",
    "GraphStats",
    "graph_stats",
    "approx_diameter",
    "ValidationError",
    "validate_bfs_tree",
    "validate_sssp",
]
