"""Edge-list I/O in the plain text format used by SNAP-style datasets.

Lines are ``u v [weight]``; ``#`` starts a comment.  This lets users
feed real SNAP downloads (orc/pok/ljn/am/rca of the paper's Table 2)
into the library when they have them; the repo itself ships synthetic
stand-ins via :mod:`repro.generators`.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.graph.builder import from_edges
from repro.graph.csr import CSRGraph


def read_edge_list(path_or_file, directed: bool = False,
                   n: int | None = None) -> CSRGraph:
    """Parse an edge-list file into a :class:`CSRGraph`.

    Vertex ids may be arbitrary non-negative integers; they are
    compacted to ``0..n-1`` preserving order unless ``n`` is given (in
    which case ids are used verbatim and must be ``< n``).
    """
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "r") as fh:
            return read_edge_list(fh, directed=directed, n=n)
    edges, weights = [], []
    any_weight = False
    for line in path_or_file:
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        u, v = int(parts[0]), int(parts[1])
        edges.append((u, v))
        if len(parts) > 2:
            weights.append(float(parts[2]))
            any_weight = True
        else:
            weights.append(1.0)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    w = np.asarray(weights) if any_weight else None
    if n is None:
        ids = np.unique(edges) if len(edges) else np.empty(0, dtype=np.int64)
        remap = {int(x): i for i, x in enumerate(ids)}
        if len(edges):
            edges = np.vectorize(remap.__getitem__)(edges)
        n = len(ids)
    return from_edges(n, edges, w, directed=directed)


def write_edge_list(g: CSRGraph, path_or_file) -> None:
    """Write a graph in ``u v [weight]`` form (one line per edge)."""
    if isinstance(path_or_file, (str, Path)):
        with open(path_or_file, "w") as fh:
            write_edge_list(g, fh)
            return
    fh: io.TextIOBase = path_or_file
    fh.write(f"# repro edge list: n={g.n} m={g.m} directed={g.directed}\n")
    for v, w in g.edges():
        if g.weights is not None:
            fh.write(f"{v} {w} {g.weight_of(int(v), int(w))}\n")
        else:
            fh.write(f"{v} {w}\n")
