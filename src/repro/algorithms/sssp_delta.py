"""Push- and pull-based Δ-Stepping SSSP (Algorithm 4).

Vertices are grouped into buckets of width Δ by tentative distance;
epochs process buckets in ascending order, iterating within an epoch
until no vertex re-enters the current bucket.

* **push**: vertices of the current bucket relax their out-edges,
  writing remote (distance, bucket) pairs.  The pair update is a
  critical section, but an unlocked distance pre-check means only
  *improving* relaxations pay a lock -- few in practice (Table 1: 902k
  for pok).
* **pull**: every unsettled vertex scans its neighbors for members of
  the current bucket and relaxes itself.  Reading a remote
  (distance, bucket) pair consistently needs the lock around every
  *candidate* edge, and every unsettled vertex rescans its whole edge
  list each inner iteration -- the O((L/Δ)·l_Δ·m) read bound and the
  ~2m lock counts of Table 1 (44.6M for pok's 2m = 44.6M).

Distance updates use combining semantics (``np.minimum.at``), which is
exactly the CRCW-CB PRAM write rule of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction, gather_edge_positions,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime

_NO_BUCKET = np.iinfo(np.int64).max // 2


@dataclass
class SSSPResult(AlgoResult):
    dist: np.ndarray = None
    epochs: int = 0
    epoch_times: list = field(default_factory=list)        #: per-epoch simulated time
    inner_iterations: int = 0


def sssp_delta(g: CSRGraph, rt: SMRuntime, source: int, delta: float | None = None,
               direction: str = PUSH, max_epochs: int | None = None) -> SSSPResult:
    """Δ-Stepping from ``source``; unweighted edges count 1.

    ``delta`` defaults to the mean edge weight (a common heuristic);
    Figure 2c of the paper sweeps it, which ``benchmarks`` reproduce.
    """
    check_direction(direction)
    if not (0 <= source < g.n):
        raise ValueError("source out of range")
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    if delta is None:
        delta = float(weights.mean()) if len(weights) else 1.0
    if delta <= 0:
        raise ValueError("delta must be positive")

    dist = np.full(n, np.inf)
    bidx = np.full(n, _NO_BUCKET, dtype=np.int64)
    dist[source] = 0.0
    bidx[source] = 0

    dist_h = mem.register("sssp.dist", dist)
    bidx_h = mem.register("sssp.bidx", bidx)
    wgt_h = ga.wgt or mem.register("sssp.unit_weights", weights)

    start_time = rt.time
    start_counters = rt.total_counters()
    epoch_times: list[float] = []
    inner_total = 0

    src_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(g.offsets))

    def _edges_of(vs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(sources-repeated, neighbors, weights) of a vertex set's edges."""
        pos = gather_edge_positions(g.offsets, vs)
        return src_of[pos], g.adj[pos], weights[pos]

    b = 0
    epochs = 0
    limit = max_epochs if max_epochs is not None else 4 * n + 16
    while epochs < limit:
        # next nonempty bucket
        pending = bidx[bidx < _NO_BUCKET]
        pending = pending[pending >= b]
        if len(pending) == 0:
            break
        b = int(pending.min())
        epochs += 1
        t0 = rt.time
        if direction == PUSH:
            inner_total += _epoch_push(g, rt, mem, ga, wgt_h, dist, bidx,
                                       dist_h, bidx_h, b, delta, _edges_of)
        else:
            inner_total += _epoch_pull(g, rt, mem, ga, wgt_h, dist, bidx,
                                       dist_h, bidx_h, b, delta)
        epoch_times.append(rt.time - t0)
        b += 1

    return SSSPResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=inner_total,
        dist=dist,
        epochs=epochs,
        epoch_times=epoch_times,
        inner_iterations=inner_total,
    )


def _epoch_push(g, rt, mem, ga, wgt_h, dist, bidx, dist_h, bidx_h, b, delta,
                edges_of) -> int:
    """Process bucket ``b`` with push relaxations until it stops refilling."""
    active = np.flatnonzero(bidx == b)
    itr = 0
    while len(active):
        itr += 1
        next_active: list[np.ndarray] = []

        def body(t: int, vs: np.ndarray) -> None:
            src, nbrs, w = edges_of(vs)
            if len(vs):
                mem.read(ga.off, idx=vs, count=len(vs) + 1, mode="rand")
                mem.read(dist_h, idx=vs, mode="rand")
            if len(nbrs) == 0:
                return
            mem.read(ga.adj, count=len(nbrs), mode="seq")
            mem.read(wgt_h, count=len(nbrs), mode="seq")
            cand = dist[src] + w
            mem.flop(len(nbrs))
            # unlocked pre-check of the remote distance
            mem.read(dist_h, idx=nbrs, mode="rand")
            mem.branch_cond(len(nbrs))
            improving = cand < dist[nbrs]
            tgt, val = nbrs[improving], cand[improving]
            if len(tgt) == 0:
                return
            # improving relaxations: lock around the (dist, bucket) update
            # -- the critical section covers both arrays
            mem.lock(dist_h, idx=tgt, mode="rand", covers=[(bidx_h, tgt)])
            mem.write(dist_h, idx=tgt, mode="rand")
            mem.write(bidx_h, idx=tgt, mode="rand")
            np.minimum.at(dist, tgt, val)          # CRCW-CB combining write
            changed = np.unique(tgt)
            new_b = np.floor(dist[changed] / delta).astype(np.int64)
            bidx[changed] = new_b
            back = changed[new_b == b]
            if len(back):
                next_active.append(back)

        rt.parallel_for(active, body, by_owner=True)
        active = (np.unique(np.concatenate(next_active))
                  if next_active else np.empty(0, dtype=np.int64))
    return itr


def _epoch_pull(g, rt, mem, ga, wgt_h, dist, bidx, dist_h, bidx_h, b, delta
                ) -> int:
    """Process bucket ``b`` with pull relaxations until it stops refilling."""
    prev_active = np.zeros(g.n, dtype=bool)
    prev_active[bidx == b] = True
    active_h = mem.register("sssp.active", g.n, 1)
    itr = 0
    threshold = b * delta
    while True:
        itr += 1
        newly_active: list[np.ndarray] = []
        first = itr == 1

        def body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                return
            mem.read(dist_h, start=int(vs[0]), count=len(vs))
            mem.branch_cond(len(vs))
            unsettled = vs[dist[vs] > threshold]
            if len(unsettled) == 0:
                return
            # gather all edges of the unsettled vertices (full rescans:
            # this is precisely pulling's read overhead)
            pos = gather_edge_positions(g.offsets, unsettled)
            if len(pos) == 0:
                return
            nbrs = g.adj[pos]
            w = (g.weights if g.weights is not None else np.ones(len(g.adj)))[pos]
            owners = np.repeat(unsettled, g.offsets[unsettled + 1] - g.offsets[unsettled])
            mem.read(ga.off, idx=unsettled, count=len(unsettled) + 1, mode="rand")
            mem.read(ga.adj, count=len(nbrs), mode="seq")
            mem.read(bidx_h, idx=nbrs, mode="rand")
            mem.branch_cond(len(nbrs))
            in_bucket = bidx[nbrs] == b
            if not first:
                mem.read(active_h, idx=nbrs[in_bucket], mode="rand")
                in_bucket &= prev_active[nbrs]
            if not in_bucket.any():
                return
            cpos = np.flatnonzero(in_bucket)
            # candidate edges: lock to read the remote (dist, bucket) pair
            mem.lock(dist_h, idx=nbrs[cpos], mode="rand")
            mem.read(wgt_h, count=len(cpos), mode="seq")
            cand = dist[nbrs[cpos]] + w[cpos]
            mem.flop(len(cpos))
            own = owners[cpos]
            # per-owned-vertex minimum over candidates (local combining)
            order = np.argsort(own, kind="stable")
            own_s, cand_s = own[order], cand[order]
            cut = np.flatnonzero(np.diff(own_s)) + 1
            groups = np.split(cand_s, cut)
            uniq = own_s[np.r_[0, cut]] if len(own_s) else own_s
            mem.branch_cond(len(cpos))
            for v, vals in zip(uniq, groups):
                best = float(vals.min())
                if best < dist[v]:
                    rt.owned_write_check(int(v))
                    dist[v] = best
                    new_b = int(best // delta)
                    bidx[v] = new_b
                    mem.write(dist_h, idx=int(v), mode="rand")
                    mem.write(bidx_h, idx=int(v), mode="rand")
                    if new_b == b:
                        newly_active.append(np.array([v]))

        rt.for_each_thread(body)
        if not newly_active:
            break
        prev_active[:] = False
        fresh = np.unique(np.concatenate(newly_active))
        prev_active[fresh] = True
    return itr
