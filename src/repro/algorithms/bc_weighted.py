"""Weighted Betweenness Centrality (Section 4.5's SSSP-based variant).

"For directed graphs, SSSP (e.g., Δ-stepping) must be used to compute
each shortest-path tree.  Given the shortest-path tree the partial
centrality scores can be computed via BFS in the same way as for
undirected graphs."

Per source: (1) Δ-Stepping (push or pull -- the same tradeoffs as
Section 4.4) computes distances; (2) a distance-ordered forward sweep
counts path multiplicities over the shortest-path DAG (tree edges are
the tight relaxations ``dist[w] == dist[v] + W(v,w)``); (3) the
backward accumulation pushes partial scores to predecessors (float
locks) or pulls them from successors (local writes), exactly as in the
unweighted :mod:`repro.algorithms.bc`.

Validated against ``networkx.betweenness_centrality(weight=...)``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bc import BCResult
from repro.algorithms.common import (
    PULL, PUSH, GraphArrays, check_direction, gather_edge_positions,
)
from repro.algorithms.sssp_delta import sssp_delta
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


def betweenness_centrality_weighted(
    g: CSRGraph, rt: SMRuntime, direction: str = PULL, sources=None,
    delta: float | None = None, seed: int = 0,
) -> BCResult:
    """Brandes BC over weighted shortest paths, push or pull."""
    check_direction(direction)
    if g.weights is None:
        raise ValueError("weighted BC needs edge weights; "
                         "use repro.algorithms.bc for hop counts")
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    if sources is None:
        src_list = np.arange(n)
    elif np.isscalar(sources):
        rng = np.random.default_rng(seed)
        src_list = rng.choice(n, size=min(int(sources), n), replace=False)
    else:
        src_list = np.asarray(list(sources), dtype=np.int64)

    bc = np.zeros(n)
    sigma = np.zeros(n)
    dlt = np.zeros(n)
    bc_h = mem.register("wbc.bc", bc)
    sigma_h = mem.register("wbc.sigma", sigma)
    delta_h = mem.register("wbc.delta", dlt)
    dist_h = mem.register("wbc.dist.view", n, 8)

    start_time = rt.time
    start_counters = rt.total_counters()
    fwd_time = 0.0
    bwd_time = 0.0
    weights = g.weights

    for s in src_list:
        # ---- phase 1: distances via Δ-Stepping (instrumented) ------------------
        t0 = rt.time
        dist = sssp_delta(g, rt, int(s), delta=delta,
                          direction=direction).dist

        # ---- phase 2: sigma over the shortest-path DAG in distance order ------
        sigma[:] = 0.0
        sigma[s] = 1.0
        reach = np.flatnonzero(np.isfinite(dist))
        order = reach[np.argsort(dist[reach], kind="stable")]

        def sigma_body(t: int, vs: np.ndarray) -> None:
            # vs is a distance-ordered slice; DAG edges only point forward
            for v in vs:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                nbrs = g.adj[o0:o1]
                mem.read(ga.off, idx=int(v), count=2, mode="rand")
                mem.read(ga.adj, start=o0, count=o1 - o0)
                mem.read(dist_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                tight = np.isclose(dist[nbrs], dist[v] + weights[o0:o1])
                if tight.any():
                    tgt = nbrs[tight]
                    # float accumulation into successors: push uses locks,
                    # pull re-derives it below (modeled identically here
                    # since the sweep is sequential-in-distance)
                    mem.lock(sigma_h, idx=tgt, mode="rand") \
                        if direction == PUSH else \
                        mem.read(sigma_h, idx=tgt, mode="rand")
                    mem.write(sigma_h, idx=tgt, mode="rand")
                    sigma[tgt] += sigma[v]
                    mem.flop(int(tight.sum()))

        # process in distance order; correctness needs the order respected,
        # so the sweep runs as one sequential region (the per-source
        # parallelism of Section 4.5 comes from independent sources)
        rt.sequential(lambda: sigma_body(0, order))

        # ---- phase 3: backward accumulation ---------------------------------------
        t1 = rt.time
        fwd_time += t1 - t0
        dlt[:] = 0.0

        def backward() -> None:
            for v in order[::-1]:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                nbrs = g.adj[o0:o1]
                mem.read(ga.off, idx=int(v), count=2, mode="rand")
                mem.read(ga.adj, start=o0, count=o1 - o0)
                mem.read(dist_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                if direction == PUSH:
                    # push partial scores to predecessors (float locks)
                    pred = np.isclose(dist[v], dist[nbrs] + weights[o0:o1])
                    tgt = nbrs[pred]
                    if len(tgt) == 0 or sigma[v] == 0:
                        continue
                    vals = sigma[tgt] / sigma[v] * (1.0 + dlt[v])
                    mem.lock(delta_h, idx=tgt, mode="rand")
                    mem.write(delta_h, idx=tgt, mode="rand")
                    dlt[tgt] += vals
                    mem.flop(3 * len(tgt))
                else:
                    # pull from successors (local writes only)
                    succ = np.isclose(dist[nbrs], dist[v] + weights[o0:o1])
                    u = nbrs[succ]
                    u = u[sigma[u] > 0]
                    if len(u) == 0 or sigma[v] == 0:
                        continue
                    mem.read(sigma_h, idx=u, mode="rand")
                    mem.read(delta_h, idx=u, mode="rand")
                    dlt[v] += float(np.sum(sigma[v] / sigma[u] * (1.0 + dlt[u])))
                    mem.write(delta_h, idx=int(v), mode="rand")
                    mem.flop(3 * len(u))

        rt.sequential(backward)
        bwd_time += rt.time - t1

        def acc_body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                return
            mask = (vs != s) & np.isfinite(dist[vs])
            bc[vs[mask]] += dlt[vs[mask]]
            mem.read(delta_h, start=int(vs[0]), count=len(vs))
            mem.write(bc_h, start=int(vs[0]), count=len(vs))

        rt.for_each_thread(acc_body)

    if not g.directed:
        bc /= 2.0

    return BCResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=len(src_list),
        bc=bc,
        forward_time=fwd_time,
        backward_time=bwd_time,
        n_sources=len(src_list),
    )
