"""Push- and pull-based graph algorithms (Sections 3-4 of the paper).

Every algorithm exists in a push variant (threads write to vertices
they do not own, through atomics or locks) and a pull variant (threads
only write their owned vertices), executed on the simulated
shared-memory runtime with full event instrumentation.  Acceleration
strategies (Section 5) live in :mod:`repro.strategies`;
distributed-memory variants (Section 6.3) in
:mod:`repro.algorithms.dm_pagerank` / :mod:`~repro.algorithms.dm_triangle`.
"""

from repro.algorithms.pagerank import pagerank, PageRankResult
from repro.algorithms.triangle import triangle_count, TriangleCountResult
from repro.algorithms.bfs import bfs, BFSResult
from repro.algorithms.sssp_delta import sssp_delta, SSSPResult
from repro.algorithms.bc import betweenness_centrality, BCResult
from repro.algorithms.coloring import boman_coloring, ColoringResult
from repro.algorithms.mst_boruvka import boruvka_mst, MSTResult
from repro.algorithms.mst_prim import prim_mst, PrimResult
from repro.algorithms.connected_components import connected_components, CCResult
from repro.algorithms.bc_weighted import betweenness_centrality_weighted
from repro.algorithms.bc_approx import approx_bc_vertex, ApproxBCResult

__all__ = [
    "pagerank", "PageRankResult",
    "triangle_count", "TriangleCountResult",
    "bfs", "BFSResult",
    "sssp_delta", "SSSPResult",
    "betweenness_centrality", "BCResult",
    "boman_coloring", "ColoringResult",
    "boruvka_mst", "MSTResult",
    "prim_mst", "PrimResult",
    "connected_components", "CCResult",
    "betweenness_centrality_weighted",
    "approx_bc_vertex", "ApproxBCResult",
]
