"""Push- and pull-based Borůvka MST (Algorithm 7).

Every iteration has the three phases the paper's Figure 4 times
separately:

* **FM (Find Minimum)** -- per supervertex, the minimum-weight edge
  leaving it.  Pull: each supervertex scans its members' edges and
  keeps a local minimum (reads only).  Push: scanning supervertices
  *push* candidate edges into the records of the neighboring
  supervertices (CAS-min on remote records); a supervertex's own
  minimum is produced entirely by its neighbors.
* **BMT (Build Merge Tree)** -- resolve the chosen partners into a
  merge forest (2-cycle breaking + pointer jumping).  Push already
  stored the partner flag (``new_flag``) during FM; pull must gather
  ``sv_flag[min_e_w]`` here -- which is why the paper measures push
  *faster* in BMT.
* **M (Merge)** -- relabel members, concatenate member lists, commit
  the chosen edges to the MST.

Ties are broken by (weight, v, w) lexicographic order, making the run
deterministic; the resulting forest weight is validated against
Kruskal/networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction, gather_edge_positions,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class MSTResult(AlgoResult):
    edges: list = field(default_factory=list)     #: MST edges as (v, w) pairs
    total_weight: float = 0.0
    phase_times: dict = field(default_factory=dict)  #: phase -> per-iteration times


def boruvka_mst(g: CSRGraph, rt: SMRuntime, direction: str = PULL) -> MSTResult:
    """Compute a minimum spanning forest on the simulated runtime."""
    check_direction(direction)
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    wgt_h = ga.wgt or mem.register("mst.unit_weights", weights)

    sv_flag = np.arange(n, dtype=np.int64)
    members: dict[int, np.ndarray] = {v: np.array([v], dtype=np.int64)
                                      for v in range(n)}
    active = np.arange(n, dtype=np.int64)

    INF = np.inf
    min_wgt = np.full(n, INF)
    min_v = np.full(n, -1, dtype=np.int64)
    min_w = np.full(n, -1, dtype=np.int64)
    new_flag = np.full(n, -1, dtype=np.int64)

    flag_h = mem.register("mst.sv_flag", sv_flag)
    minw_h = mem.register("mst.min_wgt", min_wgt)
    rec_h = mem.register("mst.min_rec", 3 * n, 8)  # (v, w, new_flag) records

    mst_edges: set[tuple[int, int]] = set()
    total_weight = 0.0
    phase_times: dict[str, list[float]] = {"FM": [], "BMT": [], "M": []}

    start_time = rt.time
    start_counters = rt.total_counters()
    iterations = 0

    def owner_of_flag(f: np.ndarray):
        return rt.part.owner(f)

    while len(active) > 1:
        iterations += 1

        # reset candidate records for active supervertices
        min_wgt[active] = INF
        min_v[active] = -1
        min_w[active] = -1
        new_flag[active] = -1

        # ---- Phase FM -------------------------------------------------------
        t0 = rt.time
        any_edge = [False]

        def fm_body(t: int, flags: np.ndarray) -> None:
            for f in flags:
                mem_vs = members[int(f)]
                pos = gather_edge_positions(g.offsets, mem_vs)
                mem.read(ga.off, idx=mem_vs, count=len(mem_vs) + 1, mode="rand")
                if len(pos) == 0:
                    continue
                nbrs = g.adj[pos]
                w = weights[pos]
                srcs = np.repeat(mem_vs,
                                 g.offsets[mem_vs + 1] - g.offsets[mem_vs])
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(wgt_h, count=len(nbrs), mode="seq")
                mem.read(flag_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                foreign = sv_flag[nbrs] != f
                if not foreign.any():
                    continue
                any_edge[0] = True
                fv, fw, fwgt = srcs[foreign], nbrs[foreign], w[foreign]
                fflag = sv_flag[fw]
                if direction == PULL:
                    # local minimum over candidates; ties broken by the
                    # endpoint-symmetric key (weight, min end, max end) so
                    # both sides of an edge order candidates identically
                    order = np.lexsort((np.maximum(fv, fw),
                                        np.minimum(fv, fw), fwgt))
                    bi = order[0]
                    min_wgt[f] = fwgt[bi]
                    min_v[f] = fv[bi]
                    min_w[f] = fw[bi]
                    # partner flag resolved later (BMT) in pulling
                    mem.write(minw_h, idx=int(f), mode="rand")
                    mem.write(rec_h, idx=int(f), count=2, mode="rand")
                else:
                    # push candidates into each foreign supervertex's record
                    mem.read(minw_h, idx=fflag, mode="rand")  # pre-check
                    better = _lex_better(fwgt, fw, fv, min_wgt[fflag],
                                         min_v[fflag], min_w[fflag])
                    idxs = np.flatnonzero(better)
                    mem.branch_cond(len(fflag))
                    if len(idxs) == 0:
                        continue
                    # the CAS-min claims the record slot too; all claims
                    # hit the min-weight array -> batched-atomic stream
                    mem.cas(minw_h, idx=fflag[idxs], mode="rand",
                            batched=True, covers=[(rec_h, fflag[idxs])])
                    mem.write(rec_h, idx=fflag[idxs], count=3 * len(idxs),
                              mode="rand")
                    for i in idxs:
                        tf = int(fflag[i])
                        if _lex_better_scalar(float(fwgt[i]), int(fw[i]), int(fv[i]),
                                              float(min_wgt[tf]), int(min_v[tf]),
                                              int(min_w[tf])):
                            # the record is (weight, v-in-target, w-in-source):
                            # from the target's perspective the edge endpoint
                            # inside it is fw[i] and the outside one fv[i]
                            min_wgt[tf] = float(fwgt[i])
                            min_v[tf] = int(fw[i])
                            min_w[tf] = int(fv[i])
                            new_flag[tf] = int(f)

        rt.parallel_for(active, fm_body, by_owner=True)
        phase_times["FM"].append(rt.time - t0)
        if not any_edge[0]:
            break

        # ---- Phase BMT -------------------------------------------------------
        t0 = rt.time
        has_edge = active[np.isfinite(min_wgt[active])]

        def bmt_body(t: int, flags: np.ndarray) -> None:
            if len(flags) == 0:
                return
            if direction == PULL:
                # partner = supervertex of the chosen remote endpoint
                mem.read(rec_h, idx=flags, count=len(flags), mode="rand")
                mem.read(flag_h, idx=min_w[flags], mode="rand")
                new_flag[flags] = sv_flag[min_w[flags]]
                mem.write(rec_h, idx=flags, mode="rand")
            else:
                # push stored the partner during FM: a single record read
                mem.read(rec_h, idx=flags, mode="rand")
            mem.branch_cond(len(flags))

        rt.parallel_for(has_edge, bmt_body, by_owner=True)

        # merge-forest resolution: break 2-cycles, then pointer-jump
        parent = np.arange(n, dtype=np.int64)

        def resolve() -> None:
            parent[has_edge] = new_flag[has_edge]
            # 2-cycle rule: the smaller flag of a mutual pair is the root
            mutual = parent[parent[has_edge]] == has_edge
            roots = has_edge[mutual & (has_edge < parent[has_edge])]
            parent[roots] = roots
            jumps = 0
            p = parent
            while True:
                jumps += 1
                nxt = p[p]
                mem.read(flag_h, idx=has_edge, mode="rand")
                mem.write(flag_h, idx=has_edge, mode="rand")
                if np.array_equal(nxt, p) or jumps > 2 * int(np.log2(max(n, 2))) + 4:
                    break
                p = nxt
            parent[:] = p

        rt.sequential(resolve)
        phase_times["BMT"].append(rt.time - t0)

        # ---- Phase M ---------------------------------------------------------
        t0 = rt.time
        new_members: dict[int, list[np.ndarray]] = {}
        for f in active:
            root = int(parent[f])
            new_members.setdefault(root, []).append(members[int(f)])
            if np.isfinite(min_wgt[f]):
                a, b_ = int(min_v[f]), int(min_w[f])
                e = (min(a, b_), max(a, b_))
                if e not in mst_edges:
                    mst_edges.add(e)
                    total_weight += float(min_wgt[f])

        def merge_body(t: int, flags: np.ndarray) -> None:
            for f in flags:
                mem_vs = np.concatenate(new_members[int(f)])
                sv_flag[mem_vs] = f
                mem.write(flag_h, idx=mem_vs, mode="rand")
                mem.read(flag_h, idx=mem_vs, mode="rand")
                members[int(f)] = mem_vs

        roots_arr = np.array(sorted(new_members), dtype=np.int64)
        rt.parallel_for(roots_arr, merge_body, by_owner=True)
        stale = set(int(f) for f in active) - set(int(f) for f in roots_arr)
        for f in stale:
            members.pop(f, None)
        active = roots_arr
        phase_times["M"].append(rt.time - t0)

    return MSTResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=iterations,
        edges=sorted(mst_edges),
        total_weight=total_weight,
        phase_times=phase_times,
    )


def _lex_better(wgt, w_end, v_end, cur_wgt, cur_v, cur_w):
    """Vectorized improvement test on the endpoint-symmetric edge key
    (weight, min endpoint, max endpoint); strict total order over edges,
    which is what keeps Borůvka's choice graph free of long cycles."""
    lo, hi = np.minimum(w_end, v_end), np.maximum(w_end, v_end)
    cur_lo, cur_hi = np.minimum(cur_v, cur_w), np.maximum(cur_v, cur_w)
    no_cur = cur_v < 0
    better = (wgt < cur_wgt) | no_cur
    eq = (wgt == cur_wgt) & ~no_cur
    better |= eq & (lo < cur_lo)
    better |= eq & (lo == cur_lo) & (hi < cur_hi)
    return better


def _lex_better_scalar(wgt, w_end, v_end, cur_wgt, cur_v, cur_w):
    if cur_v < 0:
        return True
    if wgt != cur_wgt:
        return wgt < cur_wgt
    lo, hi = min(w_end, v_end), max(w_end, v_end)
    cur_lo, cur_hi = min(cur_v, cur_w), max(cur_v, cur_w)
    if lo != cur_lo:
        return lo < cur_lo
    return hi < cur_hi
