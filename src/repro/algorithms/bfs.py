"""Push- (top-down) and pull- (bottom-up) based BFS (Algorithm 3).

* **push / top-down**: every frontier vertex scans its neighbors and
  claims the unvisited ones with a CAS on the parent slot -- O(m) total
  edge scans, O(m) CAS attempts, plus a k-filter (frontier merge) per
  level.
* **pull / bottom-up**: every *unvisited* vertex scans its own
  neighbors looking for a parent in the current frontier and stops at
  the first hit -- no atomics at all (only t[v] writes v), but every
  level re-touches all unvisited vertices, giving the O(D·m) read bound
  of Section 4.3.

The direction-optimizing switch of Beamer et al. (the paper's [4]) is
implemented in :mod:`repro.strategies.switching` on top of these two.

Vertices carry a level (hop distance) and a parent pointer; both are
validated against the sequential reference and networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction,
)
from repro.graph.csr import CSRGraph
from repro.runtime.frontier import ThreadLocalFrontiers
from repro.runtime.sm import SMRuntime


@dataclass
class BFSResult(AlgoResult):
    parent: np.ndarray = None        #: parent[v] in the BFS tree; -1 unreached, root its own parent
    level: np.ndarray = None         #: hop distance; -1 unreached
    frontier_sizes: list = field(default_factory=list)
    directions: list = field(default_factory=list)  #: direction used per level


def bfs(g: CSRGraph, rt: SMRuntime, root: int, direction: str = PUSH,
        ) -> BFSResult:
    """Single-direction BFS from ``root`` on the simulated runtime."""
    check_direction(direction)
    state = BFSState(g, rt, root)
    while state.frontier_nonempty():
        state.step(direction)
    return state.result(direction)


class BFSState:
    """Reusable BFS machinery: one level per :meth:`step`, direction chosen
    per call (this is what the direction-optimizing strategy drives)."""

    def __init__(self, g: CSRGraph, rt: SMRuntime, root: int) -> None:
        if not (0 <= root < g.n):
            raise ValueError("root out of range")
        self.g = g
        # pulling scans *incoming* edges (Section 4.8); identical to g
        # for undirected graphs, the transposed CSR otherwise
        self.gin = g.transposed()
        self.rt = rt
        mem = rt.mem
        self.mem = mem
        self.ga = GraphArrays(mem, g)
        self.ga_in = (GraphArrays(mem, self.gin, prefix="gin")
                      if g.directed else self.ga)
        self.parent = np.full(g.n, -1, dtype=np.int64)
        self.level = np.full(g.n, -1, dtype=np.int64)
        self.in_front = np.zeros(g.n, dtype=bool)
        self.parent_h = mem.register("bfs.parent", self.parent)
        self.level_h = mem.register("bfs.level", self.level)
        self.front_h = mem.register("bfs.in_front", g.n, 1)
        self.frontier = np.array([root], dtype=np.int64)
        self.parent[root] = root
        self.level[root] = 0
        self.in_front[root] = True
        self.cur_level = 0
        self.frontier_sizes: list[int] = [1]
        self.iteration_times: list[float] = []
        self.directions: list[str] = []
        self.start_time = rt.time
        self.start_counters = rt.total_counters()

    def frontier_nonempty(self) -> bool:
        return len(self.frontier) > 0

    # -- one level ------------------------------------------------------------
    def step(self, direction: str) -> None:
        check_direction(direction)
        tr = getattr(self.rt, "tracer", None)
        if tr is not None:
            tr.on_frontier(self.cur_level, len(self.frontier), self.g.n)
        self.rt.annotate(f"bfs.{direction}")
        t0 = self.rt.time
        if direction == PUSH:
            nxt = self._step_push()
        else:
            nxt = self._step_pull()
        # frontier bitmap swap: clear the old frontier, set the new one
        self.in_front[:] = False
        self.in_front[nxt] = True
        self.frontier = nxt
        self.cur_level += 1
        self.frontier_sizes.append(len(nxt))
        self.iteration_times.append(self.rt.time - t0)
        self.directions.append(direction)

    def _step_push(self) -> np.ndarray:
        g, rt, mem = self.g, self.rt, self.mem
        my_f = ThreadLocalFrontiers(rt.P)
        parent, level = self.parent, self.level
        nxt_level = self.cur_level + 1

        def body(t: int, vs: np.ndarray) -> None:
            for v in vs:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                mem.read(self.ga.off, idx=int(v), count=2, mode="rand")
                nbrs = g.adj[o0:o1]
                mem.read(self.ga.adj, start=o0, count=o1 - o0)
                mem.read(self.parent_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                fresh = nbrs[parent[nbrs] < 0]
                if len(fresh) == 0:
                    continue
                # claim each unvisited neighbor with a CAS; in the
                # deterministic superstep every attempt succeeds
                # the winning CAS also owns the level store; the claims
                # all target the parent array, so they form the
                # segregated same-array stream the batched-atomic
                # discount models (Section 5 / Table 4)
                mem.cas(self.parent_h, idx=fresh, mode="rand",
                        batched=True, covers=[(self.level_h, fresh)])
                mem.write(self.level_h, idx=fresh, mode="rand")
                parent[fresh] = v
                level[fresh] = nxt_level
                my_f.extend(t, fresh)

        # Algorithm 3's level shape: explore, k-filter the my_Fs into F,
        # one barrier.  The merge runs as its own (serial) phase so its
        # events are attributed to a region instead of landing on an
        # arbitrary thread with no simulated time attached
        rt.parallel_for(self.frontier, body, by_owner=True, barrier=False)
        nxt = np.empty(0, dtype=np.int64)

        def kfilter() -> None:
            nonlocal nxt
            nxt = my_f.merge(mem, handle=self.front_h)
            # the merged frontier is written back as the new bitmap
            if len(nxt):
                mem.write(self.front_h, idx=nxt, mode="rand")

        rt.annotate("bfs.kfilter")
        rt.sequential(kfilter, barrier=False)
        rt.barrier()
        return nxt

    def _step_pull(self) -> np.ndarray:
        g, rt, mem = self.gin, self.rt, self.mem
        my_f = ThreadLocalFrontiers(rt.P)
        parent, level, in_front = self.parent, self.level, self.in_front
        nxt_level = self.cur_level + 1

        def body(t: int, vs: np.ndarray) -> None:
            unvisited = vs[parent[vs] < 0]
            mem.read(self.parent_h, start=int(vs[0]) if len(vs) else 0,
                     count=len(vs))
            mem.branch_cond(len(vs))
            for v in unvisited:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                mem.read(self.ga_in.off, idx=int(v), count=2, mode="rand")
                nbrs = g.adj[o0:o1]
                if len(nbrs) == 0:
                    continue
                flags = in_front[nbrs]
                hit = int(np.argmax(flags)) if flags.any() else -1
                # early exit: only the prefix up to the first hit is scanned
                scanned = (hit + 1) if hit >= 0 else len(nbrs)
                mem.read(self.ga_in.adj, start=o0, count=scanned)
                mem.read(self.front_h, idx=nbrs[:scanned], mode="rand")
                mem.branch_cond(scanned)
                if hit >= 0:
                    w = int(nbrs[hit])
                    rt.owned_write_check(v)
                    parent[v] = w
                    level[v] = nxt_level
                    mem.write(self.parent_h, idx=int(v), mode="rand")
                    mem.write(self.level_h, idx=int(v), mode="rand")
                    my_f.add(t, int(v))

        rt.for_each_thread(body)
        # pulling needs no k-filter: membership was tested per vertex
        return my_f.merge(dedup=False)

    # -- result ------------------------------------------------------------------
    def result(self, label: str) -> BFSResult:
        return BFSResult(
            direction=label,
            time=self.rt.time - self.start_time,
            counters=self.rt.total_counters() - self.start_counters,
            iterations=len(self.iteration_times),
            iteration_times=self.iteration_times,
            parent=self.parent,
            level=self.level,
            frontier_sizes=self.frontier_sizes,
            directions=self.directions,
        )
