"""Distributed-memory Triangle Counting (Section 6.3.2): RMA push/pull, MP.

The adjacency is distributed by owner: to intersect N(v) with N(u) for
a remote ``u``, the processing rank fetches ``N(u)``:

* **RMA (both directions)**: one ``MPI_Get`` of d(u) items per
  (v, u) pair -- the "single get that fetches all the neighbors"
  extreme of the paper's memory/communication tradeoff discussion.
  Push then increments remote *integer* counters with fetch-and-add
  (the foMPI fast path, ``remote_acc_int``); pull accumulates into the
  local counter -- pull is faster by exactly the FAA traffic.
* **MP**: neighbor lists travel by request/reply message pairs, and
  counter increments are buffered until ``buffer_items`` updates
  accumulate per destination (the paper: "updates are buffered until a
  given size is reached"), shipped as real ``(vertex, count)`` payloads
  (tag ``tc-upd``) and applied by the owner in an absorb superstep.
  Slowest, per the paper, because of the messaging and buffering
  overheads.

Counts are validated against the shared-memory implementation and
networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.runtime.dm import DMRuntime

RMA_PUSH = "rma-push"
RMA_PULL = "rma-pull"
MP = "mp"
_VARIANTS = (RMA_PUSH, RMA_PULL, MP)


@dataclass
class DMTriangleResult:
    variant: str
    per_vertex: np.ndarray
    time: float
    counters: PerfCounters
    #: per-process peak auxiliary cells (Section 6.3.2's memory tradeoff)
    peak_buffer_cells: int = 0

    @property
    def total(self) -> int:
        return int(self.per_vertex.sum()) // 3


def dm_triangle_count(g: CSRGraph, rt: DMRuntime, variant: str = RMA_PULL,
                      buffer_items: int = 256) -> DMTriangleResult:
    """NodeIterator TC on the simulated distributed-memory machine."""
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}")
    n = g.n
    mem = rt.mem
    off_h = mem.register("dmtc.offsets", g.offsets)
    adj_h = mem.register("dmtc.adj", g.adj)
    tc_h = mem.register("dmtc.count", n, 8)
    tc = np.zeros(n, dtype=np.int64)
    rt.register_window(tc_h, tc)
    owner = rt.part.owner(np.arange(n, dtype=np.int64))
    offsets, adj = g.offsets, g.adj

    start_time = rt.time
    start_counters = rt.total_counters()
    peak_buffer = 0
    # MP: pending increment buffers, per (source, dest):
    # (vertices, counts, buffered witness total)
    pending: list[list[list]] = [[[[], [], 0] for _ in range(rt.P)]
                                 for _ in range(rt.P)]

    def flush_buffer(p: int, q: int) -> None:
        """Ship one buffered-increments message of real updates."""
        us, incs, items = pending[p][q]
        if items:
            rt.send(q, (np.asarray(us, dtype=np.int64),
                        np.asarray(incs, dtype=np.int64)),
                    nbytes=16 * items, tag="tc-upd")
        pending[p][q] = [[], [], 0]

    def body(p: int) -> None:
        nonlocal peak_buffer
        vs = rt.owned(p)
        for v in vs:
            o0, o1 = int(offsets[v]), int(offsets[v + 1])
            dv = o1 - o0
            mem.read(off_h, idx=int(v), count=2, mode="rand")
            if dv == 0:
                continue
            nv = adj[o0:o1]
            mem.read(adj_h, start=o0, count=dv)
            for u in nv:
                u = int(u)
                uo0, uo1 = int(offsets[u]), int(offsets[u + 1])
                du = uo1 - uo0
                if du == 0:
                    continue
                uowner = int(owner[u])
                if uowner == p:
                    mem.read(off_h, idx=u, count=2, mode="rand")
                    mem.read(adj_h, start=uo0, count=du)
                else:
                    # fetch N(u) from its owner
                    if variant == MP:
                        # request + reply message pair (the fetch is
                        # synchronous in the simulation: message faults
                        # charge retries/waits but cannot lose the data)
                        rt.send(uowner, None, nbytes=16, tag="tc-req")
                        c = rt.proc_counters[uowner]
                        c.messages += 1
                        c.msg_bytes += 8 * du
                    else:
                        rt.rma_get(uowner, du, window=adj_h)
                    peak_buffer = max(peak_buffer, du)
                nu = adj[uo0:uo1]
                pos = np.searchsorted(nv, nu)
                pos[pos >= dv] = dv - 1
                hits = nv[pos] == nu
                mem.branch_cond(du)
                common = int(hits.sum())
                if common:
                    matched = nu[hits]
                    common -= int(np.count_nonzero((matched == v) | (matched == u)))
                if common == 0:
                    continue
                if variant == RMA_PULL:
                    # pull accumulates locally into tc[v]
                    tc[v] += common
                    mem.read(tc_h, idx=int(v), mode="rand")
                    mem.write(tc_h, idx=int(v), mode="rand")
                elif variant == RMA_PUSH:
                    # integer FAA fast path, one per witness; local
                    # counters share the window with remote FAAs landing
                    # this epoch, so the local update is a fetch-and-add
                    # too (write-vs-acc epoch rule).  Remote data is
                    # staged and lands at the flush below.
                    rt.accumulate(uowner, [common], window=tc_h, idx=[u],
                                  dtype="int", ops=common)
                else:  # MP: buffer increments until the threshold
                    if uowner == p:
                        tc[u] += common
                        mem.read(tc_h, idx=u, count=common, mode="rand")
                        mem.write(tc_h, idx=u, count=common, mode="rand")
                    else:
                        buf = pending[p][uowner]
                        buf[0].append(u)
                        buf[1].append(common)
                        buf[2] += common
                        if buf[2] >= buffer_items:
                            peak_buffer = max(peak_buffer, 2 * buf[2])
                            flush_buffer(p, uowner)
        # drain remaining MP buffers
        if variant == MP:
            for q in range(rt.P):
                flush_buffer(p, q)
        if variant.startswith("rma"):
            rt.rma_flush()

    rt.superstep(body)

    # MP: owners absorb the shipped increment payloads at the boundary
    if variant == MP:
        def absorb(p: int) -> None:
            for _, payload in rt.inbox("tc-upd"):
                us, incs = payload
                mem.read(tc_h, idx=us, mode="rand")
                mem.write(tc_h, idx=us, mode="rand")
                np.add.at(tc, us, incs)

        rt.superstep(absorb)

    # halving pass (local)
    def halve(p: int) -> None:
        vs = rt.owned(p)
        if len(vs) == 0:
            return
        tc[vs] //= 2
        mem.read(tc_h, start=int(vs[0]), count=len(vs))
        mem.write(tc_h, start=int(vs[0]), count=len(vs))

    rt.superstep(halve)

    return DMTriangleResult(
        variant=variant,
        per_vertex=tc,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        peak_buffer_cells=peak_buffer,
    )
