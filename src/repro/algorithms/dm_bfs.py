"""Distributed-memory BFS with push, pull, and direction switching.

Section 7.2 (MP, point-to-point messages): "In traversals,
pushing-pulling switching offers highest performance [4, 17]."  This
module implements the three variants over the Message-Passing backend:

* **push (top-down)**: owners of frontier vertices send the remote
  targets they discover to the targets' owners -- one batched message
  per rank pair per level, bytes ∝ newly touched cross edges.
* **pull (bottom-up)**: every rank needs the *global* frontier to test
  "is one of my unvisited vertices' neighbors in F?", so each level
  allgathers a frontier bitmap (modeled as the P-message exchange it
  is) and then scans locally with early exit.  Cheap per level when
  the frontier is huge, wasteful when it is thin.
* **switching**: the Beamer policy of
  :class:`repro.strategies.switching.SwitchPolicy` applied to the DM
  cost structure -- top-down while the frontier is thin, bottom-up at
  the fat middle levels.

Levels are validated against the shared-memory BFS and the
Graph500-style certifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import gather_edge_positions
from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.runtime.dm import DMRuntime
from repro.strategies.switching import SwitchPolicy

PUSH = "push"
PULL = "pull"
SWITCHING = "switching"
_VARIANTS = (PUSH, PULL, SWITCHING)


@dataclass
class DMBFSResult:
    variant: str
    level: np.ndarray
    parent: np.ndarray
    time: float
    counters: PerfCounters
    levels: int = 0
    directions: list = field(default_factory=list)
    frontier_sizes: list = field(default_factory=list)


def dm_bfs(g: CSRGraph, rt: DMRuntime, root: int, variant: str = PUSH,
           policy: SwitchPolicy | None = None) -> DMBFSResult:
    """Distributed BFS from ``root`` on the simulated MP machine."""
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}")
    if not (0 <= root < g.n):
        raise ValueError("root out of range")
    policy = policy or SwitchPolicy()
    n = g.n
    mem = rt.mem
    off_h = mem.register("dmbfs.offsets", g.offsets)
    adj_h = mem.register("dmbfs.adj", g.adj)
    par_h = mem.register("dmbfs.parent", n, 8)
    owner = rt.part.owner(np.arange(n, dtype=np.int64))
    degrees = np.diff(g.offsets)
    total_edges = int(degrees.sum())

    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    # checkpointed state for crash rollback under fault injection
    rt.register_window(par_h, parent)
    rt.register_window("dmbfs.level", level)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    in_front = np.zeros(n, dtype=bool)
    in_front[root] = True

    start_time = rt.time
    start_counters = rt.total_counters()
    directions: list[str] = []
    frontier_sizes: list[int] = [1]
    depth = 0
    explored = int(degrees[root])
    direction = PUSH

    tr = getattr(rt, "tracer", None)
    while len(frontier):
        if tr is not None:
            tr.on_frontier(depth, len(frontier), n,
                           edges=int(degrees[frontier].sum()))
        if variant == SWITCHING:
            fe = int(degrees[frontier].sum())
            previous = direction
            direction = policy.choose(direction, fe, total_edges - explored,
                                      len(frontier), n)
            if tr is not None:
                tr.on_switch(depth, previous, direction, {
                    "frontier_edges": fe,
                    "unexplored_edges": total_edges - explored,
                    "frontier_size": len(frontier),
                    "n": n,
                    "alpha": policy.alpha,
                    "beta": policy.beta,
                })
        else:
            direction = variant
        depth += 1
        rt.annotate(f"bfs.{direction}")
        if direction == PUSH:
            nxt = _level_push(g, rt, mem, off_h, adj_h, par_h, owner,
                              parent, level, frontier, depth)
        else:
            nxt = _level_pull(g, rt, mem, off_h, adj_h, par_h, owner,
                              parent, level, in_front, depth)
        in_front[:] = False
        in_front[nxt] = True
        frontier = nxt
        explored += int(degrees[nxt].sum()) if len(nxt) else 0
        directions.append(direction)
        frontier_sizes.append(len(nxt))

    return DMBFSResult(
        variant=variant,
        level=level,
        parent=parent,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        levels=depth,
        directions=directions,
        frontier_sizes=frontier_sizes,
    )


def _level_push(g, rt, mem, off_h, adj_h, par_h, owner, parent, level,
                frontier, depth) -> np.ndarray:
    """Top-down level: discoveries travel to their owners in batches."""
    by_owner = rt.part.group_by_owner(frontier)
    claimed: list[np.ndarray] = []

    def expand(p: int) -> None:
        mine = by_owner[p]
        if len(mine) == 0:
            return
        pos = gather_edge_positions(g.offsets, mine)
        mem.read(off_h, idx=mine, count=len(mine) + 1, mode="rand")
        if len(pos) == 0:
            return
        nbrs = g.adj[pos]
        srcs = np.repeat(mine, g.offsets[mine + 1] - g.offsets[mine])
        mem.read(adj_h, count=len(nbrs), mode="seq")
        fresh = parent[nbrs] < 0
        mem.read(par_h, idx=nbrs[owner[nbrs] == p], mode="rand")
        cand_t, cand_s = nbrs[fresh].astype(np.int64), srcs[fresh]
        for q in range(rt.P):
            sel = owner[cand_t] == q
            if not sel.any():
                continue
            payload = (cand_t[sel], cand_s[sel])
            if q == p:
                claimed.append(_claim(payload, parent, level, depth, mem,
                                      par_h))
            else:
                rt.send(q, payload, nbytes=16 * int(sel.sum()), tag="disc")

    rt.superstep(expand)

    def absorb(p: int) -> None:
        for _, payload in rt.inbox("disc"):
            claimed.append(_claim(payload, parent, level, depth, mem, par_h))

    rt.superstep(absorb)
    if claimed:
        return np.unique(np.concatenate([c for c in claimed if len(c)]))
    return np.empty(0, dtype=np.int64)


def _claim(payload, parent, level, depth, mem, par_h) -> np.ndarray:
    tgt, src = payload
    mem.read(par_h, idx=tgt, mode="rand")
    fresh = parent[tgt] < 0
    t2 = tgt[fresh]
    if len(t2) == 0:
        return np.empty(0, dtype=np.int64)
    mem.write(par_h, idx=t2, mode="rand")
    parent[t2] = src[fresh]
    level[t2] = depth
    return np.unique(t2)


def _level_pull(g, rt, mem, off_h, adj_h, par_h, owner, parent, level,
                in_front, depth) -> np.ndarray:
    """Bottom-up level: allgather the frontier bitmap, then scan locally."""
    bitmap_bytes = (g.n + 7) // 8
    found: list[np.ndarray] = []

    def exchange(p: int) -> None:
        # allgather modeled as P-1 bitmap messages per rank
        for q in range(rt.P):
            if q != p:
                rt.send(q, None, nbytes=bitmap_bytes // rt.P + 1,
                        tag="bitmap")

    rt.superstep(exchange)

    def scan(p: int) -> None:
        rt.inbox("bitmap")   # consume the bitmap fragments
        vs = rt.owned(p)
        if len(vs) == 0:
            return
        mem.read(par_h, start=int(vs[0]), count=len(vs), mode="seq")
        unvisited = vs[parent[vs] < 0]
        mine: list[int] = []
        for v in unvisited:
            o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
            nbrs = g.adj[o0:o1]
            mem.read(off_h, idx=int(v), count=2, mode="rand")
            if len(nbrs) == 0:
                continue
            flags = in_front[nbrs]
            hit = int(np.argmax(flags)) if flags.any() else -1
            scanned = (hit + 1) if hit >= 0 else len(nbrs)
            mem.read(adj_h, start=o0, count=scanned)
            if hit >= 0:
                parent[v] = int(nbrs[hit])
                level[v] = depth
                mem.write(par_h, idx=int(v), mode="rand")
                mine.append(int(v))
        if mine:
            found.append(np.asarray(mine, dtype=np.int64))

    rt.superstep(scan)
    if found:
        # np.unique: a crash-rerun of scan appends its discoveries twice
        return np.unique(np.concatenate(found))
    return np.empty(0, dtype=np.int64)
