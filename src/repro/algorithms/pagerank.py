"""Push- and pull-based PageRank (Algorithm 1; Partition-Awareness: Algorithm 8).

The paper's Section-3.1 recurrence::

    r(v) = (1 - f)/|V| + sum_{w in N(v)} f * r(w) / d(w)

* **pull**: t[v] reads the (rank, degree) of every neighbor and
  accumulates into its own vertex -- two random reads per edge entry,
  zero atomics.
* **push**: t[v] adds r(v)/d(v) into every neighbor's accumulator.
  Since accumulators are floats and CPUs lack float atomics, each
  remote add is a CAS loop on the bit pattern (Section 4.1 prices this
  as O(Lm) lock/atomic events; Table 1 reports them in the ``atomics``
  row, which we follow).
* **push + Partition-Awareness**: Algorithm 8 -- each iteration first
  updates *local* neighbors with plain writes into the thread's own
  block (good locality, no atomics), then, after a barrier, updates
  remote neighbors with atomics.

All three share one finalization region per iteration that applies the
damping to the accumulators and (optionally) measures the L1 delta for
convergence-based termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, block_bounds, check_direction,
    segment_sums,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition_aware import PartitionAwareCSR
from repro.runtime.sm import SMRuntime

PUSH_PA = "push-pa"


@dataclass
class PageRankResult(AlgoResult):
    """Ranks plus per-iteration simulated times."""

    ranks: np.ndarray = None
    converged: bool = False


def pagerank(g: CSRGraph, rt: SMRuntime, direction: str = PULL,
             iterations: int = 20, damping: float = 0.85,
             pa: PartitionAwareCSR | None = None,
             tol: float | None = None) -> PageRankResult:
    """Run PageRank on the simulated SM runtime.

    Parameters
    ----------
    direction:
        ``"pull"``, ``"push"``, or ``"push-pa"`` (requires ``pa``).
    iterations:
        The paper's L (upper bound when ``tol`` is given).
    tol:
        Optional L1-convergence threshold for early termination.
    """
    check_direction(direction, (PUSH, PULL, PUSH_PA))
    if direction == PUSH_PA and pa is None:
        pa = PartitionAwareCSR(g, rt.part)
    mem = rt.mem
    ga = GraphArrays(mem, g)
    # Section 4.8, "Directed Graphs": pushing iterates *outgoing* edges of
    # active vertices, pulling iterates the *incoming* edges of every
    # vertex -- so pull walks the transposed (CSC) structure and its cost
    # bounds depend on d-hat_in where push's depend on d-hat_out.
    gin = g.transposed()
    gin_arrays = GraphArrays(mem, gin, prefix="gin") if g.directed else ga
    n = g.n
    deg = np.diff(g.offsets).astype(np.float64)   # out-degrees
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    rank = np.full(n, 1.0 / max(n, 1))
    acc = np.zeros(n)
    base = (1.0 - damping) / max(n, 1)

    rank_h = mem.register("pr.rank", rank)
    acc_h = mem.register("pr.acc", acc)
    deg_h = mem.register("pr.deg", deg)
    # per-thread accumulator slices for the PA local phase: physically the
    # same memory as ``acc`` but the thread's working set is only its block
    # effects: alias pr.acc.block* -> pr.acc
    slice_hs = [
        mem.register(f"pr.acc.block{t}", max(rt.part.size(t), 1), 8)
        for t in range(rt.P)
    ]
    if direction == PUSH_PA:
        pa_adj_h = mem.register("pr.pa.adj", pa.adj)
        pa_split_h = mem.register("pr.pa.split", pa.split)

    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []
    converged = False
    it = 0

    # ---- per-iteration bodies (vectorized over each thread's block; the
    # reported event counts equal the per-vertex formulation's) ----------

    def pull_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        lo, hi = block_bounds(rt, vs, gin)
        nbrs = gin.adj[lo:hi]
        mem.read(gin_arrays.off, start=vs[0], count=len(vs) + 1)
        mem.read(gin_arrays.adj, start=lo, count=hi - lo)
        mem.read(rank_h, idx=nbrs, mode="rand")
        mem.read(deg_h, idx=nbrs, mode="rand")
        vals = rank[nbrs] * inv_deg[nbrs]
        sums = segment_sums(vals, gin.offsets[vs] - lo,
                            gin.offsets[vs + 1] - lo)
        rt.owned_write_check(vs)
        acc[vs] = sums
        mem.write(acc_h, start=vs[0], count=len(vs))
        mem.flop(2 * (hi - lo))
        mem.branch_cond((hi - lo) + len(vs))

    def zero_body(t: int, vs: np.ndarray) -> None:
        acc[vs] = 0.0
        mem.write(acc_h, start=vs[0] if len(vs) else 0, count=len(vs))

    def push_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        lo, hi = block_bounds(rt, vs, g)
        nbrs = g.adj[lo:hi]
        mem.read(ga.off, start=vs[0], count=len(vs) + 1)
        mem.read(ga.adj, start=lo, count=hi - lo)
        mem.read(rank_h, start=vs[0], count=len(vs))
        mem.read(deg_h, start=vs[0], count=len(vs))
        contrib = (rank[vs] * inv_deg[vs]).repeat(np.diff(g.offsets[np.r_[vs, vs[-1] + 1]]))
        np.add.at(acc, nbrs, contrib)
        # float accumulate == CAS loop per update (no float atomics on CPUs)
        mem.cas(acc_h, idx=nbrs, mode="rand")
        mem.flop((hi - lo) + len(vs))
        mem.branch_cond((hi - lo) + len(vs))

    def pa_local_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        mem.read(ga.off, start=vs[0], count=len(vs) + 1)
        mem.read(rank_h, start=vs[0], count=len(vs))
        mem.read(deg_h, start=vs[0], count=len(vs))
        block_start = rt.part.starts[t]
        for v in vs:
            lnbrs = pa.local_neighbors(v)
            if len(lnbrs) == 0:
                continue
            mem.read(pa_adj_h, start=int(g.offsets[v]), count=len(lnbrs))
            c = rank[v] * inv_deg[v]
            acc[lnbrs] += c
            # plain (non-atomic) writes confined to the thread's own block
            mem.read(slice_hs[t], idx=lnbrs - block_start, mode="rand")
            mem.write(slice_hs[t], idx=lnbrs - block_start, mode="rand")
            mem.flop(len(lnbrs) + 1)
            mem.branch_cond(len(lnbrs))

    def pa_remote_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        mem.read(ga.off, start=vs[0], count=len(vs) + 1)
        mem.read(rank_h, start=vs[0], count=len(vs))
        mem.read(deg_h, start=vs[0], count=len(vs))
        for v in vs:
            rnbrs = pa.remote_neighbors(v)
            if len(rnbrs) == 0:
                continue
            mem.read(pa_adj_h, start=int(pa.split[v]), count=len(rnbrs))
            c = rank[v] * inv_deg[v]
            acc[rnbrs] += c
            # segregated remote stream: the batched-atomic discount applies
            mem.cas(acc_h, idx=rnbrs, mode="rand", batched=True)
            mem.flop(len(rnbrs) + 1)
            mem.branch_cond(len(rnbrs))

    deltas = np.zeros(rt.P)

    def finalize_body(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            deltas[t] = 0.0
            return
        mem.read(acc_h, start=vs[0], count=len(vs))
        new = base + damping * acc[vs]
        if tol is not None:
            deltas[t] = float(np.abs(new - rank[vs]).sum())
            mem.read(rank_h, start=vs[0], count=len(vs))
            mem.flop(2 * len(vs))
        rank[vs] = new
        mem.write(rank_h, start=vs[0], count=len(vs))
        mem.flop(2 * len(vs))

    # ---- iteration loop --------------------------------------------------------
    for it in range(1, iterations + 1):
        t0 = rt.time
        if direction == PULL:
            rt.annotate("pr.pull")
            rt.for_each_thread(pull_body)
        elif direction == PUSH:
            rt.annotate("pr.zero")
            rt.for_each_thread(zero_body)
            rt.annotate("pr.push")
            rt.for_each_thread(push_body)
        else:  # PUSH_PA, Algorithm 8: local phase | barrier | remote phase
            rt.annotate("pr.zero")
            rt.for_each_thread(zero_body)
            rt.annotate("pr.pa-local")
            rt.for_each_thread(pa_local_body)
            rt.annotate("pr.pa-remote")
            rt.for_each_thread(pa_remote_body)
        rt.annotate("pr.finalize")
        rt.for_each_thread(finalize_body)
        iteration_times.append(rt.time - t0)
        if tol is not None and deltas.sum() < tol:
            converged = True
            break

    return PageRankResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=it,
        iteration_times=iteration_times,
        ranks=rank,
        converged=converged,
    )
