"""Sequential reference implementations (correctness oracles).

Every instrumented push/pull algorithm must agree with these simple
single-threaded references; the references themselves are cross-checked
against networkx in the test suite.  Keeping our own references matters
where the paper's formulation differs slightly from networkx defaults
(e.g. PageRank's handling of dangling vertices follows the paper's
recurrence r(v) = (1-f)/|V| + sum f·r(w)/d(w) verbatim).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.csr import CSRGraph


def pagerank_reference(g: CSRGraph, iterations: int = 20,
                       damping: float = 0.85) -> np.ndarray:
    """Power iteration of the paper's Section-3.1 recurrence."""
    n = g.n
    rank = np.full(n, 1.0 / max(n, 1))
    deg = np.diff(g.offsets).astype(np.float64)
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    base = (1.0 - damping) / max(n, 1)
    for _ in range(iterations):
        contrib = rank * inv_deg
        acc = np.zeros(n)
        src = np.repeat(np.arange(n), np.diff(g.offsets))
        np.add.at(acc, g.adj, contrib[src])
        rank = base + damping * acc
    return rank


def triangle_per_vertex_reference(g: CSRGraph) -> np.ndarray:
    """Number of triangles each vertex participates in (NodeIterator)."""
    tc = np.zeros(g.n, dtype=np.int64)
    for v in range(g.n):
        nv = g.neighbors(v)
        for u in nv:
            if u <= v:
                continue
            common = np.intersect1d(nv, g.neighbors(u), assume_unique=True)
            common = common[(common != v) & (common != u)]
            for w in common:
                if w > u:  # count each triangle once
                    tc[v] += 1
                    tc[u] += 1
                    tc[w] += 1
    return tc


def bfs_reference(g: CSRGraph, root: int) -> np.ndarray:
    """Level (hop distance) per vertex; -1 if unreachable."""
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[root] = 0
    frontier = [root]
    level = 0
    while frontier:
        nxt = []
        for v in frontier:
            for w in g.neighbors(v):
                if dist[w] < 0:
                    dist[w] = level + 1
                    nxt.append(int(w))
        frontier = nxt
        level += 1
    return dist


def sssp_reference(g: CSRGraph, source: int) -> np.ndarray:
    """Dijkstra distances; inf if unreachable.  Unweighted edges count 1."""
    dist = np.full(g.n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        nbrs = g.neighbors(v)
        wgts = g.edge_weights(v) if g.weights is not None else np.ones(len(nbrs))
        for w, wt in zip(nbrs, wgts):
            nd = d + wt
            if nd < dist[w]:
                dist[w] = nd
                heapq.heappush(heap, (nd, int(w)))
    return dist


def bc_reference(g: CSRGraph, sources=None) -> np.ndarray:
    """Brandes betweenness (unweighted, unnormalized, undirected halving).

    ``sources`` restricts the outer loop (sampled BC); default all.
    """
    n = g.n
    bc = np.zeros(n)
    if sources is None:
        sources = range(n)
    for s in sources:
        # forward BFS
        sigma = np.zeros(n)
        sigma[s] = 1.0
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        order = [s]
        frontier = [s]
        level = 0
        while frontier:
            nxt = []
            for v in frontier:
                for w in g.neighbors(v):
                    if dist[w] < 0:
                        dist[w] = level + 1
                        nxt.append(int(w))
                    if dist[w] == level + 1:
                        sigma[w] += sigma[v]
            order.extend(nxt)
            frontier = nxt
            level += 1
        # backward accumulation
        delta = np.zeros(n)
        for v in reversed(order):
            for w in g.neighbors(v):
                if dist[w] == dist[v] + 1 and sigma[w] > 0:
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if v != s:
                bc[v] += delta[v]
    if not g.directed:
        bc /= 2.0
    return bc


def greedy_coloring_reference(g: CSRGraph, order=None) -> np.ndarray:
    """First-fit greedy coloring; always proper."""
    colors = np.full(g.n, -1, dtype=np.int64)
    if order is None:
        order = range(g.n)
    for v in order:
        used = set(int(colors[w]) for w in g.neighbors(v) if colors[w] >= 0)
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def is_proper_coloring(g: CSRGraph, colors: np.ndarray) -> bool:
    src = np.repeat(np.arange(g.n), np.diff(g.offsets))
    if np.any(colors < 0):
        return False
    return not np.any(colors[src] == colors[g.adj])


def mst_weight_reference(g: CSRGraph) -> float:
    """Total weight of a minimum spanning forest (Kruskal)."""
    parent = list(range(g.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges = []
    for v, w in g.edges():
        edges.append((g.weight_of(int(v), int(w)), int(v), int(w)))
    edges.sort()
    total = 0.0
    for wt, v, w in edges:
        rv, rw = find(v), find(w)
        if rv != rw:
            parent[rv] = rw
            total += wt
    return total
