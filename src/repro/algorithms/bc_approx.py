"""Adaptive-sampling approximate BC (Bader et al., the paper's [2]).

Section 4.5 cites Bader et al. both for the successor-set trick and for
*approximating* betweenness.  The adaptive estimator targets one vertex
v: sample sources uniformly, accumulate v's dependency scores, and stop
as soon as the running sum exceeds ``c · n`` — high-centrality vertices
need very few samples.  The unbiased estimate is ``n / k`` times the
accumulated dependency after ``k`` samples.

The estimator runs on the instrumented runtime (each sample is one
push- or pull-BFS pair), so its cost profile inherits the push/pull
tradeoffs of exact BC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.bc import betweenness_centrality
from repro.algorithms.common import check_direction
from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.runtime.sm import SMRuntime


@dataclass
class ApproxBCResult:
    vertex: int
    estimate: float
    samples: int
    stopped_early: bool
    time: float
    counters: PerfCounters


def approx_bc_vertex(g: CSRGraph, rt: SMRuntime, vertex: int,
                     direction: str = "pull", c: float = 2.0,
                     max_samples: int | None = None,
                     seed: int = 0) -> ApproxBCResult:
    """Bader-style adaptive estimate of one vertex's betweenness.

    Samples sources without replacement; stops when the accumulated
    dependency exceeds ``c * n`` or after ``max_samples`` sources
    (default ``n``, which recovers the exact value).
    """
    check_direction(direction)
    if not (0 <= vertex < g.n):
        raise ValueError("vertex out of range")
    if c <= 0:
        raise ValueError("c must be positive")
    n = g.n
    limit = min(max_samples if max_samples is not None else n, n)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)

    start_time = rt.time
    start_counters = rt.total_counters()
    acc = 0.0
    k = 0
    stopped = False
    for s in order[:limit]:
        k += 1
        r = betweenness_centrality(g, rt, direction=direction,
                                   sources=[int(s)])
        # undirected BC halves contributions; undo for the raw dependency
        acc += 2.0 * float(r.bc[vertex]) if not g.directed else float(
            r.bc[vertex])
        if acc >= c * n and k < limit:
            stopped = True
            break

    scale = n / k if k else 0.0
    estimate = scale * acc
    if not g.directed:
        estimate /= 2.0
    return ApproxBCResult(
        vertex=vertex,
        estimate=estimate,
        samples=k,
        stopped_early=stopped,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
    )
