"""Distributed-memory Δ-Stepping SSSP (Section 3.4 / the paper's [17]).

Chakaravarthy et al. "invert the direction of message exchanges in the
distributed Δ-Stepping algorithm"; this module implements both
directions over the Message-Passing backend:

* **push**: owners of current-bucket vertices send *relaxation
  requests* ``(target, candidate distance)`` to the owners of the
  targets -- one batched message per (source rank, dest rank) pair per
  inner iteration, carrying only the improving candidates.
* **pull**: owners of *unsettled* vertices ask the owners of their
  neighbors for the neighbors' (distance, bucket) state -- a request
  plus a reply per rank pair (twice the message rounds), re-sent every
  inner iteration because unsettled vertices must re-examine the
  current bucket (the DM face of pull's rescan overhead).

The paper's Section 6.5 observes that on shared memory push wins
because intra-node atomics are cheap, "surprisingly different from the
variant for the DM machines presented in the literature, where pulling
is faster" -- pulling avoids fine-grained remote relaxation traffic
when each relaxation would be its own message.  With *batched* requests
(as here and in [17]) push regains the edge; the tests pin down the
message-count asymmetry rather than a time winner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import gather_edge_positions
from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.runtime.dm import DMRuntime

_NO_BUCKET = np.iinfo(np.int64).max // 2

PUSH = "push"
PULL = "pull"


@dataclass
class DMSSSPResult:
    variant: str
    dist: np.ndarray
    time: float
    counters: PerfCounters
    epochs: int = 0
    inner_iterations: int = 0
    messages: int = 0


def dm_sssp_delta(g: CSRGraph, rt: DMRuntime, source: int,
                  delta: float | None = None, variant: str = PUSH,
                  max_epochs: int | None = None) -> DMSSSPResult:
    """Distributed Δ-Stepping from ``source``; unweighted edges count 1."""
    if variant not in (PUSH, PULL):
        raise ValueError("variant must be 'push' or 'pull'")
    if not (0 <= source < g.n):
        raise ValueError("source out of range")
    n = g.n
    mem = rt.mem
    off_h = mem.register("dmsssp.offsets", g.offsets)
    adj_h = mem.register("dmsssp.adj", g.adj)
    dist_h = mem.register("dmsssp.dist", n, 8)
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    if delta is None:
        delta = float(weights.mean()) if len(weights) else 1.0
    if delta <= 0:
        raise ValueError("delta must be positive")

    dist = np.full(n, np.inf)
    bidx = np.full(n, _NO_BUCKET, dtype=np.int64)
    # checkpointed state for crash rollback under fault injection
    rt.register_window(dist_h, dist)
    rt.register_window("dmsssp.bidx", bidx)
    dist[source] = 0.0
    bidx[source] = 0
    owner = rt.part.owner(np.arange(n, dtype=np.int64))

    start_time = rt.time
    start_counters = rt.total_counters()
    epochs = 0
    inner_total = 0
    b = 0
    limit = max_epochs if max_epochs is not None else 4 * n + 16

    def _apply_relaxations(pairs: list[tuple[np.ndarray, np.ndarray]],
                           bucket: int) -> np.ndarray:
        """Min-combine candidate (target, value) pairs; return refills."""
        refills = []
        for tgt, val in pairs:
            if len(tgt) == 0:
                continue
            mem.read(dist_h, idx=tgt, mode="rand")
            improving = val < dist[tgt]
            t2, v2 = tgt[improving], val[improving]
            if len(t2) == 0:
                continue
            np.minimum.at(dist, t2, v2)
            mem.write(dist_h, idx=t2, mode="rand")
            changed = np.unique(t2)
            new_b = np.floor(dist[changed] / delta).astype(np.int64)
            bidx[changed] = new_b
            back = changed[new_b == bucket]
            if len(back):
                refills.append(back)
        return (np.unique(np.concatenate(refills))
                if refills else np.empty(0, dtype=np.int64))

    while epochs < limit:
        pending = bidx[bidx < _NO_BUCKET]
        pending = pending[pending >= b]
        if len(pending) == 0:
            break
        b = int(pending.min())
        epochs += 1
        active_mask = bidx == b

        while active_mask.any():
            inner_total += 1
            if variant == PUSH:
                # superstep 1: owners of active vertices batch candidates
                # per destination rank and send one message per rank pair
                local_pairs: dict[int, list] = {}

                def relax_out(p: int) -> None:
                    vs = rt.owned(p)
                    act = vs[active_mask[vs]]
                    if len(act) == 0:
                        return
                    batches: dict[int, list] = {}
                    for v in act:
                        o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                        nbrs = g.adj[o0:o1]
                        mem.read(off_h, idx=int(v), count=2, mode="rand")
                        mem.read(adj_h, start=o0, count=o1 - o0)
                        cand = dist[v] + weights[o0:o1]
                        mem.flop(o1 - o0)
                        for q in range(rt.P):
                            sel = owner[nbrs] == q
                            if not sel.any():
                                continue
                            batches.setdefault(q, []).append(
                                (nbrs[sel].astype(np.int64), cand[sel]))
                    for q, parts in batches.items():
                        tgt = np.concatenate([t for t, _ in parts])
                        val = np.concatenate([v for _, v in parts])
                        if q == p:
                            local_pairs.setdefault(p, []).append((tgt, val))
                        else:
                            rt.send(q, (tgt, val), nbytes=16 * len(tgt),
                                    tag="relax")

                rt.superstep(relax_out)

                # superstep 2: apply local + received candidates
                refill = np.zeros(n, dtype=bool)

                def apply_in(p: int) -> None:
                    pairs = list(local_pairs.get(p, []))
                    pairs.extend(payload for _, payload in rt.inbox("relax"))
                    back = _apply_relaxations(pairs, b)
                    refill[back] = True

                rt.superstep(apply_in)
                active_mask = refill

            else:  # PULL: request/reply per inner iteration
                # superstep 1: owners of unsettled vertices request the
                # state of remote neighbors

                def request_out(p: int) -> None:
                    vs = rt.owned(p)
                    mem.read(dist_h, count=len(vs), mode="seq")
                    unsettled = vs[dist[vs] > b * delta]
                    if len(unsettled) == 0:
                        return
                    pos = gather_edge_positions(g.offsets, unsettled)
                    nbrs = np.unique(g.adj[pos])
                    mem.read(off_h, idx=unsettled, count=len(unsettled) + 1,
                             mode="rand")
                    mem.read(adj_h, count=len(pos), mode="seq")
                    for q in range(rt.P):
                        if q == p:
                            continue
                        ask = nbrs[owner[nbrs] == q]
                        if len(ask):
                            # MPI-style tag: the reply superstep reads
                            # requests while replies are already in
                            # flight; the tag tells them apart (and the
                            # epoch checker relies on the distinction)
                            rt.send(q, (p, ask), nbytes=8 * len(ask),
                                    tag="req")

                rt.superstep(request_out)

                # superstep 2: owners reply with (dist, bucket) of the
                # requested vertices
                def reply(p: int) -> None:
                    for _, payload in rt.inbox("req"):
                        requester, ids = payload
                        mem.read(dist_h, idx=ids, mode="rand")
                        rt.send(requester, (ids, dist[ids].copy(),
                                            bidx[ids].copy()),
                                nbytes=24 * len(ids), tag="rep")

                rt.superstep(reply)

                # superstep 3: relax locally using replies + local state
                refill = np.zeros(n, dtype=bool)

                def relax_local(p: int) -> None:
                    remote_dist = {}
                    remote_b = {}
                    for _, payload in rt.inbox("rep"):
                        ids, ds, bs = payload
                        for i, dd, bb in zip(ids, ds, bs):
                            remote_dist[int(i)] = float(dd)
                            remote_b[int(i)] = int(bb)
                    vs = rt.owned(p)
                    unsettled = vs[dist[vs] > b * delta]
                    for v in unsettled:
                        o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                        nbrs = g.adj[o0:o1]
                        mem.read(off_h, idx=int(v), count=2, mode="rand")
                        mem.read(adj_h, start=o0, count=o1 - o0)
                        mem.branch_cond(o1 - o0)
                        best = dist[v]
                        for i, w in enumerate(nbrs):
                            w = int(w)
                            if owner[w] == p:
                                dw, bw = dist[w], bidx[w]
                                mem.read(dist_h, idx=w, mode="rand")
                            elif w in remote_dist:
                                dw, bw = remote_dist[w], remote_b[w]
                            else:
                                continue
                            if bw == b:
                                cand = dw + weights[o0 + i]
                                mem.flop(1)
                                if cand < best:
                                    best = cand
                        if best < dist[v]:
                            dist[v] = best
                            new_b = int(best // delta)
                            bidx[v] = new_b
                            mem.write(dist_h, idx=int(v), mode="rand")
                            if new_b == b:
                                refill[v] = True

                rt.superstep(relax_local)
                active_mask = refill

        b += 1

    c = rt.total_counters() - start_counters
    return DMSSSPResult(
        variant=variant,
        dist=dist,
        time=rt.time - start_time,
        counters=c,
        epochs=epochs,
        inner_iterations=inner_total,
        messages=c.messages,
    )
