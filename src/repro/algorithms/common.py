"""Shared plumbing for the instrumented algorithm implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.machine.memory import ArrayHandle, MemoryModel
from repro.runtime.sm import SMRuntime

PUSH = "push"
PULL = "pull"


def check_direction(direction: str, allowed: tuple[str, ...] = (PUSH, PULL)) -> str:
    if direction not in allowed:
        raise ValueError(f"direction must be one of {allowed}, got {direction!r}")
    return direction


@dataclass
class AlgoResult:
    """Base result: simulated-time and event accounting of one run."""

    direction: str
    time: float                       #: total simulated time (mtu)
    counters: PerfCounters            #: summed over threads
    iterations: int = 0
    iteration_times: list = field(default_factory=list)

    def events(self) -> dict:
        return self.counters.to_dict()


class GraphArrays:
    """Registered handles for a graph's CSR arrays (shared by all threads)."""

    def __init__(self, mem: MemoryModel, g: CSRGraph, prefix: str = "g") -> None:
        self.off: ArrayHandle = mem.register(f"{prefix}.offsets", g.offsets)
        self.adj: ArrayHandle = mem.register(f"{prefix}.adj", g.adj)
        self.wgt: ArrayHandle | None = (
            mem.register(f"{prefix}.weights", g.weights)
            if g.weights is not None else None
        )


def segment_sums(vals: np.ndarray, starts: np.ndarray, ends: np.ndarray
                 ) -> np.ndarray:
    """Per-segment sums of ``vals`` over contiguous [start, end) segments.

    Segments must tile ``vals`` in order (CSR row slices of a contiguous
    vertex block).  Empty segments sum to zero -- this wraps
    ``np.add.reduceat``, which would otherwise return the element *at*
    an empty segment's start.
    """
    k = len(starts)
    out = np.zeros(k, dtype=vals.dtype if vals.dtype.kind == "f" else np.float64)
    nonempty = ends > starts
    if vals.size and nonempty.any():
        out[nonempty] = np.add.reduceat(vals, starts[nonempty])
    return out


def segment_counts(flags: np.ndarray, starts: np.ndarray, ends: np.ndarray
                   ) -> np.ndarray:
    """Per-segment count of True flags (same tiling contract as above)."""
    k = len(starts)
    out = np.zeros(k, dtype=np.int64)
    nonempty = ends > starts
    if flags.size and nonempty.any():
        out[nonempty] = np.add.reduceat(flags.astype(np.int64), starts[nonempty])
    return out


def block_bounds(rt: SMRuntime, vs: np.ndarray, g: CSRGraph
                 ) -> tuple[int, int]:
    """CSR slice [lo, hi) covering a *contiguous* vertex block ``vs``."""
    if len(vs) == 0:
        return 0, 0
    return int(g.offsets[vs[0]]), int(g.offsets[vs[-1] + 1])


def gather_edge_positions(offsets: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Adjacency-array positions of all edges of an arbitrary vertex set.

    Vectorized equivalent of ``concatenate([arange(off[v], off[v+1])
    for v in vs])`` -- the gather every sparse-frontier loop needs.
    """
    vs = np.asarray(vs, dtype=np.int64)
    if len(vs) == 0:
        return np.empty(0, dtype=np.int64)
    counts = offsets[vs + 1] - offsets[vs]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    heads = np.repeat(offsets[vs] - np.r_[0, np.cumsum(counts)[:-1]], counts)
    return heads + np.arange(total, dtype=np.int64)
