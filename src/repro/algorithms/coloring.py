"""Push- and pull-based Boman Graph Coloring (Algorithm 6).

Each iteration has two phases:

1. ``seq_color_partition``: every thread first-fit colors the vertices
   of its partition that still need a color, respecting constraints
   from already-colored *local* neighbors plus the variant-specific
   remote-constraint source:

   * **push**: the vertex's row of the ``avail`` bitmap, which
     conflicting neighbors have been writing into (a compact C-cell
     sequential scan);
   * **pull**: the colors of all neighbors re-read from the snapshot of
     the previous iteration (d(v) random reads).

   Remote colors assigned *in the same iteration* are invisible
   (threads run concurrently), which is what creates conflicts.

2. ``fix_conflicts``: border vertices scan their cross-partition
   neighbors; for every conflicting pair the higher-id endpoint is
   scheduled for recoloring -- push writes the *remote* endpoint's
   avail row, pull marks the *own* vertex.  Both guard the marking with
   a lock, matching Table 1's identical lock counts for the two BGC
   variants; the read/miss asymmetry (pull touches more) comes from
   phase 1.

Iterations repeat until no conflicts remain (or ``max_iterations``).
The result is always a proper coloring (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class ColoringResult(AlgoResult):
    colors: np.ndarray = None
    n_colors: int = 0
    conflicts_per_iteration: list = field(default_factory=list)


class BGCState:
    """Shared machinery for plain BGC and the Section-5 strategies."""

    def __init__(self, g: CSRGraph, rt: SMRuntime, max_colors: int = 1024) -> None:
        self.g = g
        self.rt = rt
        mem = rt.mem
        self.mem = mem
        self.ga = GraphArrays(mem, g)
        self.C = max_colors
        self.colors = np.full(g.n, -1, dtype=np.int64)
        self.colors_prev = np.full(g.n, -1, dtype=np.int64)
        self.avail = np.ones((g.n, max_colors), dtype=bool)
        self.need = np.ones(g.n, dtype=bool)       # needs (re)coloring
        self.colors_h = mem.register("bgc.colors", self.colors)
        # the avail bitmap is bit-packed: rows of ceil(C/64) machine words
        self.row_words = (max_colors + 63) // 64
        self.avail_h = mem.register("bgc.avail", g.n * self.row_words, 8)
        self.need_h = mem.register("bgc.need", g.n, 1)
        self.owner_of = rt.part.owner(np.arange(g.n, dtype=np.int64))
        self.border = rt.part.border_vertices(g)
        self.border_mask = np.zeros(g.n, dtype=bool)
        self.border_mask[self.border] = True

    # -- phase 1 -------------------------------------------------------------
    def color_partitions(self, direction: str, only: np.ndarray | None = None
                         ) -> int:
        """First-fit color every vertex with ``need`` set; returns count."""
        g, rt, mem = self.g, self.rt, self.mem
        colors, avail, need = self.colors, self.avail, self.need
        colored = [0]

        def body(t: int, vs: np.ndarray) -> None:
            mem.read(self.need_h, start=int(vs[0]) if len(vs) else 0,
                     count=len(vs))
            mem.branch_cond(len(vs))
            todo = vs[need[vs]]
            if only is not None:
                todo = todo[np.isin(todo, only)]
            for v in todo:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                nbrs = g.adj[o0:o1]
                mem.read(self.ga.off, idx=int(v), count=2, mode="rand")
                mem.read(self.ga.adj, start=o0, count=o1 - o0)
                local = nbrs[self.owner_of[nbrs] == t]
                forbidden = np.zeros(self.C, dtype=bool)
                # constraints from already-colored local neighbors (live)
                mem.read(self.colors_h, idx=local, mode="rand")
                mem.branch_cond(len(local))
                lc = colors[local]
                forbidden[lc[lc >= 0]] = True
                if direction == PUSH:
                    # remote constraints were pushed into the avail row
                    # (a short scan of bit-packed words)
                    row = avail[v]
                    mem.read(self.avail_h, start=int(v) * self.row_words,
                             count=self.row_words)
                    forbidden |= ~row
                else:
                    # pull: re-read all remote neighbors' snapshot colors
                    remote = nbrs[self.owner_of[nbrs] != t]
                    mem.read(self.colors_h, idx=remote, mode="rand")
                    mem.branch_cond(len(remote))
                    rc = self.colors_prev[remote]
                    forbidden[rc[rc >= 0]] = True
                free = np.flatnonzero(~forbidden)
                if len(free) == 0:
                    raise RuntimeError(
                        f"max_colors={self.C} exhausted at vertex {v}")
                rt.owned_write_check(int(v))
                colors[v] = int(free[0])
                need[v] = False
                mem.write(self.colors_h, idx=int(v), mode="rand")
                mem.write(self.need_h, idx=int(v), mode="rand")
                colored[0] += 1

        rt.for_each_thread(body)
        return colored[0]

    # -- phase 2 -------------------------------------------------------------
    def fix_conflicts(self, direction: str) -> int:
        """Detect cross-partition conflicts; schedule the higher endpoint.

        Returns the number of conflicting pairs found.
        """
        g, rt, mem = self.g, self.rt, self.mem
        colors, avail, need = self.colors, self.avail, self.need
        found = [0]

        def body(t: int, vs: np.ndarray) -> None:
            for v in vs:
                o0, o1 = int(g.offsets[v]), int(g.offsets[v + 1])
                nbrs = g.adj[o0:o1]
                mem.read(self.ga.off, idx=int(v), count=2, mode="rand")
                mem.read(self.ga.adj, start=o0, count=o1 - o0)
                remote = nbrs[self.owner_of[nbrs] != t]
                if len(remote) == 0:
                    continue
                mem.read(self.colors_h, idx=int(v), mode="rand")
                mem.read(self.colors_h, idx=remote, mode="rand")
                mem.branch_cond(len(remote))
                conflict = remote[colors[remote] == colors[v]]
                if len(conflict) == 0:
                    continue
                cv = int(colors[v])
                if direction == PUSH:
                    # the higher-id remote endpoints are re-scheduled by v
                    tgt = conflict[conflict > v]
                    found[0] += len(tgt)
                    if len(tgt):
                        words = tgt * self.row_words + cv // 64
                        # one critical section per re-scheduled vertex:
                        # clears its avail bit and raises its need flag
                        mem.lock(self.avail_h, idx=words, mode="rand",
                                 covers=[(self.need_h, tgt)])
                        mem.write(self.avail_h, idx=words, mode="rand")
                        mem.write(self.need_h, idx=tgt, mode="rand")
                        avail[tgt, cv] = False
                        need[tgt] = True
                else:
                    # v re-schedules itself iff it is the higher endpoint
                    lower = conflict[conflict < v]
                    found[0] += len(lower)
                    if len(lower):
                        rt.owned_write_check(int(v))
                        mem.lock(self.colors_h, idx=int(v), count=len(lower),
                                 mode="rand")
                        mem.write(self.need_h, idx=int(v), mode="rand")
                        need[v] = True

        rt.parallel_for(self.border, body, by_owner=True)
        return found[0]

    def snapshot(self) -> None:
        self.colors_prev[:] = self.colors


def boman_coloring(g: CSRGraph, rt: SMRuntime, direction: str = PUSH,
                   max_colors: int = 1024, max_iterations: int = 256
                   ) -> ColoringResult:
    """Run plain BGC until conflict-free (or the iteration cap)."""
    check_direction(direction)
    state = BGCState(g, rt, max_colors)
    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []
    conflicts: list[int] = []
    it = 0
    while it < max_iterations:
        it += 1
        t0 = rt.time
        state.color_partitions(direction)
        state.snapshot()
        n_conf = state.fix_conflicts(direction)
        iteration_times.append(rt.time - t0)
        conflicts.append(n_conf)
        if n_conf == 0:
            break
    return ColoringResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=it,
        iteration_times=iteration_times,
        colors=state.colors,
        n_colors=int(state.colors.max()) + 1 if g.n else 0,
        conflicts_per_iteration=conflicts,
    )
