"""Distributed-memory PageRank (Section 6.3.1): RMA push, RMA pull, MP.

* **RMA push**: each process relaxes its owned vertices' edges; updates
  to remote accumulators go through ``MPI_Accumulate`` on *floats* --
  the lock-protocol slow path (one ``remote_acc_float`` per remote edge
  entry).  The paper measures this as the slowest variant.
* **RMA pull**: each process fetches the rank *and* degree of every
  remote neighbor with ``MPI_Get``s -- two remote gets per remote edge
  entry, no atomics.
* **MP (Alltoallv)**: each process aggregates the contributions its
  block sends to every other block into per-destination vectors and
  exchanges them with one ``MPI_Alltoallv`` per iteration -- the hybrid
  the paper notes "combines pushing and pulling" and measures >10x
  faster than RMA, at the cost of O(n·d̂/P) send/receive buffers.

All three compute identical ranks (validated against the sequential
reference); the differences are purely in the communication events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.machine.counters import PerfCounters
from repro.runtime.dm import DMRuntime

RMA_PUSH = "rma-push"
RMA_PULL = "rma-pull"
MP = "mp"

_VARIANTS = (RMA_PUSH, RMA_PULL, MP)


@dataclass
class DMPageRankResult:
    variant: str
    ranks: np.ndarray
    time: float
    counters: PerfCounters
    iterations: int
    iteration_times: list = field(default_factory=list)
    #: per-process peak auxiliary buffer cells (the memory-consumption
    #: comparison of Section 6.3.1: O(1) for RMA, O(n·d̂/P) for MP)
    peak_buffer_cells: int = 0


def dm_pagerank(g: CSRGraph, rt: DMRuntime, variant: str = MP,
                iterations: int = 20, damping: float = 0.85
                ) -> DMPageRankResult:
    """Run one of the three DM PageRank variants on the simulated machine."""
    if variant not in _VARIANTS:
        raise ValueError(f"variant must be one of {_VARIANTS}")
    n = g.n
    P = rt.P
    mem = rt.mem
    off_h = mem.register("dmpr.offsets", g.offsets)
    adj_h = mem.register("dmpr.adj", g.adj)
    rank_h = mem.register("dmpr.rank", n, 8)
    acc_h = mem.register("dmpr.acc", n, 8)
    deg = np.diff(g.offsets).astype(np.float64)
    inv_deg = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    rank = np.full(n, 1.0 / max(n, 1))
    acc = np.zeros(n)
    base = (1.0 - damping) / max(n, 1)
    # window registry: data-carrying accumulates target acc; both arrays
    # are checkpointed for crash rollback under fault injection
    rt.register_window(acc_h, acc)
    rt.register_window(rank_h, rank)

    owner = rt.part.owner(np.arange(n, dtype=np.int64))
    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []
    peak_buffer = 0

    for _ in range(iterations):
        t0 = rt.time
        acc[:] = 0.0

        if variant == MP:
            # one contribution vector per destination process
            contributions: list[list] = [[None] * P for _ in range(P)]

            def compute(p: int) -> None:
                vs = rt.owned(p)
                if len(vs) == 0:
                    return
                lo, hi = int(g.offsets[vs[0]]), int(g.offsets[vs[-1] + 1])
                nbrs = g.adj[lo:hi]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(off_h, start=int(vs[0]), count=len(vs) + 1)
                mem.read(adj_h, start=lo, count=hi - lo)
                mem.read(rank_h, start=int(vs[0]), count=len(vs))
                vals = rank[srcs] * inv_deg[srcs]
                mem.flop(hi - lo)
                # aggregate per destination: combine same-target updates
                for q in range(P):
                    sel = owner[nbrs] == q
                    if not sel.any():
                        contributions[p][q] = (np.empty(0, dtype=np.int64),
                                               np.empty(0))
                        continue
                    tgt = nbrs[sel].astype(np.int64)
                    uv = np.zeros(n)
                    np.add.at(uv, tgt, vals[sel])
                    uniq = np.unique(tgt)
                    mem.read(acc_h, idx=uniq, mode="rand")
                    mem.write(acc_h, idx=uniq, mode="rand")
                    contributions[p][q] = (uniq, uv[uniq])

            rt.annotate("pr.mp-compute")
            rt.superstep(compute)
            received = rt.alltoallv(contributions)
            buf = max(
                sum(len(pair[0]) for pair in row if pair is not None)
                for row in received
            )
            peak_buffer = max(peak_buffer, 2 * buf)

            def apply(p: int) -> None:
                for pair in received[p]:
                    if pair is None:
                        continue
                    idx, vals = pair
                    if len(idx) == 0:
                        continue
                    mem.read(acc_h, idx=idx, mode="rand")
                    mem.write(acc_h, idx=idx, mode="rand")
                    np.add.at(acc, idx, vals)
                    mem.flop(len(idx))

            rt.annotate("pr.mp-apply")
            rt.superstep(apply)

        elif variant == RMA_PUSH:
            def compute(p: int) -> None:
                vs = rt.owned(p)
                if len(vs) == 0:
                    return
                lo, hi = int(g.offsets[vs[0]]), int(g.offsets[vs[-1] + 1])
                nbrs = g.adj[lo:hi]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(off_h, start=int(vs[0]), count=len(vs) + 1)
                mem.read(adj_h, start=lo, count=hi - lo)
                mem.read(rank_h, start=int(vs[0]), count=len(vs))
                vals = rank[srcs] * inv_deg[srcs]
                mem.flop(hi - lo)
                tgt_owner = owner[nbrs]
                local = tgt_owner == p
                lidx = nbrs[local].astype(np.int64)
                if len(lidx):
                    # local updates take the same accumulate primitive
                    # as remote ones (a CAS loop per entry): remote
                    # processes accumulate into this block in the same
                    # epoch, so plain read-modify-writes here would
                    # race them (the epoch checker's write-vs-acc rule)
                    rt.accumulate(p, vals[local], window=acc_h, idx=lidx,
                                  dtype="float")
                # float accumulate per remote edge entry (the slow
                # path); data is staged and lands at the flush below
                for q in range(P):
                    if q == p:
                        continue
                    sel = tgt_owner == q
                    k = int(sel.sum())
                    if k == 0:
                        continue
                    rt.accumulate(q, vals[sel], window=acc_h,
                                  idx=nbrs[sel].astype(np.int64),
                                  dtype="float")
                rt.rma_flush()

            rt.annotate("pr.rma-push")
            rt.superstep(compute)

        else:  # RMA_PULL
            def compute(p: int) -> None:
                vs = rt.owned(p)
                if len(vs) == 0:
                    return
                lo, hi = int(g.offsets[vs[0]]), int(g.offsets[vs[-1] + 1])
                nbrs = g.adj[lo:hi]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(off_h, start=int(vs[0]), count=len(vs) + 1)
                mem.read(adj_h, start=lo, count=hi - lo)
                tgt_owner = owner[nbrs]
                remote = tgt_owner != p
                # remote neighbors: get the rank AND the degree (2 gets each)
                for q in range(P):
                    if q == p:
                        continue
                    sel = tgt_owner == q
                    k = int(sel.sum())
                    if k:
                        rt.rma_get(q, 2 * k, ops=2 * k, window=rank_h,
                                   idx=nbrs[sel].astype(np.int64))
                k_local = int((~remote).sum())
                if k_local:
                    mem.read(rank_h, count=k_local, mode="rand")
                vals = rank[nbrs] * inv_deg[nbrs]
                mem.flop(2 * len(nbrs))
                sums = np.zeros(n)
                np.add.at(sums, srcs, vals)
                acc[vs] = sums[vs]
                mem.write(acc_h, start=int(vs[0]), count=len(vs))
                rt.rma_flush()

            rt.annotate("pr.rma-pull")
            rt.superstep(compute)

        # finalize (always local)
        def finalize(p: int) -> None:
            vs = rt.owned(p)
            if len(vs) == 0:
                return
            mem.read(acc_h, start=int(vs[0]), count=len(vs))
            rank[vs] = base + damping * acc[vs]
            mem.write(rank_h, start=int(vs[0]), count=len(vs))
            mem.flop(2 * len(vs))

        rt.annotate("pr.finalize")
        rt.superstep(finalize)
        iteration_times.append(rt.time - t0)

    return DMPageRankResult(
        variant=variant,
        ranks=rank,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=iterations,
        iteration_times=iteration_times,
        peak_buffer_cells=peak_buffer if variant == MP else 1,
    )
