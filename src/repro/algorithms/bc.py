"""Push- and pull-based Betweenness Centrality (Brandes; Algorithm 5).

Two phases per source vertex (both instances of the generalized BFS of
Algorithm 3):

* **forward**: level-synchronized BFS counting shortest paths
  (``sigma``).  Pushing accumulates ``sigma[v]`` into successors --
  remote *float* adds, hence locks; pulling has every newly-reached
  vertex sum its parents' sigmas locally.
* **backward**: dependency accumulation from the deepest level upward,
  ``delta[v] += sigma[v]/sigma[w] * (1 + delta[w])`` over tree edges.
  Pushing writes predecessors' float deltas under locks; pulling walks
  *successor* sets (the Madduri et al. [39] inversion the paper cites)
  and only writes locally.

Section 4.9's conclusion -- the push/pull difference in BC is the
*type* of conflict (float locks vs. integer/no atomics) -- is directly
visible in the counter output.

Sources may be sampled (``sources=k`` or an explicit list); the
approximation follows Bader et al. [2], and the exact variant is used
for oracle comparisons in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction, gather_edge_positions,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class BCResult(AlgoResult):
    bc: np.ndarray = None
    forward_time: float = 0.0     #: simulated time of all forward sweeps
    backward_time: float = 0.0    #: simulated time of all backward sweeps
    n_sources: int = 0


def betweenness_centrality(g: CSRGraph, rt: SMRuntime, direction: str = PULL,
                           sources=None, seed: int = 0) -> BCResult:
    """Brandes BC on the simulated runtime.

    ``sources``: None = all vertices (exact); an int = that many
    sampled sources; an iterable = explicit source list.
    """
    check_direction(direction)
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    if sources is None:
        src_list = np.arange(n)
    elif np.isscalar(sources):
        rng = np.random.default_rng(seed)
        src_list = rng.choice(n, size=min(int(sources), n), replace=False)
    else:
        src_list = np.asarray(list(sources), dtype=np.int64)

    bc = np.zeros(n)
    sigma = np.zeros(n)
    delta = np.zeros(n)
    level = np.full(n, -1, dtype=np.int64)
    bc_h = mem.register("bc.bc", bc)
    sigma_h = mem.register("bc.sigma", sigma)
    delta_h = mem.register("bc.delta", delta)
    level_h = mem.register("bc.level", level)

    start_time = rt.time
    start_counters = rt.total_counters()
    fwd_time = 0.0
    bwd_time = 0.0

    for s in src_list:
        sigma[:] = 0.0
        delta[:] = 0.0
        level[:] = -1
        sigma[s] = 1.0
        level[s] = 0

        t0 = rt.time
        levels = _forward(g, rt, mem, ga, int(s), sigma, level, sigma_h,
                          level_h, direction)
        fwd_time += rt.time - t0

        t0 = rt.time
        _backward(g, rt, mem, ga, sigma, delta, level, levels, sigma_h,
                  delta_h, level_h, direction)
        bwd_time += rt.time - t0

        # accumulate bc += delta on owned blocks (always local)
        def acc_body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                return
            mask = (level[vs] > 0)
            bc[vs[mask]] += delta[vs[mask]]
            mem.read(delta_h, start=int(vs[0]), count=len(vs))
            mem.read(bc_h, start=int(vs[0]), count=len(vs))
            mem.write(bc_h, start=int(vs[0]), count=len(vs))
            mem.flop(len(vs))

        rt.for_each_thread(acc_body)

    if not g.directed:
        bc /= 2.0

    return BCResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=len(src_list),
        bc=bc,
        forward_time=fwd_time,
        backward_time=bwd_time,
        n_sources=len(src_list),
    )


def _forward(g, rt, mem, ga, s: int, sigma, level, sigma_h, level_h,
             direction: str) -> int:
    """Level-synchronized sigma-counting BFS; returns the deepest level."""
    frontier = np.array([s], dtype=np.int64)
    cur = 0
    while len(frontier):
        nxt_frags: list[np.ndarray] = []
        if direction == PUSH:
            def body(t: int, vs: np.ndarray) -> None:
                pos = gather_edge_positions(g.offsets, vs)
                if len(vs):
                    mem.read(ga.off, idx=vs, count=len(vs) + 1, mode="rand")
                    mem.read(sigma_h, idx=vs, mode="rand")
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(level_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                fresh_mask = level[nbrs] < 0
                fresh = np.unique(nbrs[fresh_mask])
                if len(fresh):
                    # claim with integer CAS
                    mem.cas(level_h, idx=nbrs[fresh_mask], successes=len(fresh),
                            mode="rand")
                    level[fresh] = cur + 1
                    nxt_frags.append(fresh)
                tree = level[nbrs] == cur + 1
                if tree.any():
                    # float accumulation into successors: lock per edge
                    tgt = nbrs[tree]
                    mem.lock(sigma_h, idx=tgt, mode="rand")
                    mem.write(sigma_h, idx=tgt, mode="rand")
                    np.add.at(sigma, tgt, sigma[srcs[tree]])
                    mem.flop(int(tree.sum()))

            rt.parallel_for(frontier, body, by_owner=True)
        else:
            def body(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(level_h, start=int(vs[0]), count=len(vs))
                mem.branch_cond(len(vs))
                unvisited = vs[level[vs] < 0]
                pos = gather_edge_positions(g.offsets, unvisited)
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                owners = np.repeat(unvisited,
                                   g.offsets[unvisited + 1] - g.offsets[unvisited])
                mem.read(ga.off, idx=unvisited, count=len(unvisited) + 1,
                         mode="rand")
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(level_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                parent_mask = level[nbrs] == cur
                if not parent_mask.any():
                    return
                mem.read(sigma_h, idx=nbrs[parent_mask], mode="rand")
                contrib = np.zeros(g.n)
                np.add.at(contrib, owners[parent_mask], sigma[nbrs[parent_mask]])
                reached = np.unique(owners[parent_mask])
                rt.owned_write_check(reached)
                level[reached] = cur + 1
                sigma[reached] = contrib[reached]
                mem.write(level_h, idx=reached, mode="rand")
                mem.write(sigma_h, idx=reached, mode="rand")
                mem.flop(int(parent_mask.sum()))
                nxt_frags.append(reached)

            rt.for_each_thread(body)
        frontier = (np.unique(np.concatenate(nxt_frags))
                    if nxt_frags else np.empty(0, dtype=np.int64))
        cur += 1
    return cur - 1


def _backward(g, rt, mem, ga, sigma, delta, level, max_level: int,
              sigma_h, delta_h, level_h, direction: str) -> None:
    """Dependency accumulation from the deepest level up."""
    # vertices grouped by level once (the tree structure is known)
    for lev in range(max_level, 0, -1):
        if direction == PUSH:
            layer = np.flatnonzero(level == lev)

            def body(t: int, vs: np.ndarray) -> None:
                pos = gather_edge_positions(g.offsets, vs)
                if len(vs):
                    mem.read(ga.off, idx=vs, count=len(vs) + 1, mode="rand")
                    mem.read(sigma_h, idx=vs, mode="rand")
                    mem.read(delta_h, idx=vs, mode="rand")
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(level_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                pred = level[nbrs] == lev - 1
                if not pred.any():
                    return
                tgt, ws = nbrs[pred], srcs[pred]
                mem.read(sigma_h, idx=tgt, mode="rand")
                vals = sigma[tgt] / sigma[ws] * (1.0 + delta[ws])
                # remote float adds: one lock per tree edge
                mem.lock(delta_h, idx=tgt, mode="rand")
                mem.write(delta_h, idx=tgt, mode="rand")
                np.add.at(delta, tgt, vals)
                mem.flop(3 * int(pred.sum()))

            rt.parallel_for(layer, body, by_owner=True)
        else:
            layer = np.flatnonzero(level == lev - 1)

            def body(t: int, vs: np.ndarray) -> None:
                mine = vs[level[vs] == lev - 1] if len(vs) else vs
                pos = gather_edge_positions(g.offsets, mine)
                if len(mine):
                    mem.read(level_h, start=int(vs[0]), count=len(vs))
                    mem.read(ga.off, idx=mine, count=len(mine) + 1, mode="rand")
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                owners = np.repeat(mine, g.offsets[mine + 1] - g.offsets[mine])
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(level_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                succ = level[nbrs] == lev
                if not succ.any():
                    return
                u = nbrs[succ]
                mem.read(sigma_h, idx=u, mode="rand")
                mem.read(delta_h, idx=u, mode="rand")
                ratios = (1.0 + delta[u]) / sigma[u]
                acc = np.zeros(g.n)
                np.add.at(acc, owners[succ], ratios)
                touched = np.unique(owners[succ])
                rt.owned_write_check(touched)
                delta[touched] += sigma[touched] * acc[touched]
                mem.write(delta_h, idx=touched, mode="rand")
                mem.flop(3 * int(succ.sum()))

            # only threads owning level-(lev-1) vertices do work, but the
            # pull sweep still runs owner-computes over all blocks
            rt.parallel_for(layer, body, by_owner=True)
