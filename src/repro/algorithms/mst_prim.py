"""Push- and pull-based Prim MST (the Section-3.7 technical-report extension).

The paper focuses on Borůvka because "the classical sequential
algorithms Prim and Kruskal lack parallelism", deferring their push/pull
treatment to the technical report.  Prim's parallelizable piece is the
*key update* after a vertex u joins the tree, and it exhibits exactly
the dichotomy:

* **push**: u's owner walks N(u) and lowers the keys of non-tree
  neighbors -- remote (key, parent) writes, one CAS-min per improving
  edge, O(d(u)) work per round;
* **pull**: every non-tree vertex checks *itself* whether u is among
  its neighbors (one binary search in its own sorted list) and lowers
  its own key locally -- zero conflicts but Θ(remaining) probes per
  round, the familiar read-heavy pull profile.

The minimum-key selection per round is a parallel reduction over owned
blocks in both variants.  Per-component restarts make the result a
minimum spanning forest, validated against Kruskal/networkx.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class PrimResult(AlgoResult):
    edges: list = field(default_factory=list)
    total_weight: float = 0.0
    rounds: int = 0


def prim_mst(g: CSRGraph, rt: SMRuntime, direction: str = PUSH) -> PrimResult:
    """Minimum spanning forest via Prim with push/pull key updates."""
    check_direction(direction)
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    weights = g.weights if g.weights is not None else np.ones(len(g.adj))
    wgt_h = ga.wgt or mem.register("prim.unit_weights", weights)

    key = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    key_h = mem.register("prim.key", key)
    par_h = mem.register("prim.parent", parent)
    tree_h = mem.register("prim.in_tree", n, 1)

    start_time = rt.time
    start_counters = rt.total_counters()
    edges: list[tuple[int, int]] = []
    total_weight = 0.0
    rounds = 0

    # deterministic per-component restarts: lowest-id unreached vertex
    next_root = 0
    best_per_thread = np.full((rt.P, 2), np.inf)  # (key, vertex)

    while True:
        # ---- select the minimum-key non-tree vertex (parallel reduction)
        def select_body(t: int, vs: np.ndarray) -> None:
            if len(vs) == 0:
                best_per_thread[t] = (np.inf, np.inf)
                return
            mem.read(tree_h, start=int(vs[0]), count=len(vs))
            mem.read(key_h, start=int(vs[0]), count=len(vs))
            mem.branch_cond(len(vs))
            cand = vs[~in_tree[vs]]
            if len(cand) == 0 or not np.isfinite(key[cand]).any():
                best_per_thread[t] = (np.inf, np.inf)
                return
            i = int(np.argmin(key[cand]))
            best_per_thread[t] = (key[cand[i]], cand[i])

        rt.for_each_thread(select_body)
        t_best = int(np.argmin(best_per_thread[:, 0]))
        if np.isinf(best_per_thread[t_best, 0]):
            # no fringe vertex: start a new component (or finish)
            while next_root < n and in_tree[next_root]:
                next_root += 1
            if next_root >= n:
                break
            u = next_root
            key[u] = 0.0
        else:
            u = int(best_per_thread[t_best, 1])
            edges.append((min(u, int(parent[u])), max(u, int(parent[u]))))
            total_weight += float(key[u])
        # master-step tree marking runs as a traced sequential region:
        # outside one, the store would be invisible to checkpoint
        # rollback and counter reconciliation (ANL006)
        def mark_root(u: int = u) -> None:
            in_tree[u] = True
            mem.write(tree_h, idx=u, mode="rand")

        rt.sequential(mark_root)
        rounds += 1

        # ---- key update ------------------------------------------------------
        o0, o1 = int(g.offsets[u]), int(g.offsets[u + 1])
        nbrs = g.adj[o0:o1]
        wts = weights[o0:o1]
        if direction == PUSH:
            def update_body(t: int, chunk: np.ndarray) -> None:
                # chunk indexes into u's neighbor list ([in par] over N(u))
                if len(chunk) == 0:
                    return
                mem.read(ga.adj, start=o0 + int(chunk[0]), count=len(chunk))
                mem.read(wgt_h, start=o0 + int(chunk[0]), count=len(chunk))
                ws = nbrs[chunk]
                mem.read(tree_h, idx=ws, mode="rand")
                mem.read(key_h, idx=ws, mode="rand")
                mem.branch_cond(len(chunk))
                improving = (~in_tree[ws]) & (wts[chunk] < key[ws])
                tgt = ws[improving]
                if len(tgt) == 0:
                    return
                # remote (key, parent) update: CAS-min per improving edge.
                # Each neighbor w appears once in N(u) and the chunks
                # partition N(u), so parent writers never collide.
                # effects: disjoint-writers prim.parent
                mem.cas(key_h, idx=tgt, mode="rand")
                mem.write(par_h, idx=tgt, mode="rand")
                np.minimum.at(key, tgt, wts[chunk][improving])
                changed = wts[chunk][improving] <= key[tgt]
                parent[tgt[changed]] = u

            rt.parallel_for(np.arange(len(nbrs)), update_body)
            mem.read(ga.off, idx=u, count=2, mode="rand")
        else:
            def update_body(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(tree_h, start=int(vs[0]), count=len(vs))
                mem.branch_cond(len(vs))
                fringe = vs[~in_tree[vs]]
                for v in fringe:
                    vo0, vo1 = int(g.offsets[v]), int(g.offsets[v + 1])
                    dv = vo1 - vo0
                    mem.read(ga.off, idx=int(v), count=2, mode="rand")
                    if dv == 0:
                        continue
                    # binary search for u in the own sorted neighbor list
                    probes = max(1, int(np.log2(max(dv, 2))))
                    mem.read(ga.adj, count=probes, mode="rand",
                             start=vo0)
                    mem.branch_cond(probes)
                    i = int(np.searchsorted(g.adj[vo0:vo1], u))
                    if i >= dv or g.adj[vo0 + i] != u:
                        continue
                    w = float(weights[vo0 + i])
                    mem.read(wgt_h, idx=vo0 + i, mode="rand")
                    if w < key[v]:
                        rt.owned_write_check(int(v))
                        key[v] = w
                        parent[v] = u
                        mem.write(key_h, idx=int(v), mode="rand")
                        mem.write(par_h, idx=int(v), mode="rand")

            rt.for_each_thread(update_body)

    return PrimResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=rounds,
        edges=sorted(edges),
        total_weight=total_weight,
        rounds=rounds,
    )
