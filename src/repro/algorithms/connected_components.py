"""Push- and pull-based Connected Components (label propagation).

Section 4.7 notes that dedicated PRAM connectivity algorithms
(Awerbuch–Shiloach [1]) beat Borůvka's bounds; label propagation is the
practical workhorse that exhibits the push/pull dichotomy cleanly, so
we include it as the connectivity substrate:

* every vertex carries a component label (initially its own id);
* **push**: vertices whose label changed last round write
  ``min(label)`` into their neighbors -- remote combining writes, one
  CAS-min per improving edge, but only the *changed frontier* does work
  (the push advantage of Section 3.8);
* **pull**: every still-active vertex recomputes its label as the min
  over its neighborhood -- local writes only, but full rescans per
  round.

Labels converge to the component minimum; the round count is bounded by
the largest component diameter.  An optional pointer-jumping shortcut
(the Shiloach–Vishkin ingredient) collapses label chains in O(log n)
extra rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction,
    gather_edge_positions,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime


@dataclass
class CCResult(AlgoResult):
    labels: np.ndarray = None     #: component label per vertex (= min member id)
    n_components: int = 0
    rounds: int = 0


def connected_components(g: CSRGraph, rt: SMRuntime, direction: str = PUSH,
                         pointer_jumping: bool = False,
                         max_rounds: int | None = None) -> CCResult:
    """Label-propagation connected components on the simulated runtime.

    ``pointer_jumping=True`` adds a label-shortcut pass per round
    (labels chase their own labels), which collapses long chains and
    cuts the round count on high-diameter graphs at the cost of extra
    reads -- ablated in the test suite.
    """
    check_direction(direction)
    if g.directed:
        raise ValueError("connected components is defined on undirected graphs")
    mem = rt.mem
    ga = GraphArrays(mem, g)
    n = g.n
    labels = np.arange(n, dtype=np.int64)
    label_h = mem.register("cc.labels", labels)
    active_h = mem.register("cc.active", n, 1)

    start_time = rt.time
    start_counters = rt.total_counters()
    iteration_times: list[float] = []

    active = np.arange(n, dtype=np.int64)   # changed last round
    active_mask = np.ones(n, dtype=bool)
    rounds = 0
    limit = max_rounds if max_rounds is not None else 2 * n + 16

    while len(active) and rounds < limit:
        rounds += 1
        t0 = rt.time
        changed_frags: list[np.ndarray] = []

        if direction == PUSH:
            rt.annotate("cc.push")

            def body(t: int, vs: np.ndarray) -> None:
                pos = gather_edge_positions(g.offsets, vs)
                if len(vs):
                    mem.read(ga.off, idx=vs, count=len(vs) + 1, mode="rand")
                    mem.read(label_h, idx=vs, mode="rand")
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                srcs = np.repeat(vs, g.offsets[vs + 1] - g.offsets[vs])
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(label_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                vals = labels[srcs]
                improving = vals < labels[nbrs]
                tgt = nbrs[improving].astype(np.int64)
                if len(tgt) == 0:
                    return
                # CAS-min per improving edge (remote combining write);
                # one array, contiguous issue -> batched-atomic stream
                mem.cas(label_h, idx=tgt, mode="rand", batched=True)
                before = labels[tgt].copy()
                np.minimum.at(labels, tgt, vals[improving])
                moved = np.unique(tgt[labels[tgt] < before])
                if len(moved):
                    changed_frags.append(moved)

            rt.parallel_for(active, body, by_owner=True)
        else:
            rt.annotate("cc.pull")

            def body(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(active_h, start=int(vs[0]), count=len(vs))
                mem.branch_cond(len(vs))
                # rescan: any vertex adjacent to a changed vertex may move;
                # the conservative pull sweep checks every owned vertex
                pos = gather_edge_positions(g.offsets, vs)
                if len(pos) == 0:
                    return
                nbrs = g.adj[pos]
                mem.read(ga.off, start=int(vs[0]), count=len(vs) + 1)
                mem.read(ga.adj, count=len(nbrs), mode="seq")
                mem.read(label_h, idx=nbrs, mode="rand")
                mem.branch_cond(len(nbrs))
                # per-vertex min over the neighborhood (vectorized segments)
                lo = int(g.offsets[vs[0]])
                starts = (g.offsets[vs] - lo).astype(np.int64)
                ends = (g.offsets[vs + 1] - lo).astype(np.int64)
                nbr_labels = labels[nbrs]
                out = labels[vs].copy()
                nonempty = ends > starts
                if nonempty.any():
                    mins_arr = np.minimum.reduceat(nbr_labels,
                                                   starts[nonempty])
                    out[nonempty] = np.minimum(out[nonempty], mins_arr)
                rt.owned_write_check(vs)
                moved = vs[out < labels[vs]]
                labels[vs] = out
                mem.write(label_h, start=int(vs[0]), count=len(vs))
                if len(moved):
                    changed_frags.append(moved)

            rt.for_each_thread(body)

        if pointer_jumping:
            rt.annotate("cc.jump")

            def jump(t: int, vs: np.ndarray) -> None:
                if len(vs) == 0:
                    return
                mem.read(label_h, start=int(vs[0]), count=len(vs))
                mem.read(label_h, idx=labels[vs], mode="rand")
                shorter = labels[labels[vs]]
                moved = vs[shorter < labels[vs]]
                rt.owned_write_check(vs)
                labels[vs] = shorter
                mem.write(label_h, start=int(vs[0]), count=len(vs))
                if len(moved):
                    changed_frags.append(moved)

            rt.for_each_thread(jump)

        active = (np.unique(np.concatenate(changed_frags))
                  if changed_frags else np.empty(0, dtype=np.int64))
        # push processes only the changed frontier next round; pull's
        # sweep is global but terminates on quiescence
        active_mask[:] = False
        active_mask[active] = True

        # the frontier bitmap write used to happen outside any region,
        # invisible to the tracer (and unattributable in reconcile);
        # run it as an annotated sequential phase instead
        def frontier_write() -> None:
            mem.write(active_h, idx=active, mode="rand")

        rt.annotate("cc.frontier")
        rt.sequential(frontier_write)
        iteration_times.append(rt.time - t0)

    return CCResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=rounds,
        iteration_times=iteration_times,
        labels=labels,
        n_components=len(np.unique(labels)),
        rounds=rounds,
    )
