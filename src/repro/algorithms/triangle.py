"""Push- and pull-based Triangle Counting (Algorithm 2, NodeIterator).

For every vertex v and neighbor u, the common neighborhood
``N(v) ∩ N(u)`` (excluding v, u) is computed; each element witnesses a
triangle.  The directions differ only in where the witness count is
written:

* **pull**: t[v] accumulates into its own ``tc[v]`` -- plain local
  read-modify-write, zero atomics.
* **push**: t[v] increments ``tc[u]`` -- one fetch-and-add per witness
  (integer targets, so FAA applies; Section 4.2 and the TC columns of
  Table 1 show exactly this asymmetry: both directions read O(m·d̂),
  only push issues atomics).

Both conventions count every triangle twice per corner, so the final
per-vertex counts are halved; correctness is checked against the
sequential NodeIterator and networkx in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    PULL, PUSH, AlgoResult, GraphArrays, check_direction,
)
from repro.graph.csr import CSRGraph
from repro.runtime.sm import SMRuntime

PUSH_PA = "push-pa"


@dataclass
class TriangleCountResult(AlgoResult):
    per_vertex: np.ndarray = None     #: triangles each vertex belongs to

    @property
    def total(self) -> int:
        """Total distinct triangles in the graph."""
        return int(self.per_vertex.sum()) // 3


def _read_neighbor_list(mem, adj_h, start: int, count: int) -> None:
    """Account a scan of one vertex's neighbor list reached by indirection.

    The first element lands on an unpredictable line (random access into
    the 2m-entry adjacency array); the rest stream sequentially.
    """
    if count <= 0:
        return
    mem.read(adj_h, idx=int(start), mode="rand")
    if count > 1:
        mem.read(adj_h, start=start + 1, count=count - 1, mode="seq")


def triangle_count(g: CSRGraph, rt: SMRuntime, direction: str = PULL
                   ) -> TriangleCountResult:
    """Count triangles per vertex on the simulated SM runtime.

    ``direction="push-pa"`` applies Partition-Awareness (Section 5):
    increments whose target is owned by the executing thread become
    plain read-modify-writes; only cross-partition targets pay the FAA.
    """
    check_direction(direction, (PUSH, PULL, PUSH_PA))
    mem = rt.mem
    ga = GraphArrays(mem, g)
    tc = np.zeros(g.n, dtype=np.int64)
    tc_h = mem.register("tc.count", tc)
    offsets = g.offsets
    adj = g.adj

    start_time = rt.time
    start_counters = rt.total_counters()
    # PUSH_PA: cross-partition witnesses buffered per thread, replayed
    # in a second phase (same two-phase shape as PageRank-PA)
    remote_buf: list[list] = [[] for _ in range(rt.P)]

    def body(t: int, vs: np.ndarray) -> None:
        for v in vs:
            o0, o1 = int(offsets[v]), int(offsets[v + 1])
            dv = o1 - o0
            mem.read(ga.off, start=v, count=2)
            if dv == 0:
                continue
            nv = adj[o0:o1]
            _read_neighbor_list(mem, ga.adj, o0, dv)
            local_sum = 0
            for u in nv:
                u = int(u)
                uo0, uo1 = int(offsets[u]), int(offsets[u + 1])
                du = uo1 - uo0
                mem.read(ga.off, idx=u, count=2, mode="rand")
                if du == 0:
                    continue
                nu = adj[uo0:uo1]
                _read_neighbor_list(mem, ga.adj, uo0, du)
                # sorted intersection |N(v) ∩ N(u)| excluding v, u: binary
                # search of each nu element into nv -- per element, ~log2(dv)
                # probes of nv (reads) and as many compare branches
                probes = max(1, int(np.log2(max(dv, 2))))
                pos = np.searchsorted(nv, nu)
                pos[pos >= dv] = dv - 1
                hits = nv[pos] == nu
                mem.read(ga.adj, count=du * probes, mode="cached")
                mem.branch_cond(du * probes)
                common = int(hits.sum())
                # v in N(u) and u in N(v) always intersect; never triangles
                if common:
                    matched = nu[hits]
                    common -= int(np.count_nonzero((matched == v) | (matched == u)))
                if common == 0:
                    continue
                if direction == PUSH:
                    # one FAA per witnessed triangle corner, on t[u]'s counter
                    tc[u] += common
                    mem.faa(tc_h, idx=u, count=common, mode="rand")
                elif direction == PUSH_PA:
                    if rt.part.is_local(t, u):
                        tc[u] += common
                        mem.read(tc_h, idx=u, count=common, mode="rand")
                        mem.write(tc_h, idx=u, count=common, mode="rand")
                    else:
                        remote_buf[t].append((u, common))
                else:
                    local_sum += common
                    mem.read(tc_h, idx=v, mode="rand")
                    mem.write(tc_h, idx=v, mode="rand")
            if direction == PULL:
                rt.owned_write_check(v)
                tc[v] += local_sum

    rt.for_each_thread(body)

    if direction == PUSH_PA:
        # the cross-partition FAAs run in their own barrier-separated
        # phase: they must not share an epoch with the plain local
        # read-modify-writes above (plain-vs-atomic race otherwise)
        def pa_remote(t: int, vs: np.ndarray) -> None:
            for u, c in remote_buf[t]:
                tc[u] += c
                mem.faa(tc_h, idx=u, count=c, mode="rand")

        rt.for_each_thread(pa_remote)

    # halve the double-counted corners (sequential epilogue, one pass)
    def halve(t: int, vs: np.ndarray) -> None:
        if len(vs) == 0:
            return
        tc[vs] //= 2
        mem.read(tc_h, start=vs[0], count=len(vs))
        mem.write(tc_h, start=vs[0], count=len(vs))

    rt.for_each_thread(halve)

    return TriangleCountResult(
        direction=direction,
        time=rt.time - start_time,
        counters=rt.total_counters() - start_counters,
        iterations=1,
        per_vertex=tc,
    )
