"""E13: design-choice ablations."""

from repro.harness.experiments import ablations
from benchmarks.conftest import run_and_report


def test_ablations_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, ablations, config)
