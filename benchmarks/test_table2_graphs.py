"""Table 2: the benchmark graph suite."""

from repro.generators import load_dataset
from repro.harness.experiments import table2
from benchmarks.conftest import run_and_report


def test_table2_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, table2, config)


def test_bench_generator_community(benchmark, config):
    """Throughput of the community-graph generator (orc stand-in)."""
    from repro.generators import community_graph
    benchmark(community_graph, 1 << config.scale, 20.0)
