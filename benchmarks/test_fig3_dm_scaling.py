"""Figure 3: distributed-memory strong scaling of PR and TC."""

from repro.algorithms.dm_pagerank import dm_pagerank
from repro.generators import load_dataset
from repro.harness.config import QUICK
from repro.harness.experiments import fig3
from repro.runtime.dm import DMRuntime
from benchmarks.conftest import run_and_report


def test_fig3_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig3, config)


def test_bench_dm_pagerank_mp(benchmark, config):
    g = load_dataset("rmat", scale=config.scale, seed=config.seed)
    machine = config.scaled_machine()

    def run():
        rt = DMRuntime(g.n, P=8, machine=machine)
        return dm_pagerank(g, rt, variant="mp", iterations=2)

    benchmark.pedantic(run, rounds=3, iterations=1)
