"""Graph500-style BFS kernel: construction + sampled-root TEPS."""

from repro.harness.config import clamped_scale
from repro.harness.graph500 import report, run_graph500


def test_graph500_kernel(benchmark, capsys, config):
    scale = clamped_scale(config.scale, 11,
                          reason="Graph500 validation walks every edge "
                                 "per sampled root")
    result = benchmark.pedantic(
        lambda: run_graph500(config, scale=scale, n_roots=4),
        rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(report(result))
    assert result.validated == len(result.roots)
    assert result.harmonic_mean_teps > 0
