"""Benchmark-suite plumbing.

Every ``test_<artifact>`` module regenerates one table or figure of the
paper: it runs the corresponding experiment once under
``benchmark.pedantic`` (so ``pytest benchmarks/ --benchmark-only``
times each full regeneration), prints the regenerated rows/series, and
asserts the paper's qualitative shapes.  Additional micro-benchmarks
time the underlying kernels with proper repetition.
"""

from __future__ import annotations

import pytest

from repro.harness.config import QUICK


@pytest.fixture(scope="session")
def config():
    return QUICK


def run_and_report(benchmark, capsys, experiment, config):
    """Run one experiment module under the benchmark timer and print it."""
    res = benchmark.pedantic(experiment.run, args=(config,),
                             rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(res.render())
    assert res.shape_ok, [c.claim for c in res.checks if not c.holds]
    return res
