"""Figure 5: Betweenness Centrality scalability."""

from repro.algorithms.bc import betweenness_centrality
from repro.generators import load_dataset
from repro.harness.experiments import fig5
from benchmarks.conftest import run_and_report


def test_fig5_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig5, config)


def test_bench_bc_pull(benchmark, config):
    g = load_dataset("orc", scale=config.scale_bc, seed=config.seed)
    benchmark.pedantic(
        lambda: betweenness_centrality(g, config.sm_runtime(g),
                                       direction="pull", sources=4),
        rounds=3, iterations=1)
