"""Section 4: the analytic PRAM cost table."""

from repro.harness.experiments import pram
from benchmarks.conftest import run_and_report


def test_pram_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, pram, config)
