"""Table 3: PR time/iteration and TC total time, push vs pull."""

from repro.algorithms.pagerank import pagerank
from repro.algorithms.triangle import triangle_count
from repro.generators import load_dataset
from repro.harness.experiments import table3
from benchmarks.conftest import run_and_report


def test_table3_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, table3, config)


def test_bench_pagerank_pull_iteration(benchmark, config):
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    rt = config.sm_runtime(g)
    benchmark.pedantic(
        lambda: pagerank(g, rt, direction="pull", iterations=1),
        rounds=3, iterations=1)


def test_bench_pagerank_push_iteration(benchmark, config):
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    rt = config.sm_runtime(g)
    benchmark.pedantic(
        lambda: pagerank(g, rt, direction="push", iterations=1),
        rounds=3, iterations=1)


def test_bench_triangle_pull(benchmark, config):
    g = load_dataset("ljn", scale=config.scale_tc, seed=config.seed)
    rt = config.sm_runtime(g)
    benchmark.pedantic(lambda: triangle_count(g, rt, direction="pull"),
                       rounds=3, iterations=1)
