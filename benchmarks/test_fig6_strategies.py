"""Figure 6: acceleration strategies (PA speedups, BGC iteration counts)."""

from repro.harness.experiments import fig6
from repro.generators import load_dataset
from repro.strategies import pagerank_partition_aware
from benchmarks.conftest import run_and_report


def test_fig6_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig6, config)


def test_bench_pagerank_pa(benchmark, config):
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    benchmark.pedantic(
        lambda: pagerank_partition_aware(g, config.sm_runtime(g),
                                         iterations=1),
        rounds=3, iterations=1)
