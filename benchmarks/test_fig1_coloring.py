"""Figure 1: BGC per-iteration times, push vs pull vs Greedy-Switch."""

from repro.algorithms.coloring import boman_coloring
from repro.generators import load_dataset
from repro.harness.experiments import fig1
from benchmarks.conftest import run_and_report


def test_fig1_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig1, config)


def test_bench_coloring_push(benchmark, config):
    g = load_dataset("orc", scale=config.scale, seed=config.seed)
    benchmark.pedantic(
        lambda: boman_coloring(g, config.sm_runtime(g), direction="push",
                               max_colors=config.max_colors),
        rounds=3, iterations=1)
