"""Figure 2: SSSP-Delta per-epoch times and Delta sensitivity."""

import numpy as np

from repro.algorithms.sssp_delta import sssp_delta
from repro.generators import load_dataset
from repro.harness.experiments import fig2
from benchmarks.conftest import run_and_report


def test_fig2_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig2, config)


def test_bench_sssp_push(benchmark, config):
    g = load_dataset("am", scale=config.scale, seed=config.seed,
                     weighted=True)
    src = int(np.argmax(np.diff(g.offsets)))
    benchmark.pedantic(
        lambda: sssp_delta(g, config.sm_runtime(g), src, direction="push"),
        rounds=3, iterations=1)
