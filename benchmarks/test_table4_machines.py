"""Table 4: PR per-iteration time across machine models."""

from repro.harness.experiments import table4
from benchmarks.conftest import run_and_report


def test_table4_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, table4, config)
