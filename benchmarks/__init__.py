"""Benchmark suite package (one module per paper artifact)."""
