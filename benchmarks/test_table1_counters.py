"""Table 1: the hardware-counter study (trace-driven cache simulation)."""

from repro.harness.experiments import table1
from benchmarks.conftest import run_and_report


def test_table1_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, table1, config)
