"""DESIGN.md §6 extensions: Prim, CC, weighted BC, DM SSSP, partitions."""

from repro.harness.experiments import extensions
from benchmarks.conftest import run_and_report


def test_extensions_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, extensions, config)


def test_bench_connected_components(benchmark, config):
    from repro.algorithms.connected_components import connected_components
    from repro.generators import load_dataset
    g = load_dataset("rca", scale=config.scale, seed=config.seed)
    benchmark.pedantic(
        lambda: connected_components(g, config.sm_runtime(g),
                                     direction="push", pointer_jumping=True),
        rounds=3, iterations=1)
