"""Figure 4: Boruvka MST phase times."""

from repro.algorithms.mst_boruvka import boruvka_mst
from repro.generators import load_dataset
from repro.harness.experiments import fig4
from benchmarks.conftest import run_and_report


def test_fig4_regeneration(benchmark, capsys, config):
    run_and_report(benchmark, capsys, fig4, config)


def test_bench_mst_pull(benchmark, config):
    g = load_dataset("orc", scale=config.scale, seed=config.seed,
                     weighted=True)
    benchmark.pedantic(
        lambda: boruvka_mst(g, config.sm_runtime(g), direction="pull"),
        rounds=3, iterations=1)
