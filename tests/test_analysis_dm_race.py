"""Tests for the DM epoch checker (repro.analysis.dm_race).

Each of the four rules gets a seeded-bug test (the violation must be
flagged) and a matching clean test (the disciplined version of the same
access pattern must not be).  The shipped ``dm_*`` kernels run clean
under the checker, and a dropped flush in a real kernel is caught.
"""

import numpy as np
import pytest

from repro.algorithms.dm_pagerank import dm_pagerank
from repro.algorithms.dm_triangle import dm_triangle_count
from repro.analysis.crosscheck import dm_crosscheck
from repro.analysis.dm_race import attach_dm_race_detector
from repro.analysis.dm_runner import DM_MATRIX, analyze_dm, cross_edges
from repro.analysis.race import RaceError
from repro.generators import erdos_renyi
from repro.machine.cost_model import XC40
from repro.machine.counters import PerfCounters
from repro.runtime.dm import DMRuntime


def make_rt(n: int = 32, P: int = 4) -> DMRuntime:
    return DMRuntime(n, P=P, machine=XC40.scaled(64))


def small_graph(weighted: bool = False):
    return erdos_renyi(64, d_bar=4.0, seed=11, weighted=weighted)


class TestRuleUnflushedRead:
    def test_read_after_unflushed_epoch_crossing_acc_is_flagged(self):
        rt = make_rt()
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def push(p):
            if p != 0:
                rt.rma_accumulate(0, 1, dtype="float", window=h,
                                  idx=np.array([1]))
            # seeded bug: no rma_flush before the superstep boundary

        rt.superstep(push)

        def read(p):
            if p == 0:
                rt.mem.read(h, idx=np.array([1]), mode="rand")

        rt.superstep(read)
        assert {r.kind for r in det.races} == {"unflushed-read"}
        assert det.pending_unflushed > 0

    def test_same_process_get_before_flush_is_flagged(self):
        rt = make_rt()
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            if p == 1:
                rt.rma_put(0, 1, window=h, idx=np.array([2]))
                rt.rma_get(0, 1, window=h, idx=np.array([2]))
                rt.rma_flush()

        rt.superstep(body)
        assert {r.kind for r in det.races} == {"unflushed-read"}

    def test_flushed_read_is_clean(self):
        rt = make_rt()
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def push(p):
            if p != 0:
                rt.rma_accumulate(0, 1, dtype="float", window=h,
                                  idx=np.array([1]))
            rt.rma_flush()

        rt.superstep(push)
        rt.superstep(lambda p: rt.mem.read(h, idx=np.array([1]), mode="rand")
                     if p == 0 else None)
        assert det.report().clean
        assert det.pending_unflushed == 0

    def test_disjoint_region_read_is_clean(self):
        rt = make_rt()
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            if p == 1:
                rt.rma_put(0, 1, window=h, idx=np.array([2]))
                rt.rma_get(0, 1, window=h, idx=np.array([5]))
                rt.rma_flush()

        rt.superstep(body)
        assert det.report().clean

    def test_dropped_flush_in_pagerank_kernel_is_caught(self):
        g = small_graph()
        rt = DMRuntime(g.n, 4, machine=XC40.scaled(64))
        det = attach_dm_race_detector(rt)
        rt.rma_flush = lambda *a, **k: None     # the seeded kernel bug
        dm_pagerank(g, rt, variant="rma-push", iterations=2)
        assert "unflushed-read" in {r.kind for r in det.races}
        assert det.pending_unflushed > 0

    def test_raise_on_race_raises_at_the_read(self):
        rt = make_rt()
        attach_dm_race_detector(rt, raise_on_race=True)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            if p == 1:
                rt.rma_put(0, 1, window=h, idx=np.array([2]))
                rt.rma_get(0, 1, window=h, idx=np.array([2]))

        with pytest.raises(RaceError):
            rt.superstep(body)


class TestRuleWriteVsAcc:
    def test_plain_owner_write_vs_remote_acc_is_flagged(self):
        rt = make_rt(n=64)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 64, 8)

        def body(p):
            own = rt.owned(p)
            if p == 0:
                rt.mem.write(h, idx=own[:2], mode="rand")
            else:
                rt.rma_accumulate(0, 2, dtype="float", window=h,
                                  idx=np.array([0, 1]))
            rt.rma_flush()

        rt.superstep(body)
        assert "write-vs-acc" in {r.kind for r in det.races}

    def test_local_accumulate_instead_of_write_is_clean(self):
        rt = make_rt(n=64)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 64, 8)

        def body(p):
            if p == 0:
                # owner routes its own update through a local accumulate
                rt.rma_accumulate(0, 2, dtype="float", window=h,
                                  idx=np.array([0, 1]))
            else:
                rt.rma_accumulate(0, 2, dtype="float", window=h,
                                  idx=np.array([0, 1]))
            rt.rma_flush()

        rt.superstep(body)
        assert det.report().clean

    def test_write_into_not_owned_indices_is_staging_not_window(self):
        """MP-style send buffers: writes outside the writer's own block
        are private staging, not shared window state."""
        rt = make_rt(n=64)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 64, 8)
        other = rt.owned(0)[:2]

        def body(p):
            if p == 1:
                rt.mem.write(h, idx=other, mode="rand")  # p1 doesn't own
            elif p == 2:
                rt.rma_accumulate(0, 2, dtype="float", window=h, idx=other)
            rt.rma_flush()

        rt.superstep(body)
        assert det.report().clean


class TestRuleEarlyInbox:
    def test_inbox_with_matching_in_flight_message_is_flagged(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)

        def body(p):
            rt.send((p + 1) % 2, "x")
            rt.inbox()

        rt.superstep(body)
        assert "early-inbox" in {r.kind for r in det.races}

    def test_tag_disjoint_inbox_is_clean(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)

        def body(p):
            rt.send((p + 1) % 2, "x", tag="rep")
            rt.inbox("req")     # only reads the *other* message class

        rt.superstep(body)
        assert det.report().clean

    def test_delivered_messages_read_cleanly(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)
        rt.superstep(lambda p: rt.send((p + 1) % 2, "x"))
        rt.superstep(lambda p: rt.inbox())
        assert det.report().clean


class TestRuleAccDtype:
    def test_mixed_float_int_on_same_region_is_flagged(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            dtype = "float" if p == 0 else "int"
            rt.rma_accumulate(0, 1, dtype=dtype, window=h, idx=np.array([3]))
            rt.rma_flush()

        rt.superstep(body)
        assert "acc-dtype" in {r.kind for r in det.races}

    def test_same_dtype_is_clean(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            rt.rma_accumulate(0, 1, dtype="int", window=h, idx=np.array([3]))
            rt.rma_flush()

        rt.superstep(body)
        assert det.report().clean

    def test_disjoint_regions_are_clean(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)
        h = rt.mem.register("w", 32, 8)

        def body(p):
            dtype = "float" if p == 0 else "int"
            idx = np.array([3]) if p == 0 else np.array([9])
            rt.rma_accumulate(0, 1, dtype=dtype, window=h, idx=idx)
            rt.rma_flush()

        rt.superstep(body)
        assert det.report().clean


class TestDetectorMechanics:
    def test_unannotated_ops_tallied_not_crashed(self):
        rt = make_rt(P=2)
        det = attach_dm_race_detector(rt)

        def body(p):
            rt.rma_get(1 - p, 4)
            rt.rma_accumulate(1 - p, 1, dtype="int")
            rt.rma_flush()

        rt.superstep(body)
        assert det.unattributed_ops == 4     # 2 gets + 2 accumulates
        assert det.report().clean

    def test_accounting_is_transparent(self):
        """Times and counters are identical with the checker attached."""
        g = small_graph()
        rt_plain = DMRuntime(g.n, 4, machine=XC40.scaled(64))
        plain = dm_pagerank(g, rt_plain, variant="rma-push", iterations=2)
        rt_det = DMRuntime(g.n, 4, machine=XC40.scaled(64))
        attach_dm_race_detector(rt_det)
        det = dm_pagerank(g, rt_det, variant="rma-push", iterations=2)
        assert det.time == pytest.approx(plain.time)
        assert det.counters.to_dict() == plain.counters.to_dict()

    def test_report_counts_epochs(self):
        rt = make_rt()
        det = attach_dm_race_detector(rt)
        for _ in range(3):
            rt.superstep(lambda p: None)
        assert det.report().epochs == 3


class TestDMCrosscheck:
    def _counters(self, **kw) -> PerfCounters:
        c = PerfCounters()
        for k, v in kw.items():
            setattr(c, k, v)
        return c

    def test_within_bound_is_ok(self):
        c = self._counters(remote_gets=10, messages=5)
        r = dm_crosscheck("PR", "rma-pull", c, m_cross=100, P=4,
                          supersteps=4, rounds=1)
        assert r.ok

    def test_excess_remote_ops_fail(self):
        c = self._counters(remote_acc_float=10**6)
        r = dm_crosscheck("PR", "rma-push", c, m_cross=10, P=4,
                          supersteps=2, rounds=1)
        assert not r.ok
        assert "remote ops" in r.detail

    def test_excess_messages_fail(self):
        c = self._counters(messages=10**6)
        r = dm_crosscheck("BFS", "push", c, m_cross=10, P=4,
                          supersteps=2, rounds=1)
        assert not r.ok
        assert "messages" in r.detail

    def test_rounds_scale_the_bound(self):
        c = self._counters(remote_gets=900)
        tight = dm_crosscheck("TC", "rma-pull", c, m_cross=100, P=2,
                              supersteps=1, rounds=1)
        loose = dm_crosscheck("TC", "rma-pull", c, m_cross=100, P=2,
                              supersteps=1, rounds=8)
        assert not tight.ok and loose.ok

    def test_cross_edges_counts_cut(self):
        g = small_graph()
        rt = make_rt(n=g.n, P=4)
        mc = cross_edges(g, rt.part)
        assert 0 < mc <= g.m * 2
        one = DMRuntime(g.n, 1, machine=XC40.scaled(64))
        assert cross_edges(g, one.part) == 0


class TestKernelMatrix:
    """The shipped dm_* kernels analyze clean, with bounds satisfied."""

    @pytest.fixture(scope="class")
    def runs(self):
        return analyze_dm(n=96, P=4, seed=7)

    def test_matrix_covers_all_kernels(self, runs):
        assert {r.algorithm for r in runs} == {a for a, _ in DM_MATRIX}
        assert len(runs) == sum(len(vs) for _, vs in DM_MATRIX)

    def test_all_cells_race_clean(self, runs):
        dirty = [str(r) for r in runs if not r.report.clean]
        assert not dirty, dirty

    def test_all_cells_within_comm_bounds(self, runs):
        bad = [str(r.check) for r in runs if not r.check.ok]
        assert not bad, bad

    def test_no_pending_unflushed_ops(self, runs):
        assert all(r.pending_unflushed == 0 for r in runs)

    def test_rma_kernels_annotate_their_ops(self, runs):
        """Every put/accumulate in the shipped kernels names its window."""
        rma = [r for r in runs if r.variant.startswith("rma")]
        assert rma
        assert all(r.unattributed_ops == 0 for r in rma)

    def test_triangle_push_local_updates_are_atomic(self):
        """Regression for the latent write-vs-acc race: TC rma-push local
        counter updates go through the integer-FAA path, not plain RMW."""
        g = small_graph()
        rt = DMRuntime(g.n, 4, machine=XC40.scaled(64))
        det = attach_dm_race_detector(rt)
        dm_triangle_count(g, rt, variant="rma-push")
        assert det.report().clean
        assert rt.total_counters().faa > 0
