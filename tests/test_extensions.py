"""Tests for the extension modules: connected components, weighted BC,
distributed SSSP, and the HT region model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.algorithms.bc_weighted import betweenness_centrality_weighted
from repro.algorithms.connected_components import connected_components
from repro.algorithms.dm_sssp import dm_sssp_delta
from repro.algorithms.reference import sssp_reference
from repro.generators import erdos_renyi, load_dataset, road_network
from repro.graph import from_edges, to_networkx
from repro.machine.cost_model import XC40
from repro.runtime.dm import DMRuntime
from tests.conftest import make_runtime


def _component_sets(labels):
    groups = {}
    for v, l in enumerate(labels):
        groups.setdefault(int(l), set()).add(v)
    return {frozenset(c) for c in groups.values()}


class TestConnectedComponents:
    @pytest.mark.parametrize("direction", ["push", "pull"])
    @pytest.mark.parametrize("pj", [False, True])
    def test_matches_networkx(self, road_graph, direction, pj):
        truth = {frozenset(c)
                 for c in nx.connected_components(to_networkx(road_graph))}
        rt = make_runtime(road_graph,
                          check_ownership=(direction == "pull" and not pj))
        r = connected_components(road_graph, rt, direction=direction,
                                 pointer_jumping=pj)
        assert _component_sets(r.labels) == truth
        assert r.n_components == len(truth)

    def test_labels_are_component_minima(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        r = connected_components(tiny_graph, rt)
        assert list(r.labels) == [0, 0, 0, 0, 0, 5]

    def test_pointer_jumping_cuts_rounds(self):
        g = road_network(24, 24, seed=2, weighted=False)
        rt = make_runtime(g)
        plain = connected_components(g, rt, direction="push")
        rt = make_runtime(g)
        pj = connected_components(g, rt, direction="push",
                                  pointer_jumping=True)
        assert pj.rounds < plain.rounds / 2
        assert np.array_equal(pj.labels, plain.labels)

    def test_push_atomics_pull_none(self, comm_graph):
        rt = make_runtime(comm_graph)
        push = connected_components(comm_graph, rt, direction="push")
        rt = make_runtime(comm_graph)
        pull = connected_components(comm_graph, rt, direction="pull")
        assert push.counters.cas > 0 and pull.counters.atomics == 0
        assert np.array_equal(push.labels, pull.labels)

    def test_directed_rejected(self):
        g = from_edges(3, [(0, 1)], directed=True)
        rt = make_runtime(g)
        with pytest.raises(ValueError):
            connected_components(g, rt)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_graphs(self, seed):
        g = erdos_renyi(60, d_bar=1.5, seed=seed)
        truth = {frozenset(c)
                 for c in nx.connected_components(to_networkx(g))}
        rt = make_runtime(g)
        r = connected_components(g, rt, direction="push")
        assert _component_sets(r.labels) == truth


class TestWeightedBC:
    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_matches_networkx(self, er_weighted, direction):
        nxbc = nx.betweenness_centrality(to_networkx(er_weighted),
                                         weight="weight", normalized=False)
        ref = np.array([nxbc[i] for i in range(er_weighted.n)])
        rt = make_runtime(er_weighted)
        r = betweenness_centrality_weighted(er_weighted, rt,
                                            direction=direction)
        assert np.allclose(r.bc, ref, atol=1e-8)

    def test_weighted_differs_from_hopcount(self, tiny_weighted):
        from repro.algorithms.bc import betweenness_centrality
        rt = make_runtime(tiny_weighted)
        weighted = betweenness_centrality_weighted(tiny_weighted, rt)
        rt = make_runtime(tiny_weighted)
        hops = betweenness_centrality(tiny_weighted, rt)
        # edge (3,0) has weight 5: shortest paths route around it
        assert not np.allclose(weighted.bc, hops.bc)

    def test_sampled_sources(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = betweenness_centrality_weighted(er_weighted, rt,
                                            sources=[0, 1, 2])
        assert r.n_sources == 3

    def test_unweighted_rejected(self, tiny_graph):
        rt = make_runtime(tiny_graph)
        with pytest.raises(ValueError):
            betweenness_centrality_weighted(tiny_graph, rt)

    def test_phase_times(self, er_weighted):
        rt = make_runtime(er_weighted)
        r = betweenness_centrality_weighted(er_weighted, rt, sources=4)
        assert r.forward_time > 0 and r.backward_time > 0


class TestDMSSSP:
    @pytest.mark.parametrize("variant", ["push", "pull"])
    def test_matches_dijkstra(self, er_weighted, variant):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        ref = sssp_reference(er_weighted, src)
        rt = DMRuntime(er_weighted.n, P=4, machine=XC40.scaled(64))
        r = dm_sssp_delta(er_weighted, rt, src, variant=variant)
        fin = np.isfinite(ref)
        assert np.array_equal(np.isfinite(r.dist), fin)
        assert np.allclose(r.dist[fin], ref[fin])

    def test_pull_needs_more_messages(self, er_weighted):
        """Request+reply per inner iteration doubles pull's message count."""
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        out = {}
        for variant in ("push", "pull"):
            rt = DMRuntime(er_weighted.n, P=4, machine=XC40.scaled(64))
            out[variant] = dm_sssp_delta(er_weighted, rt, src,
                                         variant=variant)
        assert out["pull"].messages > out["push"].messages
        assert out["push"].epochs == out["pull"].epochs

    def test_on_road_network(self, road_graph):
        src = int(np.argmax(np.diff(road_graph.offsets)))
        ref = sssp_reference(road_graph, src)
        rt = DMRuntime(road_graph.n, P=4, machine=XC40.scaled(64))
        r = dm_sssp_delta(road_graph, rt, src, variant="push")
        fin = np.isfinite(ref)
        assert np.allclose(r.dist[fin], ref[fin])

    def test_validation(self, er_weighted):
        rt = DMRuntime(er_weighted.n, P=2, machine=XC40.scaled(64))
        with pytest.raises(ValueError):
            dm_sssp_delta(er_weighted, rt, 0, variant="teleport")
        with pytest.raises(ValueError):
            dm_sssp_delta(er_weighted, rt, -5)
        with pytest.raises(ValueError):
            dm_sssp_delta(er_weighted, rt, 0, delta=-1.0)


class TestHyperThreading:
    def test_ht_speedup_in_model_range(self):
        from repro.algorithms.pagerank import pagerank
        from repro.harness.config import QUICK
        g = load_dataset("orc", scale=10)
        cores = QUICK.machine.cores
        times = {}
        for P in (cores, 2 * cores):
            rt = QUICK.with_(P=P).sm_runtime(g)
            times[P] = pagerank(g, rt, direction="pull", iterations=2).time
        speedup = times[cores] / times[2 * cores]
        # bounded by 2/smt_yield of perfect split plus barrier noise
        assert 1.0 < speedup <= 2.0

    def test_region_span_topology(self, er_graph):
        rt = make_runtime(er_graph, P=4)
        # P=4 on an 8-core machine: pure max
        assert rt._region_span([1.0, 5.0, 2.0, 3.0]) == 5.0

    def test_region_span_smt_sharing(self, er_graph):
        rt = make_runtime(er_graph, P=16)  # XC30: 8 cores
        spans = [1.0] * 16
        # each core runs two siblings: 2 / smt_yield
        assert rt._region_span(spans) == pytest.approx(
            2.0 / rt.machine.smt_yield)

    def test_empty_region(self, er_graph):
        rt = make_runtime(er_graph, P=2)
        assert rt._region_span([]) == 0.0
