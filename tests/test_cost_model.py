"""Unit tests for the machine cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.cost_model import (
    MACHINES, TRIVIUM, XC30, XC40, XC40_STAR, XC50, MachineSpec,
)
from repro.machine.counters import PerfCounters


class TestTimeFunction:
    def test_zero_counters_zero_time(self):
        assert XC30.time(PerfCounters()) == 0.0

    def test_reads_cost_w_read(self):
        assert XC30.time(PerfCounters(reads=10)) == 10 * XC30.w_read

    def test_cas_costs_more_than_faa(self):
        cas = XC30.time(PerfCounters(atomics=1, cas=1))
        faa = XC30.time(PerfCounters(atomics=1, faa=1))
        assert cas > faa > 0

    def test_batched_atomics_discounted(self):
        plain = XC30.time(PerfCounters(atomics=10, cas=10))
        batched = XC30.time(PerfCounters(atomics=10, cas=10,
                                         atomics_batched=10))
        assert batched == pytest.approx(plain * XC30.atomic_batch_factor)

    def test_lock_costs_more_than_atomic(self):
        assert (XC30.time(PerfCounters(locks=1))
                > XC30.time(PerfCounters(atomics=1, cas=1)))

    def test_miss_cost_ordering(self):
        l1 = XC30.time(PerfCounters(l1_misses=1))
        l2 = XC30.time(PerfCounters(l2_misses=1))
        l3 = XC30.time(PerfCounters(l3_misses=1))
        assert l1 < l2 < l3

    def test_float_accumulate_far_pricier_than_int(self):
        f = XC30.time(PerfCounters(remote_acc_float=1))
        i = XC30.time(PerfCounters(remote_acc_int=1))
        assert f > 10 * i

    def test_linearity(self):
        c = PerfCounters(reads=3, writes=2, atomics=1, cas=1, l3_misses=4)
        assert XC30.time(c + c) == pytest.approx(2 * XC30.time(c))

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_monotone_in_events(self, r, extra):
        base = XC30.time(PerfCounters(reads=r))
        more = XC30.time(PerfCounters(reads=r + extra))
        assert more >= base


class TestScaled:
    def test_shrinks_geometry(self):
        s = XC30.scaled(64)
        assert s.hierarchy.l1.size_bytes == XC30.hierarchy.l1.size_bytes // 64
        assert s.hierarchy.l3.size_bytes == XC30.hierarchy.l3.size_bytes // 64

    def test_floors_at_one_set(self):
        s = XC30.scaled(1 << 20)
        assert s.hierarchy.l1.n_sets >= 1

    def test_tlb_floor(self):
        assert XC30.scaled(4096).hierarchy.tlb.entries >= 8

    def test_name_annotated(self):
        assert XC30.scaled(64).name == "XC30/s64"

    def test_weights_untouched(self):
        assert XC30.scaled(64).w_atomic == XC30.w_atomic


class TestRegistry:
    def test_all_machines_present(self):
        assert set(MACHINES) == {"XC30", "XC40", "XC40*", "XC50", "Trivium"}

    def test_core_counts_match_paper(self):
        assert XC30.cores == 8 and XC40.cores == 18
        assert XC40_STAR.cores == 12 and XC50.cores == 12
        assert TRIVIUM.cores == 4

    def test_max_threads_is_smt_times_cores(self):
        assert TRIVIUM.max_threads == 8 and XC40.max_threads == 36

    def test_trivium_atomics_cheapest(self):
        """Only 8 threads contend on the client part (Table-4 driver)."""
        assert TRIVIUM.w_atomic < XC30.w_atomic
        assert TRIVIUM.w_l3_miss > XC30.w_l3_miss

    def test_with_override(self):
        m = XC30.with_(w_atomic=1.0)
        assert m.w_atomic == 1.0 and XC30.w_atomic != 1.0
        assert m.name == XC30.name

    def test_frozen(self):
        with pytest.raises(Exception):
            XC30.w_atomic = 5
