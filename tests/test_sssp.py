"""Correctness + instrumentation tests for Δ-Stepping SSSP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.algorithms.reference import sssp_reference
from repro.algorithms.sssp_delta import sssp_delta
from repro.generators import erdos_renyi
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime

DIRECTIONS = ("push", "pull")


def _assert_dist(ours: np.ndarray, ref: np.ndarray) -> None:
    fin = np.isfinite(ref)
    assert np.array_equal(np.isfinite(ours), fin)
    assert np.allclose(ours[fin], ref[fin])


@pytest.mark.parametrize("direction", DIRECTIONS)
class TestCorrectness:
    def test_weighted_tiny(self, tiny_weighted, direction):
        ref = sssp_reference(tiny_weighted, 0)
        rt = make_runtime(tiny_weighted,
                          check_ownership=(direction == "pull"))
        r = sssp_delta(tiny_weighted, rt, 0, direction=direction)
        _assert_dist(r.dist, ref)

    def test_unweighted_counts_hops(self, comm_graph, direction):
        rt = make_runtime(comm_graph)
        r = sssp_delta(comm_graph, rt, 0, direction=direction)
        ref = sssp_reference(comm_graph, 0)
        _assert_dist(r.dist, ref)

    def test_matches_networkx_dijkstra(self, road_graph, direction):
        src = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        r = sssp_delta(road_graph, rt, src, direction=direction)
        nxd = nx.single_source_dijkstra_path_length(
            to_networkx(road_graph), src)
        for v in range(road_graph.n):
            if v in nxd:
                assert r.dist[v] == pytest.approx(nxd[v])
            else:
                assert np.isinf(r.dist[v])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6), delta=st.floats(0.3, 8.0))
    def test_random_graphs_any_delta(self, direction, seed, delta):
        g = erdos_renyi(60, d_bar=3.0, seed=seed, weighted=True,
                        max_weight=10.0)
        ref = sssp_reference(g, 0)
        rt = make_runtime(g)
        r = sssp_delta(g, rt, 0, delta=delta, direction=direction)
        _assert_dist(r.dist, ref)

    def test_source_validation(self, tiny_weighted, direction):
        rt = make_runtime(tiny_weighted)
        with pytest.raises(ValueError):
            sssp_delta(tiny_weighted, rt, -1, direction=direction)

    def test_delta_validation(self, tiny_weighted, direction):
        rt = make_runtime(tiny_weighted)
        with pytest.raises(ValueError):
            sssp_delta(tiny_weighted, rt, 0, delta=0.0, direction=direction)


class TestBucketSchedule:
    def test_directions_agree_on_epoch_count(self, er_weighted):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        rts = [make_runtime(er_weighted) for _ in range(2)]
        a = sssp_delta(er_weighted, rts[0], src, direction="push")
        b = sssp_delta(er_weighted, rts[1], src, direction="pull")
        assert a.epochs == b.epochs
        _assert_dist(a.dist, b.dist)

    def test_large_delta_one_epoch_per_component(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 0, delta=1000.0, direction="push")
        assert r.epochs == 1

    def test_small_delta_many_epochs(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 0, delta=0.5, direction="push")
        assert r.epochs > 3

    def test_epoch_times_recorded(self, er_weighted):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        rt = make_runtime(er_weighted)
        r = sssp_delta(er_weighted, rt, src, direction="push")
        assert len(r.epoch_times) == r.epochs
        assert all(t >= 0 for t in r.epoch_times)

    def test_max_epochs_cap(self, road_graph):
        src = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        r = sssp_delta(road_graph, rt, src, direction="push", max_epochs=2)
        assert r.epochs <= 2


class TestInstrumentation:
    def test_push_locks_only_improving(self, er_weighted):
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        rt = make_runtime(er_weighted)
        r = sssp_delta(er_weighted, rt, src, direction="push")
        # at most one improvement per scanned edge relaxation
        assert 0 < r.counters.locks <= r.counters.reads

    def test_pull_locks_far_exceed_push(self, er_weighted):
        """Table 1's pok column: 902k push vs 44.6M pull locks."""
        src = int(np.argmax(np.diff(er_weighted.offsets)))
        rt = make_runtime(er_weighted)
        push = sssp_delta(er_weighted, rt, src, direction="push")
        rt = make_runtime(er_weighted)
        pull = sssp_delta(er_weighted, rt, src, direction="pull")
        assert pull.counters.locks > 2 * push.counters.locks

    def test_pull_reads_far_exceed_push(self, road_graph):
        src = int(np.argmax(np.diff(road_graph.offsets)))
        rt = make_runtime(road_graph)
        push = sssp_delta(road_graph, rt, src, direction="push")
        rt = make_runtime(road_graph)
        pull = sssp_delta(road_graph, rt, src, direction="pull")
        assert pull.counters.reads > 10 * push.counters.reads

    def test_no_cas_used(self, er_weighted):
        """Our SSSP guards the (dist, bucket) pair with locks, like the
        paper's measured implementation (Table 1 SSSP rows)."""
        rt = make_runtime(er_weighted)
        r = sssp_delta(er_weighted, rt, 0, direction="push")
        assert r.counters.cas == 0


class TestEdgeCases:
    def test_isolated_source(self, tiny_weighted):
        rt = make_runtime(tiny_weighted)
        r = sssp_delta(tiny_weighted, rt, 5, direction="push")
        assert r.dist[5] == 0 and np.isinf(r.dist[0])

    def test_two_vertex_graph(self):
        g = from_edges(2, [(0, 1)], weights=[3.5])
        for d in DIRECTIONS:
            rt = make_runtime(g, P=2)
            r = sssp_delta(g, rt, 0, direction=d)
            assert r.dist[1] == 3.5
