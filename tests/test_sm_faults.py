"""Tests for the SM chaos layer (repro.runtime.sm_faults).

Mirrors tests/test_faults.py for the shared-memory runtime:

* determinism -- same (kernel, graph, plan, recovery) => bit-identical
  results, event schedule, stats, and simulated time;
* plan/recovery validation (the shared fault_core contract);
* each SM fault class with recovery OFF (the seeded-bug mode: lost
  claims must corrupt results, proving the fault has teeth) and ON
  (results must match the sequential references exactly);
* crash edge cases: region 0, all threads in one region, straggler and
  crash stacking on the same (thread, region), and
  ``checkpoint_restart=False`` data loss;
* the overhead contract: costly recovery is strictly visible in
  ``rt.time``; a zero plan changes nothing;
* the engine differential: interpreted and batched kernels observe
  byte-identical fault schedules, stats, results, counters, and time
  (the injector forces the batched engine's oracle lowering).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.pagerank import pagerank
from repro.algorithms.reference import (
    bfs_reference, pagerank_reference, sssp_reference,
)
from repro.algorithms.sssp_delta import sssp_delta
from repro.analysis.race import attach_race_detector
from repro.generators import erdos_renyi
from repro.machine.cost_model import XC30
from repro.runtime.dm import DMRuntime
from repro.runtime.faults import RecoveryConfig
from repro.runtime.sm import SMRuntime
from repro.runtime.sm_faults import SMFaultPlan, attach_sm_fault_injector
from repro.streams.kernels import bfs_batched, pagerank_batched

N = 48
P = 4


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(N, d_bar=4.0, seed=7)


@pytest.fixture(scope="module")
def gw():
    return erdos_renyi(N, d_bar=4.0, seed=7, weighted=True)


def _rt(g) -> SMRuntime:
    return SMRuntime(g, P, machine=XC30.scaled(64))


CHAOS = SMFaultPlan(seed=7, straggler=0.05, lock_preempt=0.10,
                    cas_lost=0.08, cas_duplicate=0.08, store_delay=0.05,
                    crash=0.02)


def _chaos_bfs(g, plan=CHAOS, recovery=RecoveryConfig(), direction="push"):
    rt = _rt(g)
    inj = attach_sm_fault_injector(rt, plan, recovery=recovery)
    res = bfs(g, rt, root=0, direction=direction)
    return res, rt, inj


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_same_seed_bit_identical(self, g):
        r1, rt1, i1 = _chaos_bfs(g)
        r2, rt2, i2 = _chaos_bfs(g)
        assert r1.level.tobytes() == r2.level.tobytes()
        assert rt1.time == rt2.time
        assert i1.schedule == i2.schedule
        assert i1.stats.to_dict() == i2.stats.to_dict()

    def test_different_seed_different_schedule(self, g):
        _, _, i1 = _chaos_bfs(g)
        _, _, i2 = _chaos_bfs(g, replace(CHAOS, seed=8))
        assert i1.schedule != i2.schedule

    def test_reset_rebinds_the_schedule(self, g):
        rt = _rt(g)
        inj = attach_sm_fault_injector(rt, CHAOS)
        r1 = bfs(g, rt, root=0, direction="push")
        sched1, stats1 = list(inj.schedule), inj.stats.to_dict()
        rt.reset()
        assert inj.schedule == [] and rt.time == 0.0
        r2 = bfs(g, rt, root=0, direction="push")
        assert r1.level.tobytes() == r2.level.tobytes()
        assert inj.schedule == sched1
        assert inj.stats.to_dict() == stats1

    def test_schedule_records_events(self, g):
        _, _, inj = _chaos_bfs(g)
        kinds = {e[1] for e in inj.schedule}
        assert kinds & {"cas-lost", "cas-retry", "crash", "straggler",
                        "store-delay"}

    def test_plan_label(self):
        assert "cas_lost=0.08" in CHAOS.label()
        with pytest.warns(UserWarning, match="no-op chaos plan"):
            empty = SMFaultPlan(seed=5)
        assert empty.label().endswith("(none)")


# ---------------------------------------------------------------------------
# plan + recovery validation (the shared fault_core contract)
# ---------------------------------------------------------------------------
class TestValidation:
    def test_probability_above_one_raises(self):
        with pytest.raises(ValueError, match="crash"):
            SMFaultPlan(crash=1.5)

    def test_negative_probability_raises(self):
        with pytest.raises(ValueError, match="straggler"):
            SMFaultPlan(straggler=-0.1)

    def test_magnitude_knobs_are_not_probabilities(self):
        # straggler_factor / preempt_cost exceed 1 by design
        plan = SMFaultPlan(straggler=0.1, straggler_factor=8.0,
                           lock_preempt=0.1, preempt_cost=5000.0)
        assert plan.straggler_factor == 8.0

    def test_all_zero_plan_warns(self):
        with pytest.warns(UserWarning, match="no-op chaos plan"):
            SMFaultPlan(seed=3)

    def test_recovery_wait_must_be_positive(self):
        with pytest.raises(ValueError, match="backoff_base"):
            RecoveryConfig(backoff_base=0.0)
        with pytest.raises(ValueError, match="store_flush_wait"):
            RecoveryConfig(store_flush_wait=-1.0)

    def test_retry_limit_must_be_at_least_one(self):
        with pytest.raises(ValueError, match="retry_limit"):
            RecoveryConfig(retry_limit=0)

    def test_attach_rejects_dm_runtime(self):
        rt = DMRuntime(8, 2)
        with pytest.raises(TypeError, match="SMRuntime"):
            attach_sm_fault_injector(rt, SMFaultPlan(seed=0, crash=0.1))


# ---------------------------------------------------------------------------
# fault classes: seeded-bug mode (no recovery) vs recovery
# ---------------------------------------------------------------------------
class TestStraggler:
    def test_straggler_never_speeds_up(self, g):
        rt0 = _rt(g)
        base = pagerank(g, rt0, direction="pull", iterations=3)
        rt = _rt(g)
        attach_sm_fault_injector(rt, SMFaultPlan(seed=0, straggler=0.3))
        slow = pagerank(g, rt, direction="pull", iterations=3)
        assert rt.faults.stats.stragglers > 0
        assert rt.time >= rt0.time
        assert np.allclose(slow.ranks, base.ranks, atol=1e-12)

    def test_stretch_lands_in_region_stalls(self, g):
        from repro.observability.tracer import attach_tracer
        rt = _rt(g)
        tracer = attach_tracer(rt, graph=g)
        attach_sm_fault_injector(rt, SMFaultPlan(seed=0, straggler=0.3))
        bfs(g, rt, root=0, direction="push")
        stalled = [ev for ev in tracer.events
                   if ev.kind in ("region", "phase")
                   and ev.data.get("stalls")]
        assert stalled, "straggler stretch must reach the trace"
        assert all(any(s > 0 for s in ev.data["stalls"]) for ev in stalled)


class TestLockPreempt:
    def test_preempt_charges_the_waiting_thread(self, gw):
        # sssp_delta push claims via mem.lock -- the preempt target
        rt0 = _rt(gw)
        base = sssp_delta(gw, rt0, source=0, direction="push")
        rt = _rt(gw)
        attach_sm_fault_injector(
            rt, SMFaultPlan(seed=0, lock_preempt=0.3, preempt_cost=3000.0))
        res = sssp_delta(gw, rt, source=0, direction="push")
        assert rt.faults.stats.lock_preempts > 0
        assert rt.time >= rt0.time
        assert np.allclose(res.dist, base.dist)


class TestCasClaims:
    def test_lost_claim_corrupts_without_recovery(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, cas_lost=0.3),
                                  recovery=None)
        assert inj.stats.cas_lost > 0 and inj.stats.cas_retries == 0
        assert not np.array_equal(res.level, ref)

    def test_lost_claim_recovered_by_retry(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, cas_lost=0.3))
        assert inj.stats.cas_retries > 0
        assert np.array_equal(res.level, ref)

    def test_duplicate_claim_suppressed_by_dedup(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=1, cas_duplicate=0.3))
        s = inj.stats
        assert s.cas_duplicates > 0
        assert s.cas_dup_suppressed == s.cas_duplicates
        assert np.array_equal(res.level, ref)

    def test_duplicate_claim_costs_without_dedup(self, g):
        # a doubly-applied claim is a failing second CAS attempt: it
        # cannot corrupt (the word is already claimed) but its reads +
        # atomics land on the issuing thread
        ref = bfs_reference(g, 0)
        res0, rt0, _ = _chaos_bfs(g, SMFaultPlan(seed=1, cas_duplicate=0.3))
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=1, cas_duplicate=0.3),
                                  recovery=RecoveryConfig(dedup=False))
        s = inj.stats
        assert s.cas_duplicates > 0 and s.cas_dup_suppressed == 0
        assert np.array_equal(res.level, ref)
        c_dedup = rt0.total_counters()
        c_dup = rt.total_counters()
        assert c_dup.atomics > c_dedup.atomics


class TestStoreDelay:
    def test_fence_drains_the_buffer_with_recovery(self, g):
        rt0 = _rt(g)
        base = bfs(g, rt0, root=0, direction="push")
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=2, store_delay=0.3))
        s = inj.stats
        assert s.store_delays > 0 and s.store_flushes > 0
        assert rt.time > rt0.time
        assert np.array_equal(res.level, base.level)

    def test_without_recovery_stores_drain_free_at_barrier(self, g):
        # BSP semantics: the stores still become visible at the barrier,
        # nobody pays for a fence -- the fault is observability-only
        rt0 = _rt(g)
        base = bfs(g, rt0, root=0, direction="push")
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=2, store_delay=0.3),
                                  recovery=None)
        s = inj.stats
        assert s.store_delays > 0 and s.store_flushes == 0
        assert rt.time == rt0.time
        assert np.array_equal(res.level, base.level)


class TestCrashRestart:
    def test_crash_loses_work_without_recovery(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=2, crash=0.3),
                                  recovery=None)
        s = inj.stats
        assert s.crashes > 0 and s.restarts == 0
        assert not np.array_equal(res.level, ref)

    def test_crash_restart_reruns_exactly(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=2, crash=0.3))
        s = inj.stats
        assert s.crashes > 0 and s.restarts == s.crashes
        assert np.array_equal(res.level, ref)

    def test_crash_restart_sssp(self, gw):
        ref = sssp_reference(gw, 0)
        rt = _rt(gw)
        attach_sm_fault_injector(rt, SMFaultPlan(seed=5, crash=0.1))
        res = sssp_delta(gw, rt, source=0, direction="push")
        assert rt.faults.stats.restarts > 0
        assert np.allclose(res.dist, ref)

    def test_rollback_keeps_race_detector_clean(self, g):
        rt = _rt(g)
        detector = attach_race_detector(rt)
        attach_sm_fault_injector(rt, SMFaultPlan(seed=2, crash=0.3))
        bfs(g, rt, root=0, direction="push")
        assert rt.faults.stats.crashes > 0
        assert detector.report().clean

    def test_checkpoint_restart_off_loses_data(self, g):
        # recovery present (retries, dedup) but rollback disabled: the
        # crashed thread's region work is gone and stays gone
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(
            g, SMFaultPlan(seed=2, crash=0.3),
            recovery=RecoveryConfig(checkpoint_restart=False))
        s = inj.stats
        assert s.crashes > 0 and s.restarts == 0
        assert s.backoff_time == 0.0
        assert not np.array_equal(res.level, ref)


class TestCrashEdgeCases:
    def test_crash_in_region_zero_recovers(self, g):
        ref = bfs_reference(g, 0)
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, crash=1.0))
        crashes0 = [e for e in inj.schedule if e[0] == 0 and e[1] == "crash"]
        assert crashes0, "a certain crash must fire in the first region"
        assert np.array_equal(res.level, ref)

    def test_all_threads_crash_in_one_region(self, g):
        # crash=1.0 dooms every thread of every parallel region; the
        # rerun is not re-drawn, so recovery still converges
        res, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, crash=1.0))
        by_region: dict[int, int] = {}
        for e in inj.schedule:
            if e[1] == "crash":
                by_region[e[0]] = by_region.get(e[0], 0) + 1
        assert max(by_region.values()) > 1
        assert inj.stats.restarts == inj.stats.crashes
        assert np.array_equal(res.level, bfs_reference(g, 0))

    def test_straggler_and_crash_stack_on_one_thread(self, g):
        # both faults certain: every (thread, region) is simultaneously
        # a straggler and a crash victim -- the stretch and the
        # rollback/rerun must compose
        rt0 = _rt(g)
        bfs(g, rt0, root=0, direction="push")
        res, rt, inj = _chaos_bfs(
            g, SMFaultPlan(seed=0, straggler=1.0, crash=1.0))
        step0 = {(e[1], e[2]) for e in inj.schedule if e[0] == 0}
        threads = {t for kind, t in step0 if kind == "crash"}
        assert any(("straggler", t) in step0 for t in threads)
        assert rt.time > rt0.time
        assert np.array_equal(res.level, bfs_reference(g, 0))


# ---------------------------------------------------------------------------
# overhead accounting
# ---------------------------------------------------------------------------
class TestOverheadAccounting:
    def test_costly_recovery_strictly_slower(self, g):
        rt0 = _rt(g)
        bfs(g, rt0, root=0, direction="push")
        _, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, cas_lost=0.3))
        assert inj.stats.costly() > 0
        assert rt.time > rt0.time

    def test_zero_probability_plan_changes_nothing(self, g):
        rt0 = _rt(g)
        base = bfs(g, rt0, root=0, direction="push")
        with pytest.warns(UserWarning, match="no-op chaos plan"):
            plan = SMFaultPlan(seed=9)
        res, rt, inj = _chaos_bfs(g, plan)
        assert inj.stats.fired() == 0
        assert res.level.tobytes() == base.level.tobytes()
        assert rt.time == rt0.time
        assert rt.total_counters() == rt0.total_counters()

    def test_backoff_time_is_tallied(self, g):
        _, rt, inj = _chaos_bfs(g, SMFaultPlan(seed=0, cas_lost=0.3))
        s = inj.stats
        assert s.backoff_time > 0
        assert s.backoff_time <= rt.time


# ---------------------------------------------------------------------------
# engine differential: interpreted vs batched under faults
# ---------------------------------------------------------------------------
def _run_engine(g, kernel, plan, **kw):
    rt = _rt(g)
    inj = attach_sm_fault_injector(rt, plan)
    res = kernel(g, rt, **kw)
    return res, rt, inj


class TestEngineDifferential:
    """The injector forces the batched engine's oracle lowering, so the
    per-element call script -- and with it every RNG draw -- is shared.
    """

    def test_bfs_schedules_bit_identical(self, g):
        r1, rt1, i1 = _run_engine(g, bfs, CHAOS, root=0, direction="push")
        r2, rt2, i2 = _run_engine(g, bfs_batched, CHAOS, root=0,
                                  direction="push")
        assert i1.schedule == i2.schedule
        assert i1.stats.to_dict() == i2.stats.to_dict()
        assert r1.level.tobytes() == r2.level.tobytes()
        assert rt1.time == rt2.time
        assert rt1.total_counters() == rt2.total_counters()

    def test_pagerank_schedules_bit_identical(self, g):
        r1, rt1, i1 = _run_engine(g, pagerank, CHAOS, direction="push",
                                  iterations=3)
        r2, rt2, i2 = _run_engine(g, pagerank_batched, CHAOS,
                                  direction="push", iterations=3)
        assert i1.schedule == i2.schedule
        assert i1.stats.to_dict() == i2.stats.to_dict()
        assert r1.ranks.tobytes() == r2.ranks.tobytes()
        assert rt1.time == rt2.time
        assert rt1.total_counters() == rt2.total_counters()

    def test_faulted_batched_matches_reference(self, g):
        ref = pagerank_reference(g, iterations=3)
        res, rt, inj = _run_engine(g, pagerank_batched, CHAOS,
                                   direction="push", iterations=3)
        assert inj.stats.fired() > 0
        assert np.allclose(res.ranks, ref, atol=1e-9)
