"""Tests for the SpMM-batched algebraic betweenness centrality."""

import numpy as np

import networkx as nx

from repro.algorithms.bc import betweenness_centrality
from repro.la import bc_la
from repro.graph import from_edges, to_networkx
from tests.conftest import make_runtime


class TestCorrectness:
    def test_matches_networkx(self, pa_graph):
        nxbc = nx.betweenness_centrality(to_networkx(pa_graph),
                                         normalized=False)
        r = bc_la(pa_graph, batch=64)
        assert np.allclose(r.bc, [nxbc[i] for i in range(pa_graph.n)],
                           atol=1e-6)

    def test_matches_vertex_centric_engine(self, comm_graph):
        rt = make_runtime(comm_graph)
        vc = betweenness_centrality(comm_graph, rt, direction="pull",
                                    sources=[0, 3, 9])
        la = bc_la(comm_graph, sources=[0, 3, 9])
        assert np.allclose(vc.bc, la.bc, atol=1e-8)

    def test_path_graph(self):
        g = from_edges(5, [(i, i + 1) for i in range(4)])
        r = bc_la(g)
        assert np.allclose(r.bc, [0, 3, 4, 3, 0])

    def test_batching_invariant(self, pa_graph):
        """The answer must not depend on the batch width."""
        a = bc_la(pa_graph, batch=7)
        b = bc_la(pa_graph, batch=200)
        assert np.allclose(a.bc, b.bc, atol=1e-8)

    def test_disconnected(self, tiny_graph):
        nxbc = nx.betweenness_centrality(to_networkx(tiny_graph),
                                         normalized=False)
        r = bc_la(tiny_graph)
        assert np.allclose(r.bc, [nxbc[i] for i in range(6)], atol=1e-9)


class TestAccounting:
    def test_sampled_sources(self, pa_graph):
        r = bc_la(pa_graph, sources=10, seed=1)
        assert len(r.sources) == 10

    def test_spmm_count_scales_with_batches(self, pa_graph):
        few = bc_la(pa_graph, sources=list(range(16)), batch=16)
        many = bc_la(pa_graph, sources=list(range(16)), batch=4)
        # smaller batches => more (narrower) SpMM invocations
        assert many.spmm_count > few.spmm_count

    def test_flops_positive(self, pa_graph):
        assert bc_la(pa_graph, sources=4).flops > 0
